"""Machine-readable result export (JSON) for flows and comparisons.

Every experiment object in the library can be flattened to plain dicts
for dashboards, regression tracking, or notebook post-processing.  The
schema is stable: keys are documented in each function and covered by
tests.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.mgba.flow import MGBAResult
from repro.mgba.validation import ValidationReport
from repro.opt.closure import ClosureReport
from repro.opt.compare import FlowComparison
from repro.opt.qor import QoRMetrics


def qor_to_dict(qor: QoRMetrics) -> dict:
    """``{wns, tns, area, leakage, buffers, violations}``."""
    return asdict(qor)


def mgba_result_to_dict(result: MGBAResult) -> dict:
    """Flow outcome: problem size, solver stats, accuracy, runtimes."""
    return {
        "paths": result.problem.num_paths,
        "gates": result.problem.num_gates,
        "nonzeros": int(result.problem.matrix.nnz),
        "solver": result.solution.solver,
        "iterations": result.solution.iterations,
        "converged": result.solution.converged,
        "mse_gba": result.mse_gba,
        "mse_mgba": result.mse_mgba,
        "pass_ratio_gba": result.pass_ratio_gba,
        "pass_ratio_mgba": result.pass_ratio_mgba,
        "weights_installed": len(result.weights),
        "seconds": {
            "select": result.seconds_select,
            "pba": result.seconds_pba,
            "solve": result.seconds_solve,
            "apply": result.seconds_apply,
            "total": result.total_seconds,
        },
    }


def closure_report_to_dict(report: ClosureReport) -> dict:
    """Closure outcome: before/after QoR, move counts, runtimes."""
    payload = {
        "initial": qor_to_dict(report.initial),
        "final": qor_to_dict(report.final),
        "transforms_applied": report.transforms_applied,
        "transforms_tried": report.transforms_tried,
        "iterations": report.iterations,
        "seconds_total": report.seconds_total,
        "seconds_mgba": report.seconds_mgba,
    }
    if report.mgba_result is not None:
        payload["mgba"] = mgba_result_to_dict(report.mgba_result)
    return payload


def comparison_to_dict(comparison: FlowComparison) -> dict:
    """One Table 2 + Table 5 record for a design."""
    return {
        "design": comparison.design,
        "gba_flow": closure_report_to_dict(comparison.gba),
        "mgba_flow": closure_report_to_dict(comparison.mgba),
        "signoff": {
            "gba": asdict(comparison.gba_signoff),
            "mgba": asdict(comparison.mgba_signoff),
        },
        "qor_improvement_percent": comparison.qor_improvement(),
        "runtime": comparison.runtime_row(),
    }


def validation_to_dict(report: ValidationReport) -> dict:
    """Generalization record (plus derived verdict fields)."""
    payload = asdict(report)
    payload["eval_improvement"] = report.eval_improvement
    payload["generalizes"] = report.generalizes
    return payload


def save_json(payload: dict, path) -> None:
    """Write a result dict as pretty JSON."""
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_json(path) -> dict:
    """Read back a result JSON."""
    return json.loads(Path(path).read_text())
