"""Accuracy metrics from the paper.

* :func:`relative_error_phi` — Eq. (10), the phi used in the §3.2
  path-selection study.
* :func:`mse` — Eq. (12), the modelling squared error of Table 4.
* :func:`pass_ratio` — Table 3's metric: a path "passes" when its slack
  error vs golden PBA is < 5% relative or < 5 ps absolute.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SolverError

#: Default pass thresholds suggested by the paper's engineers.
PASS_REL_TOL = 0.05
PASS_ABS_TOL_PS = 5.0


def _as_pair(model, golden) -> tuple[np.ndarray, np.ndarray]:
    model_arr = np.asarray(model, dtype=float)
    golden_arr = np.asarray(golden, dtype=float)
    if model_arr.shape != golden_arr.shape:
        raise SolverError(
            f"shape mismatch: model {model_arr.shape} vs golden "
            f"{golden_arr.shape}"
        )
    return model_arr, golden_arr


def relative_error_phi(model, golden) -> float:
    """Eq. (10): ||s_model - s_golden||_2 / ||s_golden||_2."""
    model_arr, golden_arr = _as_pair(model, golden)
    denom = np.linalg.norm(golden_arr)
    if denom == 0.0:
        return 0.0 if np.linalg.norm(model_arr) == 0.0 else float("inf")
    return float(np.linalg.norm(model_arr - golden_arr) / denom)


def mse(model, golden) -> float:
    """Eq. (12): ||s_model - s_golden||^2 / ||s_golden||^2."""
    return relative_error_phi(model, golden) ** 2


def pass_vector(model, golden,
                rel_tol: float = PASS_REL_TOL,
                abs_tol: float = PASS_ABS_TOL_PS) -> np.ndarray:
    """Boolean per-path pass flags under the 5%/5ps rule."""
    model_arr, golden_arr = _as_pair(model, golden)
    err = np.abs(model_arr - golden_arr)
    denom = np.abs(golden_arr)
    rel_ok = np.zeros_like(err, dtype=bool)
    nonzero = denom > 0
    rel_ok[nonzero] = err[nonzero] / denom[nonzero] < rel_tol
    return rel_ok | (err < abs_tol)


def pass_ratio(model, golden,
               rel_tol: float = PASS_REL_TOL,
               abs_tol: float = PASS_ABS_TOL_PS) -> float:
    """Fraction of paths passing the 5%/5ps correlation rule."""
    flags = pass_vector(model, golden, rel_tol, abs_tol)
    if flags.size == 0:
        return 1.0
    return float(flags.mean())
