"""Generalization validation of a fitted mGBA model.

The flow fits weights on the selected critical paths; everything else
in the design is then *corrected by extrapolation*.  Two validators
quantify how safe that is:

* :func:`holdout_validation` — fit on each endpoint's top-k paths,
  evaluate on its next (deeper) paths.  Measures generalization to
  unfitted paths through *seen* gates — the common case during
  optimization, where transforms expose previously sub-critical paths.
* :func:`endpoint_split_validation` — fit on a random subset of
  endpoints, evaluate on the rest.  Measures generalization to unseen
  *regions*; weights for gates never observed default to 1.0 (plain
  GBA), so the evaluation can degrade toward GBA but never below it in
  expectation.

Both report the fit-side and eval-side pass ratio / mse plus how many
evaluation-path gates were actually covered by the fit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.mgba.metrics import mse, pass_ratio
from repro.mgba.problem import build_problem
from repro.mgba.selection import per_endpoint_topk
from repro.mgba.solvers import solve_direct
from repro.pba.engine import PBAEngine
from repro.pba.enumerate import enumerate_worst_paths
from repro.pba.paths import TimingPath
from repro.timing.sta import STAEngine
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class ValidationReport:
    """Fit-vs-evaluation quality of one validation experiment."""

    fit_paths: int
    eval_paths: int
    pass_ratio_fit: float
    pass_ratio_eval: float
    pass_ratio_eval_gba: float
    mse_fit: float
    mse_eval: float
    mse_eval_gba: float
    gate_coverage_eval: float

    @property
    def eval_improvement(self) -> float:
        """Pass-ratio points gained on unfitted paths."""
        return self.pass_ratio_eval - self.pass_ratio_eval_gba

    @property
    def generalizes(self) -> bool:
        """True when the correction helps (not hurts) held-out paths."""
        return (
            self.pass_ratio_eval >= self.pass_ratio_eval_gba - 1e-9
            and self.mse_eval <= self.mse_eval_gba + 1e-12
        )


def _evaluate(weights: dict[str, float],
              eval_paths: "list[TimingPath]") -> tuple[float, float, float,
                                                       float, float]:
    problem = build_problem(eval_paths)
    x = np.array([weights.get(g, 0.0) for g in problem.gates])
    corrected = problem.corrected_slacks(x)
    covered = sum(1 for g in problem.gates if g in weights)
    coverage = covered / len(problem.gates) if problem.gates else 1.0
    return (
        pass_ratio(corrected, problem.s_pba),
        pass_ratio(problem.s_gba, problem.s_pba),
        mse(corrected, problem.s_pba),
        mse(problem.s_gba, problem.s_pba),
        coverage,
    )


def _fit(paths: "list[TimingPath]", epsilon: float,
         penalty: float) -> tuple[dict[str, float], float, float]:
    problem = build_problem(paths, epsilon=epsilon, penalty=penalty)
    x = solve_direct(problem).x
    corrected = problem.corrected_slacks(x)
    weights = dict(zip(problem.gates, x))
    return (
        weights,
        pass_ratio(corrected, problem.s_pba),
        mse(corrected, problem.s_pba),
    )


def holdout_validation(
    engine: STAEngine,
    k_fit: int = 10,
    k_eval: int = 25,
    epsilon: float = 0.05,
    penalty: float = 10.0,
) -> ValidationReport:
    """Fit on each endpoint's top-k_fit paths, evaluate on ranks
    (k_fit, k_eval]."""
    if k_eval <= k_fit:
        raise SolverError("k_eval must exceed k_fit")
    engine.ensure_timing()
    pool = enumerate_worst_paths(engine.graph, engine.state, k_eval)
    PBAEngine(engine).analyze(pool)
    fit_set = {p.key() for p in per_endpoint_topk(pool, k_fit)}
    fit_paths = [p for p in pool if p.key() in fit_set]
    eval_paths = [p for p in pool if p.key() not in fit_set]
    if not eval_paths:
        raise SolverError(
            "no held-out paths; the design's endpoints have too few paths"
        )
    weights, ratio_fit, mse_fit = _fit(fit_paths, epsilon, penalty)
    ratio_eval, ratio_gba, mse_eval, mse_gba, coverage = _evaluate(
        weights, eval_paths
    )
    return ValidationReport(
        fit_paths=len(fit_paths),
        eval_paths=len(eval_paths),
        pass_ratio_fit=ratio_fit,
        pass_ratio_eval=ratio_eval,
        pass_ratio_eval_gba=ratio_gba,
        mse_fit=mse_fit,
        mse_eval=mse_eval,
        mse_eval_gba=mse_gba,
        gate_coverage_eval=coverage,
    )


def endpoint_split_validation(
    engine: STAEngine,
    k_per_endpoint: int = 15,
    fit_fraction: float = 0.6,
    epsilon: float = 0.05,
    penalty: float = 10.0,
    seed=None,
) -> ValidationReport:
    """Fit on a random endpoint subset, evaluate on the others."""
    if not 0.0 < fit_fraction < 1.0:
        raise SolverError("fit_fraction must be in (0, 1)")
    engine.ensure_timing()
    rng = make_rng(seed)
    endpoints = engine.graph.endpoint_nodes()
    if len(endpoints) < 4:
        raise SolverError("too few endpoints to split")
    shuffled = list(endpoints)
    rng.shuffle(shuffled)
    cut = max(1, int(round(fit_fraction * len(shuffled))))
    fit_endpoints = set(shuffled[:cut])
    pool = enumerate_worst_paths(engine.graph, engine.state, k_per_endpoint)
    PBAEngine(engine).analyze(pool)
    fit_paths = [p for p in pool if p.endpoint in fit_endpoints]
    eval_paths = [p for p in pool if p.endpoint not in fit_endpoints]
    if not fit_paths or not eval_paths:
        raise SolverError("degenerate endpoint split")
    weights, ratio_fit, mse_fit = _fit(fit_paths, epsilon, penalty)
    ratio_eval, ratio_gba, mse_eval, mse_gba, coverage = _evaluate(
        weights, eval_paths
    )
    return ValidationReport(
        fit_paths=len(fit_paths),
        eval_paths=len(eval_paths),
        pass_ratio_fit=ratio_fit,
        pass_ratio_eval=ratio_eval,
        pass_ratio_eval_gba=ratio_gba,
        mse_fit=mse_fit,
        mse_eval=mse_eval,
        mse_eval_gba=mse_gba,
        gate_coverage_eval=coverage,
    )
