"""Persisting fitted mGBA corrections.

A fit is only worth its solve time if the flow can reuse it: weights
are saved as JSON with enough provenance (design name, gate count, a
connectivity fingerprint) to refuse application to a design that has
structurally diverged — silently applying stale weights to a changed
netlist would be worse than plain GBA.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.errors import SolverError
from repro.netlist.core import Netlist

FORMAT_VERSION = 1


def netlist_fingerprint(netlist: Netlist) -> str:
    """Stable hash of the netlist's structure (cells + connectivity)."""
    hasher = hashlib.sha256()
    for name in sorted(netlist.gates):
        gate = netlist.gates[name]
        hasher.update(name.encode())
        hasher.update(gate.cell_name.encode())
        for pin, net in sorted(gate.connections.items()):
            hasher.update(f"{pin}={net}".encode())
    return hasher.hexdigest()[:16]


def weights_to_json(weights: dict[str, float], netlist: Netlist) -> str:
    """Serialize a weight map with provenance."""
    payload = {
        "format": FORMAT_VERSION,
        "design": netlist.name,
        "gates": len(netlist.gates),
        "fingerprint": netlist_fingerprint(netlist),
        "weights": dict(sorted(weights.items())),
    }
    return json.dumps(payload, indent=2)


def weights_from_json(
    text: str,
    netlist: Netlist,
    strict: bool = True,
) -> dict[str, float]:
    """Load a weight map, verifying it belongs to this netlist.

    ``strict`` verifies the structural fingerprint; non-strict only
    checks the design name and drops weights for gates that no longer
    exist (the resize-only case, where cell swaps change the
    fingerprint but weights remain meaningful).
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SolverError(f"weight file is not valid JSON: {exc}") from exc
    if payload.get("format") != FORMAT_VERSION:
        raise SolverError(
            f"unsupported weight-file format {payload.get('format')!r}"
        )
    if payload.get("design") != netlist.name:
        raise SolverError(
            f"weights were fitted for design {payload.get('design')!r}, "
            f"not {netlist.name!r}"
        )
    if strict:
        fingerprint = netlist_fingerprint(netlist)
        if payload.get("fingerprint") != fingerprint:
            raise SolverError(
                "netlist has structurally changed since the fit; "
                "re-run the mGBA flow or load with strict=False"
            )
    raw = payload.get("weights", {})
    weights = {
        gate: float(value) for gate, value in raw.items()
        if gate in netlist.gates
    }
    dropped = len(raw) - len(weights)
    if strict and dropped:
        raise SolverError(
            f"{dropped} weighted gate(s) no longer exist in the netlist"
        )
    return weights


def save_weights(weights: dict[str, float], netlist: Netlist, path) -> None:
    """Write a weight file to disk."""
    Path(path).write_text(weights_to_json(weights, netlist))


def load_weights(path, netlist: Netlist,
                 strict: bool = True) -> dict[str, float]:
    """Read and verify a weight file from disk."""
    return weights_from_json(Path(path).read_text(), netlist, strict)
