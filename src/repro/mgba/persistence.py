"""Persisting fitted mGBA corrections.

A fit is only worth its solve time if the flow can reuse it: weights
are saved as JSON with enough provenance (design name, gate count, a
connectivity fingerprint) to refuse application to a design that has
structurally diverged — silently applying stale weights to a changed
netlist would be worse than plain GBA.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.errors import SolverError
from repro.netlist.core import Netlist

FORMAT_VERSION = 1


def _structure_fingerprint(netlist: Netlist) -> str:
    """Stable hash of the netlist's structure (cells + connectivity).

    Part of the version-1 weight-file format — existing files carry
    this exact digest, so it must stay byte-stable.  For *new* code
    that wants a content address, use
    :func:`repro.service.keys.netlist_hash`, which also covers ports
    and module structure.
    """
    hasher = hashlib.sha256()
    for name in sorted(netlist.gates):
        gate = netlist.gates[name]
        hasher.update(name.encode())
        hasher.update(gate.cell_name.encode())
        for pin, net in sorted(gate.connections.items()):
            hasher.update(f"{pin}={net}".encode())
    return hasher.hexdigest()[:16]


def __getattr__(name: str):
    if name == "netlist_fingerprint":
        import warnings

        warnings.warn(
            "repro.mgba.persistence.netlist_fingerprint is deprecated; "
            "use repro.service.keys.netlist_hash for content addressing "
            "(the weight-file format keeps its own internal fingerprint)",
            DeprecationWarning,
            stacklevel=2,
        )
        return _structure_fingerprint
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def weights_to_json(weights: dict[str, float], netlist: Netlist) -> str:
    """Serialize a weight map with provenance."""
    payload = {
        "format": FORMAT_VERSION,
        "design": netlist.name,
        "gates": len(netlist.gates),
        "fingerprint": _structure_fingerprint(netlist),
        "weights": dict(sorted(weights.items())),
    }
    return json.dumps(payload, indent=2)


def weights_from_json(
    text: str,
    netlist: Netlist,
    strict: bool = True,
) -> dict[str, float]:
    """Load a weight map, verifying it belongs to this netlist.

    ``strict`` verifies the structural fingerprint; non-strict only
    checks the design name and drops weights for gates that no longer
    exist (the resize-only case, where cell swaps change the
    fingerprint but weights remain meaningful).
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SolverError(f"weight file is not valid JSON: {exc}") from exc
    if payload.get("format") != FORMAT_VERSION:
        raise SolverError(
            f"unsupported weight-file format {payload.get('format')!r}"
        )
    if payload.get("design") != netlist.name:
        raise SolverError(
            f"weights were fitted for design {payload.get('design')!r}, "
            f"not {netlist.name!r}"
        )
    if strict:
        fingerprint = _structure_fingerprint(netlist)
        if payload.get("fingerprint") != fingerprint:
            raise SolverError(
                "netlist has structurally changed since the fit; "
                "re-run the mGBA flow or load with strict=False"
            )
    raw = payload.get("weights", {})
    weights = {
        gate: float(value) for gate, value in raw.items()
        if gate in netlist.gates
    }
    dropped = len(raw) - len(weights)
    if strict and dropped:
        raise SolverError(
            f"{dropped} weighted gate(s) no longer exist in the netlist"
        )
    return weights


def save_weights(weights: dict[str, float], netlist: Netlist, path) -> None:
    """Write a weight file to disk."""
    Path(path).write_text(weights_to_json(weights, netlist))


def load_weights(path, netlist: Netlist,
                 strict: bool = True) -> dict[str, float]:
    """Read and verify a weight file from disk."""
    return weights_from_json(Path(path).read_text(), netlist, strict)
