"""Critical-path selection schemes (§3.2 of the paper).

The naive scheme — globally sort every violating path by GBA slack and
keep the worst m' — concentrates on a few critical gates and leaves most
correction variables unobserved (47.5% gate coverage, phi = 72.4% in
the paper's small case).  The paper's scheme — keep the top k' paths
*per endpoint* — spreads the same budget across the design (95.3%
coverage, phi = 5.11%).  Both are implemented here over a common path
pool so the benchmark can compare them fairly.
"""

from __future__ import annotations

from collections import defaultdict

from repro.pba.paths import TimingPath


def global_topk(paths: "list[TimingPath]", m: int) -> "list[TimingPath]":
    """Scheme 1: the m globally-worst paths by GBA slack."""
    ranked = sorted(paths, key=lambda p: p.gba_slack)
    return ranked[:m]


def per_endpoint_topk(
    paths: "list[TimingPath]",
    k: int,
    max_total: int | None = None,
) -> "list[TimingPath]":
    """Scheme 2: the k worst paths of every endpoint.

    Only paths sharing an endpoint are compared, so the sort cost drops
    from m log m to sum of per-endpoint sorts — and every endpoint's
    neighbourhood of gates gets covered.  ``max_total`` caps the result
    (the paper's m' <= 5e6), dropping the *least* critical of the kept
    paths first.
    """
    by_endpoint: dict[int, list[TimingPath]] = defaultdict(list)
    for path in paths:
        by_endpoint[path.endpoint].append(path)
    kept: list[TimingPath] = []
    for endpoint in sorted(by_endpoint):
        bucket = sorted(by_endpoint[endpoint], key=lambda p: p.gba_slack)
        kept.extend(bucket[:k])
    if max_total is not None and len(kept) > max_total:
        kept.sort(key=lambda p: p.gba_slack)
        kept = kept[:max_total]
    return kept


def violating_paths(paths: "list[TimingPath]") -> "list[TimingPath]":
    """Paths with negative GBA slack — the ones closure must fix."""
    return [p for p in paths if p.gba_slack < 0]


def gate_coverage(
    paths: "list[TimingPath]",
    universe: "set[str] | None" = None,
) -> tuple[float, int, int]:
    """(fraction, covered, total) of gates observed by a path set.

    ``universe`` defaults to the gates of the *full* pool being
    subsampled — pass the union over all candidate paths to reproduce
    the paper's coverage numbers.
    """
    covered: set[str] = set()
    for path in paths:
        covered.update(path.gates())
    if universe is None:
        universe = set(covered)
    total = len(universe)
    hit = len(covered & universe)
    fraction = hit / total if total else 0.0
    return fraction, hit, total


def path_pool_gates(paths: "list[TimingPath]") -> set[str]:
    """Union of gates across a path pool (the coverage universe)."""
    gates: set[str] = set()
    for path in paths:
        gates.update(path.gates())
    return gates
