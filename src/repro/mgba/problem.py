"""Sparse least-squares formulation of the mGBA fitting problem.

The paper's Eq. (5)-(9) with the correction-form interpretation
documented in DESIGN.md: per-gate weighting ``lambda_j (1 + x_j)``
makes the corrected slack of path i::

    s_mgba,i(x) = s_gba,i - (A x)_i ,   A_ij = d_ij * lambda_j

where ``d_ij`` is the base delay of the arc path i takes through gate j
and ``lambda_j`` the GBA derate.  Matching PBA means ``A x ~ b`` with
``b_i = s_gba,i - s_pba,i <= 0`` (the pessimism, negated), and the
"never more than epsilon optimistic" constraint of Eq. (5) becomes the
one-sided bound ``(A x)_i >= b_i - epsilon |s_pba,i|``, handled by the
quadratic penalty of Eq. (6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.errors import SolverError
from repro.pba.paths import TimingPath


@dataclass
class MGBAProblem:
    """One instance of the mGBA quadratic program.

    Attributes
    ----------
    matrix:
        ``m x n`` CSR matrix A (path x gate, entries ``d * lambda``).
    rhs:
        ``b = s_gba - s_pba`` per path (<= 0 entries are pessimism).
    s_gba / s_pba:
        The original slack vectors (for metrics).
    gates:
        Column order: ``gates[j]`` is the gate of column j.
    epsilon:
        Relative optimism tolerance of Eq. (5).
    penalty:
        Quadratic penalty weight w of Eq. (6).
    """

    matrix: sparse.csr_matrix
    rhs: np.ndarray
    s_gba: np.ndarray
    s_pba: np.ndarray
    gates: list[str]
    epsilon: float = 0.05
    penalty: float = 10.0
    _lower: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        m, n = self.matrix.shape
        if self.rhs.shape != (m,):
            raise SolverError(
                f"rhs shape {self.rhs.shape} does not match m={m}"
            )
        if len(self.gates) != n:
            raise SolverError(
                f"{len(self.gates)} gates do not match n={n} columns"
            )
        self._lower = self.rhs - self.epsilon * np.abs(self.s_pba)

    @property
    def num_paths(self) -> int:
        """m, the number of fitted paths (rows)."""
        return self.matrix.shape[0]

    @property
    def num_gates(self) -> int:
        """n, the number of correction variables (columns)."""
        return self.matrix.shape[1]

    @property
    def lower_bound(self) -> np.ndarray:
        """Per-row lower bound on (A x) enforcing the epsilon constraint."""
        return self._lower

    # ------------------------------------------------------------------
    # Objective / gradient (penalty form, Eq. 6)
    # ------------------------------------------------------------------
    def residual(self, x: np.ndarray) -> np.ndarray:
        """A x - b."""
        return self.matrix @ x - self.rhs

    def violation(self, x: np.ndarray) -> np.ndarray:
        """Positive part of (lower - A x): how optimistic each row is."""
        return np.maximum(self._lower - self.matrix @ x, 0.0)

    def objective(self, x: np.ndarray) -> float:
        """Penalized objective f(x) = ||Ax-b||^2 + w * ||violation||^2."""
        res = self.residual(x)
        vio = self.violation(x)
        return float(res @ res + self.penalty * (vio @ vio))

    def gradient(self, x: np.ndarray) -> np.ndarray:
        """Gradient of the penalized objective."""
        ax = self.matrix @ x
        grad = 2.0 * (self.matrix.T @ (ax - self.rhs))
        vio_mask = ax < self._lower
        if np.any(vio_mask):
            vio = ax[vio_mask] - self._lower[vio_mask]  # negative values
            grad += 2.0 * self.penalty * (
                self.matrix[vio_mask].T @ vio
            )
        return np.asarray(grad).ravel()

    def row_gradient(self, x: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Gradient restricted to a row subset (stochastic solvers).

        Scaled by m/len(rows) so it is an unbiased estimate of the full
        gradient under uniform sampling (probability-weighted sampling
        applies its own importance correction upstream).

        Implementation note: this runs every SCG iteration, and CSR
        fancy-indexing (``self.matrix[rows]``) reallocates a submatrix
        each time.  Instead the selected rows' entries are gathered via
        indptr/indices slices and reduced directly with ``np.add.at``,
        whose unbuffered element-order accumulation reproduces scipy's
        sequential matvec loops exactly (``np.add.reduceat`` would not:
        it sums pairwise), so the result is bit-identical to the
        submatrix formulation (covered by the seeded solver tests and
        an explicit old-vs-new equivalence test).
        """
        rows = np.asarray(rows)
        n_rows = len(rows)
        indptr = self.matrix.indptr
        starts = indptr[rows].astype(np.int64)
        counts = (indptr[rows + 1] - indptr[rows]).astype(np.int64)
        total = int(counts.sum())
        seg = np.zeros(n_rows, dtype=np.int64)
        if n_rows:
            np.cumsum(counts[:-1], out=seg[1:])
        flat = (
            np.arange(total, dtype=np.int64)
            - np.repeat(seg, counts)
            + np.repeat(starts, counts)
        )
        cols = self.matrix.indices[flat]
        vals = self.matrix.data[flat]
        # ax = (sub @ x): per-row sequential sum in storage order (rows
        # with no entries stay exactly 0.0).
        products = vals * x[cols]
        ax = np.zeros(n_rows)
        np.add.at(ax, np.repeat(np.arange(n_rows), counts), products)
        # grad = 2 (sub^T r): scatter in data order, like csc_matvec.
        residual = ax - self.rhs[rows]
        acc = np.zeros(self.num_gates)
        np.add.at(acc, cols, vals * np.repeat(residual, counts))
        grad = 2.0 * acc
        lower = self._lower[rows]
        vio_mask = ax < lower
        if np.any(vio_mask):
            vio = ax[vio_mask] - lower[vio_mask]
            keep = np.repeat(vio_mask, counts)
            acc_vio = np.zeros(self.num_gates)
            np.add.at(
                acc_vio, cols[keep],
                vals[keep] * np.repeat(vio, counts[vio_mask]),
            )
            grad += 2.0 * self.penalty * acc_vio
        scale = self.num_paths / max(n_rows, 1)
        return np.asarray(grad).ravel() * scale

    def row_norms_squared(self) -> np.ndarray:
        """||a_i||^2 per row — the Kaczmarz sampling distribution (Eq. 11)."""
        return np.asarray(
            self.matrix.multiply(self.matrix).sum(axis=1)
        ).ravel()

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def corrected_slacks(self, x: np.ndarray) -> np.ndarray:
        """s_mgba(x) = s_gba - A x on the fitted paths."""
        return self.s_gba - self.matrix @ x

    def subproblem(self, rows: np.ndarray) -> "MGBAProblem":
        """The problem restricted to a row subset (Algorithm 1 sampling)."""
        rows = np.asarray(rows)
        return MGBAProblem(
            matrix=self.matrix[rows].tocsr(),
            rhs=self.rhs[rows],
            s_gba=self.s_gba[rows],
            s_pba=self.s_pba[rows],
            gates=self.gates,
            epsilon=self.epsilon,
            penalty=self.penalty,
        )


def build_problem(
    paths: "list[TimingPath]",
    epsilon: float = 0.05,
    penalty: float = 10.0,
) -> MGBAProblem:
    """Assemble the sparse system from analyzed paths.

    Every path must have been through
    :meth:`repro.pba.engine.PBAEngine.analyze_path` (it needs
    ``contributions`` and both slacks).  Columns are created for every
    gate that appears on at least one fitted path, in first-seen order
    (deterministic given the path list).
    """
    if not paths:
        raise SolverError("cannot build an mGBA problem from zero paths")
    gate_index: dict[str, int] = {}
    gates: list[str] = []
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    s_gba = np.empty(len(paths))
    s_pba = np.empty(len(paths))
    for i, path in enumerate(paths):
        if not path.analyzed and not path.contributions:
            raise SolverError(
                f"path to {path.endpoint_name} is unanalyzed; "
                "run PBAEngine.analyze first"
            )
        s_gba[i] = path.gba_slack
        s_pba[i] = path.pba_slack
        for gate, base_delay, gba_derate in path.contributions:
            j = gate_index.get(gate)
            if j is None:
                j = len(gates)
                gate_index[gate] = j
                gates.append(gate)
            rows.append(i)
            cols.append(j)
            data.append(base_delay * gba_derate)
    matrix = sparse.coo_matrix(
        (data, (rows, cols)), shape=(len(paths), len(gates))
    ).tocsr()
    matrix.sum_duplicates()
    return MGBAProblem(
        matrix=matrix,
        rhs=s_gba - s_pba,
        s_gba=s_gba,
        s_pba=s_pba,
        gates=gates,
        epsilon=epsilon,
        penalty=penalty,
    )
