"""The modified-GBA analysis flow (right half of the paper's Fig. 5).

``MGBAFlow.run`` performs, on one clean GBA engine:

1. **select** — per-endpoint top-k' critical paths (§3.2 scheme 2);
2. **golden** — PBA analysis of the selected paths (depth, distance,
   CRPR, golden slacks);
3. **fit** — build the sparse problem and solve it with the configured
   solver (SCG + uniform row sampling by default);
4. **update** — install the per-gate weights into the engine, so every
   subsequent (incremental) GBA query returns corrected slacks.

The result object carries both slack vectors, the solution, and a
runtime breakdown, which is everything Tables 3-5 need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.context import RunContext
from repro.errors import SolverError
from repro.mgba.apply import weights_from_solution
from repro.mgba.metrics import mse, pass_ratio
from repro.mgba.problem import MGBAProblem, build_problem
from repro.mgba.selection import per_endpoint_topk
from repro.mgba.solvers import (
    SolverResult,
    solve_direct,
    solve_gd,
    solve_scg,
    solve_with_row_sampling,
)
from repro.obs.metrics import counter, gauge
from repro.obs.trace import Span, span
from repro.parallel.executor import Executor, get_executor
from repro.pba.engine import PBAEngine
from repro.pba.enumerate import enumerate_worst_paths
from repro.pba.paths import TimingPath
from repro.timing.sta import STAEngine

_SOLVERS = {
    "gd": lambda problem, cfg: solve_gd(problem),
    "scg": lambda problem, cfg: solve_scg(problem, seed=cfg.seed),
    "scg+rs": lambda problem, cfg: solve_with_row_sampling(
        problem, seed=cfg.seed
    ),
    "direct": lambda problem, cfg: solve_direct(problem),
}


@dataclass(frozen=True)
class MGBAConfig:
    """Knobs of the mGBA flow.

    ``k_per_endpoint`` and ``max_paths`` are the paper's k' = 20 and
    m' <= 5e6 (scaled down by default for laptop-sized designs).
    """

    k_per_endpoint: int = 20
    max_paths: int = 200_000
    epsilon: float = 0.05
    penalty: float = 10.0
    solver: str = "scg+rs"
    #: Golden fidelity: also re-propagate slews along each path (removes
    #: the worst-slew-propagation pessimism in addition to derate/CRPR).
    recalc_slew: bool = False
    seed: int | None = 0
    #: Worker count for the flow's parallel stages (path selection and
    #: golden PBA).  None defers to ``REPRO_WORKERS`` / the CLI's
    #: ``--workers``; results are bit-identical at any setting.
    workers: int | None = None
    #: Parallel backend override (``"serial"`` / ``"thread"`` /
    #: ``"process"``); None defers to ``REPRO_PARALLEL_BACKEND``.
    parallel_backend: str | None = None

    def executor(self) -> Executor:
        """The executor the flow's parallel stages share."""
        return get_executor(self.workers, self.parallel_backend)

    def solve(self, problem: MGBAProblem) -> SolverResult:
        """Run the configured solver on a problem."""
        try:
            runner = _SOLVERS[self.solver]
        except KeyError:
            raise SolverError(
                f"unknown solver {self.solver!r}; "
                f"choose from {sorted(_SOLVERS)}"
            ) from None
        return runner(problem, self)


#: Stage keys of one flow invocation, in execution order.
STAGE_NAMES = ("select", "pba", "solve", "apply")


@dataclass
class MGBAResult:
    """Everything produced by one mGBA flow invocation.

    The runtime breakdown lives in ``stages`` — one
    :class:`~repro.obs.trace.Span` per flow stage (``"apply"`` is
    absent when ``run(apply=False)``); the ``seconds_*`` properties
    are derived views kept for backward compatibility.
    """

    paths: list[TimingPath]
    problem: MGBAProblem
    solution: SolverResult
    weights: dict[str, float]
    mse_gba: float
    mse_mgba: float
    pass_ratio_gba: float
    pass_ratio_mgba: float
    stages: dict[str, Span] = field(default_factory=dict)
    #: The enclosing ``mgba.run`` span (stage spans are its children).
    run_span: Span | None = None

    def stage_seconds(self, name: str) -> float:
        """Wall seconds of one stage (0.0 when the stage did not run)."""
        stage = self.stages.get(name)
        return stage.duration if stage is not None else 0.0

    @property
    def seconds_select(self) -> float:
        return self.stage_seconds("select")

    @property
    def seconds_pba(self) -> float:
        return self.stage_seconds("pba")

    @property
    def seconds_solve(self) -> float:
        return self.stage_seconds("solve")

    @property
    def seconds_apply(self) -> float:
        return self.stage_seconds("apply")

    @property
    def total_seconds(self) -> float:
        """Wall clock of the whole flow: the sum of its stage spans."""
        return sum(stage.duration for stage in self.stages.values())

    @property
    def pass_ratio_improvement(self) -> float:
        """Absolute pass-ratio improvement (Table 3's last column)."""
        return self.pass_ratio_mgba - self.pass_ratio_gba


class MGBAFlow:
    """Orchestrates select -> golden -> fit -> update on one engine.

    Configurable two ways (they are equivalent): the legacy
    ``MGBAFlow(MGBAConfig(...))`` form, or the unified
    ``MGBAFlow(context=RunContext(...))`` form the facade and service
    use.  When both are given the explicit ``config`` wins for fit
    knobs.  ``solve_cache`` is an optional duck-typed hook with
    ``lookup(problem, config)`` / ``store(problem, config, solution)``
    — the service passes its content-addressed ``x*`` cache here so
    identical problems never pay for a second solve.
    """

    def __init__(self, config: MGBAConfig | None = None,
                 context: "RunContext | None" = None,
                 solve_cache=None):
        if config is None:
            config = (
                context.mgba_config() if context is not None
                else MGBAConfig()
            )
        self.config = config
        self.context = (
            context if context is not None
            else RunContext.from_config(config)
        )
        self.solve_cache = solve_cache

    def select_paths(self, engine: STAEngine,
                     executor: "Executor | None" = None) -> list[TimingPath]:
        """Per-endpoint top-k' critical path selection."""
        engine.ensure_timing()
        raw = enumerate_worst_paths(
            engine.graph, engine.state,
            k_per_endpoint=self.config.k_per_endpoint,
            max_total=self.config.max_paths,
            executor=executor if executor is not None
            else self.context.executor(),
        )
        return per_endpoint_topk(
            raw, self.config.k_per_endpoint, self.config.max_paths
        )

    def run(self, engine: STAEngine, apply: bool = True) -> MGBAResult:
        """Execute the full flow; installs weights unless ``apply=False``."""
        engine.clear_gate_weights()
        engine.update_timing()

        stages: dict[str, Span] = {}
        executor = self.context.executor()
        with span(
            "mgba.run", solver=self.config.solver,
            backend=executor.backend, workers=executor.workers,
        ) as run_span:
            with span("mgba.select") as stages["select"]:
                paths = self.select_paths(engine, executor)
            stages["select"].set(paths=len(paths))
            counter("paths.selected").inc(len(paths))
            if not paths:
                raise SolverError(
                    "no timing paths selected; is the design constrained?"
                )
            with span("mgba.pba") as stages["pba"]:
                pba = PBAEngine(engine, recalc_slew=self.config.recalc_slew)
                pba.analyze(paths, executor)
                # Never fit against false paths: their "golden" slack is
                # a fiction (the path cannot happen), and set_false_path
                # is exactly the launch-pair information GBA lacks.
                paths = [p for p in paths if not p.is_false]
            if not paths:
                raise SolverError("every selected path is a false path")
            with span("mgba.solve", solver=self.config.solver) \
                    as stages["solve"]:
                problem = build_problem(
                    paths,
                    epsilon=self.config.epsilon,
                    penalty=self.config.penalty,
                )
                solution = None
                cached_solve = False
                if self.solve_cache is not None:
                    solution = self.solve_cache.lookup(problem, self.config)
                    cached_solve = solution is not None
                if solution is None:
                    solution = self.config.solve(problem)
                    if self.solve_cache is not None:
                        self.solve_cache.store(
                            problem, self.config, solution
                        )
            stages["solve"].set(
                rows=problem.num_paths,
                gates=problem.num_gates,
                iterations=solution.iterations,
                cached=cached_solve,
            )
            weights = weights_from_solution(problem, solution.x)
            corrected = problem.corrected_slacks(solution.x)
            if apply:
                with span("mgba.apply") as stages["apply"]:
                    engine.set_gate_weights(weights)
                    engine.update_timing()
        result = MGBAResult(
            paths=paths,
            problem=problem,
            solution=solution,
            weights=weights,
            mse_gba=mse(problem.s_gba, problem.s_pba),
            mse_mgba=mse(corrected, problem.s_pba),
            pass_ratio_gba=pass_ratio(problem.s_gba, problem.s_pba),
            pass_ratio_mgba=pass_ratio(corrected, problem.s_pba),
            stages=stages,
            run_span=run_span,
        )
        gauge("mgba.pass_ratio").set(result.pass_ratio_mgba)
        gauge("mgba.mse").set(result.mse_mgba)
        return result


def corrected_path_slacks(
    engine: STAEngine, paths: "list[TimingPath]"
) -> np.ndarray:
    """mGBA slack of given paths under the engine's installed weights.

    Re-walks each path summing the *currently* derated arc delays — the
    graph-level equivalent of ``problem.corrected_slacks`` that also
    reflects weight clamping and pruning.
    """
    from repro.timing.propagation import effective_late
    from repro.timing.slack import endpoint_clock_map, setup_required

    engine.ensure_timing()
    clock_map = endpoint_clock_map(engine.graph, engine.constraints)
    out = np.empty(len(paths))
    for i, path in enumerate(paths):
        info = engine.graph.endpoints[path.endpoint]
        required, _ = setup_required(
            engine.graph, engine.state, info, clock_map[path.endpoint],
            engine.constraints,
        )
        arrival = float(engine.state.arrival_late[path.launch])
        for edge_id in path.edges:
            arrival += effective_late(engine.state, engine.graph.edge(edge_id))
        out[i] = required - arrival
    return out
