"""mGBA — the paper's primary contribution.

Fits a per-gate correction ``x`` so that corrected-GBA path slacks match
golden PBA slacks on selected critical paths, subject to never being
more than ``epsilon`` optimistic:

* :class:`~repro.mgba.problem.MGBAProblem` — sparse least-squares
  formulation (Eq. 5-9 of the paper).
* :mod:`~repro.mgba.selection` — critical-path selection schemes
  (global top-m' vs per-endpoint top-k', §3.2).
* :mod:`~repro.mgba.solvers` — GD baseline, stochastic CG (Alg. 2),
  uniform row sampling (Alg. 1), and a direct scipy reference.
* :mod:`~repro.mgba.metrics` — phi (Eq. 10), mse (Eq. 12), and the
  5%/5ps pass ratio (Table 3).
* :class:`~repro.mgba.flow.MGBAFlow` — the full right-hand side of the
  paper's Fig. 5: select, analyze, fit, update the timing graph.
"""

from repro.mgba.problem import MGBAProblem, build_problem
from repro.mgba.selection import (
    gate_coverage,
    global_topk,
    per_endpoint_topk,
    violating_paths,
)
from repro.mgba.metrics import mse, pass_ratio, relative_error_phi
from repro.mgba.apply import weights_from_solution
from repro.mgba.flow import MGBAConfig, MGBAFlow, MGBAResult

__all__ = [
    "MGBAProblem",
    "build_problem",
    "gate_coverage",
    "global_topk",
    "per_endpoint_topk",
    "violating_paths",
    "mse",
    "pass_ratio",
    "relative_error_phi",
    "weights_from_solution",
    "MGBAConfig",
    "MGBAFlow",
    "MGBAResult",
]
