"""Applying a solved correction back to the timing graph.

The solution ``x`` lives in correction space (``x_j ~ 0`` means "keep
the GBA derate of gate j"); the engine consumes multiplicative weights
``1 + x_j`` on the gate's GBA derate.  Weights are clamped so a noisy
solver component can never produce a non-physical derate:

* the effective derate never drops below a floor fraction of the GBA
  one (PBA can never be faster than the best table corner);
* the weight may exceed 1: the least-squares fit legitimately *adds*
  delay on some gates to compensate removal on gates they share paths
  with — only the path-level epsilon constraint bounds optimism, not
  the per-gate direction.  A generous ceiling merely guards against a
  diverged solver component.
"""

from __future__ import annotations

import numpy as np

from repro.mgba.problem import MGBAProblem


def weights_from_solution(
    problem: MGBAProblem,
    x: np.ndarray,
    derate_floor_ratio: float = 0.3,
    derate_ceiling_ratio: float = 3.0,
    prune_below: float = 1e-6,
) -> dict[str, float]:
    """Turn a solution vector into the engine's per-gate weight map.

    ``derate_floor_ratio`` bounds how far a derate may shrink (0.3 means
    the corrected derate keeps at least 30% of the GBA one — generous,
    since table corners rarely differ by 2x); ``derate_ceiling_ratio``
    symmetrically caps runaway positive corrections.  Entries within
    ``prune_below`` of zero are dropped: they are exactly the ~96% of
    near-zero components Fig. 3 shows, and omitting them keeps the
    weight map as sparse as the solution.
    """
    weights: dict[str, float] = {}
    for gate, correction in zip(problem.gates, np.asarray(x, dtype=float)):
        if abs(correction) < prune_below:
            continue
        weight = 1.0 + correction
        weight = min(weight, derate_ceiling_ratio)
        weight = max(weight, derate_floor_ratio)
        weights[gate] = weight
    return weights


def solution_sparsity(x: np.ndarray, window: float = 0.01) -> float:
    """Fraction of entries inside [-window, window] (Fig. 3's 95.9%)."""
    arr = np.asarray(x, dtype=float)
    if arr.size == 0:
        return 1.0
    return float(np.mean(np.abs(arr) <= window))
