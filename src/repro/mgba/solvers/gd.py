"""Full-batch gradient descent — the Table 4 baseline ("GD + w/o RS").

Every iteration computes the complete penalized gradient over all m
rows; the step-size rule mirrors Algorithm 2's dynamic control
(``alpha = s / ||g||`` with mild harmonic decay) so the speed comparison
against SCG isolates exactly what the paper varies: stochastic row
sampling and conjugate directions.
"""

from __future__ import annotations

import numpy as np

from repro.mgba.problem import MGBAProblem
from repro.mgba.solvers.base import SolverResult, Stopwatch, relative_change
from repro.obs.metrics import counter, histogram
from repro.obs.telemetry import IterationStats, iteration_callbacks


def solve_gd(
    problem: MGBAProblem,
    x0: np.ndarray | None = None,
    step: float = 0.02,
    eps: float = 1e-3,
    max_iter: int = 2000,
    step_decay: float = 0.01,
    on_iteration=None,
) -> SolverResult:
    """Minimize the penalized objective by plain gradient descent.

    Parameters mirror Algorithm 2 where they overlap: ``step`` is the
    paper's s = 0.02, ``eps`` its convergence parameter 1e-3.
    ``on_iteration`` (plus process-wide subscribers) receives one
    :class:`~repro.obs.telemetry.IterationStats` per iteration.
    """
    watch = Stopwatch()
    callbacks = iteration_callbacks(on_iteration)
    x = np.zeros(problem.num_gates) if x0 is None else x0.astype(float).copy()
    history: list[float] = []
    history_iters: list[int] = []
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        grad = problem.gradient(x)
        norm = float(np.linalg.norm(grad))
        if norm == 0.0:
            converged = True
            break
        alpha = step / (norm * (1.0 + step_decay * iteration))
        x_next = x - alpha * grad
        change = relative_change(x_next, x)
        x = x_next
        current = problem.objective(x)
        history.append(current)
        history_iters.append(iteration)
        if callbacks:
            stats = IterationStats(
                solver="gd", iteration=iteration, grad_norm=norm,
                step=alpha, beta=0.0, objective=current,
                x_change=change, rows=problem.num_paths,
            )
            for callback in callbacks:
                callback(stats)
        if change < eps:
            converged = True
            break
    runtime = watch.elapsed()
    counter("solver.runs").inc()
    counter("solver.iterations").inc(iteration)
    histogram("solver.solve_seconds").observe(runtime)
    return SolverResult(
        x=x,
        solver="gd",
        iterations=iteration,
        converged=converged,
        runtime=runtime,
        objective=problem.objective(x),
        history=history,
        history_iters=history_iters,
    )
