"""Full-batch gradient descent — the Table 4 baseline ("GD + w/o RS").

Every iteration computes the complete penalized gradient over all m
rows; the step-size rule mirrors Algorithm 2's dynamic control
(``alpha = s / ||g||`` with mild harmonic decay) so the speed comparison
against SCG isolates exactly what the paper varies: stochastic row
sampling and conjugate directions.
"""

from __future__ import annotations

import numpy as np

from repro.mgba.problem import MGBAProblem
from repro.mgba.solvers.base import SolverResult, Stopwatch, relative_change


def solve_gd(
    problem: MGBAProblem,
    x0: np.ndarray | None = None,
    step: float = 0.02,
    eps: float = 1e-3,
    max_iter: int = 2000,
    step_decay: float = 0.01,
) -> SolverResult:
    """Minimize the penalized objective by plain gradient descent.

    Parameters mirror Algorithm 2 where they overlap: ``step`` is the
    paper's s = 0.02, ``eps`` its convergence parameter 1e-3.
    """
    watch = Stopwatch()
    x = np.zeros(problem.num_gates) if x0 is None else x0.astype(float).copy()
    history: list[float] = []
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        grad = problem.gradient(x)
        norm = float(np.linalg.norm(grad))
        if norm == 0.0:
            converged = True
            break
        alpha = step / (norm * (1.0 + step_decay * iteration))
        x_next = x - alpha * grad
        change = relative_change(x_next, x)
        x = x_next
        history.append(problem.objective(x))
        if change < eps:
            converged = True
            break
    return SolverResult(
        x=x,
        solver="gd",
        iterations=iteration,
        converged=converged,
        runtime=watch.elapsed(),
        objective=problem.objective(x),
        history=history,
    )
