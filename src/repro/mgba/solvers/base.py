"""Shared solver plumbing: results, convergence bookkeeping."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np


@dataclass
class SolverResult:
    """Outcome of one solver run.

    ``history`` records the objective samples so benches can plot
    convergence, and ``history_iters`` the iteration index each sample
    was taken at (SCG samples only every ``objective_every`` iterations,
    so the x-axis is *not* ``range(len(history))``); ``extras`` carries
    solver-specific data (e.g. the row counts of Algorithm 1's doubling
    schedule).
    """

    x: np.ndarray
    solver: str
    iterations: int
    converged: bool
    runtime: float
    objective: float
    history: list[float] = field(default_factory=list)
    history_iters: list[int] = field(default_factory=list)
    extras: dict = field(default_factory=dict)

    def convergence_curve(self) -> "list[tuple[int, float]]":
        """(iteration, objective) pairs — the plottable history."""
        return list(zip(self.history_iters, self.history))


class Stopwatch:
    """Tiny wall-clock helper so every solver reports runtime the same way."""

    def __init__(self):
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction."""
        return time.perf_counter() - self._start


def relative_change(current: np.ndarray, previous: np.ndarray,
                    floor: float = 1e-12) -> float:
    """||x_k - x_{k-1}|| / ||x_{k-1}||, guarded near x = 0.

    Both Algorithm 1 and Algorithm 2 stop on this quantity; at the very
    first steps ``x`` is still ~0 and the ratio is meaningless, so the
    guard returns +inf until the iterate has any magnitude.
    """
    denom = float(np.linalg.norm(previous))
    if denom < floor:
        return float("inf")
    return float(np.linalg.norm(current - previous) / denom)
