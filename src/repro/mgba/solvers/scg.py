"""Algorithm 2: stochastic conjugate gradient with Kaczmarz row sampling.

Faithful to the paper's listing:

1. each row's selection probability follows its squared Euclidean norm
   (Eq. 11, the randomized-Kaczmarz distribution [14]);
2. k'' rows (default 2% of the rows) are drawn per iteration and the
   gradient is evaluated on that subset only;
3. the gradient is normalized, combined into a Polak-Ribiere conjugate
   direction, and applied with the dynamic step ``alpha_k = s/||d_k||``;
4. iteration stops when the relative movement of x drops under eps_c.

One engineering deviation, documented in EXPERIMENTS.md: the paper's
fixed s cannot ever satisfy the relative-movement test when ||x*|| is
small (the iterate keeps jittering by s), so the step decays
harmonically (``s / (1 + decay*k)``) — the schedule the cited learning
theory of randomized Kaczmarz [15] actually requires for convergence.
"""

from __future__ import annotations

import numpy as np

from repro.mgba.problem import MGBAProblem
from repro.mgba.solvers.base import SolverResult, Stopwatch, relative_change
from repro.obs.metrics import counter, histogram
from repro.obs.telemetry import IterationStats, iteration_callbacks
from repro.utils.rng import make_rng


def kaczmarz_probabilities(problem: MGBAProblem) -> np.ndarray:
    """Row-selection distribution of Eq. (11): p_j ~ ||a_j||^2."""
    norms = problem.row_norms_squared()
    total = norms.sum()
    if total <= 0:
        return np.full(problem.num_paths, 1.0 / max(problem.num_paths, 1))
    return norms / total


def solve_scg(
    problem: MGBAProblem,
    x0: np.ndarray | None = None,
    rows_fraction: float = 0.02,
    step: float = 0.02,
    eps: float = 1e-3,
    max_iter: int = 4000,
    step_decay: float = 0.01,
    check_window: int = 5,
    iteration_offset: int = 0,
    objective_every: int = 25,
    stall_checks: int = 8,
    stall_tol: float = 1e-3,
    seed=None,
    on_iteration=None,
) -> SolverResult:
    """Run Algorithm 2 on a problem.

    ``rows_fraction`` is the paper's k'' = 2% of rows; ``step`` its
    s = 0.02; ``eps`` its eps_c = 1e-3.  ``check_window`` smooths the
    stochastic convergence test: the movement criterion must hold for
    this many consecutive iterations (a single lucky small step on a
    noisy gradient is not convergence).  ``iteration_offset`` continues
    the step-decay schedule of an earlier run.

    A secondary stop handles the regime the paper's x-movement test
    cannot see: with a still-large stochastic step the iterate jitters
    around the optimum without its *objective* improving.  Every
    ``objective_every`` iterations the true objective is sampled; when
    the best of the last ``stall_checks`` samples no longer improves on
    the best before them by ``stall_tol`` (relative), the run stops.

    ``on_iteration`` (plus any process-wide subscriber from
    :mod:`repro.obs.telemetry`) receives one
    :class:`~repro.obs.telemetry.IterationStats` per iteration.
    Telemetry only *reads* values the solver already computed — it
    never touches the RNG stream, so an instrumented run returns a
    bit-identical ``x`` for the same seed.
    """
    watch = Stopwatch()
    rng = make_rng(seed)
    callbacks = iteration_callbacks(on_iteration)
    m = problem.num_paths
    k_rows = max(1, int(round(rows_fraction * m)))
    # Eq. (11)'s distribution is fixed for a given A, so build the
    # cumulative table once; each iteration then samples k'' rows with
    # one uniform draw + searchsorted instead of an O(m) choice() call.
    probabilities = kaczmarz_probabilities(problem)
    cumulative = np.cumsum(probabilities)
    cumulative[-1] = 1.0
    x = np.zeros(problem.num_gates) if x0 is None else x0.astype(float).copy()
    grad_prev = np.zeros_like(x)
    direction = np.zeros_like(x)
    history: list[float] = []
    history_iters: list[int] = []
    converged = False
    small_steps = 0
    iteration = 0
    best_objective = problem.objective(x)
    best_x = x.copy()
    grad_norm_hist = histogram("scg.grad_norm")
    for iteration in range(1, max_iter + 1):
        rows = np.searchsorted(cumulative, rng.random(k_rows), side="right")
        grad = problem.row_gradient(x, rows)
        norm = float(np.linalg.norm(grad))
        if norm == 0.0:
            converged = True
            break
        grad = grad / norm  # line 6: normalize g_k
        prev_norm_sq = float(grad_prev @ grad_prev)
        if prev_norm_sq > 0.0:
            beta = float(grad @ (grad - grad_prev)) / prev_norm_sq
            beta = max(beta, 0.0)  # PR+ restart keeps d a descent direction
        else:
            beta = 0.0
        direction = -grad + beta * direction
        direction_norm = float(np.linalg.norm(direction))
        if direction_norm == 0.0:
            converged = True
            break
        decay_clock = iteration_offset + iteration
        alpha = step / (direction_norm * (1.0 + step_decay * decay_clock))
        x_next = x + alpha * direction
        change = relative_change(x_next, x)
        x = x_next
        grad_prev = grad
        stalled = False
        sampled: float | None = None
        if iteration % objective_every == 0:
            sampled = current = problem.objective(x)
            history.append(current)
            history_iters.append(iteration)
            grad_norm_hist.observe(norm)
            if current < best_objective:
                best_objective = current
                best_x = x.copy()
            if len(history) > stall_checks:
                recent_best = min(history[-stall_checks:])
                earlier_best = min(history[:-stall_checks])
                if recent_best > earlier_best * (1.0 - stall_tol):
                    stalled = True
        if callbacks:
            stats = IterationStats(
                solver="scg", iteration=decay_clock, grad_norm=norm,
                step=alpha, beta=beta, objective=sampled,
                x_change=change, rows=k_rows,
            )
            for callback in callbacks:
                callback(stats)
        if stalled:
            converged = True
            break
        if change < eps:
            small_steps += 1
            if small_steps >= check_window:
                converged = True
                break
        else:
            small_steps = 0
    final = problem.objective(x)
    if final > best_objective:
        # Return the best sampled iterate, not wherever the jitter
        # happened to stop.
        x = best_x
        final = best_objective
    runtime = watch.elapsed()
    counter("solver.runs").inc()
    counter("solver.iterations").inc(iteration)
    histogram("solver.solve_seconds").observe(runtime)
    return SolverResult(
        x=x,
        solver="scg",
        iterations=iteration,
        converged=converged,
        runtime=runtime,
        objective=final,
        history=history,
        history_iters=history_iters,
        extras={"rows_per_iteration": k_rows},
    )
