"""Optimization solvers for the mGBA quadratic program.

Three solvers matching the paper's Table 4 columns plus a reference:

* :func:`~repro.mgba.solvers.gd.solve_gd` — full-batch gradient descent
  (the "GD + w/o RS" baseline).
* :func:`~repro.mgba.solvers.scg.solve_scg` — Algorithm 2: stochastic
  conjugate gradient with Kaczmarz row sampling ("SCG + w/o RS").
* :func:`~repro.mgba.solvers.sampling.solve_with_row_sampling` —
  Algorithm 1 wrapped around SCG ("SCG + RS").
* :func:`~repro.mgba.solvers.direct.solve_direct` — scipy LSQR with
  iterated penalty rows; the ground-truth reference for Fig. 3/4.
"""

from repro.mgba.solvers.base import SolverResult
from repro.mgba.solvers.gd import solve_gd
from repro.mgba.solvers.scg import solve_scg
from repro.mgba.solvers.sampling import solve_with_row_sampling
from repro.mgba.solvers.direct import solve_direct

__all__ = [
    "SolverResult",
    "solve_gd",
    "solve_scg",
    "solve_with_row_sampling",
    "solve_direct",
]
