"""Algorithm 1: uniform row sampling with a doubling schedule.

The optimal correction ``x*`` is extremely sparse (Fig. 3: ~96% of the
entries sit in [-0.01, 0.01]), so a small uniformly-sampled subset of
the rows pins it down.  Algorithm 1 starts from a tiny selection ratio
``r0``, solves the reduced problem with SCG, doubles the ratio, and
stops when the solution stops moving (relative change < eps_u).

Uniform — rather than leverage-score — sampling is justified exactly as
in the paper: leverage scores cost as much as solving the problem, and
timing matrices have low coherence (every row is a path touching tens
of gates out of thousands), so uniform rows approximate the spectrum
well [16][17].
"""

from __future__ import annotations

import numpy as np

from repro.mgba.problem import MGBAProblem
from repro.mgba.solvers.base import SolverResult, Stopwatch, relative_change
from repro.mgba.solvers.scg import solve_scg
from repro.obs.metrics import counter, histogram
from repro.utils.rng import make_rng


def solve_with_row_sampling(
    problem: MGBAProblem,
    r0: float = 1e-5,
    eps_u: float = 0.1,
    min_rows: int = 64,
    max_rounds: int = 32,
    seed=None,
    scg_kwargs: dict | None = None,
    on_iteration=None,
) -> SolverResult:
    """Run Algorithm 1 (uniform sampling + SCG inner solves).

    ``r0`` and ``eps_u`` are the paper's 1e-5 and 0.1.  ``min_rows``
    keeps the first reduced problem meaningful on designs far smaller
    than the paper's (r0 * m would round to zero rows); the doubling
    schedule is unaffected.

    Sampling is *incremental* (Fig. 5: "uniformly and incrementally
    random selection of equations"): rounds take growing prefixes of one
    fixed random permutation, so each round's problem nests the previous
    one and the solution-movement test measures real convergence rather
    than subset-resampling noise.  The inner SCG warm-starts from the
    previous round's solution.

    ``on_iteration`` is forwarded to every inner SCG solve, so a
    subscriber sees the concatenated per-iteration stream across
    rounds (``IterationStats.iteration`` restarts with each round's
    fresh step schedule; ``rows`` identifies the round's subset size).
    """
    watch = Stopwatch()
    rng = make_rng(seed)
    scg_kwargs = dict(scg_kwargs or {})
    scg_kwargs.setdefault("seed", rng)
    if on_iteration is not None:
        scg_kwargs.setdefault("on_iteration", on_iteration)
    # Inner rounds are probes, not final answers: sample the objective
    # often, call a stall early, and cap the iteration budget — the
    # doubling schedule (not any single round) carries convergence.
    scg_kwargs.setdefault("objective_every", 10)
    scg_kwargs.setdefault("stall_checks", 5)
    scg_kwargs.setdefault("stall_tol", 2e-3)
    scg_kwargs.setdefault("max_iter", 1200)
    m = problem.num_paths
    permutation = rng.permutation(m)
    ratio = r0
    x = np.zeros(problem.num_gates)
    rounds: list[dict] = []
    history: list[float] = []
    history_iters: list[int] = []
    total_iterations = 0
    converged = False
    for _ in range(max_rounds):
        rows_wanted = min(m, max(min_rows, int(round(ratio * m))))
        reduced = problem.subproblem(permutation[:rows_wanted])
        # Fresh step schedule per round: the enlarged problem must be
        # able to move the warm-started iterate; the objective-stall
        # stop inside SCG keeps each round short.
        inner = solve_scg(reduced, x0=x, **scg_kwargs)
        total_iterations += inner.iterations
        change = relative_change(inner.x, x)
        x = inner.x
        objective = problem.objective(x)
        history.append(objective)
        # x-axis for convergence plots: cumulative inner iterations
        # spent when this full-problem objective was sampled.
        history_iters.append(total_iterations)
        # The paper's row-count condition: m'' must exceed the number
        # of nonzero components of x*, else the reduced system is
        # underdetermined and its solution overfits the sampled rows.
        # x* is unknown, so the current iterate's support estimates it.
        support = int(np.count_nonzero(np.abs(x) > 1e-3))
        rounds.append({
            "rows": rows_wanted,
            "ratio": ratio,
            "change": change,
            "support": support,
            "objective": objective,
        })
        enough_rows = rows_wanted >= 2 * support
        if change < eps_u and enough_rows:
            converged = True
            break
        if rows_wanted >= m:
            # The whole problem has been solved; nothing left to double.
            converged = True
            break
        # Double the *row count*, not the nominal ratio alone — when the
        # min_rows floor is in force the paper's pure ratio-doubling
        # would wastefully re-run identical round sizes.
        ratio = max(ratio * 2.0, 2.0 * rows_wanted / m)
    runtime = watch.elapsed()
    counter("sampling.rounds").inc(len(rounds))
    histogram("sampling.round_rows").observe(
        rounds[-1]["rows"] if rounds else 0
    )
    return SolverResult(
        x=x,
        solver="scg+rs",
        iterations=total_iterations,
        converged=converged,
        runtime=runtime,
        objective=problem.objective(x),
        history=history,
        history_iters=history_iters,
        extras={"rounds": rounds},
    )
