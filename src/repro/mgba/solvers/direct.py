"""Direct reference solver: sparse LSQR with iterated penalty rows.

Solves ``min ||Ax - b||`` and then enforces the one-sided constraint
``Ax >= lower`` by re-solving with the violated rows duplicated at
weight sqrt(w) against their bound — a standard active-set penalty
iteration.  Used as ground truth for Fig. 3 (the sparsity histogram of
x*) and Fig. 4 (accuracy vs sampled rows), and as an accuracy yardstick
in solver tests.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import lsqr

from repro.mgba.problem import MGBAProblem
from repro.mgba.solvers.base import SolverResult, Stopwatch


def solve_direct(
    problem: MGBAProblem,
    max_outer: int = 8,
    damp: float = 1.0,
    atol: float = 1e-10,
    btol: float = 1e-10,
) -> SolverResult:
    """LSQR + penalty iteration for the constrained problem.

    ``damp`` adds a Tikhonov term that regularizes the path matrix —
    gates sharing all their fitted paths produce near-identical columns
    whose unregularized fit explodes into huge +/- pairs.  The default
    (1.0, against matrix entries of ~100 ps) costs <15% extra mse while
    keeping ``x`` physical and biased toward the sparse solution the
    paper observes in Fig. 3.
    """
    watch = Stopwatch()
    matrix = problem.matrix
    rhs = problem.rhs
    lower = problem.lower_bound
    weight = np.sqrt(problem.penalty)
    x = np.zeros(problem.num_gates)
    history: list[float] = []
    history_iters: list[int] = []
    iterations = 0
    for outer in range(max_outer):
        if outer == 0:
            stack_matrix = matrix
            stack_rhs = rhs
        else:
            violated = np.flatnonzero(matrix @ x < lower - 1e-12)
            if violated.size == 0:
                break
            stack_matrix = sparse.vstack(
                [matrix, matrix[violated] * weight]
            ).tocsr()
            stack_rhs = np.concatenate([rhs, lower[violated] * weight])
        result = lsqr(
            stack_matrix, stack_rhs, damp=damp, atol=atol, btol=btol
        )
        x = result[0]
        iterations += int(result[2])
        history.append(problem.objective(x))
        history_iters.append(iterations)
        if outer > 0 and np.all(matrix @ x >= lower - 1e-9):
            break
    return SolverResult(
        x=x,
        solver="direct",
        iterations=iterations,
        converged=True,
        runtime=watch.elapsed(),
        objective=problem.objective(x),
        history=history,
        history_iters=history_iters,
    )
