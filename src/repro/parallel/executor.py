"""Executor abstraction: serial / thread / process backends.

One small surface — ``Executor.map(fn, items)`` — behind which the
embarrassingly parallel axes of the system (per-corner STA, per-endpoint
PBA enumeration, per-design suite evaluation) fan out.  Three backends:

* :class:`SerialExecutor` — plain in-order loop, zero overhead, the
  reference semantics every other backend must reproduce bit-for-bit;
* :class:`ThreadExecutor` — ``ThreadPoolExecutor``; wins when workers
  release the GIL or the work is I/O-ish, loses nothing on correctness;
* :class:`ProcessExecutor` — ``ProcessPoolExecutor``; true CPU
  parallelism at the cost of pickling ``fn`` and each chunk both ways.

Determinism contract
--------------------
``map`` always returns results **in input order**, regardless of which
worker finished first: items are split into contiguous chunks, each
chunk's results come back tagged with its index, and the merge
reassembles them positionally.  Given a deterministic ``fn``, the
output is therefore bit-identical across backends and worker counts
(property-tested in ``tests/parallel``).

Worker-count resolution (first match wins):

1. the explicit ``workers=`` argument;
2. the process-wide default set by :func:`set_default_workers`
   (the CLI's global ``--workers`` flag);
3. the ``REPRO_WORKERS`` environment variable;
4. ``1`` (serial).

Backend resolution: explicit ``backend=`` argument, then the
``REPRO_PARALLEL_BACKEND`` environment variable, then ``"thread"``.
Inside a worker process the resolved count is clamped to 1 so nested
fan-out can never spawn pools-of-pools.

Every ``map`` call emits a ``parallel.map`` tracing span carrying the
backend, worker count, chunk count, and per-chunk wall seconds, with
one ``parallel.chunk`` child span per chunk built from worker-side
clock readings — so a Chrome trace of a parallel run shows the actual
overlap.  Failures inside a worker surface as
:class:`~repro.errors.ParallelError` with the chunk index, the failing
item's position, and the worker-side traceback (child processes cannot
reliably pickle exception objects back; the formatted traceback always
survives).
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.errors import ParallelError
from repro.obs.metrics import counter, histogram
from repro.obs.trace import Span, span

T = TypeVar("T")
R = TypeVar("R")

#: Recognized backend names, in documentation order.
BACKENDS = ("serial", "thread", "process")

#: Environment knobs (also honoured by the CLI and benches).
WORKERS_ENV = "REPRO_WORKERS"
BACKEND_ENV = "REPRO_PARALLEL_BACKEND"
MP_START_ENV = "REPRO_MP_START"

_default_workers: "int | None" = None


def set_default_workers(workers: "int | None") -> None:
    """Install a process-wide worker-count default (CLI ``--workers``).

    ``None`` clears the override, falling back to ``REPRO_WORKERS``.
    """
    global _default_workers
    if workers is not None and workers < 1:
        raise ParallelError(f"workers must be >= 1, got {workers}")
    _default_workers = workers


def _in_worker_process() -> bool:
    """True inside a multiprocessing child (never nest process pools)."""
    return multiprocessing.parent_process() is not None


def resolve_workers(workers: "int | None" = None) -> int:
    """Effective worker count: arg > CLI default > env > 1."""
    if workers is None:
        workers = _default_workers
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "")
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ParallelError(
                    f"{WORKERS_ENV} must be an integer, got {raw!r}"
                ) from None
    if workers is None:
        workers = 1
    if workers < 1:
        raise ParallelError(f"workers must be >= 1, got {workers}")
    if _in_worker_process():
        return 1
    return workers


def resolve_backend(backend: "str | None" = None) -> str:
    """Effective backend name: arg > env > ``"thread"``."""
    if backend is None:
        backend = os.environ.get(BACKEND_ENV, "") or "thread"
    if backend not in BACKENDS:
        raise ParallelError(
            f"unknown parallel backend {backend!r}; choose from {BACKENDS}"
        )
    return backend


def chunk_ranges(n_items: int, workers: int,
                 chunk_size: "int | None" = None) -> "list[range]":
    """Contiguous index chunks covering ``range(n_items)``, in order.

    By default one chunk per worker (sizes differ by at most one item),
    which minimizes per-chunk overhead — for the process backend each
    chunk pickles ``fn`` (often a bound method dragging an engine along)
    once.  Pass ``chunk_size`` for finer-grained load balancing when
    item costs are very uneven.
    """
    if n_items <= 0:
        return []
    if chunk_size is not None:
        if chunk_size < 1:
            raise ParallelError(f"chunk_size must be >= 1, got {chunk_size}")
        return [
            range(start, min(start + chunk_size, n_items))
            for start in range(0, n_items, chunk_size)
        ]
    n_chunks = max(1, min(workers, n_items))
    base, extra = divmod(n_items, n_chunks)
    ranges: "list[range]" = []
    start = 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        ranges.append(range(start, start + size))
        start += size
    return ranges


@dataclass
class _ChunkOutcome:
    """What one worker returns for one chunk (always picklable)."""

    index: int
    values: "list[Any]" = field(default_factory=list)
    error: "str | None" = None          #: one-line summary
    child_traceback: str = ""           #: worker-side formatted traceback
    exception: "BaseException | None" = None  #: thread backend only
    start: float = 0.0                  #: worker perf_counter at chunk start
    end: float = 0.0
    cpu_seconds: float = 0.0

    @property
    def seconds(self) -> float:
        return self.end - self.start


def _run_chunk(fn: "Callable[[Any], Any]", index: int,
               items: "Sequence[Any]",
               ship_exception: bool = False) -> _ChunkOutcome:
    """Worker-side chunk body: run ``fn`` over ``items``, never raise.

    Exceptions are captured into the outcome so they cross the process
    boundary as plain strings; ``ship_exception`` additionally keeps the
    live exception object (safe for the thread/serial backends only).
    """
    outcome = _ChunkOutcome(index=index)
    outcome.start = time.perf_counter()
    cpu_start = time.process_time()
    position = 0
    try:
        for position, item in enumerate(items):
            outcome.values.append(fn(item))
    except Exception as exc:
        outcome.values = []
        outcome.error = (
            f"{type(exc).__name__}: {exc} "
            f"(chunk {index}, item {position} of {len(items)})"
        )
        outcome.child_traceback = traceback.format_exc()
        if ship_exception:
            outcome.exception = exc
    outcome.end = time.perf_counter()
    outcome.cpu_seconds = time.process_time() - cpu_start
    return outcome


def _run_chunk_job(job: "tuple") -> _ChunkOutcome:
    """Star-call shim so pools can ``map`` over prepared job tuples."""
    fn, index, items, ship_exception = job
    return _run_chunk(fn, index, items, ship_exception)


class Executor:
    """Base class: chunked, order-preserving, span-emitting ``map``."""

    backend = "serial"

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise ParallelError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"

    @property
    def is_serial(self) -> bool:
        """True when ``map`` degenerates to an inline in-order loop."""
        return self.backend == "serial" or self.workers <= 1

    # ------------------------------------------------------------------
    # The one public operation
    # ------------------------------------------------------------------
    def map(self, fn: "Callable[[T], R]", items: "Iterable[T]", *,
            chunk_size: "int | None" = None,
            label: "str | None" = None) -> "list[R]":
        """``[fn(x) for x in items]`` distributed over the workers.

        Results come back in input order whatever the completion order,
        so a deterministic ``fn`` yields bit-identical output on every
        backend.  A worker failure raises :class:`ParallelError` with
        the chunk index and worker-side traceback.
        """
        materialized = list(items)
        chunks = chunk_ranges(len(materialized), self.workers, chunk_size)
        with span(
            "parallel.map",
            label=label or getattr(fn, "__qualname__", str(fn)),
            backend=self.backend,
            workers=self.workers,
            items=len(materialized),
            chunks=len(chunks),
        ) as region:
            if not chunks:
                return []
            outcomes = self._submit(fn, materialized, chunks)
            self._record(region, outcomes)
            results: "list[R]" = []
            for outcome in outcomes:
                if outcome.error is not None:
                    raise ParallelError(
                        f"parallel.map[{self.backend}] worker failed: "
                        f"{outcome.error}\n--- worker traceback ---\n"
                        f"{outcome.child_traceback}",
                        chunk=outcome.index,
                        backend=self.backend,
                        child_traceback=outcome.child_traceback,
                    ) from outcome.exception
                results.extend(outcome.values)
        return results

    # ------------------------------------------------------------------
    # Backend hooks
    # ------------------------------------------------------------------
    def _submit(self, fn, items, chunks) -> "list[_ChunkOutcome]":
        return [
            _run_chunk(fn, index, [items[i] for i in chunk],
                       ship_exception=True)
            for index, chunk in enumerate(chunks)
        ]

    def _record(self, region: Span, outcomes: "list[_ChunkOutcome]") -> None:
        """Attach per-chunk telemetry to the ``parallel.map`` span."""
        chunk_seconds = [round(o.seconds, 6) for o in outcomes]
        region.set(chunk_seconds=chunk_seconds)
        seconds_histogram = histogram("parallel.chunk_seconds")
        for outcome in outcomes:
            seconds_histogram.observe(outcome.seconds)
            child = Span(
                name="parallel.chunk",
                attrs={
                    "chunk": outcome.index,
                    "items": len(outcome.values),
                    "backend": self.backend,
                },
                start=outcome.start,
                end=outcome.end,
                cpu_start=0.0,
                cpu_end=outcome.cpu_seconds,
            )
            if outcome.error is not None:
                child.attrs["items"] = 0
                child.error = outcome.error
            region.children.append(child)
        counter("parallel.maps").inc()
        counter("parallel.items").inc(
            sum(len(o.values) for o in outcomes)
        )


class SerialExecutor(Executor):
    """In-order inline execution — the reference semantics."""

    backend = "serial"

    def __init__(self, workers: int = 1):
        super().__init__(1)


class ThreadExecutor(Executor):
    """``ThreadPoolExecutor``-backed chunks; shared-memory, GIL-bound."""

    backend = "thread"

    def _submit(self, fn, items, chunks) -> "list[_ChunkOutcome]":
        jobs = [
            (fn, index, [items[i] for i in chunk], True)
            for index, chunk in enumerate(chunks)
        ]
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(_run_chunk_job, jobs))


def _mp_context() -> multiprocessing.context.BaseContext:
    """The configured multiprocessing start method (fork where possible).

    ``fork`` keeps chunk dispatch cheap (no re-import, engines shared
    copy-on-write until first write); ``REPRO_MP_START`` overrides for
    platforms or runtimes where fork is unsafe.
    """
    method = os.environ.get(MP_START_ENV, "")
    if not method:
        method = (
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
    try:
        return multiprocessing.get_context(method)
    except ValueError:
        raise ParallelError(
            f"{MP_START_ENV}={method!r} is not a valid start method "
            f"(choose from {multiprocessing.get_all_start_methods()})"
        ) from None


class ProcessExecutor(Executor):
    """``ProcessPoolExecutor``-backed chunks; true CPU parallelism.

    ``fn`` and every chunk cross the process boundary via pickle — see
    ``docs/parallelism.md`` for what that allows (module-level
    functions, bound methods of picklable objects, ``functools.partial``
    over either) and what it costs on tiny designs.
    """

    backend = "process"

    def _submit(self, fn, items, chunks) -> "list[_ChunkOutcome]":
        jobs = [
            (fn, index, [items[i] for i in chunk], False)
            for index, chunk in enumerate(chunks)
        ]
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(jobs)),
                mp_context=_mp_context(),
            ) as pool:
                return list(pool.map(_run_chunk_job, jobs))
        except BrokenProcessPool as exc:
            raise ParallelError(
                f"parallel.map[process] worker died abruptly "
                f"(signal/OOM?): {exc}",
                backend=self.backend,
            ) from exc


_EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def get_executor(workers: "int | None" = None,
                 backend: "str | None" = None) -> Executor:
    """Build an executor from explicit args + environment defaults.

    ``workers`` resolving to 1 always yields a :class:`SerialExecutor`
    whatever the backend, so unconfigured runs stay zero-overhead and
    bit-for-bit equal to the pre-parallel code path.
    """
    count = resolve_workers(workers)
    if count <= 1:
        return SerialExecutor()
    return _EXECUTORS[resolve_backend(backend)](count)


def default_executor() -> Executor:
    """The environment-configured executor (serial unless opted in)."""
    return get_executor()
