"""Deprecated alias: design-suite fan-out moved to ``repro.service.suite``.

Suite evaluation became the service layer's ``evaluate`` query, so its
implementation lives with the other batched-query machinery in
:mod:`repro.service.suite`.  Importing from this module keeps working
for one release and re-exports the canonical objects; see
``docs/api.md`` for the deprecation policy.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.parallel.fanout moved to repro.service.suite; "
    "this alias module will be removed in the next release",
    DeprecationWarning,
    stacklevel=2,
)

from repro.service.suite import (  # noqa: E402
    DesignReport,
    evaluate_design,
    evaluate_suite,
)

__all__ = ["DesignReport", "evaluate_design", "evaluate_suite"]
