"""Parallel execution layer for the STA / PBA / mGBA hot paths.

Public surface (see ``docs/parallelism.md`` for the tour):

* :mod:`repro.parallel.executor` — the serial / thread / process
  :class:`Executor` backends behind ``REPRO_WORKERS`` and the CLI's
  global ``--workers`` flag.

The finer axes live next to the code they accelerate:
``MultiCornerAnalysis.update_all`` (one corner per worker),
``enumerate_worst_paths`` / ``PBAEngine.analyze`` (per-endpoint and
per-path sharding), and :class:`~repro.context.RunContext` for the
flow and service.

Design-suite fan-out (``evaluate_suite`` and friends) moved to
:mod:`repro.service.suite`; importing it from here still works for one
release but emits a :class:`DeprecationWarning` (see ``docs/api.md``).
"""

import warnings

from repro.parallel.executor import (
    BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    chunk_ranges,
    default_executor,
    get_executor,
    resolve_backend,
    resolve_workers,
    set_default_workers,
)

__all__ = [
    "BACKENDS",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "chunk_ranges",
    "default_executor",
    "get_executor",
    "resolve_backend",
    "resolve_workers",
    "set_default_workers",
    # deprecated re-exports (moved to repro.service.suite)
    "DesignReport",
    "evaluate_design",
    "evaluate_suite",
]

#: Names that moved to :mod:`repro.service.suite` in the service-layer
#: redesign.  Resolved lazily so ``import repro.parallel`` stays silent;
#: only *using* a moved name warns.
_MOVED = ("DesignReport", "evaluate_design", "evaluate_suite")


def __getattr__(name):
    if name in _MOVED:
        warnings.warn(
            f"repro.parallel.{name} moved to repro.service.suite.{name}; "
            "the repro.parallel alias will be removed in the next release",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.service import suite

        return getattr(suite, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
