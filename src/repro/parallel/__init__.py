"""Parallel execution layer for the STA / PBA / mGBA hot paths.

Public surface (see ``docs/parallelism.md`` for the tour):

* :mod:`repro.parallel.executor` — the serial / thread / process
  :class:`Executor` backends behind ``REPRO_WORKERS`` and the CLI's
  global ``--workers`` flag;
* :mod:`repro.parallel.fanout` — design-suite fan-out
  (:func:`evaluate_suite`), the coarsest parallel axis.

The finer axes live next to the code they accelerate:
``MultiCornerAnalysis.update_all`` (one corner per worker),
``enumerate_worst_paths`` / ``PBAEngine.analyze`` (per-endpoint and
per-path sharding), and ``MGBAConfig(workers=...)`` for the flow.
"""

from repro.parallel.executor import (
    BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    chunk_ranges,
    default_executor,
    get_executor,
    resolve_backend,
    resolve_workers,
    set_default_workers,
)
from repro.parallel.fanout import DesignReport, evaluate_design, evaluate_suite

__all__ = [
    "BACKENDS",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "chunk_ranges",
    "default_executor",
    "get_executor",
    "resolve_backend",
    "resolve_workers",
    "set_default_workers",
    "DesignReport",
    "evaluate_design",
    "evaluate_suite",
]
