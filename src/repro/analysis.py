"""Pessimism analysis: where GBA lies, and by how much.

The report every user of this framework wants first: per endpoint, the
GBA slack, the golden (PBA) slack, the pessimism between them, and
whether the endpoint is a *phantom violation* — failing under GBA but
actually met.  Phantom violations are the direct cost of pessimism: a
GBA-driven flow spends area, leakage, and runtime fixing them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.pba.engine import PBAEngine
from repro.timing.sta import STAEngine


@dataclass(frozen=True)
class EndpointPessimism:
    """One endpoint's GBA-vs-golden comparison."""

    name: str
    gba_slack: float
    golden_slack: float

    @property
    def pessimism(self) -> float:
        """Golden minus GBA slack (>= 0; inf for all-false endpoints)."""
        return self.golden_slack - self.gba_slack

    @property
    def is_phantom_violation(self) -> bool:
        """Failing under GBA, actually met."""
        return self.gba_slack < 0.0 <= self.golden_slack

    @property
    def is_real_violation(self) -> bool:
        """Failing under golden timing too."""
        return self.golden_slack < 0.0


@dataclass(frozen=True)
class PessimismSummary:
    """Aggregates over one design's endpoints."""

    endpoints: int
    gba_violations: int
    real_violations: int
    phantom_violations: int
    mean_pessimism: float
    max_pessimism: float

    @property
    def phantom_fraction(self) -> float:
        """Share of GBA violations that are phantom."""
        if self.gba_violations == 0:
            return 0.0
        return self.phantom_violations / self.gba_violations


def pessimism_report(engine: STAEngine,
                     k_paths: int = 16) -> list[EndpointPessimism]:
    """Per-endpoint GBA vs golden comparison, worst GBA slack first.

    The engine must be a clean GBA engine (weights are cleared); golden
    slacks come from per-endpoint PBA over the ``k_paths`` worst paths.
    """
    engine.clear_gate_weights()
    engine.update_timing()
    pba = PBAEngine(engine)
    gba = {s.node: s for s in engine.setup_slacks()}
    rows: list[EndpointPessimism] = []
    for endpoint in engine.graph.endpoint_nodes():
        try:
            golden = pba.golden_endpoint_slack(endpoint, k=k_paths)
        except Exception:
            continue
        rows.append(EndpointPessimism(
            name=gba[endpoint].name,
            gba_slack=gba[endpoint].slack,
            golden_slack=golden,
        ))
    rows.sort(key=lambda r: r.gba_slack)
    return rows


def summarize_pessimism(rows: "list[EndpointPessimism]") -> PessimismSummary:
    """Aggregate a pessimism report."""
    finite = [r.pessimism for r in rows if math.isfinite(r.pessimism)]
    return PessimismSummary(
        endpoints=len(rows),
        gba_violations=sum(1 for r in rows if r.gba_slack < 0),
        real_violations=sum(1 for r in rows if r.is_real_violation),
        phantom_violations=sum(
            1 for r in rows if r.is_phantom_violation
        ),
        mean_pessimism=sum(finite) / len(finite) if finite else 0.0,
        max_pessimism=max(finite) if finite else 0.0,
    )


def format_pessimism_report(rows: "list[EndpointPessimism]",
                            max_rows: int = 20) -> str:
    """Human-readable pessimism table plus summary block."""
    summary = summarize_pessimism(rows)
    lines = [
        f"{'endpoint':<24} {'GBA slack':>11} {'golden':>11} "
        f"{'pessimism':>11}  verdict",
        "-" * 72,
    ]
    for row in rows[:max_rows]:
        if row.is_phantom_violation:
            verdict = "PHANTOM violation"
        elif row.is_real_violation:
            verdict = "real violation"
        else:
            verdict = "met"
        golden = (
            f"{row.golden_slack:>11.1f}"
            if math.isfinite(row.golden_slack) else f"{'inf':>11}"
        )
        pess = (
            f"{row.pessimism:>11.1f}"
            if math.isfinite(row.pessimism) else f"{'inf':>11}"
        )
        lines.append(
            f"{row.name:<24} {row.gba_slack:>11.1f} {golden} {pess}"
            f"  {verdict}"
        )
    if len(rows) > max_rows:
        lines.append(f"... ({len(rows) - max_rows} more endpoints)")
    lines += [
        "",
        f"endpoints:            {summary.endpoints}",
        f"GBA violations:       {summary.gba_violations}",
        f"  real:               {summary.real_violations}",
        f"  phantom:            {summary.phantom_violations} "
        f"({summary.phantom_fraction:.0%} of GBA violations)",
        f"pessimism mean / max: {summary.mean_pessimism:.1f} / "
        f"{summary.max_pessimism:.1f} ps",
    ]
    return "\n".join(lines)
