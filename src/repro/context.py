"""RunContext — the one place run-wide knobs are resolved.

Before this module existed, execution knobs were scattered: worker
counts lived on ``MGBAConfig.workers`` *and* ``REPRO_WORKERS`` *and*
the CLI's ``--workers``; the parallel backend on
``MGBAConfig.parallel_backend`` *and* ``REPRO_PARALLEL_BACKEND``;
solver epsilons on ``MGBAConfig`` and ad-hoc keyword arguments.  A
:class:`RunContext` gathers them into one frozen object that is
threaded through :class:`~repro.mgba.flow.MGBAFlow`,
:func:`~repro.service.suite.evaluate_suite`, the
:class:`~repro.service.engine.TimingService`, and every ``repro.api``
facade call.

Environment variables are resolved in exactly one place —
:meth:`RunContext.from_env` — into concrete values; everything
downstream reads the context, never ``os.environ``.  Code that builds
a context directly (tests, library callers) therefore gets fully
deterministic behavior regardless of the environment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

from repro.parallel.executor import (
    Executor,
    get_executor,
    resolve_backend,
    resolve_workers,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mgba.flow import MGBAConfig

#: Environment knobs the context resolves (see :meth:`RunContext.from_env`).
CACHE_ENV = "REPRO_CACHE"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_FALSEY = frozenset({"0", "false", "no", "off"})


@dataclass(frozen=True)
class RunContext:
    """Every run-wide knob of one timing/fit invocation, in one place.

    Attributes
    ----------
    workers / backend:
        Parallel fan-out configuration (see ``docs/parallelism.md``).
        ``None`` defers to the process-wide default and environment at
        :meth:`executor` time; :meth:`from_env` snapshots them into
        concrete values instead.
    solver / seed / epsilon / penalty:
        mGBA fitting knobs (paper Eq. 5-6 and §4.1).
    k_per_endpoint / max_paths / recalc_slew:
        Path selection and golden-PBA fidelity knobs (§3.2).
    pba_k:
        Paths per endpoint for golden endpoint slacks (PBA queries).
    cache / cache_dir / cache_memory_entries / cache_disk_bytes:
        Artifact-cache configuration (see ``docs/service.md``).
    """

    workers: "int | None" = None
    backend: "str | None" = None
    solver: str = "scg+rs"
    seed: "int | None" = 0
    epsilon: float = 0.05
    penalty: float = 10.0
    k_per_endpoint: int = 20
    max_paths: int = 200_000
    recalc_slew: bool = False
    pba_k: int = 64
    cache: bool = True
    cache_dir: str = ".repro_cache"
    cache_memory_entries: int = 256
    cache_disk_bytes: int = 256 * 1024 * 1024

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls, **overrides: Any) -> "RunContext":
        """Resolve every environment default into a concrete context.

        This is the *single* place ``REPRO_WORKERS``,
        ``REPRO_PARALLEL_BACKEND``, ``REPRO_CACHE``, and
        ``REPRO_CACHE_DIR`` are read for the service/facade stack;
        explicit ``overrides`` win over the environment.
        """
        resolved: dict[str, Any] = {}
        resolved["workers"] = (
            overrides.pop("workers", None)
            if "workers" in overrides else resolve_workers(None)
        )
        if resolved["workers"] is None:
            resolved["workers"] = resolve_workers(None)
        resolved["backend"] = overrides.pop("backend", None) \
            or resolve_backend(None)
        raw_cache = os.environ.get(CACHE_ENV, "")
        if raw_cache:
            resolved["cache"] = raw_cache.strip().lower() not in _FALSEY
        raw_dir = os.environ.get(CACHE_DIR_ENV, "")
        if raw_dir:
            resolved["cache_dir"] = raw_dir
        resolved.update(overrides)
        return cls(**resolved)

    @classmethod
    def from_config(cls, config: "MGBAConfig") -> "RunContext":
        """Lift a legacy :class:`MGBAConfig` into a context.

        The bridge that keeps ``MGBAFlow(MGBAConfig(...))`` working
        unchanged while the flow internally runs off a context.
        """
        return cls(
            workers=config.workers,
            backend=config.parallel_backend,
            solver=config.solver,
            seed=config.seed,
            epsilon=config.epsilon,
            penalty=config.penalty,
            k_per_endpoint=config.k_per_endpoint,
            max_paths=config.max_paths,
            recalc_slew=config.recalc_slew,
        )

    def replace(self, **overrides: Any) -> "RunContext":
        """A copy with fields replaced (frozen-dataclass convenience)."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # Derived objects
    # ------------------------------------------------------------------
    def executor(self) -> Executor:
        """The executor every parallel stage under this context shares."""
        return get_executor(self.workers, self.backend)

    def mgba_config(self) -> "MGBAConfig":
        """The equivalent flow config (for code that still wants one)."""
        from repro.mgba.flow import MGBAConfig

        return MGBAConfig(
            k_per_endpoint=self.k_per_endpoint,
            max_paths=self.max_paths,
            epsilon=self.epsilon,
            penalty=self.penalty,
            solver=self.solver,
            recalc_slew=self.recalc_slew,
            seed=self.seed,
            workers=self.workers,
            parallel_backend=self.backend,
        )

    def fit_fingerprint(self) -> "tuple[Any, ...]":
        """The fields a fitted result depends on (cache-key component).

        Deliberately excludes workers/backend/cache knobs: parallelism
        is bit-transparent (PR 2's determinism contract), so the same
        fit fingerprint must hit the same cached artifact at any worker
        count.
        """
        return (
            self.solver, self.seed, self.epsilon, self.penalty,
            self.k_per_endpoint, self.max_paths, self.recalc_slew,
        )
