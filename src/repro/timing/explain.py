"""Slack provenance and pessimism attribution — the ``explain`` layer.

A slack number answers *whether* an endpoint meets timing; this module
answers *why*.  :func:`explain_endpoint` decomposes one endpoint's
worst (late) path into per-arc rows — base delay, applied derate,
derate provenance, cumulative arrival — and attributes, per stage, how
much GBA pessimism the arc carries relative to the paper's path-based
reference and how much of it an installed mGBA correction removed.
:func:`explain_design` aggregates the same decomposition over every
endpoint into a design-level pessimism accounting summary (total /
removed / residual, top-K endpoints and arcs by residual).

Two contracts make the output trustworthy rather than descriptive:

* **Exactness** — each row's ``arrival`` is the running sum
  ``arrival[src] + base_delay * derate`` along the traced argmax path,
  which is the *same* IEEE-754 expression both propagation kernels
  max-reduce.  The final row's arrival is therefore bit-identical to
  ``state.arrival_late[endpoint]`` and ``required - arrival``
  bit-identical to the engine's reported slack (gated in
  ``tests/timing/test_explain.py``).
* **Kernel independence** — arc classification is gathered from the
  levelized layout's per-edge arrays (``data_eids`` / ``data_depths``
  / ``data_gate_cols`` / ``clock_eids``) when the vector kernel is
  active, and from :func:`~repro.timing.propagation.classify_edge`
  under the scalar oracle; both describe the same topology, so an
  explanation is identical (``==`` on the frozen records) under either
  kernel.

The per-stage pessimism model mirrors :class:`repro.pba.engine.PBAEngine`
with its defaults (``variation="table"``, ``recalc_slew=False``): the
path-based derate is ``table.derate(path_depth, path_distance)`` on
data cells, the domain derate elsewhere, plus the exact CRPR credit on
the launch/capture clock pair.  Derate provenance strings follow
``docs/formats.md``: ``aocv:<table-tag>/depth=<k>`` for a table-driven
GBA derate, ``mgba:fitted w=<weight>/depth=<k>`` when a fitted weight
multiplies it, and ``default`` for flat clock/plain/no-table factors.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass
from typing import Any, Callable

from repro.errors import TimingError
from repro.obs.metrics import counter, gauge
from repro.obs.trace import span
from repro.timing.propagation import EdgeDomain, classify_edge
from repro.timing.report import trace_worst_path
from repro.timing.slack import EndpointSlack
from repro.timing.sta import STAEngine


@dataclass(frozen=True)
class ArcRow:
    """One arc of an explained path, with exact attribution.

    ``delay`` is ``base_delay * derate`` — the very increment the
    propagation added — and ``arrival`` the running (bit-identical)
    arrival at ``dst``.  ``pessimism`` is the arc's GBA−PBA delta under
    plain GBA derating, split into ``removed`` (reclaimed by the
    installed mGBA weight, 0 on a clean engine) and ``residual``
    (still on the books after correction).
    """

    edge: int
    src: str
    dst: str
    domain: str
    base_delay: float
    derate: float
    delay: float
    arrival: float
    provenance: str
    gba_derate: float
    pba_derate: float
    pessimism: float
    removed: float
    residual: float


@dataclass(frozen=True)
class PathExplanation:
    """One endpoint's worst path, fully attributed.

    ``slack`` / ``arrival`` / ``required`` are bit-identical to the
    engine's :class:`~repro.timing.slack.EndpointSlack`; ``crpr_credit``
    is the exact launch/capture common-clock credit a path-based
    analysis would add (GBA grants zero, so it counts as pessimism).
    """

    endpoint: str
    node: int
    slack: float
    arrival: float
    required: float
    crpr_credit: float
    depth: int
    distance: float
    pessimism: float
    removed: float
    residual: float
    rows: "tuple[ArcRow, ...]"

    def to_dict(self) -> "dict[str, Any]":
        return asdict(self)


@dataclass(frozen=True)
class PessimismSummary:
    """Design-level pessimism accounting over every endpoint's worst path.

    ``pessimism`` is the total GBA−PBA gap, ``removed`` the amount the
    installed fitted derates gave back, ``residual`` what remains, and
    ``crpr`` the portion of the total owed to clock-reconvergence
    pessimism.  ``top_endpoints`` / ``top_arcs`` rank residual
    pessimism — where a designer (or the fitter) should look next.
    """

    endpoints: int
    arcs: int
    pessimism: float
    removed: float
    residual: float
    crpr: float
    top_endpoints: "tuple[tuple[str, float], ...]"
    top_arcs: "tuple[tuple[str, float], ...]"


@dataclass(frozen=True)
class DesignExplanation:
    """The design-wide explain record: accounting plus worst-path detail."""

    design: str
    summary: PessimismSummary
    paths: "tuple[PathExplanation, ...]"

    def to_dict(self) -> "dict[str, Any]":
        return asdict(self)


def _table_tag(table) -> str:
    """Short content tag of a derating table (for provenance strings)."""
    from repro.aocv.table import write_aocv

    return hashlib.sha256(write_aocv(table).encode()).hexdigest()[:8]


def arc_classifier(engine: STAEngine) \
        -> "Callable[[Any], tuple[EdgeDomain, int, str | None]]":
    """``edge -> (domain, gba_depth, gate)`` for the engine's kernel.

    Under the vector kernel the classification is gathered from the
    levelized layout's per-edge arrays — no scalar re-classification
    runs — while the scalar oracle classifies each edge directly.
    Both views are built from the same topology, so they agree exactly
    (asserted by the kernel-identity test).
    """
    if engine.kernel == "vector":
        layout = engine._ensure_layout()
        by_edge: "dict[int, tuple[EdgeDomain, int, str | None]]" = {}
        for eid in layout.clock_eids.tolist():
            by_edge[eid] = (EdgeDomain.CLOCK, 0, None)
        for eid, depth, col in zip(
            layout.data_eids.tolist(),
            layout.data_depths.tolist(),
            layout.data_gate_cols.tolist(),
        ):
            by_edge[eid] = (
                EdgeDomain.DATA_CELL, int(depth), layout.gates[col]
            )

        def from_layout(edge):
            return by_edge.get(edge.id, (EdgeDomain.PLAIN, 0, edge.gate))

        return from_layout

    graph, depths = engine.graph, engine.gba_depths

    def from_graph(edge):
        domain = classify_edge(graph, edge)
        if domain is EdgeDomain.DATA_CELL:
            return domain, depths.get(edge.gate, 1), edge.gate
        return domain, 0, edge.gate

    return from_graph


def _path_distance(engine: STAEngine, node_ids: "list[int]") -> float:
    """AOCV distance of a traced path: bbox half-perimeter of its anchors."""
    placement = engine.placement
    if placement is None:
        return 0.0
    graph = engine.graph
    anchors: "list[str]" = []
    seen: "set[str]" = set()
    for node_id in node_ids:
        ref = graph.node(node_id).ref
        name = ref.gate if ref.gate is not None else ref.pin
        if name not in seen and placement.has(name):
            seen.add(name)
            anchors.append(name)
    if not anchors:
        return 0.0
    return placement.bbox_half_perimeter(anchors)


def _resolve_endpoint(engine: STAEngine, endpoint: "int | str",
                      slacks: "list[EndpointSlack]") -> EndpointSlack:
    if isinstance(endpoint, str):
        for item in slacks:
            if item.name == endpoint:
                return item
        raise TimingError(f"no endpoint named {endpoint!r}")
    for item in slacks:
        if item.node == endpoint:
            return item
    raise TimingError(f"node {endpoint} is not a constrained endpoint")


def explain_endpoint(engine: STAEngine,
                     endpoint: "int | str") -> PathExplanation:
    """Attribute one endpoint's worst-path slack arc by arc.

    ``endpoint`` is a timing node id or an endpoint pin name (as
    reported by ``setup_slacks``).  The returned record's arrival and
    slack are bit-identical to the engine's reported values, and the
    record itself is identical under either propagation kernel.
    """
    engine.ensure_timing()
    slacks = engine.setup_slacks()
    target = _resolve_endpoint(engine, endpoint, slacks)
    with span("explain.endpoint", endpoint=target.name) as exp_span:
        explanation = _explain_resolved(engine, target)
        exp_span.set(arcs=len(explanation.rows))
    counter("explain.endpoints").inc()
    counter("explain.arcs").inc(len(explanation.rows))
    return explanation


def _explain_resolved(engine: STAEngine,
                      target: EndpointSlack) -> PathExplanation:
    graph, state = engine.graph, engine.state
    config = engine.config
    table = config.derating_table
    settings = engine.derate_settings()
    classify = arc_classifier(engine)
    weights = engine.weights
    table_tag = _table_tag(table) if table is not None else ""

    edge_ids = trace_worst_path(graph, state, target.node)
    node_ids = [graph.edge(edge_ids[0]).src] if edge_ids else [target.node]
    for eid in edge_ids:
        node_ids.append(graph.edge(eid).dst)

    # The launch CK pin is the last clock-tree node the traced path
    # passes through (None for port-launched paths); PBA's path-local
    # AOCV distance anchors at the launch flop, not the clock buffers,
    # so the data portion starts there too.
    launch_ck = None
    launch_idx = 0
    for idx, node_id in enumerate(node_ids):
        if graph.node(node_id).is_clock_tree:
            launch_ck = node_id
            launch_idx = idx

    # PBA's path-specific derate ingredients (table model, GBA slews).
    depth = sum(
        1 for eid in edge_ids
        if classify(graph.edge(eid))[0] is EdgeDomain.DATA_CELL
    )
    distance = _path_distance(engine, node_ids[launch_idx:])
    if table is not None and depth > 0:
        pba_data_derate = table.derate(depth, distance)
    else:
        pba_data_derate = config.flat_derate_late

    # The exact CRPR credit on this path's launch/capture clock pair.
    info = graph.endpoints.get(target.node)
    capture_ck = info.ck_node if info is not None else None
    crpr_credit = engine.crpr.credit(launch_ck, capture_ck)

    rows: "list[ArcRow]" = []
    arrival = float(state.arrival_late[node_ids[0]])
    for eid in edge_ids:
        edge = graph.edge(eid)
        domain, gba_depth, gate = classify(edge)
        base = float(edge.delay)
        derate = float(state.derate_late[eid])
        if domain is EdgeDomain.CLOCK:
            gba_derate = settings.clock_late
            pba_derate = settings.clock_late
            provenance = "default"
        elif domain is EdgeDomain.DATA_CELL:
            if table is not None:
                gba_derate = table.derate(gba_depth, settings.gba_distance)
            else:
                gba_derate = settings.flat_late
            pba_derate = pba_data_derate
            weight = weights.get(gate, 1.0) if gate is not None else 1.0
            if weight != 1.0:
                provenance = f"mgba:fitted w={weight:.6g}/depth={gba_depth}"
            elif table is not None:
                provenance = f"aocv:{table_tag}/depth={gba_depth}"
            else:
                provenance = "default"
        else:
            gba_derate = 1.0
            pba_derate = derate
            provenance = "default"
        # The exact propagated increment: same expression, same order
        # of operations as relax_node / the level sweep.
        delay = base * float(state.derate_late[eid])
        arrival = arrival + delay
        gba_raw_delay = base * gba_derate
        pba_delay = base * pba_derate
        rows.append(ArcRow(
            edge=eid,
            src=str(graph.node(edge.src).ref),
            dst=str(graph.node(edge.dst).ref),
            domain=domain.value,
            base_delay=base,
            derate=derate,
            delay=delay,
            arrival=arrival,
            provenance=provenance,
            gba_derate=float(gba_derate),
            pba_derate=float(pba_derate),
            pessimism=gba_raw_delay - pba_delay,
            removed=gba_raw_delay - delay,
            residual=delay - pba_delay,
        ))

    slack = target.required - arrival
    pessimism = sum(r.pessimism for r in rows) + crpr_credit
    removed = sum(r.removed for r in rows)
    residual = sum(r.residual for r in rows) + crpr_credit
    return PathExplanation(
        endpoint=target.name,
        node=target.node,
        slack=slack,
        arrival=arrival,
        required=target.required,
        crpr_credit=crpr_credit,
        depth=depth,
        distance=distance,
        pessimism=pessimism,
        removed=removed,
        residual=residual,
        rows=tuple(rows),
    )


def explain_design(engine: STAEngine, top_k: int = 10,
                   endpoint: "int | str | None" = None) -> DesignExplanation:
    """Design-wide pessimism accounting over every endpoint's worst path.

    ``paths`` carries the full per-arc detail for the ``top_k``
    worst-slack endpoints; the summary's top-K lists rank *residual*
    pessimism across all endpoints and arcs.  With ``endpoint`` the
    record narrows to that one endpoint (summary included) — the same
    schema either way.  Records the ``explain.pessimism_removed`` /
    ``explain.pessimism_residual`` gauges so bench history can trend
    attribution drift.
    """
    engine.ensure_timing()
    with span("explain.design", design=engine.netlist.name) as exp_span:
        slacks = sorted(
            engine.setup_slacks(), key=lambda s: (s.slack, s.node)
        )
        if endpoint is not None:
            slacks = [_resolve_endpoint(engine, endpoint, slacks)]
        explanations = [_explain_resolved(engine, s) for s in slacks]
        total_arcs = sum(len(e.rows) for e in explanations)
        pessimism = sum(e.pessimism for e in explanations)
        removed = sum(e.removed for e in explanations)
        residual = sum(e.residual for e in explanations)
        crpr = sum(e.crpr_credit for e in explanations)
        by_residual = sorted(
            explanations, key=lambda e: (-e.residual, e.endpoint)
        )
        arc_rows = [
            (f"{row.src} -> {row.dst}", row.residual)
            for e in explanations for row in e.rows
            if row.domain == EdgeDomain.DATA_CELL.value
        ]
        arc_rows.sort(key=lambda item: (-item[1], item[0]))
        summary = PessimismSummary(
            endpoints=len(explanations),
            arcs=total_arcs,
            pessimism=pessimism,
            removed=removed,
            residual=residual,
            crpr=crpr,
            top_endpoints=tuple(
                (e.endpoint, e.residual) for e in by_residual[:top_k]
            ),
            top_arcs=tuple(arc_rows[:top_k]),
        )
        exp_span.set(endpoints=len(explanations), arcs=total_arcs)
    counter("explain.endpoints").inc(len(explanations))
    counter("explain.arcs").inc(total_arcs)
    gauge("explain.pessimism_removed").set(removed)
    gauge("explain.pessimism_residual").set(residual)
    return DesignExplanation(
        design=engine.netlist.name,
        summary=summary,
        paths=tuple(explanations[:top_k]),
    )


# ----------------------------------------------------------------------
# Renderers (markdown; the JSON twin is ``to_dict`` + ``json.dumps``)
# ----------------------------------------------------------------------
def format_path_explanation(explanation: PathExplanation) -> str:
    """One endpoint's provenance table as markdown."""
    lines = [
        f"### Endpoint `{explanation.endpoint}`",
        "",
        f"slack **{explanation.slack:.2f} ps** "
        f"(arrival {explanation.arrival:.2f}, "
        f"required {explanation.required:.2f}); "
        f"path depth {explanation.depth}, "
        f"distance {explanation.distance:.0f} nm, "
        f"CRPR credit {explanation.crpr_credit:.2f} ps",
        "",
        "| pin | domain | base (ps) | derate | provenance "
        "| arrival (ps) | pessimism (ps) | residual (ps) |",
        "|---|---|---:|---:|---|---:|---:|---:|",
    ]
    for row in explanation.rows:
        lines.append(
            f"| `{row.dst}` | {row.domain} | {row.base_delay:.2f} "
            f"| {row.derate:.4f} | {row.provenance} "
            f"| {row.arrival:.2f} | {row.pessimism:.2f} "
            f"| {row.residual:.2f} |"
        )
    lines.append("")
    lines.append(
        f"pessimism {explanation.pessimism:.2f} ps = "
        f"removed {explanation.removed:.2f} + "
        f"residual {explanation.residual:.2f}"
    )
    return "\n".join(lines)


def format_design_explanation(explanation: DesignExplanation) -> str:
    """The design-level accounting summary as markdown."""
    summary = explanation.summary
    lines = [
        f"## Pessimism accounting — `{explanation.design}`",
        "",
        f"- endpoints explained: **{summary.endpoints}** "
        f"({summary.arcs} arcs)",
        f"- total GBA pessimism: **{summary.pessimism:.2f} ps** "
        f"(of which CRPR {summary.crpr:.2f} ps)",
        f"- removed by fitted derates: **{summary.removed:.2f} ps**",
        f"- residual: **{summary.residual:.2f} ps**",
        "",
        "| worst residual endpoints | ps |",
        "|---|---:|",
    ]
    for name, value in summary.top_endpoints:
        lines.append(f"| `{name}` | {value:.2f} |")
    if summary.top_arcs:
        lines += ["", "| worst residual arcs | ps |", "|---|---:|"]
        for name, value in summary.top_arcs:
            lines.append(f"| `{name}` | {value:.2f} |")
    for path in explanation.paths:
        lines += ["", format_path_explanation(path)]
    return "\n".join(lines)
