"""Clock reconvergence pessimism removal (CRPR).

Setup analysis launches through the *late* clock and captures through
the *early* clock.  When launch and capture flops share a prefix of the
clock network, that prefix cannot simultaneously be late and early —
the difference accumulated on the shared segment is pure pessimism and
may be credited back:

    credit(L, C) = sum over common-prefix arcs of (late - early delay)

GBA has no per-path launch information at an endpoint, so the classic
graph-based flow leaves the credit at zero (the conservative choice);
PBA applies the exact per-pair credit.  This asymmetry is one of the
"general" pessimism sources the paper's mGBA weighting absorbs.
"""

from __future__ import annotations

from repro.errors import TimingError
from repro.timing.graph import TimingGraph
from repro.timing.propagation import TimingState, effective_early, effective_late


def clock_path_edges(graph: TimingGraph, state: TimingState,
                     ck_node: int) -> list[int]:
    """Edge ids of the worst (late) clock path, source-to-sink order.

    Walks backward from a clock sink picking, at each clock-tree node,
    the fanin arc that realizes the late arrival.  On tree-shaped clock
    networks this is *the* clock path; on reconvergent networks it is
    the dominant one.
    """
    if not graph.node(ck_node).is_clock_tree:
        raise TimingError(f"node {ck_node} is not on the clock network")
    path: list[int] = []
    current = ck_node
    guard = 0
    limit = graph.node_count() + 1
    while True:
        in_list = graph.in_edges[current]
        if not in_list:
            break
        best_edge = None
        best_value = float("-inf")
        for edge_id in in_list:
            edge = graph.edge(edge_id)
            if not graph.node(edge.src).is_clock_tree:
                continue
            value = state.arrival_late[edge.src] + effective_late(state, edge)
            if value > best_value:
                best_value = value
                best_edge = edge_id
        if best_edge is None:
            break
        path.append(best_edge)
        current = graph.edge(best_edge).src
        guard += 1
        if guard > limit:
            raise TimingError("cycle while tracing clock path")
    path.reverse()
    return path


class CRPRCalculator:
    """Caches clock paths and computes pairwise credits."""

    def __init__(self, graph: TimingGraph, state: TimingState):
        self._graph = graph
        self._state = state
        self._paths: dict[int, list[int]] = {}

    def invalidate(self) -> None:
        """Drop cached clock paths (after any timing update)."""
        self._paths.clear()

    def path_of(self, ck_node: int) -> list[int]:
        """Cached worst clock path of a sink."""
        if ck_node not in self._paths:
            self._paths[ck_node] = clock_path_edges(
                self._graph, self._state, ck_node
            )
        return self._paths[ck_node]

    def credit(self, launch_ck: int | None, capture_ck: int | None) -> float:
        """CRPR credit between two clock sinks (0 when either is None).

        Port-launched or port-captured paths have no clock pair, hence
        no common segment and no credit.
        """
        if launch_ck is None or capture_ck is None:
            return 0.0
        if launch_ck == capture_ck:
            # Same flop launching and capturing (a self-loop path): the
            # whole clock path is common.
            path = self.path_of(launch_ck)
            return self._segment_credit(path)
        launch_path = self.path_of(launch_ck)
        capture_path = self.path_of(capture_ck)
        common: list[int] = []
        for edge_a, edge_b in zip(launch_path, capture_path):
            if edge_a != edge_b:
                break
            common.append(edge_a)
        return self._segment_credit(common)

    def _segment_credit(self, edge_ids: list[int]) -> float:
        total = 0.0
        for edge_id in edge_ids:
            edge = self._graph.edge(edge_id)
            total += (
                effective_late(self._state, edge)
                - effective_early(self._state, edge)
            )
        return total
