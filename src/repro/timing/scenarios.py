"""Scenario-stacked propagation: N corners × M modes in one sweep.

The levelized CSR layout of :mod:`repro.timing.kernel` turns forward
propagation into per-level segment reductions over per-edge arrays.
Scenarios — PVT corners, constraint modes — that share one netlist
differ only in *values* (delay scale, derate tables, mGBA weights,
boundary conditions), never in structure, so the whole MCMM matrix
stacks as one extra leading numpy axis: arrivals become
``(S, n_nodes)``, per-edge delays ``(S, n_edges)``, and every level
reduction one ``np.maximum.reduceat(..., axis=1)`` whose row ``s``
evaluates exactly the arithmetic the scalar oracle evaluates for
scenario ``s`` alone.  One NLDM lookup batch serves all scenarios at
once (:meth:`~repro.timing.delaycalc.DelayCalculator.compute_arcs_stack`
flattens the stack through the shared LUT grids), which is why the
marginal cost per scenario is near zero compared to one process per
corner.

**Bit-identity contract** (tier-1 gate in
``tests/timing/test_scenarios.py``, CI gate in
``benchmarks/bench_scenarios.py --check``): after
:meth:`ScenarioStack.update_all`, every engine's state is bit-identical
— IEEE-754 equality on arrivals, slews, delays, derates, required
times, and slack dictionaries including insertion order — to running
that engine's own ``update_timing()`` in isolation.  Elementwise
broadcasting and per-row ``reduceat`` preserve the scalar kernel's
operations per element, and the scalar kernel is already gated against
the per-node oracle.

Structural compatibility is validated up front: anything that could
make the scenarios disagree on topology or shared statics (different
netlist objects, clock ports, kernels, wire models, placements) raises
:class:`ScenarioError`, which
:meth:`repro.timing.corners.MultiCornerAnalysis.update_all` treats as
"fall back to the per-corner :mod:`repro.parallel` fan-out".
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.aocv.depth import compute_gba_depths
from repro.errors import TimingError
from repro.obs.metrics import counter, gauge
from repro.obs.trace import span
from repro.timing import kernel as kernel_mod
from repro.timing import slack as slack_mod
from repro.timing.propagation import (
    POS_INF,
    BoundaryConditions,
    TimingState,
)

if TYPE_CHECKING:
    from repro.timing.graph import TimingGraph
    from repro.timing.kernel import LevelizedLayout
    from repro.timing.slack import EndpointSlack
    from repro.timing.sta import STAEngine


class ScenarioError(TimingError):
    """The engines cannot be stacked (structurally incompatible)."""


def _boundary_rows(
    layout: LevelizedLayout,
    graph: TimingGraph,
    boundary: BoundaryConditions,
) -> "tuple[np.ndarray, np.ndarray]":
    """(arrival, slew) boundary vectors for one scenario's conditions.

    Mirrors the source-node fill in ``kernel._build_layout`` (itself a
    mirror of ``propagation.apply_boundary``) so modes with their own
    input delays or boundary slews stack next to the base scenario.
    """
    arrival = np.zeros(layout.n_node_slots)
    slew = np.zeros(layout.n_node_slots)
    for node_id in layout.source_ids.tolist():
        node = graph.node(node_id)
        if node.ref.is_port and node.ref.pin in boundary.clock_ports:
            arrival[node_id] = 0.0
            slew[node_id] = boundary.clock_slew
        elif node.ref.is_port:
            arrival[node_id] = boundary.input_delays.get(node.ref.pin, 0.0)
            slew[node_id] = boundary.input_slew
        else:
            arrival[node_id] = 0.0
            slew[node_id] = boundary.input_slew
    return arrival, slew


class ScenarioStack:
    """N scenario engines propagated as one stacked array sweep.

    Construct with :meth:`from_engines`; :meth:`update_all` then runs
    the stacked forward pass and scatters per-scenario results back
    into every engine, leaving each exactly as its own
    ``update_timing()`` would have.  The stack keeps its ``(S, ...)``
    arrays afterwards for stacked reductions (:meth:`worst_slacks`,
    :meth:`merged_setup`, :meth:`required_all`).
    """

    def __init__(
        self,
        engines: "list[STAEngine]",
        names: "list[str] | None" = None,
    ):
        self.engines = engines
        self.names = names or [f"s{i}" for i in range(len(engines))]
        base = engines[0]
        self.graph = base.graph
        # Stacked results, populated by update_all().
        self.arrival_late = np.zeros((0, 0))
        self.arrival_early = np.zeros((0, 0))
        self.slew = np.zeros((0, 0))
        self.derate_late = np.zeros((0, 0))
        self.derate_early = np.zeros((0, 0))
        self.edge_delay = np.zeros((0, 0))
        self.edge_out_slew = np.zeros((0, 0))
        self._states: "list[TimingState]" = []
        self._required: "np.ndarray | None" = None

    # ------------------------------------------------------------------
    # Construction / validation
    # ------------------------------------------------------------------
    @classmethod
    def from_engines(
        cls,
        engines: "list[STAEngine]",
        names: "list[str] | None" = None,
    ) -> "ScenarioStack":
        """Validate structural compatibility and build a stack.

        Scenarios may disagree on anything value-like — delay scale,
        derating tables, mGBA weights, constraint modes, boundary
        delays — but must agree on everything the shared layout bakes
        in: the netlist *object*, clock ports, placement, parasitics,
        wire model, and the vector kernel itself.
        """
        if not engines:
            raise ScenarioError("need at least one scenario engine")
        if names is not None and len(names) != len(engines):
            raise ScenarioError("scenario names do not match engine count")
        base = engines[0]
        for i, eng in enumerate(engines):
            if eng.kernel != "vector":
                raise ScenarioError(
                    f"scenario {i} runs the {eng.kernel!r} kernel; "
                    "stacking needs the vector kernel everywhere"
                )
            if eng.netlist is not base.netlist:
                raise ScenarioError(
                    f"scenario {i} has its own netlist object; "
                    "stacked scenarios must share one netlist"
                )
            if eng.placement is not base.placement:
                raise ScenarioError(f"scenario {i} has its own placement")
            if eng.calc.parasitics is not base.calc.parasitics:
                raise ScenarioError(f"scenario {i} has its own parasitics")
            if (
                eng.config.wire_r_per_nm != base.config.wire_r_per_nm
                or eng.config.wire_c_per_nm != base.config.wire_c_per_nm
            ):
                raise ScenarioError(
                    f"scenario {i} uses a different wire model"
                )
            if frozenset(eng.clock_ports) != frozenset(base.clock_ports):
                raise ScenarioError(
                    f"scenario {i} defines different clock ports"
                )
            if (
                eng.graph.structure_version != base.graph.structure_version
                or len(eng.graph.nodes) != len(base.graph.nodes)
                or len(eng.graph.edges) != len(base.graph.edges)
            ):
                raise ScenarioError(
                    f"scenario {i}'s timing graph diverged structurally"
                )
        return cls(list(engines), list(names) if names else None)

    # ------------------------------------------------------------------
    # The stacked sweep
    # ------------------------------------------------------------------
    def update_all(self) -> None:
        """One stacked forward pass; every engine ends fully updated."""
        base = self.engines[0]
        graph = self.graph
        if base._structure_dirty or not base.gba_depths:
            graph.mark_clock_tree(base.clock_ports)
            base.gba_depths = compute_gba_depths(base.netlist)
        layout = base._ensure_layout()
        n_scen = len(self.engines)
        with span(
            "kernel.scenario_propagate",
            scenarios=n_scen, levels=layout.levels,
            nodes=int(layout.order.size), edges=int(layout.live_eids.size),
        ):
            self._propagate(layout)
            self._scatter(layout)
        counter("kernel.scenario_sweeps").inc()
        gauge("kernel.scenario_count").set(n_scen)

    def _propagate(self, layout: LevelizedLayout) -> None:
        base = self.engines[0]
        graph = self.graph
        calc = base.calc
        n_scen = len(self.engines)
        n_nodes = layout.n_node_slots
        n_edges = layout.n_edge_slots
        arrival_late = np.zeros((n_scen, n_nodes))
        arrival_early = np.zeros((n_scen, n_nodes))
        slew = np.zeros((n_scen, n_nodes))
        derate_late = np.ones((n_scen, n_edges))
        derate_early = np.ones((n_scen, n_edges))
        edge_delay = np.zeros((n_scen, n_edges))
        edge_out_slew = np.zeros((n_scen, n_edges))
        # Row views alias the stacked arrays: the per-scenario derate
        # fill and the scalar endpoint/slack helpers all run unchanged
        # on views — ensure_capacity no-ops on exactly-sized rows.
        states = [
            TimingState(
                arrival_late=arrival_late[i],
                arrival_early=arrival_early[i],
                slew=slew[i],
                derate_late=derate_late[i],
                derate_early=derate_early[i],
            )
            for i in range(n_scen)
        ]
        base_boundary = base.boundary()
        b_arrival = np.zeros((n_scen, n_nodes))
        b_slew = np.zeros((n_scen, n_nodes))
        for i, eng in enumerate(self.engines):
            kernel_mod.compute_edge_derates(
                layout, graph, states[i], eng.derate_settings(), eng.weights
            )
            boundary = eng.boundary()
            if boundary == base_boundary:
                b_arrival[i] = layout.boundary_arrival
                b_slew[i] = layout.boundary_slew
            else:
                b_arrival[i], b_slew[i] = _boundary_rows(
                    layout, graph, boundary
                )
        # Delay-calc statics are scenario-invariant: loads depend on pin
        # caps/wires only, and net-arc delays are never delay-scaled
        # (``DelayCalculator.net_edge``), so one value broadcasts down
        # every scenario column — the identical double per row.
        net_loads = np.asarray(
            [calc.output_load(net) for net in layout.cell_nets]
        ) if layout.cell_nets else np.empty(0)
        load_of_edge = np.zeros(n_edges)
        covered = layout.cell_edge_net >= 0
        if covered.any():
            load_of_edge[covered] = net_loads[layout.cell_edge_net[covered]]
        for eids in layout.net_eids_by_level:
            for eid in eids.tolist():
                edge = graph.edges[eid]
                assert edge is not None
                edge_delay[:, eid] = calc.net_edge(graph, edge, 0.0)[0]
        scales = np.asarray([eng.calc.delay_scale for eng in self.engines])
        groups = layout.cell_groups(graph)
        if layout.order.size:
            src_ids = layout.source_ids
            arrival_late[:, src_ids] = b_arrival[:, src_ids]
            arrival_early[:, src_ids] = b_arrival[:, src_ids]
            slew[:, src_ids] = b_slew[:, src_ids]
            for lv in range(layout.levels):
                p0 = int(layout.level_ptr[lv])
                p1 = int(layout.level_ptr[lv + 1])
                ids = layout.order[p0:p1]
                if lv > 0:
                    s, e = int(layout.in_ptr[p0]), int(layout.in_ptr[p1])
                    seg = layout.in_ptr[p0:p1] - s
                    eids = layout.in_edge[s:e]
                    srcs = layout.in_src[s:e]
                    delays = edge_delay[:, eids]
                    late_vals = (
                        arrival_late[:, srcs] + delays * derate_late[:, eids]
                    )
                    early_vals = (
                        arrival_early[:, srcs] + delays * derate_early[:, eids]
                    )
                    arrival_late[:, ids] = np.maximum.reduceat(
                        late_vals, seg, axis=1
                    )
                    arrival_early[:, ids] = np.minimum.reduceat(
                        early_vals, seg, axis=1
                    )
                    slew[:, ids] = np.maximum(
                        np.maximum.reduceat(
                            edge_out_slew[:, eids], seg, axis=1
                        ),
                        0.0,
                    )
                net_eids = layout.net_eids_by_level[lv]
                if net_eids.size:
                    edge_out_slew[:, net_eids] = (
                        slew[:, layout.net_srcs_by_level[lv]]
                    )
                for dtab, stab, eids, srcs in groups[lv]:
                    delays, out_slews = calc.compute_arcs_stack(
                        dtab, stab, slew[:, srcs], load_of_edge[eids], scales
                    )
                    edge_delay[:, eids] = delays
                    edge_out_slew[:, eids] = out_slews
        self.arrival_late = arrival_late
        self.arrival_early = arrival_early
        self.slew = slew
        self.derate_late = derate_late
        self.derate_early = derate_early
        self.edge_delay = edge_delay
        self.edge_out_slew = edge_out_slew
        self._states = states
        self._required = None

    def _scatter(self, layout: LevelizedLayout) -> None:
        """Install each scenario's row into its engine.

        Leaves every engine exactly as its own ``update_timing()``
        would: state arrays filled, edge objects carrying the
        scenario's delays/out-slews, layouts synced, caches dropped,
        freshness flags set.
        """
        n_nodes = layout.n_node_slots
        n_edges = layout.n_edge_slots
        base = self.engines[0]
        for i, eng in enumerate(self.engines):
            eng.state.ensure_capacity(
                len(eng.graph.nodes), len(eng.graph.edges)
            )
            eng.state.arrival_late[:n_nodes] = self.arrival_late[i]
            eng.state.arrival_early[:n_nodes] = self.arrival_early[i]
            eng.state.slew[:n_nodes] = self.slew[i]
            eng.state.derate_late[:n_edges] = self.derate_late[i]
            eng.state.derate_early[:n_edges] = self.derate_early[i]
            delays = self.edge_delay[i].tolist()
            out_slews = self.edge_out_slew[i].tolist()
            for edge in eng.graph.edges:
                if edge is not None:
                    edge.delay = delays[edge.id]
                    edge.out_slew = out_slews[edge.id]
            if eng is not base:
                if eng._structure_dirty:
                    eng.graph.mark_clock_tree(eng.clock_ports)
                if not eng.gba_depths:
                    eng.gba_depths = dict(base.gba_depths)
            # Do NOT build layouts eagerly here (that would erase the
            # stacking win); engines that already have one must see the
            # scenario's edge values on their next backward pass.
            if eng._layout is not None:
                kernel_mod.sync_edge_arrays(eng._layout, eng.graph)
            eng.crpr.invalidate()
            eng._setup_slack_cache = None
            eng._structure_dirty = False
            eng._timing_fresh = True

    # ------------------------------------------------------------------
    # Stacked reductions
    # ------------------------------------------------------------------
    def state_view(self, index: int) -> TimingState:
        """The row-view state of one scenario (aliases the stack)."""
        return self._states[index]

    def setup_slacks(self, index: int) -> "list[EndpointSlack]":
        """Setup slacks of one scenario, straight off its stack row."""
        eng = self.engines[index]
        return slack_mod.setup_slacks(
            self.graph, self._states[index], eng.constraints
        )

    def hold_slacks(self, index: int) -> "list[EndpointSlack]":
        """Hold slacks of one scenario, straight off its stack row."""
        eng = self.engines[index]
        return slack_mod.hold_slacks(
            self.graph, self._states[index], eng.constraints
        )

    def endpoint_matrix(self) -> "tuple[list[str], np.ndarray]":
        """(endpoint names, ``(S, n_endpoints)`` setup-slack matrix)."""
        names: "list[str]" = []
        rows: "list[list[float]]" = []
        for i in range(len(self.engines)):
            slacks = self.setup_slacks(i)
            if not names:
                names = [s.name for s in slacks]
            rows.append([s.slack for s in slacks])
        return names, np.asarray(rows) if rows else np.zeros((0, 0))

    def worst_slacks(self) -> np.ndarray:
        """Per-scenario setup WNS — one stacked min over the matrix."""
        _, matrix = self.endpoint_matrix()
        if not matrix.size:
            return np.zeros(len(self.engines))
        return matrix.min(axis=1)

    def merged_setup(self) -> "list[tuple[str, float, str]]":
        """Per-endpoint worst (slack, scenario) across the stack.

        ``argmin`` along the scenario axis keeps the *first* scenario on
        ties, matching the declaration-order tie-break of
        ``MultiCornerAnalysis._merge``; rows come back worst-first.
        """
        names, matrix = self.endpoint_matrix()
        if not matrix.size:
            return []
        worst = matrix.min(axis=0)
        which = matrix.argmin(axis=0)
        merged = [
            (name, float(worst[j]), self.names[int(which[j])])
            for j, name in enumerate(names)
        ]
        return sorted(merged, key=lambda row: row[1])

    def required_all(self) -> np.ndarray:
        """``(S, n_nodes)`` late required times, one stacked backward pass.

        The per-level body mirrors ``kernel.compute_required_times``
        with the scenario axis in front; endpoint initialization stays
        scalar per scenario (one LUT lookup per endpoint, against each
        scenario's own constraints), so rows are bit-identical to each
        engine's ``required_times()``.
        """
        if self._required is not None:
            return self._required
        base = self.engines[0]
        layout = base._ensure_layout()
        graph = self.graph
        n_scen = len(self.engines)
        required = np.full((n_scen, len(graph.nodes)), POS_INF)
        for i, eng in enumerate(self.engines):
            clock_map = slack_mod.endpoint_clock_map(graph, eng.constraints)
            view = self._states[i]
            for node_id in sorted(graph.endpoints):
                info = graph.endpoints[node_id]
                value, _ = slack_mod.setup_required(
                    graph, view, info, clock_map[node_id], eng.constraints
                )
                required[i, node_id] = value
        clock_node = layout.node_is_clock_tree
        for lv in range(layout.levels - 1, -1, -1):
            p0 = int(layout.level_ptr[lv])
            p1 = int(layout.level_ptr[lv + 1])
            ids = layout.order[p0:p1]
            data_mask = ~clock_node[ids]
            if not data_mask.any():
                continue
            s, e = int(layout.out_ptr[p0]), int(layout.out_ptr[p1])
            if s == e:
                continue  # no fanout in this level: inits stand
            seg = layout.out_ptr[p0:p1] - s
            counts = np.diff(np.append(seg, e - s))
            eids = layout.out_edge[s:e]
            dsts = layout.out_dst[s:e]
            cand = (
                required[:, dsts]
                - self.edge_delay[:, eids] * self.derate_late[:, eids]
            )
            cand[:, clock_node[dsts]] = POS_INF
            nonempty = counts > 0
            reduced = np.full((n_scen, ids.size), POS_INF)
            if nonempty.any():
                reduced[:, nonempty] = np.minimum.reduceat(
                    cand, seg[nonempty], axis=1
                )
            upd = ids[data_mask]
            required[:, upd] = np.minimum(
                required[:, upd], reduced[:, data_mask]
            )
        self._required = required
        return required
