"""Human-readable timing reports (PrimeTime-style).

``report_timing`` prints the worst path to each of the N worst
endpoints; ``report_summary`` prints the WNS/TNS header block designers
scan first.  Both return strings so the CLI and tests consume them
directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.timing.graph import TimingGraph
from repro.timing.propagation import TimingState, effective_late
from repro.timing.slack import CheckKind
from repro.timing.sta import STAEngine


@dataclass(frozen=True)
class PathStep:
    """One pin on a reported path."""

    name: str
    incr: float
    arrival: float
    derate: float


def trace_worst_path(graph: TimingGraph, state: TimingState,
                     endpoint: int) -> list[int]:
    """Edge ids of the worst (late) path into an endpoint, source first.

    Walks backward choosing, at every node, the fanin arc realizing the
    late arrival — the same argmax tie the propagation computed.
    """
    path: list[int] = []
    current = endpoint
    guard = 0
    limit = graph.node_count() + 1
    while True:
        in_list = graph.in_edges[current]
        if not in_list:
            break
        best_edge = None
        best_value = float("-inf")
        for edge_id in in_list:
            edge = graph.edge(edge_id)
            value = state.arrival_late[edge.src] + effective_late(state, edge)
            if value > best_value:
                best_value = value
                best_edge = edge_id
        assert best_edge is not None
        path.append(best_edge)
        current = graph.edge(best_edge).src
        guard += 1
        if guard > limit:
            break
    path.reverse()
    return path


def trace_early_path(graph: TimingGraph, state: TimingState,
                     endpoint: int) -> list[int]:
    """Edge ids of the *earliest* (min) path into an endpoint.

    The hold-check analogue of :func:`trace_worst_path`: walks backward
    choosing the fanin arc realizing the early arrival — the short path
    a hold fix must slow down.
    """
    from repro.timing.propagation import effective_early

    path: list[int] = []
    current = endpoint
    guard = 0
    limit = graph.node_count() + 1
    while True:
        in_list = graph.in_edges[current]
        if not in_list:
            break
        best_edge = None
        best_value = float("inf")
        for edge_id in in_list:
            edge = graph.edge(edge_id)
            value = (
                state.arrival_early[edge.src]
                + effective_early(state, edge)
            )
            if value < best_value:
                best_value = value
                best_edge = edge_id
        assert best_edge is not None
        path.append(best_edge)
        current = graph.edge(best_edge).src
        guard += 1
        if guard > limit:
            break
    path.reverse()
    return path


def path_steps(engine: STAEngine, edge_ids: list[int]) -> list[PathStep]:
    """Expand an edge list into printable per-pin steps."""
    graph, state = engine.graph, engine.state
    steps: list[PathStep] = []
    if not edge_ids:
        return steps
    first_src = graph.edge(edge_ids[0]).src
    steps.append(PathStep(
        name=str(graph.node(first_src).ref),
        incr=0.0,
        arrival=float(state.arrival_late[first_src]),
        derate=1.0,
    ))
    for edge_id in edge_ids:
        edge = graph.edge(edge_id)
        steps.append(PathStep(
            name=str(graph.node(edge.dst).ref),
            incr=effective_late(state, edge),
            arrival=float(state.arrival_late[edge.dst]),
            derate=float(state.derate_late[edge.id]),
        ))
    return steps


def report_summary(engine: STAEngine) -> str:
    """WNS/TNS header block for both checks."""
    setup = engine.summary(CheckKind.SETUP)
    hold = engine.summary(CheckKind.HOLD)
    lines = [
        f"Design: {engine.netlist.name}",
        f"  gates={len(engine.netlist.gates)} "
        f"nets={len(engine.netlist.nets)} "
        f"endpoints={setup.endpoints}",
        (
            f"  setup: WNS={setup.wns:10.2f} ps  TNS={setup.tns:12.2f} ps  "
            f"violations={setup.violations}"
        ),
        (
            f"  hold:  WNS={hold.wns:10.2f} ps  TNS={hold.tns:12.2f} ps  "
            f"violations={hold.violations}"
        ),
    ]
    return "\n".join(lines)


def path_to_dict(engine: STAEngine, endpoint_slack) -> dict:
    """One endpoint's worst path as a JSON-safe record."""
    edges = trace_worst_path(engine.graph, engine.state, endpoint_slack.node)
    steps = path_steps(engine, edges)
    return {
        "endpoint": endpoint_slack.name,
        "slack": endpoint_slack.slack,
        "arrival": endpoint_slack.arrival,
        "required": endpoint_slack.required,
        "pins": [
            {
                "name": step.name,
                "incr": step.incr,
                "arrival": step.arrival,
                "derate": step.derate,
            }
            for step in steps
        ],
    }


def report_timing_json(engine: STAEngine, max_endpoints: int = 3) -> dict:
    """Machine-readable worst-path report (the JSON twin of
    :func:`report_timing`)."""
    engine.ensure_timing()
    slacks = sorted(engine.setup_slacks(), key=lambda s: s.slack)
    summary = engine.summary()
    return {
        "design": engine.netlist.name,
        "wns": summary.wns,
        "tns": summary.tns,
        "violations": summary.violations,
        "endpoints": summary.endpoints,
        "paths": [
            path_to_dict(engine, s) for s in slacks[:max_endpoints]
        ],
    }


def report_timing(engine: STAEngine, max_endpoints: int = 3) -> str:
    """Worst path report for the N worst setup endpoints."""
    engine.ensure_timing()
    slacks = sorted(engine.setup_slacks(), key=lambda s: s.slack)
    blocks: list[str] = [report_summary(engine), ""]
    for endpoint_slack in slacks[:max_endpoints]:
        edges = trace_worst_path(engine.graph, engine.state, endpoint_slack.node)
        steps = path_steps(engine, edges)
        blocks.append(f"Endpoint: {endpoint_slack.name}")
        blocks.append(
            f"  arrival={endpoint_slack.arrival:.2f} ps  "
            f"required={endpoint_slack.required:.2f} ps  "
            f"slack={endpoint_slack.slack:.2f} ps"
        )
        blocks.append(
            f"  {'pin':<28} {'incr':>9} {'arrival':>9} {'derate':>7}"
        )
        for step in steps:
            blocks.append(
                f"  {step.name:<28} {step.incr:>9.2f} "
                f"{step.arrival:>9.2f} {step.derate:>7.3f}"
            )
        blocks.append("")
    return "\n".join(blocks)
