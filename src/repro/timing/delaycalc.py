"""Delay calculation: cell arcs via NLDM lookup, net arcs via Elmore-lite.

Wire parasitics come from one of two sources, in precedence order:

1. an installed :class:`~repro.netlist.parasitics.Parasitics` set
   (extracted / SPEF-lite annotated) — each covered net uses its lumped
   pi RC;
2. the geometric model — each driver-to-load segment is an RC wire of
   length equal to the Manhattan distance between the placed instances.

Either way, net arc delay to one load is ``R * (C/2 + C_pin)`` and the
net's total wire capacitance additionally loads the driving cell arc.
Unplaced, unannotated objects contribute zero wire, so purely logical
designs still time correctly with cell delays only.
"""

from __future__ import annotations

from repro.netlist.core import Netlist, PinRef
from repro.netlist.parasitics import Parasitics
from repro.netlist.placement import Placement
from repro.timing.graph import EdgeKind, TimingEdge, TimingGraph


def _anchor_name(ref: PinRef) -> str:
    """Placement key of a pin reference (gate name, or port name)."""
    return ref.gate if ref.gate is not None else ref.pin


def segment_length(placement: Placement | None, a: PinRef, b: PinRef) -> float:
    """Manhattan wire length between two pins (nm); 0 when unplaced."""
    if placement is None:
        return 0.0
    name_a, name_b = _anchor_name(a), _anchor_name(b)
    if not placement.has(name_a) or not placement.has(name_b):
        return 0.0
    return placement.distance(name_a, name_b)


class DelayCalculator:
    """Computes base edge delays and output slews for one design."""

    def __init__(self, netlist: Netlist, placement: Placement | None,
                 wire_r_per_nm: float, wire_c_per_nm: float,
                 parasitics: Parasitics | None = None,
                 delay_scale: float = 1.0):
        self.netlist = netlist
        self.placement = placement
        self.wire_r_per_nm = wire_r_per_nm
        self.wire_c_per_nm = wire_c_per_nm
        self.parasitics = parasitics
        #: PVT corner scale applied to cell delays and slews (wires are
        #: extracted geometry and scale separately via r/c per nm).
        self.delay_scale = delay_scale

    def net_wire_capacitance(self, net_name: str) -> float:
        """Total wire capacitance of a net (fF).

        Annotated nets use their extracted value; others fall back to
        star-topology geometry.
        """
        if self.parasitics is not None:
            annotation = self.parasitics.get(net_name)
            if annotation is not None:
                return annotation.capacitance
        driver = self.netlist.net_driver(net_name)
        if driver is None:
            return 0.0
        total_length = 0.0
        for load in self.netlist.net_loads(net_name):
            total_length += segment_length(self.placement, driver, load)
        return self.wire_c_per_nm * total_length

    def output_load(self, net_name: str) -> float:
        """Capacitance seen by the driver of a net: pins + wire (fF)."""
        return (
            self.netlist.net_load_capacitance(net_name)
            + self.net_wire_capacitance(net_name)
        )

    def cell_edge(self, graph: TimingGraph, edge: TimingEdge,
                  input_slew: float) -> tuple[float, float]:
        """(delay, output slew) of a cell arc at the given input slew."""
        assert edge.kind is EdgeKind.CELL and edge.arc is not None
        dst_ref = graph.node(edge.dst).ref
        assert dst_ref.gate is not None
        net_name = self.netlist.gate(dst_ref.gate).connections.get(dst_ref.pin)
        load = self.output_load(net_name) if net_name is not None else 0.0
        delay = edge.arc.delay.lookup(input_slew, load)
        assert edge.arc.output_slew is not None
        out_slew = edge.arc.output_slew.lookup(input_slew, load)
        return delay * self.delay_scale, out_slew * self.delay_scale

    def net_edge(self, graph: TimingGraph, edge: TimingEdge,
                 input_slew: float) -> tuple[float, float]:
        """(delay, output slew) of a net arc; slew passes through."""
        assert edge.kind is EdgeKind.NET and edge.net is not None
        dst_ref = graph.node(edge.dst).ref
        pin_cap = 0.0
        if dst_ref.gate is not None:
            cell = self.netlist.cell_of(dst_ref.gate)
            pin_cap = cell.pin(dst_ref.pin).capacitance
        if self.parasitics is not None:
            annotation = self.parasitics.get(edge.net)
            if annotation is not None:
                return annotation.elmore_to_load(pin_cap), input_slew
        src_ref = graph.node(edge.src).ref
        length = segment_length(self.placement, src_ref, dst_ref)
        if length == 0.0:
            return 0.0, input_slew
        resistance = self.wire_r_per_nm * length
        wire_cap = self.wire_c_per_nm * length
        delay = resistance * (wire_cap / 2.0 + pin_cap)
        return delay, input_slew

    def compute_edge(self, graph: TimingGraph, edge: TimingEdge,
                     input_slew: float) -> None:
        """Fill in ``edge.delay`` and ``edge.out_slew``."""
        if edge.kind is EdgeKind.CELL:
            edge.delay, edge.out_slew = self.cell_edge(graph, edge, input_slew)
        else:
            edge.delay, edge.out_slew = self.net_edge(graph, edge, input_slew)

    # ------------------------------------------------------------------
    # Batched (vector-kernel) entry points
    # ------------------------------------------------------------------
    def compute_arcs_batch(self, delay_table, slew_table, input_slews,
                           loads) -> "tuple":
        """(delays, output slews) of many cell arcs sharing one table pair.

        One vectorized bilinear lookup per table — the batch analogue of
        :meth:`cell_edge`, bit-identical per element because
        ``lookup_many`` evaluates the same interpolation expression as
        ``lookup`` and the corner scale multiplies the looked-up value
        exactly as the scalar path does.  When the two tables share axes
        (the usual library shape) the grid coordinates are computed once
        via :func:`repro.liberty.lut.lookup_pair_many`.
        """
        from repro.liberty.lut import lookup_pair_many

        delays, out_slews = lookup_pair_many(
            delay_table, slew_table, input_slews, loads
        )
        return delays * self.delay_scale, out_slews * self.delay_scale

    def compute_arcs_stack(self, delay_table, slew_table, input_slews,
                           loads, scales) -> "tuple":
        """(delays, output slews) of one table pair across a scenario stack.

        ``input_slews`` is ``(S, k)`` — per-scenario slews of ``k`` arcs
        — while ``loads`` (length ``k``) is scenario-invariant and
        ``scales`` (length ``S``) carries each scenario's absolute
        corner multiplier (``self.delay_scale`` is deliberately ignored:
        the stack owns the per-scenario scaling).  The stack flattens
        row-major through *one* :func:`~repro.liberty.lut.lookup_pair_many`
        call; row ``s`` of the reshaped result is bit-identical to
        :meth:`compute_arcs_batch` at ``delay_scale = scales[s]``
        because the flattened lookup evaluates the same per-element
        interpolation and the column-broadcast multiply is the same
        scalar multiply per element.
        """
        import numpy as np

        from repro.liberty.lut import lookup_pair_many

        slews = np.asarray(input_slews, dtype=float)
        n_scen = slews.shape[0]
        flat_loads = np.tile(np.asarray(loads, dtype=float), n_scen)
        delays, out_slews = lookup_pair_many(
            delay_table, slew_table, slews.ravel(), flat_loads
        )
        scale_col = np.asarray(scales, dtype=float)[:, None]
        return (
            delays.reshape(slews.shape) * scale_col,
            out_slews.reshape(slews.shape) * scale_col,
        )

    def compute_edges_batch(self, graph: TimingGraph,
                            edges: "list[TimingEdge]",
                            input_slews) -> None:
        """Delay-calc a mixed batch of edges at per-edge input slews.

        Cell arcs are grouped by their (delay, slew) table pair and run
        through :meth:`compute_arcs_batch`; net arcs fall through to the
        scalar :meth:`net_edge` (their delay is slew-independent wire
        arithmetic, not a table lookup).  Results land on the edge
        objects, exactly like a :meth:`compute_edge` loop would.
        """
        import numpy as np

        by_table: dict[tuple[int, int], list[int]] = {}
        for i, edge in enumerate(edges):
            if edge.kind is not EdgeKind.CELL:
                edge.delay, edge.out_slew = self.net_edge(
                    graph, edge, float(input_slews[i])
                )
                continue
            assert edge.arc is not None
            by_table.setdefault(
                (id(edge.arc.delay), id(edge.arc.output_slew)), []
            ).append(i)
        for members in by_table.values():
            first = edges[members[0]]
            assert first.arc is not None
            slews = np.asarray([float(input_slews[i]) for i in members])
            loads = np.empty(len(members))
            for j, i in enumerate(members):
                dst_ref = graph.node(edges[i].dst).ref
                assert dst_ref.gate is not None
                net = self.netlist.gate(dst_ref.gate).connections.get(
                    dst_ref.pin
                )
                loads[j] = self.output_load(net) if net is not None else 0.0
            delays, out_slews = self.compute_arcs_batch(
                first.arc.delay, first.arc.output_slew, slews, loads
            )
            for j, i in enumerate(members):
                edges[i].delay = float(delays[j])
                edges[i].out_slew = float(out_slews[j])
