"""Static timing analysis substrate (graph-based, GBA).

* :class:`~repro.timing.graph.TimingGraph` — pin-level DAG built from a
  netlist: cell arcs and net arcs, clock-tree marking, endpoints.
* :class:`~repro.timing.sta.STAEngine` — the facade tying together
  delay calculation (:mod:`~repro.timing.delaycalc`), forward
  propagation with AOCV derates (:mod:`~repro.timing.propagation`),
  CRPR (:mod:`~repro.timing.crpr`), setup/hold slack extraction
  (:mod:`~repro.timing.slack`), incremental update
  (:mod:`~repro.timing.incremental`), and reporting
  (:mod:`~repro.timing.report`).

Single-transition model: the engine tracks one late and one early value
per node instead of rise/fall pairs — the pessimism phenomena the paper
targets (worst depth, worst slew, missing CRPR) are all orthogonal to
transition polarity.
"""

from repro.timing.graph import EdgeKind, NodeKind, TimingEdge, TimingGraph, TimingNode
from repro.timing.corners import Corner, DEFAULT_CORNERS, MultiCornerAnalysis
from repro.timing.scenarios import ScenarioError, ScenarioStack
from repro.timing.sta import STAConfig, STAEngine
from repro.timing.slack import EndpointSlack, SlackSummary, endpoint_clock_map

__all__ = [
    "EdgeKind",
    "NodeKind",
    "TimingEdge",
    "TimingGraph",
    "TimingNode",
    "STAConfig",
    "STAEngine",
    "EndpointSlack",
    "SlackSummary",
    "endpoint_clock_map",
    "Corner",
    "DEFAULT_CORNERS",
    "MultiCornerAnalysis",
    "ScenarioError",
    "ScenarioStack",
]
