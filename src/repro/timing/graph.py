"""Pin-level timing graph.

Nodes are pins (gate pins and top-level ports); edges are either *cell
arcs* (input pin -> output pin of one gate, carrying a characterized
:class:`~repro.liberty.cell.TimingArc`) or *net arcs* (driver pin ->
load pin, carrying wire geometry).  Setup/hold *constraint* arcs are not
graph edges; they live in per-endpoint records consulted at slack
extraction time.

The graph supports surgical structural updates (``rebuild_net``,
``add_gate_nodes``, ``remove_gate_nodes``) so the incremental engine can
track buffer insertion/removal without a full rebuild.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass

from repro.errors import TimingError
from repro.liberty.cell import ArcKind, PinDirection, TimingArc
from repro.netlist.core import Netlist, PinRef, PortDirection

#: Cap on retained structure-journal entries.  Each node/edge mutation
#: appends one entry; once the deque overflows, the floor version rises
#: and ``touched_since`` answers ``None`` for anything older, forcing
#: layout consumers back to a full rebuild.  512 covers hundreds of
#: buffer insert/remove edits between timing queries — far beyond the
#: one-or-two-edit window the what-if loop actually patches across.
_JOURNAL_MAX = 512


class NodeKind(enum.Enum):
    """What a timing node represents."""

    PORT_IN = "port_in"
    PORT_OUT = "port_out"
    PIN_IN = "pin_in"
    PIN_OUT = "pin_out"


class EdgeKind(enum.Enum):
    """What a timing edge represents."""

    CELL = "cell"
    NET = "net"


@dataclass
class TimingNode:
    """A pin in the timing graph."""

    id: int
    ref: PinRef
    kind: NodeKind
    is_clock_tree: bool = False   # on the clock distribution network
    is_clock_sink: bool = False   # a flip-flop CK pin
    is_endpoint: bool = False     # a flip-flop D pin or an output port


@dataclass
class TimingEdge:
    """A delay arc in the timing graph.

    ``delay`` is the *base* (underated) value filled in by the delay
    calculator; AOCV/clock derating is applied on top by the propagation
    engine so that re-derating never requires re-running delay
    calculation.  ``out_slew`` is the slew this edge presents at its
    destination (cell arcs: table lookup; net arcs: pass-through).
    """

    id: int
    src: int
    dst: int
    kind: EdgeKind
    gate: str | None = None        # CELL edges: owning gate
    arc: TimingArc | None = None   # CELL edges: characterized arc
    net: str | None = None         # NET edges: the net traversed
    delay: float = 0.0
    out_slew: float = 0.0


@dataclass
class EndpointInfo:
    """Constraint data for one endpoint node."""

    node: int
    gate: str | None = None        # owning flip-flop (None for ports)
    ck_node: int | None = None     # the flop's CK node (None for ports)
    setup_arc: TimingArc | None = None
    hold_arc: TimingArc | None = None


class TimingGraph:
    """The pin-level DAG of one netlist.

    Construction walks every gate and net once; the result references
    the netlist (for cell lookups during delay calculation) but owns its
    own topology, so netlist edits must be mirrored through the
    structural-update methods.
    """

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.nodes: list[TimingNode | None] = []
        self.edges: list[TimingEdge | None] = []
        self.node_of: dict[PinRef, int] = {}
        self.out_edges: list[list[int]] = []
        self.in_edges: list[list[int]] = []
        self.endpoints: dict[int, EndpointInfo] = {}
        self._free_nodes: list[int] = []
        self._free_edges: list[int] = []
        self._topo_cache: list[int] | None = None
        self._rank_cache: dict[int, int] | None = None
        #: Bumped on every topology mutation (node/edge add or drop).
        #: The vector kernel keys its levelized layout on this, so a
        #: weight-only re-derate reuses the flattened arrays while any
        #: structural edit invalidates them.
        self.structure_version: int = 0
        #: Bumped when arc *tables* are re-bound without a topology
        #: change (resize / vt swap); invalidates the kernel's
        #: per-level LUT grouping but not the layout itself.
        self.arc_epoch: int = 0
        #: Bounded journal of structural mutations: one
        #: ``(structure_version_after, node_ids, edge_ids)`` entry per
        #: mutation, newest last.  ``touched_since`` folds these into
        #: the touched node/edge sets the kernel's layout patcher needs
        #: to splice an edit into an existing levelization.
        self._journal: deque[tuple[int, tuple[int, ...], tuple[int, ...]]] = (
            deque()
        )
        #: Highest version already trimmed out of the journal; asking
        #: ``touched_since`` for anything below it is unanswerable.
        self._journal_floor: int = 0
        self._build()
        #: ``structure_version`` as of the end of construction.  A graph
        #: still at this version is *pristine*: its node/edge slot
        #: assignment is a pure function of the netlist content, which
        #: is what lets the kernel's layout cache key builds by content
        #: (edits reorder slot reuse and drop a graph out of the cache
        #: for good).
        self.pristine_version: int = self.structure_version

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        for name, port in self.netlist.ports.items():
            kind = (
                NodeKind.PORT_IN if port.direction is PortDirection.INPUT
                else NodeKind.PORT_OUT
            )
            node = self._new_node(PinRef(None, name), kind)
            if kind is NodeKind.PORT_OUT:
                node.is_endpoint = True
                self.endpoints[node.id] = EndpointInfo(node=node.id)
        for gate_name in self.netlist.gates:
            self.add_gate_nodes(gate_name)
        for net_name in self.netlist.nets:
            self.rebuild_net(net_name)

    def _new_node(self, ref: PinRef, kind: NodeKind) -> TimingNode:
        if ref in self.node_of:
            raise TimingError(f"duplicate timing node for {ref}")
        if self._free_nodes:
            node_id = self._free_nodes.pop()
            node = TimingNode(node_id, ref, kind)
            self.nodes[node_id] = node
            self.out_edges[node_id] = []
            self.in_edges[node_id] = []
        else:
            node_id = len(self.nodes)
            node = TimingNode(node_id, ref, kind)
            self.nodes.append(node)
            self.out_edges.append([])
            self.in_edges.append([])
        self.node_of[ref] = node_id
        self._topo_cache = None
        self.structure_version += 1
        self._note_structure(nodes=(node_id,))
        return node

    def _new_edge(self, src: int, dst: int, kind: EdgeKind, **attrs) -> TimingEdge:
        if self._free_edges:
            edge_id = self._free_edges.pop()
            edge = TimingEdge(edge_id, src, dst, kind, **attrs)
            self.edges[edge_id] = edge
        else:
            edge_id = len(self.edges)
            edge = TimingEdge(edge_id, src, dst, kind, **attrs)
            self.edges.append(edge)
        self.out_edges[src].append(edge_id)
        self.in_edges[dst].append(edge_id)
        self._topo_cache = None
        self.structure_version += 1
        self._note_structure(nodes=(src, dst), edges=(edge_id,))
        return edge

    def _drop_edge(self, edge_id: int) -> None:
        edge = self.edges[edge_id]
        assert edge is not None
        self.out_edges[edge.src].remove(edge_id)
        self.in_edges[edge.dst].remove(edge_id)
        self.edges[edge_id] = None
        self._free_edges.append(edge_id)
        self._topo_cache = None
        self.structure_version += 1
        self._note_structure(nodes=(edge.src, edge.dst), edges=(edge_id,))

    def add_gate_nodes(self, gate_name: str) -> list[int]:
        """Create nodes and cell edges for a (new) gate instance."""
        cell = self.netlist.cell_of(gate_name)
        created: list[int] = []
        for pin in cell.pins.values():
            kind = (
                NodeKind.PIN_OUT if pin.direction is PinDirection.OUTPUT
                else NodeKind.PIN_IN
            )
            node = self._new_node(PinRef(gate_name, pin.name), kind)
            if pin.is_clock and cell.is_sequential:
                node.is_clock_sink = True
            created.append(node.id)
        for arc in cell.delay_arcs():
            src = self.node_of[PinRef(gate_name, arc.from_pin)]
            dst = self.node_of[PinRef(gate_name, arc.to_pin)]
            self._new_edge(src, dst, EdgeKind.CELL, gate=gate_name, arc=arc)
        setup = next(
            (a for a in cell.constraint_arcs() if a.kind is ArcKind.SETUP), None
        )
        hold = next(
            (a for a in cell.constraint_arcs() if a.kind is ArcKind.HOLD), None
        )
        if setup is not None or hold is not None:
            data_pin = (setup or hold).from_pin
            clock_pin = (setup or hold).to_pin
            data_node = self.node_of[PinRef(gate_name, data_pin)]
            self.nodes[data_node].is_endpoint = True
            self.endpoints[data_node] = EndpointInfo(
                node=data_node,
                gate=gate_name,
                ck_node=self.node_of[PinRef(gate_name, clock_pin)],
                setup_arc=setup,
                hold_arc=hold,
            )
        return created

    def remove_gate_nodes(self, gate_name: str) -> None:
        """Remove all nodes/edges of a deleted gate instance."""
        doomed = [
            (ref, node_id) for ref, node_id in self.node_of.items()
            if ref.gate == gate_name
        ]
        for ref, node_id in doomed:
            for edge_id in list(self.out_edges[node_id]):
                self._drop_edge(edge_id)
            for edge_id in list(self.in_edges[node_id]):
                self._drop_edge(edge_id)
            self.endpoints.pop(node_id, None)
            del self.node_of[ref]
            self.nodes[node_id] = None
            self._free_nodes.append(node_id)
        self._topo_cache = None
        self.structure_version += 1
        self._note_structure(nodes=tuple(node_id for _, node_id in doomed))

    def rebuild_net(self, net_name: str) -> list[int]:
        """(Re)create the net edges of one net; returns new edge ids.

        Called at build time and after any edit that changes a net's
        driver or load set.
        """
        stale = [
            e.id for e in self.edges
            if e is not None and e.kind is EdgeKind.NET and e.net == net_name
        ]
        for edge_id in stale:
            self._drop_edge(edge_id)
        driver = self.netlist.net_driver(net_name)
        if driver is None:
            return []
        src = self.node_of.get(driver)
        if src is None:
            return []
        created: list[int] = []
        for load in self.netlist.net_loads(net_name):
            dst = self.node_of.get(load)
            if dst is None:
                continue
            edge = self._new_edge(src, dst, EdgeKind.NET, net=net_name)
            created.append(edge.id)
        return created

    def _note_structure(
        self,
        nodes: tuple[int, ...] = (),
        edges: tuple[int, ...] = (),
    ) -> None:
        """Record one structural mutation in the bounded journal."""
        self._journal.append((self.structure_version, nodes, edges))
        while len(self._journal) > _JOURNAL_MAX:
            version, _, _ = self._journal.popleft()
            if version > self._journal_floor:
                self._journal_floor = version

    def touched_since(
        self, version: int
    ) -> tuple[set[int], set[int]] | None:
        """Node/edge ids touched by every mutation after ``version``.

        Returns ``(node_ids, edge_ids)`` — slot ids, which may since
        have been freed or reused; consumers must re-read liveness from
        the graph.  Returns ``None`` when the journal has been trimmed
        past ``version`` (too many edits): the caller must fall back to
        a full rebuild.
        """
        if version < self._journal_floor:
            return None
        nodes: set[int] = set()
        edges: set[int] = set()
        for entry_version, entry_nodes, entry_edges in reversed(self._journal):
            if entry_version <= version:
                break
            nodes.update(entry_nodes)
            edges.update(entry_edges)
        return nodes, edges

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> TimingNode:
        """The live node with this id (raises on stale ids)."""
        node = self.nodes[node_id]
        if node is None:
            raise TimingError(f"node {node_id} has been removed")
        return node

    def edge(self, edge_id: int) -> TimingEdge:
        """The live edge with this id (raises on stale ids)."""
        edge = self.edges[edge_id]
        if edge is None:
            raise TimingError(f"edge {edge_id} has been removed")
        return edge

    def live_nodes(self) -> "list[TimingNode]":
        """All current nodes."""
        return [n for n in self.nodes if n is not None]

    def live_edges(self) -> "list[TimingEdge]":
        """All current edges."""
        return [e for e in self.edges if e is not None]

    def node_count(self) -> int:
        """Number of live nodes."""
        return len(self.nodes) - len(self._free_nodes)

    def edge_count(self) -> int:
        """Number of live edges."""
        return len(self.edges) - len(self._free_edges)

    def topological_order(self) -> list[int]:
        """Node ids in topological order (cached until mutation)."""
        if self._topo_cache is not None:
            return self._topo_cache
        in_degree: dict[int, int] = {}
        for node in self.live_nodes():
            in_degree[node.id] = len(self.in_edges[node.id])
        queue = deque(
            node_id for node_id, deg in in_degree.items() if deg == 0
        )
        order: list[int] = []
        while queue:
            node_id = queue.popleft()
            order.append(node_id)
            for edge_id in self.out_edges[node_id]:
                edge = self.edges[edge_id]
                assert edge is not None
                in_degree[edge.dst] -= 1
                if in_degree[edge.dst] == 0:
                    queue.append(edge.dst)
        if len(order) != self.node_count():
            raise TimingError(
                "timing graph contains a cycle (combinational loop?)"
            )
        self._topo_cache = order
        self._rank_cache = None
        return order

    def topological_rank(self) -> dict[int, int]:
        """node id -> position in topological order (cached).

        The incremental engine keys its worklist heap on this; caching
        it here (instead of rebuilding per update) matters because a
        closure run performs thousands of small updates.
        """
        order = self.topological_order()
        if self._rank_cache is None:
            self._rank_cache = {
                node_id: i for i, node_id in enumerate(order)
            }
        return self._rank_cache

    def mark_clock_tree(self, clock_ports: "list[str]") -> None:
        """Flag every node on the clock distribution network.

        Starts at the clock source ports and floods forward; CK pins are
        flagged but not crossed (the CK->Q arc launches the *data*
        domain).
        """
        for node in self.live_nodes():
            node.is_clock_tree = False
        queue: deque[int] = deque()
        for port in clock_ports:
            node_id = self.node_of.get(PinRef(None, port))
            if node_id is None:
                raise TimingError(f"clock port {port} not in timing graph")
            queue.append(node_id)
        while queue:
            node_id = queue.popleft()
            node = self.node(node_id)
            if node.is_clock_tree:
                continue
            node.is_clock_tree = True
            if node.is_clock_sink:
                continue
            for edge_id in self.out_edges[node_id]:
                edge = self.edges[edge_id]
                assert edge is not None
                queue.append(edge.dst)

    def clock_sinks_by_port(self, clock_ports: "list[str]") -> dict[int, str]:
        """Map every clock-sink (CK) node to the port clocking it.

        Floods each clock port's network separately; a sink reachable
        from several ports keeps the first port in ``clock_ports``
        order (deterministic).  The basis of multi-clock analysis: an
        endpoint's capture clock is the clock of its CK sink.
        """
        sink_port: dict[int, str] = {}
        for port in clock_ports:
            start = self.node_of.get(PinRef(None, port))
            if start is None:
                raise TimingError(f"clock port {port} not in timing graph")
            queue: deque[int] = deque([start])
            seen: set[int] = set()
            while queue:
                node_id = queue.popleft()
                if node_id in seen:
                    continue
                seen.add(node_id)
                node = self.node(node_id)
                if node.is_clock_sink:
                    sink_port.setdefault(node_id, port)
                    continue
                for edge_id in self.out_edges[node_id]:
                    queue.append(self.edge(edge_id).dst)
        return sink_port

    def endpoint_nodes(self) -> list[int]:
        """Ids of all endpoint nodes, in id order (deterministic)."""
        return sorted(self.endpoints)

    def launch_node_of_endpoint(self, node_id: int) -> int | None:
        """The CK node paired with an endpoint, or None for ports."""
        info = self.endpoints.get(node_id)
        return info.ck_node if info is not None else None
