"""Multi-corner analysis (SS / TT / FF).

Sign-off times every design at several process/voltage/temperature
corners and merges the worst slack per endpoint.  Each
:class:`Corner` derives an engine from the typical configuration by
scaling cell delays (``delay_scale``) and optionally swapping the AOCV
table; :class:`MultiCornerAnalysis` runs them all and merges.

Setup is checked at every corner (slow corners usually dominate but
derating can flip paths); hold at every corner too (fast corners
dominate).  The merged view is per-endpoint worst — exactly how a
multi-corner signoff report is read.

Corners share one netlist and differ only in values (delay scale,
derate table), so ``update_all`` first tries to propagate them all in
*one* stacked array sweep (:class:`repro.timing.scenarios.ScenarioStack`
— the corner set rides an extra numpy axis over the shared levelized
layout).  Scenarios the stack cannot take — scalar-kernel engines,
structurally diverged graphs — fall back to fanning one corner per
worker through :mod:`repro.parallel`.  Both paths are bit-identical to
a serial per-corner update, and the merge iterates corners in
declaration order either way.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.aocv.table import DeratingTable
from repro.errors import TimingError
from repro.netlist.core import Netlist
from repro.netlist.placement import Placement
from repro.obs.metrics import counter
from repro.obs.trace import span
from repro.parallel.executor import Executor, default_executor
from repro.sdc.constraints import Constraints
from repro.timing.slack import CheckKind, EndpointSlack, SlackSummary
from repro.timing.sta import STAConfig, STAEngine


def _updated_engine(engine: STAEngine) -> STAEngine:
    """Worker body of the corner fan-out (module-level: picklable).

    Returns the engine so the process backend can ship the fully
    propagated copy back; serial/thread backends hand back the very
    object they were given, updated in place.
    """
    engine.update_timing()
    return engine


@dataclass(frozen=True)
class Corner:
    """One PVT corner.

    ``delay_scale`` multiplies every cell delay/slew (SS > 1, FF < 1);
    ``derating_table`` optionally replaces the typical table (corners
    often ship their own OCV characterization).
    """

    name: str
    delay_scale: float
    derating_table: DeratingTable | None = None


#: The classic three-corner set.
DEFAULT_CORNERS = (
    Corner("ss", 1.15),
    Corner("tt", 1.00),
    Corner("ff", 0.87),
)


@dataclass(frozen=True)
class MergedEndpoint:
    """Worst slack of one endpoint across corners, with its corner."""

    name: str
    slack: float
    corner: str


class MultiCornerAnalysis:
    """Runs one design at several corners and merges results."""

    def __init__(
        self,
        netlist: Netlist,
        constraints: Constraints,
        placement: Placement | None,
        base_config: STAConfig,
        corners: "tuple[Corner, ...]" = DEFAULT_CORNERS,
    ):
        if not corners:
            raise TimingError("need at least one corner")
        names = [c.name for c in corners]
        if len(set(names)) != len(names):
            raise TimingError(f"duplicate corner names: {names}")
        self.corners = corners
        #: How the last ``update_all`` ran: ``"stacked"`` (one scenario
        #: sweep), ``"fanout"`` (per-corner workers), or ``"none"``.
        self.last_update_mode = "none"
        self.engines: dict[str, STAEngine] = {}
        for corner in corners:
            config = replace(
                base_config,
                delay_scale=base_config.delay_scale * corner.delay_scale,
                derating_table=(
                    corner.derating_table or base_config.derating_table
                ),
            )
            self.engines[corner.name] = STAEngine(
                netlist, constraints, placement, config
            )

    def engine(self, corner_name: str) -> STAEngine:
        """The engine of one corner."""
        try:
            return self.engines[corner_name]
        except KeyError:
            raise TimingError(f"unknown corner {corner_name!r}") from None

    def update_all(
        self,
        executor: "Executor | None" = None,
        *,
        stacked: bool = True,
    ) -> None:
        """Run timing at every corner, preferring one stacked sweep.

        When every corner engine runs the vector kernel over the same
        structure, the whole corner set propagates as one
        :class:`~repro.timing.scenarios.ScenarioStack` pass — an extra
        numpy axis instead of one process per corner.  Engines the
        stack rejects (:class:`~repro.timing.scenarios.ScenarioError`:
        scalar kernel, diverged structure) fall back to the per-corner
        fan-out; ``stacked=False`` forces that fallback (the bench's
        baseline).

        The fan-out path re-installs engines in corner declaration
        order, and the stacked path is bit-identical per corner to an
        isolated update, so every downstream merge is bit-identical to
        a serial per-corner loop either way.  The process backend
        replaces each engine with its round-tripped, fully propagated
        copy.
        """
        if executor is None:
            executor = default_executor()
        names = list(self.engines)
        with span(
            "corners.update_all",
            corners=len(names),
            backend=executor.backend,
            workers=executor.workers,
        ):
            if stacked and self._update_stacked(names):
                self.last_update_mode = "stacked"
                return
            updated = executor.map(
                _updated_engine,
                [self.engines[name] for name in names],
                chunk_size=1,
                label="corners.update_all",
            )
        for name, engine in zip(names, updated):
            self.engines[name] = engine
        self.last_update_mode = "fanout"

    def _update_stacked(self, names: "list[str]") -> bool:
        """Try the scenario-stacked sweep; True on success.

        A :class:`~repro.timing.scenarios.ScenarioError` (or any
        unexpected stacking failure) is the signal to fall back — the
        fan-out's full per-engine updates overwrite any partial state,
        so falling back mid-way is always safe.  Real timing errors
        (cycles, missing constraints) propagate: the fan-out would hit
        them too.
        """
        from repro.timing.scenarios import ScenarioError, ScenarioStack

        try:
            stack = ScenarioStack.from_engines(
                [self.engines[name] for name in names], names
            )
        except ScenarioError:
            counter("corners.stacked_fallbacks").inc()
            return False
        try:
            stack.update_all()
        except TimingError:
            raise
        except Exception:
            counter("corners.stacked_fallbacks").inc()
            return False
        counter("corners.stacked_updates").inc()
        return True

    # ------------------------------------------------------------------
    # Merged views
    # ------------------------------------------------------------------
    def _merge(self, per_corner: "dict[str, list[EndpointSlack]]"
               ) -> list[MergedEndpoint]:
        worst: dict[str, MergedEndpoint] = {}
        for corner_name, slacks in per_corner.items():
            for s in slacks:
                current = worst.get(s.name)
                if current is None or s.slack < current.slack:
                    worst[s.name] = MergedEndpoint(
                        name=s.name, slack=s.slack, corner=corner_name
                    )
        return sorted(worst.values(), key=lambda m: m.slack)

    def merged_setup(self) -> list[MergedEndpoint]:
        """Per-endpoint worst setup slack across corners."""
        return self._merge({
            name: engine.setup_slacks()
            for name, engine in self.engines.items()
        })

    def merged_hold(self) -> list[MergedEndpoint]:
        """Per-endpoint worst hold slack across corners."""
        return self._merge({
            name: engine.hold_slacks()
            for name, engine in self.engines.items()
        })

    def summary(self) -> dict[str, dict[str, SlackSummary]]:
        """Per-corner setup/hold summaries."""
        return {
            name: {
                "setup": engine.summary(CheckKind.SETUP),
                "hold": engine.summary(CheckKind.HOLD),
            }
            for name, engine in self.engines.items()
        }

    def dominant_corner(self, kind: CheckKind = CheckKind.SETUP) -> str:
        """The corner holding the design's overall worst slack."""
        merged = (
            self.merged_setup() if kind is CheckKind.SETUP
            else self.merged_hold()
        )
        if not merged:
            raise TimingError("design has no endpoints to merge")
        return merged[0].corner

    def report(self) -> str:
        """Human-readable multi-corner summary block."""
        lines = [f"{'corner':<6} {'scale':>6} {'setup WNS':>11} "
                 f"{'setup TNS':>12} {'hold WNS':>10}"]
        lines.append("-" * len(lines[0]))
        for corner in self.corners:
            summary = self.summary()[corner.name]
            lines.append(
                f"{corner.name:<6} {corner.delay_scale:>6.2f} "
                f"{summary['setup'].wns:>11.1f} "
                f"{summary['setup'].tns:>12.1f} "
                f"{summary['hold'].wns:>10.1f}"
            )
        merged = self.merged_setup()
        if merged:
            worst = merged[0]
            lines.append(
                f"merged setup WNS {worst.slack:.1f} ps "
                f"at {worst.name} ({worst.corner} corner)"
            )
        return "\n".join(lines)
