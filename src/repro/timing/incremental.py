"""Incremental timing update.

Re-running full STA after every optimizer transform is the classic
bottleneck the paper's Fig. 5 sidesteps with "incremental timing update
techniques".  This module implements cone invalidation: a netlist edit
seeds a set of timing nodes, and a rank-ordered worklist re-propagates
arrivals/slews only while values keep changing.

Correctness contract (property-tested): after any sequence of edits,
``apply_change_incremental`` leaves the state identical to a full
``update_timing()``.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import TimingError
from repro.netlist.edit import ChangeRecord
from repro.obs.metrics import counter
from repro.timing.graph import TimingGraph
from repro.timing.propagation import (
    BoundaryConditions,
    TimingState,
    propagate_full,
    relax_node,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.netlist.core import PinRef
    from repro.timing.delaycalc import DelayCalculator
    from repro.timing.sta import STAEngine

_EPS = 1e-9


def _collect_seed_nodes(graph: TimingGraph, change: ChangeRecord) -> set[int]:
    """Timing nodes whose inputs may have changed after an edit.

    * every pin node of a touched gate (its arcs/caps changed);
    * the driving gate's *input* pins for every touched net (load on the
      net changed, so those cell arcs must be re-evaluated);
    * the driver output node and all load nodes of every touched net
      (net arcs changed).
    """
    netlist = graph.netlist
    seeds: set[int] = set()
    for gate_name in change.gates:
        if gate_name not in netlist.gates:
            continue
        cell = netlist.cell_of(gate_name)
        for pin in cell.pins.values():
            node_id = graph.node_of.get(
                _ref(gate_name, pin.name)
            )
            if node_id is not None:
                seeds.add(node_id)
    for net_name in change.nets:
        if net_name not in netlist.nets:
            continue
        driver = netlist.net_driver(net_name)
        if driver is not None:
            driver_node = graph.node_of.get(driver)
            if driver_node is not None:
                seeds.add(driver_node)
            if driver.gate is not None:
                cell = netlist.cell_of(driver.gate)
                for pin in cell.input_pins:
                    node_id = graph.node_of.get(_ref(driver.gate, pin.name))
                    if node_id is not None:
                        seeds.add(node_id)
        for load in netlist.net_loads(net_name):
            node_id = graph.node_of.get(load)
            if node_id is not None:
                seeds.add(node_id)
    return seeds


def _ref(gate: str, pin: str) -> "PinRef":
    from repro.netlist.core import PinRef

    return PinRef(gate, pin)


def _mirror_structure(engine: "STAEngine", change: ChangeRecord) -> bool:
    """Sync the timing graph with the netlist after an edit.

    Returns True when topology changed (new/removed nodes or edges), in
    which case depths, clock marking, and derates must be refreshed.
    """
    graph: TimingGraph = engine.graph
    netlist = engine.netlist
    structural = False
    for gate_name in change.gates:
        in_netlist = gate_name in netlist.gates
        has_nodes = any(
            r.gate == gate_name for r in graph.node_of
        )
        if in_netlist and not has_nodes:
            graph.add_gate_nodes(gate_name)
            structural = True
        elif not in_netlist and has_nodes:
            graph.remove_gate_nodes(gate_name)
            structural = True
        elif in_netlist:
            # Gate exists on both sides: a resize may have re-pointed the
            # instance at a different cell, so re-bind the arc tables.
            refresh_gate_arcs(graph, gate_name)
    for net_name in change.nets:
        if net_name in netlist.nets:
            graph.rebuild_net(net_name)
            structural = True
        else:
            stale = [
                e.id for e in graph.live_edges()
                if e.net == net_name
            ]
            for edge_id in stale:
                graph._drop_edge(edge_id)
            if stale:
                structural = True
    return structural


def refresh_gate_arcs(graph: TimingGraph, gate_name: str) -> None:
    """Re-bind a gate's cell-arc references after a cell swap.

    Size variants share pin names, so the graph topology is unchanged;
    only the characterized tables (and the endpoint's constraint arcs)
    move.
    """
    from repro.liberty.cell import ArcKind

    graph.arc_epoch += 1  # invalidate per-level LUT groupings
    cell = graph.netlist.cell_of(gate_name)
    for edge in graph.live_edges():
        if edge.gate != gate_name or edge.arc is None:
            continue
        src_pin = graph.node(edge.src).ref.pin
        dst_pin = graph.node(edge.dst).ref.pin
        arc = cell.arc_between(src_pin, dst_pin)
        if arc is not None:
            edge.arc = arc
    setup = next(
        (a for a in cell.constraint_arcs() if a.kind is ArcKind.SETUP), None
    )
    hold = next(
        (a for a in cell.constraint_arcs() if a.kind is ArcKind.HOLD), None
    )
    for info in graph.endpoints.values():
        if info.gate == gate_name:
            info.setup_arc = setup
            info.hold_arc = hold


def propagate_incremental(
    graph: TimingGraph,
    calc: "DelayCalculator",
    state: TimingState,
    boundary: BoundaryConditions,
    seeds: set[int],
) -> int:
    """Re-propagate from seed nodes; returns the number of nodes visited.

    Nodes are processed in topological rank order (a heap keyed by rank)
    so every node is relaxed at most once per update, after all of its
    possibly-dirty predecessors.
    """
    if not seeds:
        return 0
    rank = graph.topological_rank()
    heap: list[tuple[int, int]] = []
    queued: set[int] = set()
    for node_id in seeds:
        if node_id in rank:
            heapq.heappush(heap, (rank[node_id], node_id))
            queued.add(node_id)
    visited = 0
    while heap:
        _, node_id = heapq.heappop(heap)
        queued.discard(node_id)
        visited += 1
        old_late = state.arrival_late[node_id]
        old_early = state.arrival_early[node_id]
        old_slew = state.slew[node_id]
        relax_node(graph, state, node_id, boundary)
        node_changed = (
            abs(state.arrival_late[node_id] - old_late) > _EPS
            or abs(state.arrival_early[node_id] - old_early) > _EPS
            or abs(state.slew[node_id] - old_slew) > _EPS
        )
        # Out-edge delays depend on the node's slew and on downstream
        # loads; seeds may have stale edges even when the node's own
        # values did not move, so always recompute and diff.
        edges_changed = False
        for edge_id in graph.out_edges[node_id]:
            edge = graph.edge(edge_id)
            old_delay, old_out_slew = edge.delay, edge.out_slew
            calc.compute_edge(graph, edge, float(state.slew[node_id]))
            if (
                abs(edge.delay - old_delay) > _EPS
                or abs(edge.out_slew - old_out_slew) > _EPS
            ):
                edges_changed = True
        if node_changed or edges_changed:
            for edge_id in graph.out_edges[node_id]:
                dst = graph.edge(edge_id).dst
                if dst not in queued:
                    heapq.heappush(heap, (rank[dst], dst))
                    queued.add(dst)
    return visited


def _propagate(engine: "STAEngine", seeds: set[int]) -> int:
    """Run the engine's configured incremental kernel over ``seeds``.

    The vector kernel advances a per-level frontier over the levelized
    layout (see :func:`repro.timing.kernel.propagate_incremental`); the
    scalar kernel runs the rank-ordered worklist above.  Both relax the same
    node set and produce bit-identical states.  An unexpected vector
    failure falls back to a *full* scalar pass (a fixpoint regardless
    of how far the vector sweep got) and counts ``kernel.fallbacks``.
    """
    if getattr(engine, "kernel", "scalar") == "vector":
        from repro.timing import kernel as kernel_mod

        try:
            return kernel_mod.propagate_incremental(
                engine._ensure_layout(), engine.graph, engine.calc,
                engine.state, engine.boundary(), seeds,
            )
        except TimingError:
            raise
        except Exception:
            counter("kernel.fallbacks").inc()
            propagate_full(
                engine.graph, engine.calc, engine.state, engine.boundary()
            )
            if engine._layout is not None:
                kernel_mod.sync_edge_arrays(engine._layout, engine.graph)
            return engine.graph.node_count()
    return propagate_incremental(
        engine.graph, engine.calc, engine.state, engine.boundary(), seeds
    )


def _seed_derate_moves(engine: "STAEngine", seeds: set[int],
                       old_derates: np.ndarray) -> None:
    """Seed the dst of every edge whose late derate moved (or is new).

    A structural edit changes GBA depths — and therefore derates — on
    gates far from the edit site; those edges' destinations must be
    re-relaxed too.  With a current levelized layout the diff is three
    array ops; otherwise it falls back to the per-edge loop.
    """
    shared = min(old_derates.size, engine.state.derate_late.size)
    layout = getattr(engine, "_layout", None)
    if (
        layout is not None
        and layout.structure_version == engine.graph.structure_version
    ):
        live = layout.live_eids
        old_part = live[live < shared]
        moved = old_part[
            np.abs(
                engine.state.derate_late[old_part] - old_derates[old_part]
            ) > _EPS
        ]
        seeds.update(layout.edge_dst[moved].tolist())
        seeds.update(layout.edge_dst[live[live >= shared]].tolist())
        return
    for edge in engine.graph.live_edges():
        if edge.id >= shared:
            seeds.add(edge.dst)
        elif abs(
            engine.state.derate_late[edge.id] - old_derates[edge.id]
        ) > _EPS:
            seeds.add(edge.dst)


def apply_change_incremental(engine: "STAEngine", change: ChangeRecord) -> int:
    """Mirror a netlist edit into an engine and update its timing.

    Returns the number of nodes the incremental pass visited (useful
    for instrumentation and the Table 5 runtime bench).

    A structural edit (buffer in/out) changes GBA depths — and therefore
    derates — on gates far from the edit site, so after refreshing the
    derate arrays every edge whose derate moved seeds its destination
    node in addition to the edit's own cone.

    Cell swaps (``resize`` / ``vt_swap``) keep topology, depths, and
    derates (derating depends on depth and weight, not on the cell), so
    they take a fast path: re-bind the arc tables and re-propagate the
    cone — no graph surgery, no depth recompute, no derate pass.
    """
    engine.ensure_timing()
    if change.kind in ("resize", "vt_swap"):
        for gate_name in change.gates:
            refresh_gate_arcs(engine.graph, gate_name)
        seeds = _collect_seed_nodes(engine.graph, change)
        visited = _propagate(engine, seeds)
        engine.crpr.invalidate()
        engine._timing_fresh = True
        return visited
    old_derates = engine.state.derate_late.copy()
    structural = _mirror_structure(engine, change)
    if structural:
        engine._refresh_structure()
    seeds = _collect_seed_nodes(engine.graph, change)
    _seed_derate_moves(engine, seeds, old_derates)
    visited = _propagate(engine, seeds)
    engine.crpr.invalidate()
    engine._timing_fresh = True
    return visited
