"""The STA engine facade.

:class:`STAEngine` owns the timing graph, delay calculator, propagation
state, AOCV context, and CRPR calculator for one design, and exposes the
operations the rest of the system needs:

* ``update_timing()`` — full propagation.
* ``apply_change(record)`` — mirror a netlist edit and update
  incrementally (see :mod:`repro.timing.incremental`).
* ``setup_slacks()`` / ``hold_slacks()`` / ``summary()`` — QoR views.
* ``set_gate_weights(...)`` — install mGBA per-gate correction factors
  (``weight = 1 + x_j``) and refresh; this is how the solved model is
  applied back to the graph (Fig. 5 of the paper, "update timing
  graph").
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.aocv.depth import compute_gba_depths
from repro.aocv.table import DeratingTable
from repro.errors import TimingError
from repro.netlist.core import Netlist
from repro.netlist.edit import ChangeRecord
from repro.netlist.placement import Placement
from repro.obs.metrics import counter, histogram
from repro.obs.trace import span
from repro.sdc.constraints import Constraints
from repro.timing import kernel as kernel_mod
from repro.timing.crpr import CRPRCalculator
from repro.timing.delaycalc import DelayCalculator
from repro.timing.graph import TimingGraph
from repro.timing.propagation import (
    BoundaryConditions,
    DerateSettings,
    TimingState,
    compute_edge_derates,
    propagate_full,
)
from repro.timing import slack as slack_mod
from repro.timing.slack import CheckKind, EndpointSlack, SlackSummary


@dataclass(frozen=True)
class STAConfig:
    """Engine knobs.

    Attributes
    ----------
    derating_table:
        AOCV table for data cells; None disables AOCV (flat
        ``flat_derate_late`` applies instead).
    clock_derate_late / clock_derate_early:
        Flat OCV derates on clock-network arcs; their gap is what CRPR
        credits back on common segments.
    data_early_derate:
        Flat early derate on data cells (hold analysis).
    input_slew / clock_slew:
        Boundary slews at data/clock input ports (ps).
    wire_r_per_nm / wire_c_per_nm:
        Elmore wire parasitics (kOhm/nm, fF/nm).
    gba_distance:
        AOCV distance used by GBA for every gate; None derives the
        conservative value (whole-design bounding-box half-perimeter).
    flat_derate_late:
        Data-cell late derate when no AOCV table is installed.
    """

    derating_table: DeratingTable | None = None
    #: Hold-side AOCV: early derates (< 1) per (depth, distance); when
    #: None, the flat ``data_early_derate`` applies instead.  GBA uses
    #: the same worst depth as for late analysis — the early factor
    #: grows toward 1 with depth, so the *smallest* depth again gives
    #: the conservative (smallest) bound.
    early_derating_table: DeratingTable | None = None
    clock_derate_late: float = 1.05
    clock_derate_early: float = 0.95
    data_early_derate: float = 0.90
    input_slew: float = 20.0
    clock_slew: float = 15.0
    wire_r_per_nm: float = 1e-6
    wire_c_per_nm: float = 2e-4
    gba_distance: float | None = None
    flat_derate_late: float = 1.0
    #: Global process/voltage/temperature scale on every cell delay and
    #: slew (1.0 = typical; slow corners > 1, fast corners < 1).  Used
    #: by :mod:`repro.timing.corners` to derive corner engines from one
    #: characterized library.
    delay_scale: float = 1.0
    #: Propagation kernel: ``"vector"`` (levelized numpy kernel, see
    #: :mod:`repro.timing.kernel`) or ``"scalar"`` (the per-node oracle).
    #: ``None`` defers to ``REPRO_STA_KERNEL`` (default ``vector``).
    #: Deliberately excluded from the service-layer config hash — both
    #: kernels produce bit-identical results.
    kernel: str | None = None


_KERNELS = ("vector", "scalar")


def resolve_kernel(configured: str | None) -> str:
    """Resolve the propagation kernel: config beats env beats default."""
    value = configured or os.environ.get("REPRO_STA_KERNEL") or "vector"
    if value not in _KERNELS:
        raise TimingError(
            f"unknown STA kernel {value!r}; expected one of {_KERNELS}"
        )
    return value


class STAEngine:
    """Graph-based timing analysis of one design."""

    def __init__(
        self,
        netlist: Netlist,
        constraints: Constraints,
        placement: Placement | None = None,
        config: STAConfig | None = None,
    ):
        self.netlist = netlist
        self.constraints = constraints
        self.placement = placement
        self.config = config or STAConfig()
        self.graph = TimingGraph(netlist)
        self.calc = DelayCalculator(
            netlist, placement,
            self.config.wire_r_per_nm, self.config.wire_c_per_nm,
            delay_scale=self.config.delay_scale,
        )
        self.state = TimingState()
        self.crpr = CRPRCalculator(self.graph, self.state)
        self.weights: dict[str, float] = {}
        self.gba_depths: dict[str, int] = {}
        self.kernel = resolve_kernel(self.config.kernel)
        self._layout: kernel_mod.LevelizedLayout | None = None
        self._boundary: BoundaryConditions | None = None
        self._structure_dirty = True
        self._timing_fresh = False
        self._setup_slack_cache: list[EndpointSlack] | None = None

    # ------------------------------------------------------------------
    # Configuration-derived values
    # ------------------------------------------------------------------
    @property
    def clock_ports(self) -> list[str]:
        """Source ports of all defined clocks."""
        return [c.source_port for c in self.constraints.clocks.values()]

    def gba_distance(self) -> float:
        """The conservative AOCV distance GBA uses for every gate."""
        if self.config.gba_distance is not None:
            return self.config.gba_distance
        if self.placement is None or not self.placement.locations:
            return 0.0
        return self.placement.bbox_half_perimeter(
            list(self.placement.locations)
        )

    def boundary(self) -> BoundaryConditions:
        """Boundary conditions derived from the SDC constraints."""
        if self._boundary is None:
            input_delays = {
                entry.port: entry.delay
                for entry in self.constraints.io_delays if entry.is_input
            }
            self._boundary = BoundaryConditions(
                clock_ports=frozenset(self.clock_ports),
                input_delays=input_delays,
                input_slew=self.config.input_slew,
                clock_slew=self.config.clock_slew,
            )
        return self._boundary

    def derate_settings(self) -> DerateSettings:
        """Current derating context for edge classification."""
        return DerateSettings(
            table=self.config.derating_table,
            early_table=self.config.early_derating_table,
            gba_distance=self.gba_distance(),
            clock_late=self.config.clock_derate_late,
            clock_early=self.config.clock_derate_early,
            data_early=self.config.data_early_derate,
            flat_late=self.config.flat_derate_late,
        )

    # ------------------------------------------------------------------
    # Timing updates
    # ------------------------------------------------------------------
    def _ensure_layout(self) -> kernel_mod.LevelizedLayout:
        """The levelized layout of the current topology (vector kernel).

        Rebuilt only when the graph's ``structure_version`` moved, so a
        weight-only re-derate (every mGBA ``set_gate_weights``) reuses
        the flattened arrays.  When the version did move, a bounded
        structural edit (the what-if loop's buffer insert/remove) is
        first spliced into the existing layout via
        :func:`repro.timing.kernel.patch_layout`; only a non-patchable
        edit pays the full flattening.
        """
        layout = self._layout
        if (
            layout is not None
            and layout.structure_version != self.graph.structure_version
        ):
            layout = kernel_mod.patch_layout(
                layout, self.graph, self.boundary(), self.gba_depths
            )
            self._layout = layout
        if layout is None:
            layout = kernel_mod.build_layout(
                self.graph, self.boundary(), self.gba_depths
            )
            self._layout = layout
        return layout

    def _refresh_structure(self) -> None:
        """Recompute everything that depends on graph topology."""
        self.graph.mark_clock_tree(self.clock_ports)
        self.gba_depths = compute_gba_depths(self.netlist)
        # Clock marking is deterministic per topology, so a layout built
        # for this structure_version stays valid across weight-only
        # refreshes — the reuse that makes mGBA weight installs cheap.
        if self.kernel == "vector":
            kernel_mod.compute_edge_derates(
                self._ensure_layout(), self.graph, self.state,
                self.derate_settings(), self.weights,
            )
        else:
            compute_edge_derates(
                self.graph, self.state, self.derate_settings(),
                self.gba_depths, self.weights,
            )
        self._structure_dirty = False

    def update_timing(self) -> None:
        """Full delay calculation + propagation over the whole design."""
        with span(
            "sta.update_timing", structure_dirty=self._structure_dirty,
            kernel=self.kernel,
        ) as update_span:
            if self._structure_dirty:
                self._refresh_structure()
            if self.kernel == "vector":
                try:
                    kernel_mod.propagate_full(
                        self._ensure_layout(), self.graph, self.calc,
                        self.state, self.boundary(),
                    )
                except TimingError:
                    raise  # cycles etc. — the scalar path raises too
                except Exception:
                    counter("kernel.fallbacks").inc()
                    propagate_full(
                        self.graph, self.calc, self.state, self.boundary()
                    )
                    if self._layout is not None:
                        kernel_mod.sync_edge_arrays(self._layout, self.graph)
            else:
                propagate_full(
                    self.graph, self.calc, self.state, self.boundary()
                )
            self.crpr.invalidate()
            self._setup_slack_cache = None
            self._timing_fresh = True
        counter("sta.full_updates").inc()
        histogram("sta.update_seconds").observe(update_span.duration)

    def ensure_timing(self) -> None:
        """Run a full update if no valid timing is available."""
        if not self._timing_fresh:
            self.update_timing()

    def set_gate_weights(self, weights: dict[str, float]) -> None:
        """Install mGBA per-gate derate multipliers and re-analyze.

        ``weights`` maps gate names to ``1 + x_j``; gates absent from the
        map keep weight 1.0 (plain GBA).  Weights are clamped below so a
        wildly optimistic correction can never drive an effective derate
        negative.
        """
        floor = 0.05
        self.weights = {
            gate: max(value, floor) for gate, value in weights.items()
        }
        self._structure_dirty = True
        self._timing_fresh = False

    def clear_gate_weights(self) -> None:
        """Return to plain GBA derating."""
        self.weights = {}
        self._structure_dirty = True
        self._timing_fresh = False

    def apply_change(self, change: ChangeRecord) -> None:
        """Mirror a netlist edit into the graph and update incrementally."""
        from repro.timing.incremental import apply_change_incremental

        self._setup_slack_cache = None
        apply_change_incremental(self, change)
        counter("sta.incremental_updates").inc()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def setup_slacks(self) -> list[EndpointSlack]:
        """GBA setup slack at every endpoint (fresh timing guaranteed).

        Memoized until the next timing update — the closure loop asks
        several times per candidate move.
        """
        self.ensure_timing()
        if self._setup_slack_cache is None:
            self._setup_slack_cache = slack_mod.setup_slacks(
                self.graph, self.state, self.constraints
            )
        return self._setup_slack_cache

    def hold_slacks(self) -> list[EndpointSlack]:
        """GBA hold slack at every flop endpoint."""
        self.ensure_timing()
        return slack_mod.hold_slacks(self.graph, self.state, self.constraints)

    def summary(self, kind: CheckKind = CheckKind.SETUP) -> SlackSummary:
        """WNS / TNS / violation-count aggregate for one check."""
        slacks = (
            self.setup_slacks() if kind is CheckKind.SETUP
            else self.hold_slacks()
        )
        return SlackSummary.from_slacks(kind, slacks)

    def violating_endpoints(self) -> list[EndpointSlack]:
        """Setup endpoints with negative slack, worst first."""
        return sorted(
            (s for s in self.setup_slacks() if s.slack < 0),
            key=lambda s: s.slack,
        )

    def design_rule_violations(self) -> list[dict]:
        """Max-transition / max-capacitance design-rule check.

        Returns one record per violating pin:
        ``{"pin", "kind", "value", "limit"}`` with kind
        ``"max_transition"`` (propagated slew exceeds the pin's limit)
        or ``"max_capacitance"`` (an output pin drives more than it is
        characterized for).  Sorted worst-overshoot first.
        """
        self.ensure_timing()
        violations: list[dict] = []
        for node in self.graph.live_nodes():
            ref = node.ref
            if ref.gate is None:
                continue
            pin = self.netlist.cell_of(ref.gate).pin(ref.pin)
            slew = float(self.state.slew[node.id])
            if slew > pin.max_transition:
                violations.append({
                    "pin": str(ref),
                    "kind": "max_transition",
                    "value": slew,
                    "limit": pin.max_transition,
                })
            from repro.liberty.cell import PinDirection

            if pin.direction is PinDirection.OUTPUT:
                net = self.netlist.gate(ref.gate).connections.get(ref.pin)
                if net is not None:
                    load = self.calc.output_load(net)
                    if load > pin.max_capacitance:
                        violations.append({
                            "pin": str(ref),
                            "kind": "max_capacitance",
                            "value": load,
                            "limit": pin.max_capacitance,
                        })
        violations.sort(key=lambda v: v["limit"] - v["value"])
        return violations

    def required_times(self):
        """Late required time per node (see :func:`compute_required_times`)."""
        self.ensure_timing()
        if self.kernel == "vector":
            return kernel_mod.compute_required_times(
                self._ensure_layout(), self.graph, self.state,
                self.constraints,
            )
        return slack_mod.compute_required_times(
            self.graph, self.state, self.constraints
        )

    def gate_slacks(self) -> dict[str, float]:
        """Worst slack per gate (optimizer candidate ranking)."""
        required = self.required_times()
        if self.kernel == "vector":
            return kernel_mod.gate_worst_slacks(
                self._ensure_layout(), self.graph, self.state, required
            )
        return slack_mod.gate_worst_slacks(self.graph, self.state, required)

    # ------------------------------------------------------------------
    # Introspection used by PBA / mGBA
    # ------------------------------------------------------------------
    def node_id(self, gate: str | None, pin: str) -> int:
        """Timing node id of a pin reference."""
        from repro.netlist.core import PinRef

        ref = PinRef(gate, pin)
        try:
            return self.graph.node_of[ref]
        except KeyError:
            raise TimingError(f"no timing node for {ref}") from None

    def late_edge_delay(self, edge_id: int) -> float:
        """Derated late delay of one edge."""
        edge = self.graph.edge(edge_id)
        return edge.delay * float(self.state.derate_late[edge_id])

    def base_edge_delay(self, edge_id: int) -> float:
        """Underated base delay of one edge."""
        return self.graph.edge(edge_id).delay

    def with_config(self, **overrides) -> "STAConfig":
        """A copy of the config with fields replaced (convenience)."""
        return replace(self.config, **overrides)
