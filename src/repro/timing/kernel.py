"""Levelized array-batched STA kernel.

The scalar engine in :mod:`repro.timing.propagation` walks the timing
graph one node at a time: ``relax_node`` loops a Python ``for`` over the
fanin, ``compute_out_edges`` runs one NLDM lookup per arc, and the
backward required-time pass in :mod:`repro.timing.slack` mirrors the
same shape.  Profiling (``--profile`` on ``sta.update_timing``) shows
those ~|V|+|E| Python iterations are where the whole mGBA loop spends
its time.

This module compiles the live :class:`~repro.timing.graph.TimingGraph`
into a **levelized CSR layout** once per structural change and then
executes propagation one *level* at a time with numpy segment
reductions:

* level ``l`` holds every node whose longest fanin chain has ``l``
  edges, so all of level ``l``'s inputs are final before the level runs;
* late arrivals are ``np.maximum.reduceat`` over the level's flattened
  fanin slice, early arrivals ``np.minimum.reduceat``, worst-slew the
  max of the fanin arcs' out-slews — a handful of array ops per level
  instead of per-node Python loops;
* delay calculation batches each level's fanout arcs through
  :meth:`~repro.timing.delaycalc.DelayCalculator.compute_arcs_batch`
  (one vectorized bilinear LUT interpolation per distinct table pair);
* the AOCV/mGBA derate fill becomes a vectorized scatter: depth →
  derate via a per-depth table indexed by an integer depth array,
  multiplied by a per-gate weight vector.

**Bit-identity contract** (enforced by ``tests/timing/test_kernel.py``):
every arithmetic expression evaluates the same IEEE-754 operations in
the same association order as the scalar oracle, and ``max``/``min``
reductions are order-independent, so arrivals, slews, slacks, and
required times are *bit-identical* between kernels — full updates,
weighted (mGBA) updates, and post-edit incremental states alike.

Incremental updates reuse the layout: a per-level frontier seeded from
the edit's cone advances through exactly the levels that contain dirty
nodes (a heap of level indices over id buckets), re-relaxing only the
dirty slice of each touched level and marking fanout dirty exactly when
the scalar worklist would (value or out-edge movement beyond the shared
epsilon) — O(cone), not O(levels) — so ``closure.run``'s thousands of
ECO updates ride the same arrays.

Two cold-path amortizations complete the picture.  **Persistence**: a
pristine graph's structural arrays are content-addressed and, when a
:class:`~repro.service.store.DiskStore` is attached via
:func:`set_layout_disk_store`, serialized under its ``layout/`` class —
a process-level cache miss hydrates from disk instead of re-flattening,
so serve restarts and repeated CLI runs never rebuild a known design.
**Patching**: a bounded structural edit (the what-if loop's buffer
insert/remove) is spliced into the existing layout by
:func:`patch_layout` using the graph's structure journal, falling back
to a full rebuild whenever the edit's level impact is not provably
local.  Both paths preserve the bit-identity contract: a hydrated or
patched layout is structurally equal to a fresh build up to level
assignment legality, which the sweeps' per-node reductions are
insensitive to.
"""

from __future__ import annotations

import heapq
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.aocv.depth import derates_by_depth
from repro.obs.metrics import counter, gauge, histogram
from repro.obs.trace import span
from repro.timing.graph import EdgeKind, TimingGraph
from repro.timing.propagation import (
    NEG_INF,
    POS_INF,
    BoundaryConditions,
    DerateSettings,
    EdgeDomain,
    TimingState,
    classify_edge,
)

if TYPE_CHECKING:
    from repro.sdc.constraints import Constraints
    from repro.timing.delaycalc import DelayCalculator

#: Movement threshold shared with the scalar incremental worklist
#: (:data:`repro.timing.incremental._EPS`); both kernels must agree on
#: it or their post-edit states diverge.
_EPS = 1e-9

#: ``edge_domain`` codes (compact mirror of :class:`EdgeDomain`).
DOMAIN_CLOCK = 0
DOMAIN_DATA = 1
DOMAIN_PLAIN = 2


@dataclass
class LevelizedLayout:
    """The live timing graph flattened into level-ordered CSR arrays.

    Node arrays are indexed two ways: *positions* (0..n_live-1, level
    order, ties by node id) index the CSR structures; *node ids* index
    the :class:`TimingState` arrays, exactly like the scalar engine.
    ``order[pos]`` maps position → id and ``pos_of[id]`` maps back
    (-1 for dead slots).
    """

    structure_version: int
    n_node_slots: int
    n_edge_slots: int
    # -- levelization ---------------------------------------------------
    order: np.ndarray             # node ids, level-major
    pos_of: np.ndarray            # id -> position (-1 dead)
    level_ptr: np.ndarray         # len L+1; level l = order[ptr[l]:ptr[l+1]]
    # -- fanin CSR (position-major) ------------------------------------
    in_ptr: np.ndarray
    in_edge: np.ndarray           # edge ids
    in_src: np.ndarray            # src node ids
    # -- fanout CSR (position-major) -----------------------------------
    out_ptr: np.ndarray
    out_edge: np.ndarray
    out_dst: np.ndarray
    # -- per-edge-slot arrays (edge-id indexed) ------------------------
    edge_live: np.ndarray         # bool
    edge_dst: np.ndarray          # int
    live_eids: np.ndarray         # ids of live edges, ascending
    #: Working copies of ``TimingEdge.delay`` / ``.out_slew`` — the
    #: kernel's store of record during a sweep, written back to the
    #: edge objects afterwards so PBA/CRPR/reporting see fresh values.
    edge_delay: np.ndarray
    edge_out_slew: np.ndarray
    # -- derate classification -----------------------------------------
    clock_eids: np.ndarray
    plain_eids: np.ndarray
    data_eids: np.ndarray
    data_depths: np.ndarray       # int depth per data edge (aligned)
    data_gate_cols: np.ndarray    # column per data edge (aligned)
    #: Column order of the mGBA weight vector: ``gates[j]`` is the gate
    #: scattered into column j — the same gate → column contract
    #: :class:`repro.mgba.problem.MGBAProblem` uses for its matrix.
    gates: list[str]
    gate_index: dict[str, int]
    # -- node-level metadata -------------------------------------------
    node_is_clock_tree: np.ndarray   # bool, id-indexed
    node_gate_col: np.ndarray        # id-indexed col into node_gates, -1 none
    node_gates: list[str]            # first-seen (node-id order) gate names
    # -- boundary (level-0) values, id-indexed -------------------------
    source_ids: np.ndarray
    boundary_arrival: np.ndarray     # id-indexed (only source slots valid)
    boundary_slew: np.ndarray
    # -- delay-calc statics --------------------------------------------
    cell_nets: list[str]             # unique nets loading a cell arc
    cell_edge_net: np.ndarray        # id-indexed index into cell_nets (-1)
    net_eids_by_level: list[np.ndarray]
    net_srcs_by_level: list[np.ndarray]
    cell_eids_by_level: list[np.ndarray]
    # -- id-indexed topology mirrors -----------------------------------
    #: Level per node id (-1 dead) — the frontier sweep buckets dirty
    #: nodes by it, and the patcher's worklist updates it in place.
    node_level: np.ndarray
    edge_src: np.ndarray             # id-indexed src node (dead slots stale)
    edge_is_net: np.ndarray          # bool, id-indexed
    # -- lazily (arc-epoch keyed) rebuilt LUT grouping ------------------
    _group_epoch: int = field(default=-1, repr=False)
    _cell_groups: "list[list[tuple[Any, Any, np.ndarray, np.ndarray]]]" = field(
        default_factory=list, repr=False
    )
    #: Fingerprint of the last completed full vector pass.  Slews, base
    #: delays, and loads are independent of the mGBA weights (weights
    #: only scale the *arrival* accumulation), so while the fingerprint
    #: — ``(arc_epoch, id(calc), delay_scale, id(state), boundary)`` —
    #: is unchanged those quantities are already at their fixpoint and a
    #: full update reduces to the arrival-only sweep.  Any netlist edit
    #: bumps ``arc_epoch`` or ``structure_version`` (fresh layout), so
    #: the cache never sees stale delay-calc inputs.
    _flow_key: "tuple | None" = field(default=None, repr=False)

    @property
    def levels(self) -> int:
        """Number of levels in the layout."""
        return len(self.level_ptr) - 1

    # ------------------------------------------------------------------
    def cell_groups(self, graph: TimingGraph):
        """Per-level cell arcs grouped by (delay table, slew table).

        Rebuilt whenever ``graph.arc_epoch`` moves (a resize/vt-swap
        re-binds arc tables without touching topology).
        """
        if self._group_epoch == graph.arc_epoch:
            return self._cell_groups
        groups: list[list[tuple[Any, Any, np.ndarray, np.ndarray]]] = []
        for eids in self.cell_eids_by_level:
            by_table: dict[tuple[int, int], list[int]] = {}
            tables: dict[tuple[int, int], tuple[Any, Any]] = {}
            for eid in eids.tolist():
                edge = graph.edges[eid]
                assert edge is not None and edge.arc is not None
                key = (id(edge.arc.delay), id(edge.arc.output_slew))
                tables[key] = (edge.arc.delay, edge.arc.output_slew)
                by_table.setdefault(key, []).append(eid)
            level_groups = []
            for key, members in by_table.items():
                arr = np.asarray(members, dtype=np.int64)
                dtab, stab = tables[key]
                level_groups.append(
                    (dtab, stab, arr, self.edge_src_of(graph, arr))
                )
            groups.append(level_groups)
        self._cell_groups = groups
        self._group_epoch = graph.arc_epoch
        return groups

    def edge_src_of(self, graph: TimingGraph, eids: np.ndarray) -> np.ndarray:
        """Source node ids of the given edges."""
        srcs = []
        for eid in eids.tolist():
            edge = graph.edges[eid]
            assert edge is not None
            srcs.append(edge.src)
        return np.asarray(srcs, dtype=np.int64)


#: In-process LRU of built layouts, content-keyed.  Engines built from
#: the *same design content* (the multi-corner fan-out, repeated cold
#: bench runs in one process) share one flattening pass: the clone
#: aliases every structural array — levelization, CSR, derate
#: classification, boundary — and only the mutable edge-value arrays
#: are allocated fresh per engine.  Bounded small: a layout references
#: a few |V|+|E| arrays, and anything beyond the working corner set of
#: one process is dead weight.
_LAYOUT_CACHE_MAX = 8
_layout_cache: "OrderedDict[tuple, LevelizedLayout]" = OrderedDict()

#: Version of the persisted layout payload.  Key material (a schema
#: bump misses cleanly instead of needing a cache wipe) *and* a payload
#: sanity field checked again on hydrate.
LAYOUT_SCHEMA = 1

#: Optional disk tier behind the in-process LRU: a
#: :class:`repro.service.store.DiskStore` whose ``layout/`` class holds
#: serialized structural arrays.  Opt-in (service / CLI / bench wiring)
#: rather than ambient, so library users and tests never grow a
#: ``.repro_cache/`` as a side effect of building a layout.
_disk_store: "Any | None" = None


def set_layout_disk_store(store: "Any | None") -> None:
    """Attach (or with ``None`` detach) the layout persistence tier.

    Once attached, every content-keyed build is serialized under the
    store's ``layout/`` class and a process-level cache miss tries disk
    hydration before re-flattening — ``kernel.layout_disk_hits`` /
    ``kernel.layout_disk_misses`` count the outcomes, and a corrupt or
    schema-mismatched payload falls back to a fresh build.
    """
    global _disk_store
    _disk_store = store


def layout_disk_store() -> "Any | None":
    """The currently attached layout persistence store, if any."""
    return _disk_store


def clear_layout_cache() -> None:
    """Drop all cached layouts (test isolation hook)."""
    _layout_cache.clear()


def _layout_cache_key(
    graph: TimingGraph,
    boundary: BoundaryConditions,
    depths: "dict[str, int]",
) -> "tuple | None":
    """Content key of a layout build, or None when uncacheable.

    Only pristine graphs (no edits since construction) are keyed: node
    and edge ids are reproducible from content exactly when no edit
    history has reordered the slot assignment.  Edited graphs rebuild
    the honest way — and their post-edit netlist content would miss
    this key anyway.
    """
    if graph.structure_version != graph.pristine_version:
        return None
    from repro.service.keys import netlist_hash

    return (
        netlist_hash(graph.netlist),
        tuple(sorted(boundary.clock_ports)),
        tuple(sorted(boundary.input_delays.items())),
        boundary.input_slew,
        boundary.clock_slew,
        tuple(sorted(depths.items())),
    )


def _clone_layout(cached: LevelizedLayout,
                  graph: TimingGraph) -> LevelizedLayout:
    """A cache hit's independently-mutable twin.

    Shares every read-only structural array with the cached build but
    owns fresh ``edge_delay``/``edge_out_slew`` refilled from the
    *current* graph's edge objects (the cached copy may carry another
    engine's sweep results), and resets the lazy per-graph fields —
    cell groups hold table/edge references resolved against the builder
    graph, and the flow fingerprint must never certify a foreign
    engine's fixpoint.
    """
    clone = replace(
        cached,
        edge_delay=np.zeros(cached.n_edge_slots),
        edge_out_slew=np.zeros(cached.n_edge_slots),
    )
    clone._group_epoch = -1
    clone._cell_groups = []
    clone._flow_key = None
    for edge in graph.edges:
        if edge is not None:
            clone.edge_delay[edge.id] = edge.delay
            clone.edge_out_slew[edge.id] = edge.out_slew
    return clone


#: Structural :class:`LevelizedLayout` fields persisted to disk, by
#: shape: id/position-indexed ndarrays, plain string lists, and
#: per-level ndarray lists.  The working arrays
#: (``edge_delay``/``edge_out_slew``) and lazy per-graph fields are
#: deliberately absent: they are refilled from the hydrating graph.
_LAYOUT_ARRAY_FIELDS = (
    "order", "pos_of", "level_ptr", "in_ptr", "in_edge", "in_src",
    "out_ptr", "out_edge", "out_dst", "edge_live", "edge_dst",
    "live_eids", "clock_eids", "plain_eids", "data_eids", "data_depths",
    "data_gate_cols", "node_is_clock_tree", "node_gate_col",
    "source_ids", "boundary_arrival", "boundary_slew", "cell_edge_net",
    "node_level", "edge_src", "edge_is_net",
)
_LAYOUT_LIST_FIELDS = ("gates", "node_gates", "cell_nets")
_LAYOUT_LEVEL_FIELDS = (
    "net_eids_by_level", "net_srcs_by_level", "cell_eids_by_level",
)


def layout_to_payload(layout: LevelizedLayout) -> "dict[str, Any]":
    """The npz-style persistable form of a layout's structural arrays."""
    return {
        "schema": LAYOUT_SCHEMA,
        "n_node_slots": layout.n_node_slots,
        "n_edge_slots": layout.n_edge_slots,
        "arrays": {
            name: getattr(layout, name) for name in _LAYOUT_ARRAY_FIELDS
        },
        "lists": {
            name: list(getattr(layout, name)) for name in _LAYOUT_LIST_FIELDS
        },
        "levels": {
            name: list(getattr(layout, name)) for name in _LAYOUT_LEVEL_FIELDS
        },
    }


def layout_from_payload(
    payload: Any, graph: TimingGraph
) -> "LevelizedLayout | None":
    """Rehydrate a persisted payload against the current graph, or None.

    Validation is deliberately strict — schema version, slot counts
    against the live graph, array types — because a stale or corrupt
    payload must degrade to a fresh build, never to a wrong layout.
    """
    if not isinstance(payload, dict) or payload.get("schema") != LAYOUT_SCHEMA:
        return None
    if (
        payload.get("n_node_slots") != len(graph.nodes)
        or payload.get("n_edge_slots") != len(graph.edges)
    ):
        return None
    kwargs: "dict[str, Any]" = {}
    arrays = payload["arrays"]
    for name in _LAYOUT_ARRAY_FIELDS:
        value = arrays[name]
        if not isinstance(value, np.ndarray):
            return None
        kwargs[name] = value
    for name in _LAYOUT_LIST_FIELDS:
        kwargs[name] = list(payload["lists"][name])
    for name in _LAYOUT_LEVEL_FIELDS:
        kwargs[name] = [
            np.asarray(arr, dtype=np.int64) for arr in payload["levels"][name]
        ]
    n_edge_slots = int(payload["n_edge_slots"])
    layout = LevelizedLayout(
        structure_version=graph.structure_version,
        n_node_slots=int(payload["n_node_slots"]),
        n_edge_slots=n_edge_slots,
        edge_delay=np.zeros(n_edge_slots),
        edge_out_slew=np.zeros(n_edge_slots),
        gate_index={gate: col for col, gate in enumerate(kwargs["gates"])},
        **kwargs,
    )
    for edge in graph.edges:
        if edge is not None:
            layout.edge_delay[edge.id] = edge.delay
            layout.edge_out_slew[edge.id] = edge.out_slew
    return layout


def _layout_from_disk(
    key: tuple, graph: TimingGraph
) -> "LevelizedLayout | None":
    """Hydrate a content-keyed layout from the attached disk store."""
    store = _disk_store
    if store is None:
        return None
    from repro.service.keys import layout_key

    start = time.perf_counter()
    layout: "LevelizedLayout | None" = None
    try:
        payload = store.get("layout", layout_key(key, LAYOUT_SCHEMA))
        if payload is not None:
            layout = layout_from_payload(payload, graph)
    except Exception:  # a bad payload is a miss, never an error
        layout = None
    if layout is None:
        counter("kernel.layout_disk_misses").inc()
        return None
    counter("kernel.layout_disk_hits").inc()
    histogram("kernel.layout_hydrate_seconds").observe(
        time.perf_counter() - start
    )
    return layout


def _layout_to_disk(key: tuple, layout: LevelizedLayout) -> None:
    """Best-effort persist of a fresh keyed build (failures are silent)."""
    store = _disk_store
    if store is None:
        return
    from repro.service.keys import layout_key

    try:
        store.put("layout", layout_key(key, LAYOUT_SCHEMA),
                  layout_to_payload(layout))
    except Exception:
        pass


def build_layout(
    graph: TimingGraph,
    boundary: BoundaryConditions,
    depths: "dict[str, int]",
) -> LevelizedLayout:
    """Flatten the live graph into a :class:`LevelizedLayout`.

    ``depths`` is the GBA worst-depth map (baked into the per-edge depth
    array — it only changes when topology does, which rebuilds the
    layout anyway).  Clock-tree marking must be current: edge domains
    are classified here.

    Pristine-graph builds are served from the content-keyed layout
    cache when possible (see :func:`_layout_cache_key`), then from the
    attached disk store (see :func:`set_layout_disk_store`); the
    flattening itself is deterministic per content, so a clone or a
    hydrated payload is bit-identical to a fresh build.
    """
    key = _layout_cache_key(graph, boundary, depths)
    if key is not None:
        cached = _layout_cache.get(key)
        if (
            cached is not None
            and cached.n_node_slots == len(graph.nodes)
            and cached.n_edge_slots == len(graph.edges)
        ):
            _layout_cache.move_to_end(key)
            counter("kernel.layout_cache_hits").inc()
            return _clone_layout(cached, graph)
        hydrated = _layout_from_disk(key, graph)
        if hydrated is not None:
            counter("kernel.layout_cache_misses").inc()
            _layout_cache[key] = hydrated
            while len(_layout_cache) > _LAYOUT_CACHE_MAX:
                _layout_cache.popitem(last=False)
            return hydrated
    start = time.perf_counter()
    with span("kernel.build", nodes=graph.node_count(),
              edges=graph.edge_count()):
        layout = _build_layout(graph, boundary, depths)
    histogram("kernel.layout_build_seconds").observe(
        time.perf_counter() - start
    )
    if key is not None:
        counter("kernel.layout_cache_misses").inc()
        _layout_cache[key] = layout
        while len(_layout_cache) > _LAYOUT_CACHE_MAX:
            _layout_cache.popitem(last=False)
        _layout_to_disk(key, layout)
    return layout


def _build_layout(
    graph: TimingGraph,
    boundary: BoundaryConditions,
    depths: "dict[str, int]",
) -> LevelizedLayout:
    n_node_slots = len(graph.nodes)
    n_edge_slots = len(graph.edges)
    topo = graph.topological_order()
    # Longest-fanin-chain level per node: level-l inputs are final once
    # levels < l have run, which is what makes level sweeps legal.
    level: dict[int, int] = {}
    for node_id in topo:
        best = 0
        for edge_id in graph.in_edges[node_id]:
            edge = graph.edges[edge_id]
            assert edge is not None
            lv = level[edge.src] + 1
            if lv > best:
                best = lv
        level[node_id] = best
    n_levels = (max(level.values()) + 1) if level else 0
    buckets: list[list[int]] = [[] for _ in range(n_levels)]
    for node_id, lv in level.items():
        buckets[lv].append(node_id)
    order_list: list[int] = []
    level_ptr = np.zeros(n_levels + 1, dtype=np.int64)
    for lv, members in enumerate(buckets):
        members.sort()
        order_list.extend(members)
        level_ptr[lv + 1] = len(order_list)
    order = np.asarray(order_list, dtype=np.int64)
    pos_of = np.full(n_node_slots, -1, dtype=np.int64)
    pos_of[order] = np.arange(order.size, dtype=np.int64)
    node_level = np.full(n_node_slots, -1, dtype=np.int64)
    for node_id, lv in level.items():
        node_level[node_id] = lv

    # Fanin / fanout CSR in position order.
    in_ptr = np.zeros(order.size + 1, dtype=np.int64)
    out_ptr = np.zeros(order.size + 1, dtype=np.int64)
    in_edge_list: list[int] = []
    in_src_list: list[int] = []
    out_edge_list: list[int] = []
    out_dst_list: list[int] = []
    for pos, node_id in enumerate(order_list):
        for edge_id in graph.in_edges[node_id]:
            edge = graph.edges[edge_id]
            assert edge is not None
            in_edge_list.append(edge_id)
            in_src_list.append(edge.src)
        in_ptr[pos + 1] = len(in_edge_list)
        for edge_id in graph.out_edges[node_id]:
            edge = graph.edges[edge_id]
            assert edge is not None
            out_edge_list.append(edge_id)
            out_dst_list.append(edge.dst)
        out_ptr[pos + 1] = len(out_edge_list)

    # Per-edge-slot arrays + derate classification.
    edge_live = np.zeros(n_edge_slots, dtype=bool)
    edge_dst = np.zeros(n_edge_slots, dtype=np.int64)
    edge_src = np.zeros(n_edge_slots, dtype=np.int64)
    edge_is_net = np.zeros(n_edge_slots, dtype=bool)
    edge_delay = np.zeros(n_edge_slots)
    edge_out_slew = np.zeros(n_edge_slots)
    clock_list: list[int] = []
    plain_list: list[int] = []
    data_list: list[int] = []
    data_depth_list: list[int] = []
    data_col_list: list[int] = []
    gates: list[str] = []
    gate_index: dict[str, int] = {}
    netlist = graph.netlist
    cell_nets: list[str] = []
    cell_net_index: dict[str, int] = {}
    cell_edge_net = np.full(n_edge_slots, -1, dtype=np.int64)
    for edge in graph.edges:
        if edge is None:
            continue
        edge_live[edge.id] = True
        edge_dst[edge.id] = edge.dst
        edge_src[edge.id] = edge.src
        edge_is_net[edge.id] = edge.kind is EdgeKind.NET
        edge_delay[edge.id] = edge.delay
        edge_out_slew[edge.id] = edge.out_slew
        domain = classify_edge(graph, edge)
        if domain is EdgeDomain.CLOCK:
            clock_list.append(edge.id)
        elif domain is EdgeDomain.DATA_CELL:
            assert edge.gate is not None
            col = gate_index.get(edge.gate)
            if col is None:
                col = len(gates)
                gate_index[edge.gate] = col
                gates.append(edge.gate)
            data_list.append(edge.id)
            data_depth_list.append(depths.get(edge.gate, 1))
            data_col_list.append(col)
        else:
            plain_list.append(edge.id)
        if edge.kind is EdgeKind.CELL:
            dst_ref = graph.node(edge.dst).ref
            assert dst_ref.gate is not None
            net = netlist.gate(dst_ref.gate).connections.get(dst_ref.pin)
            if net is not None:
                idx = cell_net_index.get(net)
                if idx is None:
                    idx = len(cell_nets)
                    cell_net_index[net] = idx
                    cell_nets.append(net)
                cell_edge_net[edge.id] = idx

    # Node metadata.
    node_is_clock_tree = np.zeros(n_node_slots, dtype=bool)
    node_gate_col = np.full(n_node_slots, -1, dtype=np.int64)
    node_gates: list[str] = []
    node_gate_index: dict[str, int] = {}
    for node in graph.nodes:
        if node is None:
            continue
        node_is_clock_tree[node.id] = node.is_clock_tree
        gate = node.ref.gate
        if gate is not None:
            col = node_gate_index.get(gate)
            if col is None:
                col = len(node_gates)
                node_gate_index[gate] = col
                node_gates.append(gate)
            node_gate_col[node.id] = col

    # Boundary values for the (level-0) source nodes, mirroring
    # propagation.apply_boundary exactly.
    boundary_arrival = np.zeros(n_node_slots)
    boundary_slew = np.zeros(n_node_slots)
    source_ids = order[level_ptr[0]:level_ptr[1]] if n_levels else \
        np.empty(0, dtype=np.int64)
    for node_id in source_ids.tolist():
        arrival, slew_value = _boundary_source_values(graph, boundary, node_id)
        boundary_arrival[node_id] = arrival
        boundary_slew[node_id] = slew_value

    # Per-level fanout split: net arcs (pass-through) vs cell arcs (LUT).
    net_eids_by_level: list[np.ndarray] = []
    net_srcs_by_level: list[np.ndarray] = []
    cell_eids_by_level: list[np.ndarray] = []
    for lv in range(n_levels):
        s, e = out_ptr[level_ptr[lv]], out_ptr[level_ptr[lv + 1]]
        net_e: list[int] = []
        net_s: list[int] = []
        cell_e: list[int] = []
        for k in range(int(s), int(e)):
            edge_id = out_edge_list[k]
            edge = graph.edges[edge_id]
            assert edge is not None
            if edge.kind is EdgeKind.NET:
                net_e.append(edge_id)
                net_s.append(edge.src)
            else:
                cell_e.append(edge_id)
        net_eids_by_level.append(np.asarray(net_e, dtype=np.int64))
        net_srcs_by_level.append(np.asarray(net_s, dtype=np.int64))
        cell_eids_by_level.append(np.asarray(cell_e, dtype=np.int64))

    return LevelizedLayout(
        structure_version=graph.structure_version,
        n_node_slots=n_node_slots,
        n_edge_slots=n_edge_slots,
        order=order,
        pos_of=pos_of,
        level_ptr=level_ptr,
        in_ptr=in_ptr,
        in_edge=np.asarray(in_edge_list, dtype=np.int64),
        in_src=np.asarray(in_src_list, dtype=np.int64),
        out_ptr=out_ptr,
        out_edge=np.asarray(out_edge_list, dtype=np.int64),
        out_dst=np.asarray(out_dst_list, dtype=np.int64),
        edge_live=edge_live,
        edge_dst=edge_dst,
        live_eids=np.flatnonzero(edge_live).astype(np.int64),
        edge_delay=edge_delay,
        edge_out_slew=edge_out_slew,
        clock_eids=np.asarray(clock_list, dtype=np.int64),
        plain_eids=np.asarray(plain_list, dtype=np.int64),
        data_eids=np.asarray(data_list, dtype=np.int64),
        data_depths=np.asarray(data_depth_list, dtype=np.int64),
        data_gate_cols=np.asarray(data_col_list, dtype=np.int64),
        gates=gates,
        gate_index=gate_index,
        node_is_clock_tree=node_is_clock_tree,
        node_gate_col=node_gate_col,
        node_gates=node_gates,
        source_ids=source_ids,
        boundary_arrival=boundary_arrival,
        boundary_slew=boundary_slew,
        cell_nets=cell_nets,
        cell_edge_net=cell_edge_net,
        net_eids_by_level=net_eids_by_level,
        net_srcs_by_level=net_srcs_by_level,
        cell_eids_by_level=cell_eids_by_level,
        node_level=node_level,
        edge_src=edge_src,
        edge_is_net=edge_is_net,
    )


def _boundary_source_values(
    graph: TimingGraph,
    boundary: BoundaryConditions,
    node_id: int,
) -> "tuple[float, float]":
    """(arrival, slew) of one level-0 source, mirroring
    ``propagation.apply_boundary`` exactly (build and patch paths must
    agree bit-for-bit)."""
    node = graph.node(node_id)
    if node.ref.is_port and node.ref.pin in boundary.clock_ports:
        return 0.0, boundary.clock_slew
    if node.ref.is_port:
        return boundary.input_delays.get(node.ref.pin, 0.0), boundary.input_slew
    return 0.0, boundary.input_slew


# ----------------------------------------------------------------------
# Incremental level maintenance (layout patching)
# ----------------------------------------------------------------------
def _padded(arr: np.ndarray, size: int, fill: Any) -> np.ndarray:
    """A fresh copy of ``arr`` grown to ``size`` slots.

    Always copies, even at equal size: a patch must never mutate arrays
    the content-keyed cache (and its clones) still share.
    """
    out = np.full(size, fill, dtype=arr.dtype)
    out[: arr.shape[0]] = arr
    return out


def patch_layout(
    layout: LevelizedLayout,
    graph: TimingGraph,
    boundary: BoundaryConditions,
    depths: "dict[str, int]",
) -> "LevelizedLayout | None":
    """Splice a bounded structural edit into an existing layout.

    Uses the graph's structure journal to find the touched node/edge
    slots, re-levels only the affected region with a worklist, and
    rebuilds the CSR/classification arrays around it — reusing every
    untouched row via vectorized gathers.  Returns a **new** layout at
    the graph's current ``structure_version``, or ``None`` when the
    edit is not provably local (journal overflow, clock-network
    movement, or any legality check failing), in which case the caller
    must fall back to :func:`build_layout`.

    Bit-identity is preserved because the sweeps never depend on the
    *canonical* (longest-fanin-chain) level assignment — any legal
    levelization (``level[src] < level[dst]`` on every live edge)
    reduces each node over the same fanin multiset, and a final
    legality check gates the patched assignment.  Counted by
    ``kernel.layout_patches`` / ``kernel.layout_patch_fallbacks``.
    """
    if layout.structure_version == graph.structure_version:
        return layout
    with span("kernel.patch"):
        try:
            patched = _patch_layout(layout, graph, boundary, depths)
        except Exception:  # a failed patch degrades to a rebuild
            patched = None
    if patched is None:
        counter("kernel.layout_patch_fallbacks").inc()
    else:
        counter("kernel.layout_patches").inc()
    return patched


def _patch_layout(
    layout: LevelizedLayout,
    graph: TimingGraph,
    boundary: BoundaryConditions,
    depths: "dict[str, int]",
) -> "LevelizedLayout | None":
    touched = graph.touched_since(layout.structure_version)
    if touched is None:
        return None
    touched_nodes, touched_eids = touched
    nodes = graph.nodes
    edges = graph.edges
    n_nodes = len(nodes)
    n_edges = len(edges)

    live_now = np.fromiter(
        (node is not None for node in nodes), dtype=bool, count=n_nodes
    )
    clock_now = np.fromiter(
        (node is not None and node.is_clock_tree for node in nodes),
        dtype=bool, count=n_nodes,
    )
    old_live = np.zeros(n_nodes, dtype=bool)
    old_live[: layout.n_node_slots] = layout.pos_of >= 0
    # Clock-tree membership moving on a *surviving* node means edge
    # domains (and so derate classes) of untouched edges went stale;
    # only a full rebuild reclassifies those.
    surviving = old_live & live_now
    old_clock = _padded(layout.node_is_clock_tree, n_nodes, False)
    if np.any(clock_now[surviving] != old_clock[surviving]):
        return None

    # --- re-level the affected region (worklist) ------------------------
    # Releveling never touches adjacency — CSR rows of releveled nodes
    # are reused verbatim and the order/level_ptr/grouping rebuilds
    # below are vectorized — so even a whole-cone cascade is far
    # cheaper than the scalar fresh build.  The pop cap is a livelock
    # backstop (a cycle would spin the ready/requeue logic forever),
    # not a cone-size bound.
    node_level = _padded(layout.node_level, n_nodes, -1)
    node_level[~live_now] = -1
    n_live = int(np.count_nonzero(live_now))
    pops_cap = 32 * n_live + 256
    seeds = sorted(
        node_id for node_id in touched_nodes
        if 0 <= node_id < n_nodes and live_now[node_id]
    )
    pending: "deque[int]" = deque(seeds)
    queued = set(seeds)
    pops = 0
    while pending:
        node_id = pending.popleft()
        queued.discard(node_id)
        pops += 1
        if pops > pops_cap:
            return None
        best = 0
        ready = True
        for edge_id in graph.in_edges[node_id]:
            edge = edges[edge_id]
            assert edge is not None
            src_level = int(node_level[edge.src])
            if src_level < 0:
                # Fanin not leveled yet (a new node): settle it first.
                if edge.src not in queued:
                    pending.append(edge.src)
                    queued.add(edge.src)
                ready = False
            elif src_level + 1 > best:
                best = src_level + 1
        if not ready:
            if node_id not in queued:
                pending.append(node_id)
                queued.add(node_id)
            continue
        # Raise-only relaxation: a node moves up just far enough for
        # legality and never back down.  The sweeps only need legality,
        # not canonical (longest-chain) levels (see :func:`patch_layout`),
        # which pays off on the revert half of a what-if: the raised
        # levels stay legal after the buffer comes back out, so
        # re-editing the same site cascades zero nodes.
        if best > int(node_level[node_id]):
            node_level[node_id] = best
            for edge_id in graph.out_edges[node_id]:
                dst = edges[edge_id].dst  # type: ignore[union-attr]
                if dst not in queued:
                    pending.append(dst)
                    queued.add(dst)

    live_ids = np.flatnonzero(live_now)
    level_of_live = node_level[live_ids]
    if live_ids.size and int(level_of_live.min()) < 0:
        return None  # a live node escaped leveling: not patchable

    # --- order / level_ptr / pos_of ------------------------------------
    # live_ids ascends, the sort is stable: ties stay in id order,
    # exactly like the fresh build's sorted per-level buckets.
    sorter = np.argsort(level_of_live, kind="stable")
    order = live_ids[sorter]
    n_levels = int(level_of_live.max()) + 1 if order.size else 0
    level_ptr = np.zeros(n_levels + 1, dtype=np.int64)
    if order.size:
        np.cumsum(
            np.bincount(level_of_live, minlength=n_levels),
            out=level_ptr[1:],
        )
    pos_of = np.full(n_nodes, -1, dtype=np.int64)
    pos_of[order] = np.arange(order.size, dtype=np.int64)

    # --- per-edge-slot arrays ------------------------------------------
    touched_mask = np.zeros(n_nodes, dtype=bool)
    for node_id in touched_nodes:
        if 0 <= node_id < n_nodes:
            touched_mask[node_id] = True
    edge_live = _padded(layout.edge_live, n_edges, False)
    edge_dst = _padded(layout.edge_dst, n_edges, 0)
    edge_src = _padded(layout.edge_src, n_edges, 0)
    edge_is_net = _padded(layout.edge_is_net, n_edges, False)
    edge_delay = _padded(layout.edge_delay, n_edges, 0.0)
    edge_out_slew = _padded(layout.edge_out_slew, n_edges, 0.0)
    cell_edge_net = _padded(layout.cell_edge_net, n_edges, -1)
    stale_eid = np.zeros(n_edges, dtype=bool)
    fresh_eids: list[int] = []
    for edge_id in sorted(e for e in touched_eids if 0 <= e < n_edges):
        stale_eid[edge_id] = True
        edge = edges[edge_id]
        if edge is None:
            edge_live[edge_id] = False
            cell_edge_net[edge_id] = -1
        else:
            edge_live[edge_id] = True
            edge_dst[edge_id] = edge.dst
            edge_src[edge_id] = edge.src
            edge_is_net[edge_id] = edge.kind is EdgeKind.NET
            edge_delay[edge_id] = edge.delay
            edge_out_slew[edge_id] = edge.out_slew
            fresh_eids.append(edge_id)
    live_eids = np.flatnonzero(edge_live).astype(np.int64)

    # --- legality gate --------------------------------------------------
    if live_eids.size and not bool(
        np.all(
            node_level[edge_src[live_eids]] < node_level[edge_dst[live_eids]]
        )
    ):
        return None

    # --- derate classification ------------------------------------------
    def _keep(eids: np.ndarray) -> np.ndarray:
        if not eids.size:
            return eids
        return eids[~stale_eid[eids]]

    clock_list = _keep(layout.clock_eids)
    plain_list = _keep(layout.plain_eids)
    keep_data = (
        ~stale_eid[layout.data_eids]
        if layout.data_eids.size
        else np.zeros(0, dtype=bool)
    )
    data_list = layout.data_eids[keep_data]
    data_cols = layout.data_gate_cols[keep_data]
    gates = list(layout.gates)
    gate_index = dict(layout.gate_index)
    cell_nets = list(layout.cell_nets)
    cell_net_index = {net: idx for idx, net in enumerate(cell_nets)}
    clock_new: list[int] = []
    plain_new: list[int] = []
    data_new: list[int] = []
    data_cols_new: list[int] = []
    netlist = graph.netlist
    for edge_id in fresh_eids:
        edge = edges[edge_id]
        assert edge is not None
        domain = classify_edge(graph, edge)
        if domain is EdgeDomain.CLOCK:
            clock_new.append(edge_id)
        elif domain is EdgeDomain.DATA_CELL:
            assert edge.gate is not None
            col = gate_index.get(edge.gate)
            if col is None:
                col = len(gates)
                gate_index[edge.gate] = col
                gates.append(edge.gate)
            data_new.append(edge_id)
            data_cols_new.append(col)
        else:
            plain_new.append(edge_id)
        if edge.kind is EdgeKind.CELL:
            dst_ref = graph.node(edge.dst).ref
            assert dst_ref.gate is not None
            net = netlist.gate(dst_ref.gate).connections.get(dst_ref.pin)
            if net is not None:
                idx = cell_net_index.get(net)
                if idx is None:
                    idx = len(cell_nets)
                    cell_net_index[net] = idx
                    cell_nets.append(net)
                cell_edge_net[edge_id] = idx
    clock_eids = np.concatenate(
        [clock_list, np.asarray(clock_new, dtype=np.int64)]
    )
    plain_eids = np.concatenate(
        [plain_list, np.asarray(plain_new, dtype=np.int64)]
    )
    data_eids = np.concatenate([data_list, np.asarray(data_new, dtype=np.int64)])
    data_gate_cols = np.concatenate(
        [data_cols, np.asarray(data_cols_new, dtype=np.int64)]
    )
    # Depths are global (worst depth per gate over the whole graph), so
    # a local edit can move *any* gate's depth: regenerate them all
    # from the fresh depth map, exactly like the builder would.
    if data_eids.size:
        depth_of_gate = np.asarray(
            [depths.get(gate, 1) for gate in gates], dtype=np.int64
        )
        data_depths = depth_of_gate[data_gate_cols]
    else:
        data_depths = np.zeros(0, dtype=np.int64)

    # --- node metadata --------------------------------------------------
    node_gate_col = _padded(layout.node_gate_col, n_nodes, -1)
    node_gates = list(layout.node_gates)
    node_gate_index = {gate: col for col, gate in enumerate(node_gates)}
    for node_id in np.flatnonzero(live_now & ~old_live).tolist():
        gate = graph.node(node_id).ref.gate
        if gate is None:
            node_gate_col[node_id] = -1
            continue
        col = node_gate_index.get(gate)
        if col is None:
            col = len(node_gates)
            node_gate_index[gate] = col
            node_gates.append(gate)
        node_gate_col[node_id] = col

    # --- fanin / fanout CSR ---------------------------------------------
    old_pos = np.full(n_nodes, -1, dtype=np.int64)
    old_pos[: layout.n_node_slots] = layout.pos_of

    def _rebuild_csr(
        old_ptr: np.ndarray,
        old_flat_edge: np.ndarray,
        old_flat_other: np.ndarray,
        adjacency: "list[list[int]]",
        other_of_edge: np.ndarray,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        counts = np.zeros(order.size, dtype=np.int64)
        old_position = old_pos[order]
        reuse = (old_position >= 0) & ~touched_mask[order]
        rp = old_position[reuse]
        counts[reuse] = old_ptr[rp + 1] - old_ptr[rp]
        fresh_rows = np.flatnonzero(~reuse)
        for row in fresh_rows.tolist():
            counts[row] = len(adjacency[order[row]])
        ptr = np.zeros(order.size + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        total = int(ptr[-1])
        flat_edge = np.empty(total, dtype=np.int64)
        flat_other = np.empty(total, dtype=np.int64)
        reuse_rows = np.flatnonzero(reuse)
        if reuse_rows.size:
            cnt = counts[reuse_rows]
            has = cnt > 0
            reuse_rows = reuse_rows[has]
            cnt = cnt[has]
            if reuse_rows.size:
                src_start = old_ptr[old_pos[order[reuse_rows]]]
                dst_start = ptr[reuse_rows]
                seg = np.zeros(cnt.size, dtype=np.int64)
                np.cumsum(cnt[:-1], out=seg[1:])
                offsets = (
                    np.arange(int(cnt.sum()), dtype=np.int64)
                    - np.repeat(seg, cnt)
                )
                src_idx = np.repeat(src_start, cnt) + offsets
                dst_idx = np.repeat(dst_start, cnt) + offsets
                flat_edge[dst_idx] = old_flat_edge[src_idx]
                flat_other[dst_idx] = old_flat_other[src_idx]
        for row in fresh_rows.tolist():
            cursor = int(ptr[row])
            for edge_id in adjacency[order[row]]:
                flat_edge[cursor] = edge_id
                flat_other[cursor] = other_of_edge[edge_id]
                cursor += 1
        return ptr, flat_edge, flat_other

    in_ptr, in_edge, in_src = _rebuild_csr(
        layout.in_ptr, layout.in_edge, layout.in_src,
        graph.in_edges, edge_src,
    )
    out_ptr, out_edge, out_dst = _rebuild_csr(
        layout.out_ptr, layout.out_edge, layout.out_dst,
        graph.out_edges, edge_dst,
    )
    # Every live edge appears exactly once per CSR, or the splice is
    # inconsistent with the graph (e.g. a journal gap): rebuild.
    if int(in_ptr[-1]) != int(live_eids.size) or \
            int(out_ptr[-1]) != int(live_eids.size):
        return None

    # --- boundary (level-0) values --------------------------------------
    boundary_arrival = _padded(layout.boundary_arrival, n_nodes, 0.0)
    boundary_slew = _padded(layout.boundary_slew, n_nodes, 0.0)
    old_source = np.zeros(n_nodes, dtype=bool)
    old_source[layout.source_ids] = True
    source_ids = order[level_ptr[0]:level_ptr[1]] if n_levels else \
        np.empty(0, dtype=np.int64)
    for node_id in source_ids.tolist():
        if old_source[node_id]:
            continue  # values are a pure function of ref + boundary
        arrival, slew_value = _boundary_source_values(graph, boundary, node_id)
        boundary_arrival[node_id] = arrival
        boundary_slew[node_id] = slew_value

    # --- per-level fanout split -----------------------------------------
    net_eids_by_level: list[np.ndarray] = []
    net_srcs_by_level: list[np.ndarray] = []
    cell_eids_by_level: list[np.ndarray] = []
    for lv in range(n_levels):
        s = int(out_ptr[level_ptr[lv]])
        e = int(out_ptr[level_ptr[lv + 1]])
        eids = out_edge[s:e]
        is_net = edge_is_net[eids]
        net_e = eids[is_net]
        net_eids_by_level.append(net_e)
        net_srcs_by_level.append(edge_src[net_e])
        cell_eids_by_level.append(eids[~is_net])

    return LevelizedLayout(
        structure_version=graph.structure_version,
        n_node_slots=n_nodes,
        n_edge_slots=n_edges,
        order=order,
        pos_of=pos_of,
        level_ptr=level_ptr,
        in_ptr=in_ptr,
        in_edge=in_edge,
        in_src=in_src,
        out_ptr=out_ptr,
        out_edge=out_edge,
        out_dst=out_dst,
        edge_live=edge_live,
        edge_dst=edge_dst,
        live_eids=live_eids,
        edge_delay=edge_delay,
        edge_out_slew=edge_out_slew,
        clock_eids=clock_eids,
        plain_eids=plain_eids,
        data_eids=data_eids,
        data_depths=data_depths,
        data_gate_cols=data_gate_cols,
        gates=gates,
        gate_index=gate_index,
        node_is_clock_tree=clock_now,
        node_gate_col=node_gate_col,
        node_gates=node_gates,
        source_ids=source_ids,
        boundary_arrival=boundary_arrival,
        boundary_slew=boundary_slew,
        cell_nets=cell_nets,
        cell_edge_net=cell_edge_net,
        net_eids_by_level=net_eids_by_level,
        net_srcs_by_level=net_srcs_by_level,
        cell_eids_by_level=cell_eids_by_level,
        node_level=node_level,
        edge_src=edge_src,
        edge_is_net=edge_is_net,
    )


# ----------------------------------------------------------------------
# Derate fill (vectorized compute_edge_derates)
# ----------------------------------------------------------------------
def compute_edge_derates(
    layout: LevelizedLayout,
    graph: TimingGraph,
    state: TimingState,
    settings: DerateSettings,
    weights: "dict[str, float]",
) -> None:
    """Vectorized fill of the per-edge late/early derate arrays.

    Depth → derate goes through a per-depth table indexed by the baked
    integer depth array; the mGBA correction is a per-gate weight
    vector scattered through the layout's gate → column map.  Only live
    edge slots are written (the scalar oracle never touches dead
    slots either).
    """
    state.ensure_capacity(len(graph.nodes), len(graph.edges))
    if layout.clock_eids.size:
        state.derate_late[layout.clock_eids] = settings.clock_late
        state.derate_early[layout.clock_eids] = settings.clock_early
    if layout.plain_eids.size:
        state.derate_late[layout.plain_eids] = 1.0
        state.derate_early[layout.plain_eids] = 1.0
    if not layout.data_eids.size:
        return
    depths = layout.data_depths
    if settings.table is not None:
        table = derates_by_depth(
            settings.table, depths.tolist(), settings.gba_distance
        )
        uniq, inverse = np.unique(depths, return_inverse=True)
        base_late = np.asarray(
            [table[int(d)] for d in uniq]
        )[inverse]
    else:
        base_late = np.full(depths.size, settings.flat_late)
    weight_vec = np.ones(len(layout.gates))
    for gate, weight in weights.items():
        col = layout.gate_index.get(gate)
        if col is not None:
            weight_vec[col] = weight
    state.derate_late[layout.data_eids] = (
        base_late * weight_vec[layout.data_gate_cols]
    )
    if settings.early_table is not None:
        table = derates_by_depth(
            settings.early_table, depths.tolist(), settings.gba_distance
        )
        uniq, inverse = np.unique(depths, return_inverse=True)
        base_early = np.asarray(
            [table[int(d)] for d in uniq]
        )[inverse]
    else:
        base_early = np.full(depths.size, settings.data_early)
    state.derate_early[layout.data_eids] = base_early


# ----------------------------------------------------------------------
# Forward propagation
# ----------------------------------------------------------------------
def _refresh_static_delays(
    layout: LevelizedLayout,
    graph: TimingGraph,
    calc: "DelayCalculator",
) -> np.ndarray:
    """Per-update delay-calc statics: net loads and net-arc delays.

    Returns the per-edge load array for cell arcs.  Loads and wire
    delays depend on pin caps / placement / parasitics — cheap to
    recompute per full update (one pass per *net* instead of the scalar
    engine's one pass per *edge*) and always fresh after a resize.
    """
    net_loads = np.asarray(
        [calc.output_load(net) for net in layout.cell_nets]
    ) if layout.cell_nets else np.empty(0)
    load_of_edge = np.zeros(layout.n_edge_slots)
    covered = layout.cell_edge_net >= 0
    if covered.any():
        load_of_edge[covered] = net_loads[layout.cell_edge_net[covered]]
    for eids in layout.net_eids_by_level:
        for eid in eids.tolist():
            edge = graph.edges[eid]
            assert edge is not None
            layout.edge_delay[eid] = calc.net_edge(graph, edge, 0.0)[0]
    return load_of_edge


def propagate_full(
    layout: LevelizedLayout,
    graph: TimingGraph,
    calc: "DelayCalculator",
    state: TimingState,
    boundary: BoundaryConditions,
) -> None:
    """One complete level-synchronous forward pass (vector kernel).

    Bit-identical to :func:`repro.timing.propagation.propagate_full`
    (assumes the derate arrays are current, exactly like the scalar
    path).
    """
    with span(
        "kernel.propagate", levels=layout.levels,
        nodes=int(layout.order.size), edges=int(layout.live_eids.size),
    ):
        _propagate_full(layout, graph, calc, state, boundary)
    counter("kernel.vector_full_updates").inc()
    gauge("kernel.levels").set(layout.levels)


def _flow_fingerprint(graph, calc, state, boundary) -> tuple:
    """Inputs the slew/delay-calc fixpoint depends on (see ``_flow_key``)."""
    return (
        graph.arc_epoch, id(calc), calc.delay_scale, id(state), boundary,
    )


def _propagate_arrivals_only(layout, state) -> None:
    """Arrival sweep over a known slew/delay fixpoint.

    Runs when ``_flow_key`` certifies that slews, base delays, and
    out-slews are unchanged since the last full pass — the steady state
    of the mGBA loop, where ``set_gate_weights`` only moves the derate
    arrays.  The arrival expressions are the full sweep's, evaluated
    over the identical (cached) delay arrays, so the resulting state is
    bit-identical to a from-scratch update.
    """
    arrival_late = state.arrival_late
    arrival_early = state.arrival_early
    derate_late = state.derate_late
    derate_early = state.derate_early
    edge_delay = layout.edge_delay
    src_ids = layout.source_ids
    arrival_late[src_ids] = layout.boundary_arrival[src_ids]
    arrival_early[src_ids] = layout.boundary_arrival[src_ids]
    for lv in range(1, layout.levels):
        p0, p1 = int(layout.level_ptr[lv]), int(layout.level_ptr[lv + 1])
        ids = layout.order[p0:p1]
        s, e = int(layout.in_ptr[p0]), int(layout.in_ptr[p1])
        seg = layout.in_ptr[p0:p1] - s
        eids = layout.in_edge[s:e]
        srcs = layout.in_src[s:e]
        delays = edge_delay[eids]
        late_vals = arrival_late[srcs] + delays * derate_late[eids]
        early_vals = arrival_early[srcs] + delays * derate_early[eids]
        arrival_late[ids] = np.maximum.reduceat(late_vals, seg)
        arrival_early[ids] = np.minimum.reduceat(early_vals, seg)


def _propagate_full(layout, graph, calc, state, boundary) -> None:
    state.ensure_capacity(len(graph.nodes), len(graph.edges))
    if not layout.order.size:
        return
    flow_key = _flow_fingerprint(graph, calc, state, boundary)
    if layout._flow_key == flow_key:
        counter("kernel.arrival_only_updates").inc()
        _propagate_arrivals_only(layout, state)
        return
    layout._flow_key = None
    load_of_edge = _refresh_static_delays(layout, graph, calc)
    groups = layout.cell_groups(graph)
    arrival_late = state.arrival_late
    arrival_early = state.arrival_early
    slew = state.slew
    derate_late = state.derate_late
    derate_early = state.derate_early
    edge_delay = layout.edge_delay
    edge_out_slew = layout.edge_out_slew
    # Boundary fill (level 0 = exactly the no-fanin nodes).
    src_ids = layout.source_ids
    arrival_late[src_ids] = layout.boundary_arrival[src_ids]
    arrival_early[src_ids] = layout.boundary_arrival[src_ids]
    slew[src_ids] = layout.boundary_slew[src_ids]
    batch_hist = histogram("kernel.level_batch")
    for lv in range(layout.levels):
        p0, p1 = int(layout.level_ptr[lv]), int(layout.level_ptr[lv + 1])
        ids = layout.order[p0:p1]
        batch_hist.observe(ids.size)
        if lv > 0:
            s, e = int(layout.in_ptr[p0]), int(layout.in_ptr[p1])
            seg = layout.in_ptr[p0:p1] - s
            eids = layout.in_edge[s:e]
            srcs = layout.in_src[s:e]
            delays = edge_delay[eids]
            late_vals = arrival_late[srcs] + delays * derate_late[eids]
            early_vals = arrival_early[srcs] + delays * derate_early[eids]
            arrival_late[ids] = np.maximum.reduceat(late_vals, seg)
            arrival_early[ids] = np.minimum.reduceat(early_vals, seg)
            slew[ids] = np.maximum(
                np.maximum.reduceat(edge_out_slew[eids], seg), 0.0
            )
        # Fanout delay calc at the level's (now final) slews.
        net_eids = layout.net_eids_by_level[lv]
        if net_eids.size:
            edge_out_slew[net_eids] = slew[layout.net_srcs_by_level[lv]]
        for dtab, stab, eids, srcs in groups[lv]:
            delays, out_slews = calc.compute_arcs_batch(
                dtab, stab, slew[srcs], load_of_edge[eids]
            )
            edge_delay[eids] = delays
            edge_out_slew[eids] = out_slews
    _writeback_edges(layout, graph)
    layout._flow_key = flow_key


def _writeback_edges(layout: LevelizedLayout, graph: TimingGraph) -> None:
    """Copy the kernel's edge arrays onto the TimingEdge objects."""
    delays = layout.edge_delay.tolist()
    out_slews = layout.edge_out_slew.tolist()
    for edge in graph.edges:
        if edge is not None:
            edge.delay = delays[edge.id]
            edge.out_slew = out_slews[edge.id]


def sync_edge_arrays(layout: LevelizedLayout, graph: TimingGraph) -> None:
    """Refresh the layout's edge arrays from the TimingEdge objects.

    Needed after a scalar pass ran on a vector engine (the fallback
    path) so later vector reads — the backward pass, gate slacks —
    see the values the scalar pass wrote.
    """
    layout._flow_key = None
    for edge in graph.edges:
        if edge is not None:
            layout.edge_delay[edge.id] = edge.delay
            layout.edge_out_slew[edge.id] = edge.out_slew


# ----------------------------------------------------------------------
# Incremental propagation (frontier-bounded level sweep)
# ----------------------------------------------------------------------
def propagate_incremental(
    layout: LevelizedLayout,
    graph: TimingGraph,
    calc: "DelayCalculator",
    state: TimingState,
    boundary: BoundaryConditions,
    seeds: "set[int]",
) -> int:
    """Re-relax only the affected cone via a per-level frontier.

    Dirty nodes are bucketed by level (a heap of level indices), and
    the sweep advances through exactly the levels that hold dirty nodes
    — an edit touching a 50-node cone on a deep design does O(cone)
    work, not a scan over every level.  Fanout marking only ever
    targets strictly deeper levels (levelization legality), so each
    level is processed at most once and the relaxed set is identical to
    the old full-mask scan.

    Semantics mirror the scalar rank-ordered worklist exactly: a node
    is re-relaxed iff it is a seed or an already-relaxed fanin source
    moved (value or out-edge delay) beyond the shared epsilon — both
    schemes process nodes in a topological order, so the relaxed sets
    (and therefore the resulting states) are identical.  Returns the
    number of nodes visited, like the scalar pass.
    """
    if not seeds:
        return 0
    # An incremental sweep rewrites slews/delays in the cone under the
    # same state object; the next full update must re-derive them.
    layout._flow_key = None
    node_level = layout.node_level
    dirty = np.zeros(layout.n_node_slots, dtype=bool)
    buckets: "dict[int, list[int]]" = {}
    heap: list[int] = []

    def mark(node_id: int) -> None:
        if dirty[node_id]:
            return
        lv = int(node_level[node_id])
        if lv < 0:  # dead slot: the scalar worklist skips these too
            return
        dirty[node_id] = True
        bucket = buckets.get(lv)
        if bucket is None:
            buckets[lv] = [node_id]
            heapq.heappush(heap, lv)
        else:
            bucket.append(node_id)

    for seed in seeds:
        if 0 <= seed < layout.n_node_slots:
            mark(seed)
    visited = 0
    levels_touched = 0
    arrival_late = state.arrival_late
    arrival_early = state.arrival_early
    slew = state.slew
    derate_late = state.derate_late
    derate_early = state.derate_early
    edge_delay = layout.edge_delay
    edge_out_slew = layout.edge_out_slew
    while heap:
        lv = heapq.heappop(heap)
        # Ascending id within the level — the exact order the old
        # mask-over-``order`` scan produced (order sorts ties by id).
        sel = np.asarray(sorted(buckets.pop(lv)), dtype=np.int64)
        levels_touched += 1
        visited += int(sel.size)
        old_late = arrival_late[sel].copy()
        old_early = arrival_early[sel].copy()
        old_slew = slew[sel].copy()
        if lv == 0:
            arrival_late[sel] = layout.boundary_arrival[sel]
            arrival_early[sel] = layout.boundary_arrival[sel]
            slew[sel] = layout.boundary_slew[sel]
        else:
            positions = layout.pos_of[sel]
            starts = layout.in_ptr[positions]
            counts = layout.in_ptr[positions + 1] - starts
            total = int(counts.sum())
            seg = np.zeros(sel.size, dtype=np.int64)
            np.cumsum(counts[:-1], out=seg[1:])
            flat = (
                np.arange(total, dtype=np.int64)
                - np.repeat(seg, counts)
                + np.repeat(starts, counts)
            )
            eids = layout.in_edge[flat]
            srcs = layout.in_src[flat]
            delays = edge_delay[eids]
            late_vals = arrival_late[srcs] + delays * derate_late[eids]
            early_vals = arrival_early[srcs] + delays * derate_early[eids]
            arrival_late[sel] = np.maximum.reduceat(late_vals, seg)
            arrival_early[sel] = np.minimum.reduceat(early_vals, seg)
            slew[sel] = np.maximum(
                np.maximum.reduceat(edge_out_slew[eids], seg), 0.0
            )
        node_moved = (
            (np.abs(arrival_late[sel] - old_late) > _EPS)
            | (np.abs(arrival_early[sel] - old_early) > _EPS)
            | (np.abs(slew[sel] - old_slew) > _EPS)
        ).tolist()
        # Out-edge delay calc stays scalar here: cones are small and the
        # per-edge diff must match the worklist's exactly.
        for moved, node_id in zip(node_moved, sel.tolist()):
            edges_changed = False
            node_slew = float(slew[node_id])
            for edge_id in graph.out_edges[node_id]:
                edge = graph.edges[edge_id]
                assert edge is not None
                old_delay, old_out = edge.delay, edge.out_slew
                calc.compute_edge(graph, edge, node_slew)
                edge_delay[edge_id] = edge.delay
                edge_out_slew[edge_id] = edge.out_slew
                if (
                    abs(edge.delay - old_delay) > _EPS
                    or abs(edge.out_slew - old_out) > _EPS
                ):
                    edges_changed = True
            if moved or edges_changed:
                for edge_id in graph.out_edges[node_id]:
                    edge = graph.edges[edge_id]
                    assert edge is not None
                    mark(edge.dst)
    counter("kernel.incremental_sweeps").inc()
    histogram("kernel.frontier_levels").observe(levels_touched)
    return visited


# ----------------------------------------------------------------------
# Backward required-time pass
# ----------------------------------------------------------------------
def compute_required_times(
    layout: LevelizedLayout,
    graph: TimingGraph,
    state: TimingState,
    constraints: "Constraints",
) -> np.ndarray:
    """Vectorized mirror of :func:`repro.timing.slack.compute_required_times`.

    Endpoint initialization (per-endpoint setup checks) stays scalar —
    it is one LUT lookup per endpoint — while the backward min-plus
    sweep runs one segment reduction per level.
    """
    from repro.timing.slack import endpoint_clock_map, setup_required

    clock_map = endpoint_clock_map(graph, constraints)
    required = np.full(len(graph.nodes), POS_INF)
    for node_id in sorted(graph.endpoints):
        info = graph.endpoints[node_id]
        value, _ = setup_required(
            graph, state, info, clock_map[node_id], constraints
        )
        required[node_id] = value
    clock_node = layout.node_is_clock_tree
    edge_delay = layout.edge_delay
    for lv in range(layout.levels - 1, -1, -1):
        p0, p1 = int(layout.level_ptr[lv]), int(layout.level_ptr[lv + 1])
        ids = layout.order[p0:p1]
        data_mask = ~clock_node[ids]
        if not data_mask.any():
            continue
        s, e = int(layout.out_ptr[p0]), int(layout.out_ptr[p1])
        if s == e:
            continue  # no fanout in this level: inits stand
        seg = layout.out_ptr[p0:p1] - s
        counts = np.diff(np.append(seg, e - s))
        eids = layout.out_edge[s:e]
        dsts = layout.out_dst[s:e]
        cand = required[dsts] - edge_delay[eids] * state.derate_late[eids]
        cand[clock_node[dsts]] = POS_INF  # never tighten through the clock
        # reduceat cannot express empty segments: dropping their start
        # indices merges nothing (zero elements), so reduce over the
        # non-empty segment starts only and leave the rest at +inf.
        nonempty = counts > 0
        reduced = np.full(ids.size, POS_INF)
        if nonempty.any():
            reduced[nonempty] = np.minimum.reduceat(cand, seg[nonempty])
        upd = ids[data_mask]
        required[upd] = np.minimum(required[upd], reduced[data_mask])
    return required


def gate_worst_slacks(
    layout: LevelizedLayout,
    graph: TimingGraph,
    state: TimingState,
    required: np.ndarray,
) -> "dict[str, float]":
    """Vectorized mirror of :func:`repro.timing.slack.gate_worst_slacks`.

    Same values, same dict insertion order (first qualifying node in
    node-id order) — the closure optimizer's tie-breaking depends on it.
    """
    ids = np.sort(layout.order)  # live nodes in id order (scalar iteration)
    cols = layout.node_gate_col[ids]
    req = required[ids]
    mask = (cols >= 0) & (req != POS_INF)
    if not mask.any():
        return {}
    cols = cols[mask]
    slacks = req[mask] - state.arrival_late[ids[mask]]
    best = np.full(len(layout.node_gates), POS_INF)
    np.minimum.at(best, cols, slacks)
    _, first = np.unique(cols, return_index=True)
    ordered = cols[np.sort(first)]
    return {
        layout.node_gates[col]: float(best[col]) for col in ordered.tolist()
    }


# ----------------------------------------------------------------------
# Sanity checking on the flattened arrays
# ----------------------------------------------------------------------
def flatten_fanin(graph: TimingGraph):
    """(node_ids, seg_starts, edge_ids, src_ids) over live fanin nodes.

    Lightweight one-off flattening (no levelization) for vectorized
    whole-graph identities like ``check_propagation_sanity``; the node
    order matches ``graph.live_nodes()``.
    """
    node_ids: list[int] = []
    seg: list[int] = []
    edge_ids: list[int] = []
    src_ids: list[int] = []
    for node in graph.nodes:
        if node is None or not graph.in_edges[node.id]:
            continue
        node_ids.append(node.id)
        seg.append(len(edge_ids))
        for edge_id in graph.in_edges[node.id]:
            edge = graph.edges[edge_id]
            assert edge is not None
            edge_ids.append(edge_id)
            src_ids.append(edge.src)
    return (
        np.asarray(node_ids, dtype=np.int64),
        np.asarray(seg, dtype=np.int64),
        np.asarray(edge_ids, dtype=np.int64),
        np.asarray(src_ids, dtype=np.int64),
    )
