"""Forward propagation: slews, base delays, derated arrivals.

GBA semantics exactly as industrial tools implement them:

* **worst slew propagation** — a node's slew is the max over its fanin
  arcs' output slews, even when the max-slew arc is not the max-arrival
  arc (one of the pessimism sources the paper's mGBA absorbs);
* **worst-depth AOCV derating** — data cell arcs are multiplied by
  ``table.derate(gba_depth(gate), gba_distance)``;
* **late/early clock split** — clock-network arcs carry flat late/early
  derates so launch (late) and capture (early) clock arrivals diverge,
  which is what CRPR later gives back on the common segment.

mGBA plugs in through per-gate ``weights``: the effective late derate of
a data cell arc is ``lambda_gba(gate) * weight(gate)``, with
``weight = 1 + x_j`` from the solved correction vector.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.aocv.table import DeratingTable
from repro.timing.delaycalc import DelayCalculator
from repro.timing.graph import EdgeKind, TimingEdge, TimingGraph

NEG_INF = float("-inf")
POS_INF = float("inf")


class EdgeDomain(enum.Enum):
    """Derating domain of a timing edge."""

    CLOCK = "clock"          # clock-network arc: flat late/early derates
    DATA_CELL = "data_cell"  # combinational data cell arc: AOCV derate
    PLAIN = "plain"          # net arcs, CK->Q arcs: no derate


def classify_edge(graph: TimingGraph, edge: TimingEdge) -> EdgeDomain:
    """Assign an edge to its derating domain."""
    src = graph.node(edge.src)
    dst = graph.node(edge.dst)
    if src.is_clock_tree and dst.is_clock_tree:
        return EdgeDomain.CLOCK
    if edge.kind is EdgeKind.CELL and edge.gate is not None:
        cell = graph.netlist.cell_of(edge.gate)
        if not cell.is_sequential and not src.is_clock_tree:
            return EdgeDomain.DATA_CELL
    return EdgeDomain.PLAIN


@dataclass
class TimingState:
    """Per-node propagation results and per-edge derate factors.

    Arrays are indexed by node/edge id and resized on demand, so the
    state survives surgical graph updates.
    """

    arrival_late: np.ndarray = field(
        default_factory=lambda: np.zeros(0)
    )
    arrival_early: np.ndarray = field(
        default_factory=lambda: np.zeros(0)
    )
    slew: np.ndarray = field(default_factory=lambda: np.zeros(0))
    derate_late: np.ndarray = field(default_factory=lambda: np.ones(0))
    derate_early: np.ndarray = field(default_factory=lambda: np.ones(0))

    def ensure_capacity(self, node_count: int, edge_count: int) -> None:
        """Grow the arrays to cover the current graph size."""
        if self.arrival_late.size < node_count:
            grow = node_count - self.arrival_late.size
            self.arrival_late = np.concatenate(
                [self.arrival_late, np.zeros(grow)]
            )
            self.arrival_early = np.concatenate(
                [self.arrival_early, np.zeros(grow)]
            )
            self.slew = np.concatenate([self.slew, np.zeros(grow)])
        if self.derate_late.size < edge_count:
            grow = edge_count - self.derate_late.size
            self.derate_late = np.concatenate([self.derate_late, np.ones(grow)])
            self.derate_early = np.concatenate(
                [self.derate_early, np.ones(grow)]
            )


@dataclass(frozen=True)
class DerateSettings:
    """Everything needed to derate one edge."""

    table: DeratingTable | None
    gba_distance: float
    clock_late: float
    clock_early: float
    data_early: float
    flat_late: float = 1.0
    early_table: DeratingTable | None = None


def compute_edge_derates(
    graph: TimingGraph,
    state: TimingState,
    settings: DerateSettings,
    depths: dict[str, int],
    weights: dict[str, float],
) -> None:
    """Fill the per-edge late/early derate arrays.

    ``depths`` is the GBA worst-depth map from
    :func:`repro.aocv.depth.compute_gba_depths`; ``weights`` the mGBA
    per-gate correction multipliers (empty dict = plain GBA).
    """
    state.ensure_capacity(len(graph.nodes), len(graph.edges))
    # GBA uses one distance for the whole design, so the table lookups
    # depend only on the (integer) depth: memoize them.
    late_of_depth: dict[int, float] = {}
    early_of_depth: dict[int, float] = {}

    def _aocv_late(depth: int) -> float:
        value = late_of_depth.get(depth)
        if value is None:
            value = settings.table.derate(depth, settings.gba_distance)
            late_of_depth[depth] = value
        return value

    def _aocv_early(depth: int) -> float:
        value = early_of_depth.get(depth)
        if value is None:
            value = settings.early_table.derate(
                depth, settings.gba_distance
            )
            early_of_depth[depth] = value
        return value

    for edge in graph.live_edges():
        domain = classify_edge(graph, edge)
        if domain is EdgeDomain.CLOCK:
            late, early = settings.clock_late, settings.clock_early
        elif domain is EdgeDomain.DATA_CELL:
            assert edge.gate is not None
            depth = depths.get(edge.gate, 1)
            if settings.table is not None:
                late = _aocv_late(depth)
            else:
                late = settings.flat_late
            late *= weights.get(edge.gate, 1.0)
            if settings.early_table is not None:
                early = _aocv_early(depth)
            else:
                early = settings.data_early
        else:
            late, early = 1.0, 1.0
        state.derate_late[edge.id] = late
        state.derate_early[edge.id] = early


def effective_late(state: TimingState, edge: TimingEdge) -> float:
    """Late (derated) delay of an edge."""
    return edge.delay * state.derate_late[edge.id]


def effective_early(state: TimingState, edge: TimingEdge) -> float:
    """Early (derated) delay of an edge."""
    return edge.delay * state.derate_early[edge.id]


@dataclass(frozen=True)
class BoundaryConditions:
    """Arrival/slew rules at graph sources."""

    clock_ports: frozenset[str]
    input_delays: dict[str, float]
    input_slew: float
    clock_slew: float


def apply_boundary(
    graph: TimingGraph, state: TimingState, node_id: int,
    boundary: BoundaryConditions,
) -> None:
    """Set arrival/slew at a source (no-fanin) node."""
    node = graph.node(node_id)
    if node.ref.is_port and node.ref.pin in boundary.clock_ports:
        state.arrival_late[node_id] = 0.0
        state.arrival_early[node_id] = 0.0
        state.slew[node_id] = boundary.clock_slew
    elif node.ref.is_port:
        delay = boundary.input_delays.get(node.ref.pin, 0.0)
        state.arrival_late[node_id] = delay
        state.arrival_early[node_id] = delay
        state.slew[node_id] = boundary.input_slew
    else:
        # Dangling gate pin: time zero with the default slew.
        state.arrival_late[node_id] = 0.0
        state.arrival_early[node_id] = 0.0
        state.slew[node_id] = boundary.input_slew


def relax_node(
    graph: TimingGraph, state: TimingState, node_id: int,
    boundary: BoundaryConditions,
) -> None:
    """Recompute one node's arrival/slew from its (computed) in-edges."""
    in_list = graph.in_edges[node_id]
    if not in_list:
        apply_boundary(graph, state, node_id, boundary)
        return
    late = NEG_INF
    early = POS_INF
    slew = 0.0
    for edge_id in in_list:
        edge = graph.edge(edge_id)
        late = max(
            late, state.arrival_late[edge.src] + effective_late(state, edge)
        )
        early = min(
            early, state.arrival_early[edge.src] + effective_early(state, edge)
        )
        slew = max(slew, edge.out_slew)
    state.arrival_late[node_id] = late
    state.arrival_early[node_id] = early
    state.slew[node_id] = slew


def compute_out_edges(
    graph: TimingGraph, calc: DelayCalculator, state: TimingState,
    node_id: int,
) -> None:
    """Run delay calculation for a node's fanout arcs at its slew."""
    slew = float(state.slew[node_id])
    for edge_id in graph.out_edges[node_id]:
        calc.compute_edge(graph, graph.edge(edge_id), slew)


def propagate_full(
    graph: TimingGraph,
    calc: DelayCalculator,
    state: TimingState,
    boundary: BoundaryConditions,
) -> None:
    """One complete forward pass over the whole graph.

    Assumes the derate arrays are current (call
    :func:`compute_edge_derates` first).
    """
    state.ensure_capacity(len(graph.nodes), len(graph.edges))
    for node_id in graph.topological_order():
        relax_node(graph, state, node_id, boundary)
        compute_out_edges(graph, calc, state, node_id)


def check_propagation_sanity(graph: TimingGraph, state: TimingState) -> list[str]:
    """Debug helper: verify arrival >= max-fanin identity on every node.

    Returns human-readable violations (empty list = consistent); used by
    tests and by the incremental engine's self-check mode.

    Runs as one segment-max over the flattened fanin arrays (see
    :func:`repro.timing.kernel.flatten_fanin`); the tolerance hand-codes
    ``math.isclose(rel_tol=1e-9, abs_tol=1e-9)`` element-wise (with an
    exact-equality guard so ``inf == inf`` passes, as it does there).
    """
    from repro.timing.kernel import flatten_fanin

    node_ids, seg, edge_ids, src_ids = flatten_fanin(graph)
    if not node_ids.size:
        return []
    delays = np.asarray([graph.edges[e].delay for e in edge_ids.tolist()])
    values = (
        state.arrival_late[src_ids]
        + delays * state.derate_late[edge_ids]
    )
    expect = np.maximum.reduceat(values, seg)
    got = state.arrival_late[node_ids]
    diff = np.abs(expect - got)
    tol = np.maximum(1e-9 * np.maximum(np.abs(expect), np.abs(got)), 1e-9)
    bad = ~((expect == got) | (diff <= tol))
    problems: list[str] = []
    for idx in np.flatnonzero(bad).tolist():
        node = graph.node(int(node_ids[idx]))
        problems.append(
            f"node {node.ref}: arrival_late {got[idx]} "
            f"!= max-fanin {expect[idx]}"
        )
    return problems
