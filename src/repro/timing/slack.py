"""Setup/hold slack extraction and required-time back-propagation.

All functions are pure over (graph, state, constraints, ...) so both the
full and incremental engines reuse them unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import TimingError
from repro.sdc.constraints import Clock, Constraints
from repro.timing.crpr import CRPRCalculator
from repro.timing.graph import EndpointInfo, NodeKind, TimingGraph
from repro.timing.propagation import POS_INF, TimingState, effective_late


class CheckKind(enum.Enum):
    """Which timing check a slack value belongs to."""

    SETUP = "setup"
    HOLD = "hold"


@dataclass(frozen=True)
class EndpointSlack:
    """Slack at one endpoint for one check."""

    node: int
    name: str
    kind: CheckKind
    slack: float
    arrival: float
    required: float
    crpr_credit: float = 0.0


def endpoint_clock_map(
    graph: TimingGraph, constraints: Constraints
) -> dict[int, Clock]:
    """Resolve each endpoint's capture clock.

    Single-clock designs map everything to that clock.  Multi-clock
    designs trace each CK sink back to the clock port whose network
    reaches it; output-port endpoints use the clock named by their
    ``set_output_delay``.  Endpoints with no resolvable clock fall back
    to the first defined clock (and cross-domain capture uses the
    *capture* clock's period — the standard simplification when no
    inter-clock relation is specified).
    """
    clocks = constraints.clocks
    if not clocks:
        raise TimingError("no clocks defined")
    fallback = next(iter(clocks.values()))
    if len(clocks) == 1:
        return {node_id: fallback for node_id in graph.endpoints}
    port_to_clock = {c.source_port: c for c in clocks.values()}
    sink_port = graph.clock_sinks_by_port(list(port_to_clock))
    result: dict[int, Clock] = {}
    for node_id, info in graph.endpoints.items():
        node = graph.node(node_id)
        if node.kind is NodeKind.PORT_OUT:
            name = constraints.clock_of_port(node.ref.pin)
            result[node_id] = clocks.get(name, fallback)
        elif info.ck_node is not None and info.ck_node in sink_port:
            result[node_id] = port_to_clock[sink_port[info.ck_node]]
        else:
            result[node_id] = fallback
    return result


@dataclass(frozen=True)
class SlackSummary:
    """Design-level QoR slice of one check."""

    kind: CheckKind
    wns: float
    tns: float
    violations: int
    endpoints: int

    @classmethod
    def from_slacks(cls, kind: CheckKind,
                    slacks: "list[EndpointSlack]") -> "SlackSummary":
        """Aggregate endpoint slacks into WNS / TNS / violation count."""
        if not slacks:
            return cls(kind, 0.0, 0.0, 0, 0)
        values = np.array([s.slack for s in slacks])
        negative = values[values < 0]
        return cls(
            kind=kind,
            wns=float(values.min()),
            tns=float(negative.sum()),
            violations=int(negative.size),
            endpoints=len(slacks),
        )


def endpoint_capture_name(graph: TimingGraph, info: EndpointInfo) -> str:
    """The name timing exceptions match the capture side against."""
    if info.gate is not None:
        return info.gate
    return graph.node(info.node).ref.pin


def setup_required(
    graph: TimingGraph,
    state: TimingState,
    info: EndpointInfo,
    clock: Clock,
    constraints: Constraints,
    crpr: CRPRCalculator | None = None,
    launch_ck: int | None = None,
) -> tuple[float, float]:
    """(required time, crpr credit) for a setup check at an endpoint.

    ``crpr``/``launch_ck`` enable exact per-path credit (PBA); omitting
    them gives the conservative graph-based zero credit.  Multicycle
    exceptions widen the capture window to N periods (endpoint-local,
    hence graph-safe).
    """
    node = graph.node(info.node)
    cycles = 1
    if constraints.has_exceptions():
        cycles = constraints.multicycle_of(
            endpoint_capture_name(graph, info)
        )
    window = cycles * clock.period
    if node.kind is NodeKind.PORT_OUT:
        required = window - constraints.output_delay_of(node.ref.pin) \
            - clock.uncertainty
        return required, 0.0
    if info.ck_node is None or info.setup_arc is None:
        raise TimingError(f"endpoint {node.ref} lacks setup constraint data")
    capture_ck = float(state.arrival_early[info.ck_node])
    setup = info.setup_arc.delay.lookup(
        float(state.slew[info.node]), float(state.slew[info.ck_node])
    )
    credit = 0.0
    if crpr is not None and launch_ck is not None:
        credit = crpr.credit(launch_ck, info.ck_node)
    required = capture_ck + window - setup - clock.uncertainty + credit
    return required, credit


def hold_required(
    graph: TimingGraph,
    state: TimingState,
    info: EndpointInfo,
) -> float | None:
    """Required time for a hold check, or None when not applicable."""
    node = graph.node(info.node)
    if node.kind is NodeKind.PORT_OUT:
        return None  # port hold checks are out of scope (documented)
    if info.ck_node is None or info.hold_arc is None:
        return None
    capture_ck_late = float(state.arrival_late[info.ck_node])
    hold = info.hold_arc.delay.lookup(
        float(state.slew[info.node]), float(state.slew[info.ck_node])
    )
    return capture_ck_late + hold


def setup_slacks(
    graph: TimingGraph,
    state: TimingState,
    constraints: Constraints,
) -> list[EndpointSlack]:
    """Graph-based setup slack at every endpoint.

    GBA applies no CRPR credit — it has no launch information at an
    endpoint, so zero credit is the conservative (and classic) choice.

    Flop endpoints are grouped by setup-constraint table and their
    setup times computed with one vectorized lookup per table: this
    function runs once per accepted/rejected optimizer move, so the
    per-endpoint Python cost is the closure loop's inner constant.
    """
    clock_map = endpoint_clock_map(graph, constraints)
    endpoint_ids = sorted(graph.endpoints)
    # Group flop endpoints by their (shared) setup table.
    by_table: dict[int, list[int]] = {}
    tables: dict[int, object] = {}
    setup_times: dict[int, float] = {}
    for node_id in endpoint_ids:
        info = graph.endpoints[node_id]
        if info.setup_arc is not None and info.ck_node is not None:
            key = id(info.setup_arc.delay)
            tables[key] = info.setup_arc.delay
            by_table.setdefault(key, []).append(node_id)
    for key, members in by_table.items():
        data_slews = state.slew[np.array(members)]
        ck_nodes = np.array(
            [graph.endpoints[n].ck_node for n in members]
        )
        clock_slews = state.slew[ck_nodes]
        values = tables[key].lookup_many(data_slews, clock_slews)
        for node_id, value in zip(members, np.atleast_1d(values)):
            setup_times[node_id] = float(value)
    has_exceptions = constraints.has_exceptions()
    results: list[EndpointSlack] = []
    for node_id in endpoint_ids:
        info = graph.endpoints[node_id]
        node = graph.node(node_id)
        clock = clock_map[node_id]
        window = clock.period
        if has_exceptions:
            window *= constraints.multicycle_of(
                endpoint_capture_name(graph, info)
            )
        if node.kind is NodeKind.PORT_OUT:
            required = (
                window - constraints.output_delay_of(node.ref.pin)
                - clock.uncertainty
            )
        elif node_id in setup_times:
            capture_ck = float(state.arrival_early[info.ck_node])
            required = (
                capture_ck + window - setup_times[node_id]
                - clock.uncertainty
            )
        else:
            raise TimingError(
                f"endpoint {node.ref} lacks setup constraint data"
            )
        arrival = float(state.arrival_late[node_id])
        results.append(EndpointSlack(
            node=node_id,
            name=str(node.ref),
            kind=CheckKind.SETUP,
            slack=required - arrival,
            arrival=arrival,
            required=required,
        ))
    return results


def hold_slacks(
    graph: TimingGraph,
    state: TimingState,
    constraints: Constraints,
) -> list[EndpointSlack]:
    """Graph-based hold slack at every flop endpoint."""
    results: list[EndpointSlack] = []
    for node_id in sorted(graph.endpoints):
        info = graph.endpoints[node_id]
        required = hold_required(graph, state, info)
        if required is None:
            continue
        arrival = float(state.arrival_early[node_id])
        results.append(EndpointSlack(
            node=node_id,
            name=str(graph.node(node_id).ref),
            kind=CheckKind.HOLD,
            slack=arrival - required,
            arrival=arrival,
            required=required,
        ))
    return results


def compute_required_times(
    graph: TimingGraph,
    state: TimingState,
    constraints: Constraints,
) -> np.ndarray:
    """Late required time per node (setup), +inf when unconstrained.

    One backward topological pass: required(endpoint) comes from the
    setup check; required(node) = min over fanout of
    (required(dst) - late delay).  Clock-network nodes are left
    unconstrained — their "requirement" is expressed through the data
    checks they feed.
    """
    clock_map = endpoint_clock_map(graph, constraints)
    required = np.full(len(graph.nodes), POS_INF)
    for node_id in sorted(graph.endpoints):
        info = graph.endpoints[node_id]
        value, _ = setup_required(
            graph, state, info, clock_map[node_id], constraints
        )
        required[node_id] = value
    for node_id in reversed(graph.topological_order()):
        node = graph.node(node_id)
        if node.is_clock_tree:
            continue
        best = required[node_id]
        for edge_id in graph.out_edges[node_id]:
            edge = graph.edge(edge_id)
            if graph.node(edge.dst).is_clock_tree:
                continue
            candidate = required[edge.dst] - effective_late(state, edge)
            best = min(best, candidate)
        required[node_id] = best
    return required


def gate_worst_slacks(
    graph: TimingGraph,
    state: TimingState,
    required: np.ndarray,
) -> dict[str, float]:
    """Worst (required - arrival) over each gate's pins.

    The closure optimizer uses this to rank candidate gates: the most
    negative gates sit on the most critical paths.
    """
    worst: dict[str, float] = {}
    for node in graph.live_nodes():
        gate = node.ref.gate
        if gate is None or required[node.id] == POS_INF:
            continue
        slack = float(required[node.id] - state.arrival_late[node.id])
        if gate not in worst or slack < worst[gate]:
            worst[gate] = slack
    return worst
