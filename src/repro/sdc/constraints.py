"""In-memory timing-constraint model.

Times follow the library convention (ps) even though SDC files quote
nanoseconds; the parser/writer convert at the boundary.

Timing exceptions
-----------------
``set_false_path -from A -to B`` declares launch/capture pairs whose
paths are not real (synchronizers, configuration signals).  Graph-based
analysis cannot honour pair-wise exceptions (it has no launch identity
at an endpoint) and conservatively keeps them — one more pessimism
source the mGBA fit absorbs; path-based analysis drops matching paths
exactly.  ``set_multicycle_path N -to B`` relaxes an endpoint's capture
to ``N`` cycles; being endpoint-local it is graph-safe and both views
apply it.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field

from repro.errors import SDCError


@dataclass
class Clock:
    """A clock definition.

    Attributes
    ----------
    name:
        Clock name (``"clk"``).
    period:
        Clock period in ps.
    source_port:
        Top-level port the clock enters through.
    uncertainty:
        Setup uncertainty (jitter + margin) subtracted from the capture
        edge, in ps.
    """

    name: str
    period: float
    source_port: str
    uncertainty: float = 0.0

    def __post_init__(self):
        if self.period <= 0:
            raise SDCError(f"clock {self.name}: period must be > 0")
        if self.uncertainty < 0:
            raise SDCError(f"clock {self.name}: uncertainty must be >= 0")


@dataclass
class IODelay:
    """External delay budget on a top-level port, relative to a clock."""

    port: str
    clock: str
    delay: float          # ps
    is_input: bool        # True: set_input_delay, False: set_output_delay


@dataclass(frozen=True)
class PathException:
    """One ``set_false_path`` / ``set_multicycle_path`` record.

    ``from_pattern`` / ``to_pattern`` are fnmatch globs over *instance
    or port names* (``"ff3"``, ``"sync_*"``, ``"*"``); an empty pattern
    matches everything.  ``multiplier`` is the multicycle factor (1 for
    false paths, which ignore it).
    """

    kind: str                 # "false" | "multicycle"
    from_pattern: str = "*"
    to_pattern: str = "*"
    multiplier: int = 1

    def matches(self, launch_name: str, capture_name: str) -> bool:
        """Does (launch, capture) fall under this exception?"""
        return (
            fnmatch.fnmatchcase(launch_name, self.from_pattern or "*")
            and fnmatch.fnmatchcase(capture_name, self.to_pattern or "*")
        )

    def matches_endpoint(self, capture_name: str) -> bool:
        """Does the capture side alone fall under this exception?"""
        return fnmatch.fnmatchcase(capture_name, self.to_pattern or "*")


@dataclass
class Constraints:
    """All constraints of one design."""

    clocks: dict[str, Clock] = field(default_factory=dict)
    io_delays: list[IODelay] = field(default_factory=list)
    exceptions: list[PathException] = field(default_factory=list)
    #: Flat (non-AOCV) late derate applied when no derating table is in
    #: force; 1.0 means no flat derating.
    flat_derate_late: float = 1.0

    def add_clock(self, clock: Clock) -> Clock:
        """Register a clock; raises on duplicate names."""
        if clock.name in self.clocks:
            raise SDCError(f"duplicate clock {clock.name}")
        self.clocks[clock.name] = clock
        return clock

    def clock(self, name: str) -> Clock:
        """Return the named clock, raising :class:`SDCError` if absent."""
        try:
            return self.clocks[name]
        except KeyError:
            raise SDCError(f"unknown clock {name}") from None

    def primary_clock(self) -> Clock:
        """The single clock of a one-clock design (the common case)."""
        if len(self.clocks) != 1:
            raise SDCError(
                f"expected exactly one clock, have {len(self.clocks)}"
            )
        return next(iter(self.clocks.values()))

    def set_input_delay(self, port: str, clock: str, delay: float) -> None:
        """Budget external delay before an input port."""
        self.io_delays.append(IODelay(port, clock, delay, is_input=True))

    def set_output_delay(self, port: str, clock: str, delay: float) -> None:
        """Budget external delay after an output port."""
        self.io_delays.append(IODelay(port, clock, delay, is_input=False))

    def input_delay_of(self, port: str) -> float:
        """External input delay for a port (0.0 when unconstrained)."""
        for entry in self.io_delays:
            if entry.is_input and entry.port == port:
                return entry.delay
        return 0.0

    def output_delay_of(self, port: str) -> float:
        """External output delay for a port (0.0 when unconstrained)."""
        for entry in self.io_delays:
            if not entry.is_input and entry.port == port:
                return entry.delay
        return 0.0

    def clock_of_port(self, port: str) -> str | None:
        """The clock name a port's IO delay references, or None."""
        for entry in self.io_delays:
            if entry.port == port:
                return entry.clock
        return None

    # ------------------------------------------------------------------
    # Timing exceptions
    # ------------------------------------------------------------------
    def set_false_path(self, from_pattern: str = "*",
                       to_pattern: str = "*") -> None:
        """Declare launch/capture pairs as not-a-real-path."""
        self.exceptions.append(PathException(
            kind="false", from_pattern=from_pattern, to_pattern=to_pattern,
        ))

    def set_multicycle_path(self, multiplier: int,
                            to_pattern: str = "*") -> None:
        """Give matching endpoints ``multiplier`` capture cycles."""
        if multiplier < 1:
            raise SDCError("multicycle multiplier must be >= 1")
        self.exceptions.append(PathException(
            kind="multicycle", to_pattern=to_pattern, multiplier=multiplier,
        ))

    def is_false_path(self, launch_name: str, capture_name: str) -> bool:
        """Is this launch/capture pair covered by a false-path rule?"""
        return any(
            e.kind == "false" and e.matches(launch_name, capture_name)
            for e in self.exceptions
        )

    def multicycle_of(self, capture_name: str) -> int:
        """Capture-cycle multiplier for an endpoint (1 = single cycle)."""
        best = 1
        for e in self.exceptions:
            if e.kind == "multicycle" and e.matches_endpoint(capture_name):
                best = max(best, e.multiplier)
        return best

    def has_exceptions(self) -> bool:
        """True when any false-path/multicycle rule exists."""
        return bool(self.exceptions)
