"""SDC-lite parser.

Supports the command subset the writer emits, one command per line
(backslash continuations allowed)::

    create_clock -name clk -period 1.2 [get_ports clk]
    set_clock_uncertainty 0.05 [get_clocks clk]
    set_input_delay 0.2 -clock clk [get_ports in0]
    set_output_delay 0.3 -clock clk [get_ports out0]
    set_timing_derate -late 1.2
    set_false_path -from [get_cells sync_*] -to [get_cells cfg_reg]
    set_multicycle_path 2 -to [get_cells slow_*]

Periods and delays are in ns in the file (SDC convention) and converted
to ps in the model.  ``get_cells`` arguments are fnmatch patterns over
instance/port names.
"""

from __future__ import annotations

import re
import shlex
from pathlib import Path

from repro.errors import ParseError, SDCError
from repro.sdc.constraints import Clock, Constraints
from repro.units import ns_to_ps

_GETTER_RE = re.compile(
    r"\[\s*(get_ports|get_clocks|get_pins|get_cells)\s+([^\]]+?)\s*\]"
)


def _extract_getters(line: str) -> tuple[str, list[tuple[str, str]]]:
    """Replace ``[get_xxx name]`` constructs with placeholders.

    Returns the cleaned line and the (getter, argument) pairs in order.
    """
    getters: list[tuple[str, str]] = []

    def _sub(match: re.Match) -> str:
        getters.append((match.group(1), match.group(2)))
        return f"__OBJ{len(getters) - 1}__"

    return _GETTER_RE.sub(_sub, line), getters


def _logical_lines(text: str) -> "list[tuple[int, str]]":
    """Split into logical lines, honouring backslash continuations."""
    lines: list[tuple[int, str]] = []
    pending = ""
    pending_line = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.split("#", 1)[0].rstrip()
        if not stripped and not pending:
            continue
        if not pending:
            pending_line = lineno
        if stripped.endswith("\\"):
            pending += stripped[:-1] + " "
            continue
        pending += stripped
        if pending.strip():
            lines.append((pending_line, pending.strip()))
        pending = ""
    if pending.strip():
        lines.append((pending_line, pending.strip()))
    return lines


class _Command:
    """One parsed SDC command: flags, positionals, and object getters."""

    def __init__(self, line: str, lineno: int, filename: str):
        self.lineno = lineno
        self.filename = filename
        cleaned, self.getters = _extract_getters(line)
        try:
            tokens = shlex.split(cleaned)
        except ValueError as exc:
            raise ParseError(str(exc), filename, lineno) from exc
        self.name = tokens[0]
        self.flags: dict[str, str] = {}
        self.positionals: list[str] = []
        i = 1
        while i < len(tokens):
            token = tokens[i]
            if token.startswith("-"):
                flag = token[1:]
                if i + 1 < len(tokens) and not tokens[i + 1].startswith("-"):
                    self.flags[flag] = tokens[i + 1]
                    i += 2
                else:
                    self.flags[flag] = ""
                    i += 1
            else:
                self.positionals.append(token)
                i += 1

    def getter(self, kind: str) -> str:
        """First getter argument of the given kind; raises when absent."""
        for getter_kind, arg in self.getters:
            if getter_kind == kind:
                return arg.split()[0]
        raise ParseError(
            f"{self.name}: missing [{kind} ...]", self.filename, self.lineno
        )

    def getter_after_flag(self, flag: str) -> str | None:
        """The getter argument following ``-flag`` in source order.

        ``-from [get_cells a] -to [get_cells b]``: the cleaned token
        stream holds ``-from __OBJ0__ -to __OBJ1__``; the flag's value
        is the placeholder naming the getter index.
        """
        value = self.flags.get(flag, "")
        if value.startswith("__OBJ") and value.endswith("__"):
            index = int(value[5:-2])
            return self.getters[index][1].split()[0]
        return value or None

    def flag_float(self, name: str) -> float:
        try:
            return float(self.flags[name])
        except KeyError:
            raise ParseError(
                f"{self.name}: missing -{name}", self.filename, self.lineno
            ) from None
        except ValueError:
            raise ParseError(
                f"{self.name}: -{name} expects a number, got "
                f"{self.flags[name]!r}",
                self.filename, self.lineno,
            ) from None

    def first_positional_float(self) -> float:
        for value in self.positionals:
            if value.startswith("__OBJ"):
                continue
            try:
                return float(value)
            except ValueError:
                continue
        raise ParseError(
            f"{self.name}: expected a numeric argument",
            self.filename, self.lineno,
        )


def parse_sdc(text: str, filename: str = "<string>") -> Constraints:
    """Parse SDC-lite text into :class:`Constraints`."""
    constraints = Constraints()
    pending_uncertainty: list[tuple[str, float]] = []
    for lineno, line in _logical_lines(text):
        command = _Command(line, lineno, filename)
        if command.name == "create_clock":
            name = command.flags.get("name") or command.getter("get_ports")
            constraints.add_clock(Clock(
                name=name,
                period=ns_to_ps(command.flag_float("period")),
                source_port=command.getter("get_ports"),
            ))
        elif command.name == "set_clock_uncertainty":
            value = ns_to_ps(command.first_positional_float())
            clock_name = command.getter("get_clocks")
            pending_uncertainty.append((clock_name, value))
        elif command.name == "set_input_delay":
            constraints.set_input_delay(
                command.getter("get_ports"),
                command.flags.get("clock", ""),
                ns_to_ps(command.first_positional_float()),
            )
        elif command.name == "set_output_delay":
            constraints.set_output_delay(
                command.getter("get_ports"),
                command.flags.get("clock", ""),
                ns_to_ps(command.first_positional_float()),
            )
        elif command.name == "set_timing_derate":
            if "late" in command.flags:
                value = (
                    float(command.flags["late"])
                    if command.flags["late"]
                    else command.first_positional_float()
                )
                constraints.flat_derate_late = value
        elif command.name == "set_false_path":
            constraints.set_false_path(
                from_pattern=command.getter_after_flag("from") or "*",
                to_pattern=command.getter_after_flag("to") or "*",
            )
        elif command.name == "set_multicycle_path":
            constraints.set_multicycle_path(
                int(command.first_positional_float()),
                to_pattern=command.getter_after_flag("to") or "*",
            )
        else:
            raise ParseError(
                f"unsupported SDC command {command.name!r}", filename, lineno
            )
    for clock_name, value in pending_uncertainty:
        try:
            constraints.clock(clock_name).uncertainty = value
        except SDCError as exc:
            raise ParseError(str(exc), filename, 0) from exc
    return constraints


def load_sdc(path) -> Constraints:
    """Parse an SDC-lite file from disk."""
    path = Path(path)
    return parse_sdc(path.read_text(), str(path))
