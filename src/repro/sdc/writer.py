"""SDC-lite writer: the inverse of :mod:`repro.sdc.parser`."""

from __future__ import annotations

from pathlib import Path

from repro.sdc.constraints import Constraints
from repro.units import ps_to_ns


def _ns(value_ps: float) -> str:
    return f"{ps_to_ns(value_ps):.6g}"


def write_sdc(constraints: Constraints) -> str:
    """Serialize :class:`Constraints` to SDC-lite text."""
    out: list[str] = []
    for clock in constraints.clocks.values():
        out.append(
            f"create_clock -name {clock.name} -period {_ns(clock.period)} "
            f"[get_ports {clock.source_port}]"
        )
        if clock.uncertainty:
            out.append(
                f"set_clock_uncertainty {_ns(clock.uncertainty)} "
                f"[get_clocks {clock.name}]"
            )
    for entry in constraints.io_delays:
        command = "set_input_delay" if entry.is_input else "set_output_delay"
        out.append(
            f"{command} {_ns(entry.delay)} -clock {entry.clock} "
            f"[get_ports {entry.port}]"
        )
    if constraints.flat_derate_late != 1.0:
        out.append(f"set_timing_derate -late {constraints.flat_derate_late:.6g}")
    for exception in constraints.exceptions:
        if exception.kind == "false":
            out.append(
                f"set_false_path -from [get_cells {exception.from_pattern}] "
                f"-to [get_cells {exception.to_pattern}]"
            )
        else:
            out.append(
                f"set_multicycle_path {exception.multiplier} "
                f"-to [get_cells {exception.to_pattern}]"
            )
    out.append("")
    return "\n".join(out)


def save_sdc(constraints: Constraints, path) -> None:
    """Write constraints to disk in SDC-lite format."""
    Path(path).write_text(write_sdc(constraints))
