"""Timing-constraint substrate (SDC-lite).

* :class:`~repro.sdc.constraints.Clock`,
  :class:`~repro.sdc.constraints.IODelay`,
  :class:`~repro.sdc.constraints.Constraints` — in-memory model.
* :func:`~repro.sdc.parser.parse_sdc` /
  :func:`~repro.sdc.writer.write_sdc` — SDC-lite text format
  (create_clock, set_input_delay, set_output_delay,
  set_clock_uncertainty, set_timing_derate).
"""

from repro.sdc.constraints import Clock, Constraints, IODelay, PathException
from repro.sdc.parser import parse_sdc
from repro.sdc.writer import write_sdc

__all__ = [
    "Clock",
    "Constraints",
    "IODelay",
    "PathException",
    "parse_sdc",
    "write_sdc",
]
