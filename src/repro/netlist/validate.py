"""Structural netlist validation (lint).

:func:`validate_netlist` returns a list of :class:`Violation` records;
an empty list means the netlist is clean.  The timing-graph builder
refuses netlists with ``ERROR``-severity violations, because every one
of them (multi-driver, combinational loop, unknown cell) would corrupt
the analysis silently.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.liberty.cell import PinDirection
from repro.netlist.core import Netlist


class Severity(enum.Enum):
    """How bad a lint finding is."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Violation:
    """One lint finding."""

    severity: Severity
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.code}: {self.message}"


def _check_nets(netlist: Netlist, findings: list[Violation]) -> None:
    for net_name in netlist.nets:
        driver = netlist.net_driver(net_name)
        loads = netlist.net_loads(net_name)
        if driver is None:
            severity = (
                Severity.WARNING if not loads else Severity.ERROR
            )
            findings.append(Violation(
                severity, "UNDRIVEN",
                f"net {net_name} has no driver"
                + (f" but {len(loads)} load(s)" if loads else ""),
            ))
        if driver is not None and not loads:
            findings.append(Violation(
                Severity.WARNING, "UNLOADED",
                f"net {net_name} driven by {driver} has no loads",
            ))


def _check_pins(netlist: Netlist, findings: list[Violation]) -> None:
    for gate_name, gate in netlist.gates.items():
        cell = netlist.cell_of(gate_name)
        for pin in cell.pins.values():
            if pin.name not in gate.connections:
                severity = (
                    Severity.ERROR
                    if pin.direction is PinDirection.INPUT
                    else Severity.WARNING
                )
                findings.append(Violation(
                    severity, "DANGLING",
                    f"{gate_name}/{pin.name} ({pin.direction.value}) "
                    "is unconnected",
                ))


def _check_max_cap(netlist: Netlist, findings: list[Violation]) -> None:
    for gate_name, gate in netlist.gates.items():
        cell = netlist.cell_of(gate_name)
        for pin in cell.output_pins:
            net_name = gate.connections.get(pin.name)
            if net_name is None:
                continue
            load = netlist.net_load_capacitance(net_name)
            if load > pin.max_capacitance:
                findings.append(Violation(
                    Severity.WARNING, "MAXCAP",
                    f"{gate_name}/{pin.name} drives {load:.2f} fF "
                    f"> max {pin.max_capacitance:.2f} fF",
                ))


def find_combinational_loops(netlist: Netlist) -> list[list[str]]:
    """Find cycles in the combinational gate graph.

    Sequential gates break cycles (their D->Q dependency goes through the
    clock edge), so only combinational instances participate.  Returns a
    list of cycles, each as a list of gate names.
    """
    comb = set(netlist.combinational_gates())
    # Iterative DFS with colouring; records one cycle per back edge.
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {g: WHITE for g in comb}
    parent: dict[str, str | None] = {}
    cycles: list[list[str]] = []

    def successors(gate: str) -> list[str]:
        return [g for g in netlist.fanout_gates(gate) if g in comb]

    for root in comb:
        if color[root] != WHITE:
            continue
        stack: list[tuple[str, int]] = [(root, 0)]
        parent[root] = None
        color[root] = GRAY
        succ_cache = {root: successors(root)}
        while stack:
            node, idx = stack[-1]
            succs = succ_cache[node]
            if idx < len(succs):
                stack[-1] = (node, idx + 1)
                child = succs[idx]
                if color[child] == GRAY:
                    # Back edge: reconstruct the cycle through parents.
                    cycle = [child, node]
                    walker = parent[node]
                    while walker is not None and walker != child:
                        cycle.append(walker)
                        walker = parent[walker]
                    cycles.append(list(reversed(cycle[1:])) + [child])
                elif color[child] == WHITE:
                    color[child] = GRAY
                    parent[child] = node
                    succ_cache[child] = successors(child)
                    stack.append((child, 0))
            else:
                color[node] = BLACK
                stack.pop()
    return cycles


def validate_netlist(netlist: Netlist) -> list[Violation]:
    """Run all structural checks; returns findings (empty = clean)."""
    findings: list[Violation] = []
    _check_nets(netlist, findings)
    _check_pins(netlist, findings)
    _check_max_cap(netlist, findings)
    for cycle in find_combinational_loops(netlist):
        findings.append(Violation(
            Severity.ERROR, "COMBLOOP",
            "combinational loop: " + " -> ".join(cycle),
        ))
    return findings


def assert_clean(netlist: Netlist) -> None:
    """Raise :class:`~repro.errors.NetlistError` on any ERROR finding."""
    from repro.errors import NetlistError

    errors = [
        f for f in validate_netlist(netlist) if f.severity is Severity.ERROR
    ]
    if errors:
        raise NetlistError(
            f"netlist {netlist.name} has {len(errors)} structural error(s):\n"
            + "\n".join(str(e) for e in errors[:20])
        )
