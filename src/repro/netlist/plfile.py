"""Placement file I/O (Bookshelf-style ``.pl``).

One object per line::

    # repro placement, units nm
    ff0     12873.5   4410.0
    g_0_0_0  8731.2  11230.8

Completes the on-disk design bundle (Verilog + SDC + AOCV + SPEF + PL)
so a generated design round-trips through files with identical timing.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ParseError
from repro.netlist.placement import Placement


def write_placement(placement: Placement) -> str:
    """Serialize a placement to .pl text (sorted, diff-friendly)."""
    out = ["# repro placement, units nm"]
    for name in sorted(placement.locations):
        point = placement.locations[name]
        out.append(f"{name} {point.x:.4f} {point.y:.4f}")
    out.append("")
    return "\n".join(out)


def parse_placement(text: str, filename: str = "<string>") -> Placement:
    """Parse .pl text into a :class:`Placement`."""
    placement = Placement()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 3:
            raise ParseError(
                f"expected 'name x y', got {line!r}", filename, lineno
            )
        name, x_text, y_text = parts
        try:
            placement.place(name, float(x_text), float(y_text))
        except ValueError:
            raise ParseError(
                f"bad coordinate in {line!r}", filename, lineno
            ) from None
    return placement


def save_placement(placement: Placement, path) -> None:
    """Write a placement file to disk."""
    Path(path).write_text(write_placement(placement))


def load_placement(path) -> Placement:
    """Read a placement file from disk."""
    path = Path(path)
    return parse_placement(path.read_text(), str(path))
