"""Gate-level netlist substrate.

* :class:`~repro.netlist.core.Netlist` — gates, nets, ports,
  connectivity indexes, and editing primitives.
* :mod:`~repro.netlist.verilog` — structural-Verilog-subset parser and
  writer.
* :mod:`~repro.netlist.validate` — structural lint (multi-driven nets,
  dangling pins, combinational loops).
* :class:`~repro.netlist.placement.Placement` — gate coordinates and the
  bounding-box distances AOCV derating depends on.
* :mod:`~repro.netlist.edit` — higher-level edits (resize, buffer
  insertion/removal) returning change records for incremental timing.
"""

from repro.netlist.core import Gate, Net, Netlist, PinRef, Port, PortDirection
from repro.netlist.parasitics import (
    Parasitics,
    extract_parasitics,
    parse_spef,
    write_spef,
)
from repro.netlist.placement import Placement
from repro.netlist.plfile import parse_placement, write_placement
from repro.netlist.verilog import parse_verilog, write_verilog
from repro.netlist.validate import validate_netlist

__all__ = [
    "Gate",
    "Net",
    "Netlist",
    "PinRef",
    "Port",
    "PortDirection",
    "Placement",
    "Parasitics",
    "extract_parasitics",
    "parse_spef",
    "write_spef",
    "parse_placement",
    "write_placement",
    "parse_verilog",
    "write_verilog",
    "validate_netlist",
]
