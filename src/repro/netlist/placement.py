"""Placement model: gate coordinates and bounding-box distances.

AOCV derating depends on the *distance* of a path — the half-perimeter
of the bounding box of its endpoints (the metric the Synopsys AOCV
application note uses).  The placement also feeds the Elmore-lite wire
delay model: wire length between a driver and a load is their Manhattan
distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NetlistError


@dataclass(frozen=True)
class Point:
    """A placement location in nm."""

    x: float
    y: float

    def manhattan(self, other: "Point") -> float:
        """Manhattan distance to another point (nm)."""
        return abs(self.x - other.x) + abs(self.y - other.y)


@dataclass
class Placement:
    """Coordinates for every gate (and optionally ports) of a design."""

    locations: dict[str, Point] = field(default_factory=dict)

    def place(self, name: str, x: float, y: float) -> None:
        """Set the location of a gate or port."""
        self.locations[name] = Point(float(x), float(y))

    def location(self, name: str) -> Point:
        """Location of a gate/port; raises when unplaced."""
        try:
            return self.locations[name]
        except KeyError:
            raise NetlistError(f"{name} is not placed") from None

    def has(self, name: str) -> bool:
        """True when the name has a location."""
        return name in self.locations

    def distance(self, a: str, b: str) -> float:
        """Manhattan distance between two placed objects (nm)."""
        return self.location(a).manhattan(self.location(b))

    def bbox_half_perimeter(self, names: "list[str]") -> float:
        """Half-perimeter of the bounding box of the named objects (nm).

        This is the AOCV *distance* of a path whose endpoints (and
        optionally intermediate gates) are ``names``.
        """
        if not names:
            return 0.0
        points = [self.location(n) for n in names]
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def midpoint_of(self, a: str, b: str) -> Point:
        """Midpoint between two placed objects (for buffer insertion)."""
        pa, pb = self.location(a), self.location(b)
        return Point((pa.x + pb.x) / 2.0, (pa.y + pb.y) / 2.0)
