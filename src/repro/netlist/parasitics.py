"""Net parasitics: extraction, SPEF-lite I/O, lumped-RC queries.

Signoff flows consume extracted per-net parasitics rather than
geometric estimates.  This module provides both: ``extract_parasitics``
derives a :class:`Parasitics` set from placement geometry (what a
router's estimator would hand back), and the SPEF-lite format carries
them between tools.

Each net is modelled as a lumped pi: total capacitance ``C`` and total
resistance ``R``; the delay to any load is ``R * (C/2 + C_pin)``.  When
a :class:`Parasitics` set is installed in the delay calculator it takes
precedence over the geometric model for the nets it covers; uncovered
nets fall back to geometry.

SPEF-lite grammar (a recognizable subset of IEEE 1481 SPEF)::

    *SPEF "repro-lite"
    *DESIGN <name>
    *D_NET <net> <total_cap_fF>
    *RES <total_res_kohm>
    *END
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ParseError
from repro.netlist.core import Netlist
from repro.netlist.placement import Placement


@dataclass(frozen=True)
class NetParasitic:
    """Lumped RC of one net."""

    capacitance: float   # fF, total wire cap
    resistance: float    # kOhm, total wire res

    def elmore_to_load(self, pin_capacitance: float) -> float:
        """Elmore delay (ps) from driver to a load with the given pin cap."""
        return self.resistance * (self.capacitance / 2.0 + pin_capacitance)


@dataclass
class Parasitics:
    """Per-net parasitic annotations for one design."""

    design: str = ""
    nets: dict[str, NetParasitic] = field(default_factory=dict)

    def set_net(self, net: str, capacitance: float,
                resistance: float) -> None:
        """Annotate one net (overwrites any previous annotation)."""
        self.nets[net] = NetParasitic(capacitance, resistance)

    def get(self, net: str) -> NetParasitic | None:
        """The annotation for a net, or None when uncovered."""
        return self.nets.get(net)

    def coverage(self, netlist: Netlist) -> float:
        """Fraction of the netlist's nets that carry annotations."""
        if not netlist.nets:
            return 1.0
        covered = sum(1 for n in netlist.nets if n in self.nets)
        return covered / len(netlist.nets)

    def __len__(self) -> int:
        return len(self.nets)

    def __contains__(self, net: str) -> bool:
        return net in self.nets


def extract_parasitics(
    netlist: Netlist,
    placement: Placement,
    r_per_nm: float,
    c_per_nm: float,
) -> Parasitics:
    """Derive lumped parasitics from placement geometry (star routes).

    The total wire length of a net is the sum of driver-to-load
    Manhattan segments — the same lengths the geometric delay
    calculator uses.  For single-load nets re-annotating is exactly
    timing-neutral; for multi-load nets the lumped pi sees the whole
    net's RC on every branch, which bounds the per-segment geometric
    model from above (conservative, tested).
    """
    from repro.timing.delaycalc import segment_length

    parasitics = Parasitics(design=netlist.name)
    for net_name in netlist.nets:
        driver = netlist.net_driver(net_name)
        if driver is None:
            continue
        total_length = 0.0
        for load in netlist.net_loads(net_name):
            total_length += segment_length(placement, driver, load)
        if total_length > 0.0:
            parasitics.set_net(
                net_name,
                capacitance=c_per_nm * total_length,
                resistance=r_per_nm * total_length,
            )
    return parasitics


def write_spef(parasitics: Parasitics) -> str:
    """Serialize to SPEF-lite text."""
    out = ['*SPEF "repro-lite"', f"*DESIGN {parasitics.design or 'unnamed'}"]
    for net in sorted(parasitics.nets):
        annotation = parasitics.nets[net]
        out.append(f"*D_NET {net} {annotation.capacitance:.8g}")
        out.append(f"*RES {annotation.resistance:.8g}")
        out.append("*END")
    out.append("")
    return "\n".join(out)


def parse_spef(text: str, filename: str = "<string>") -> Parasitics:
    """Parse SPEF-lite text."""
    parasitics = Parasitics()
    current_net: str | None = None
    current_cap = 0.0
    current_res: float | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("//", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        keyword = parts[0]
        if keyword == "*SPEF":
            continue
        elif keyword == "*DESIGN":
            if len(parts) < 2:
                raise ParseError("*DESIGN needs a name", filename, lineno)
            parasitics.design = parts[1]
        elif keyword == "*D_NET":
            if current_net is not None:
                raise ParseError(
                    f"*D_NET {current_net} not closed with *END",
                    filename, lineno,
                )
            if len(parts) != 3:
                raise ParseError(
                    "*D_NET expects: *D_NET <net> <cap>", filename, lineno
                )
            current_net = parts[1]
            try:
                current_cap = float(parts[2])
            except ValueError:
                raise ParseError(
                    f"bad capacitance {parts[2]!r}", filename, lineno
                ) from None
            current_res = None
        elif keyword == "*RES":
            if current_net is None:
                raise ParseError("*RES outside *D_NET", filename, lineno)
            try:
                current_res = float(parts[1])
            except (IndexError, ValueError):
                raise ParseError("bad *RES line", filename, lineno) from None
        elif keyword == "*END":
            if current_net is None:
                raise ParseError("*END outside *D_NET", filename, lineno)
            parasitics.set_net(
                current_net, current_cap, current_res or 0.0
            )
            current_net = None
        else:
            raise ParseError(
                f"unsupported SPEF keyword {keyword!r}", filename, lineno
            )
    if current_net is not None:
        raise ParseError(
            f"*D_NET {current_net} not closed with *END", filename, 0
        )
    return parasitics


def load_spef(path) -> Parasitics:
    """Parse an SPEF-lite file from disk."""
    path = Path(path)
    return parse_spef(path.read_text(), str(path))
