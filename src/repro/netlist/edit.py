"""Higher-level netlist edits used by the closure optimizer.

Each edit returns a :class:`ChangeRecord` naming the gates and nets it
touched.  The incremental timing updater uses those names to invalidate
exactly the affected cone instead of re-propagating the whole design.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import NetlistError
from repro.netlist.core import Netlist, PinRef
from repro.netlist.placement import Placement

_uid = itertools.count()


@dataclass
class ChangeRecord:
    """Names of objects an edit touched (for incremental invalidation).

    ``metadata`` carries edit-specific replay details (e.g. the buffer
    insertion's generated names and rerouted loads) for ECO export.
    """

    kind: str
    gates: list[str] = field(default_factory=list)
    nets: list[str] = field(default_factory=list)
    description: str = ""
    metadata: dict = field(default_factory=dict)


def _fresh_name(netlist: Netlist, prefix: str) -> str:
    while True:
        name = f"{prefix}_{next(_uid)}"
        if name not in netlist.gates and name not in netlist.nets:
            return name


def resize_gate(netlist: Netlist, gate_name: str, up: bool) -> ChangeRecord | None:
    """Swap a gate one size step up (``up=True``) or down.

    Returns None when the gate is already at the end of its size family.
    The touched set includes the gate's fanin nets (their load changed)
    and fanout nets (drive changed).
    """
    current = netlist.gate(gate_name).cell_name
    variant = (
        netlist.library.next_size_up(current)
        if up else netlist.library.next_size_down(current)
    )
    if variant is None:
        return None
    netlist.swap_cell(gate_name, variant.name)
    touched_nets = list(netlist.gate(gate_name).connections.values())
    return ChangeRecord(
        kind="resize",
        gates=[gate_name],
        nets=touched_nets,
        description=f"{gate_name}: {current} -> {variant.name}",
    )


def swap_vt(netlist: Netlist, gate_name: str, vt: str) -> ChangeRecord | None:
    """Swap a gate to another threshold-voltage flavour (same drive).

    Returns None when the library has no such flavour or the gate is
    already there.  Touches the same net set as a resize (input caps
    may differ between flavours in richer libraries; ours keeps them
    equal, but the invalidation stays conservative).
    """
    current = netlist.gate(gate_name).cell_name
    variant = netlist.library.vt_variant(current, vt)
    if variant is None or variant.name == current:
        return None
    netlist.swap_cell(gate_name, variant.name)
    return ChangeRecord(
        kind="vt_swap",
        gates=[gate_name],
        nets=list(netlist.gate(gate_name).connections.values()),
        description=f"{gate_name}: {current} -> {variant.name}",
    )


def insert_buffer(
    netlist: Netlist,
    net_name: str,
    buffer_cell: str,
    loads: "list[PinRef] | None" = None,
    placement: Placement | None = None,
    buffer_name: "str | None" = None,
    new_net_name: "str | None" = None,
) -> ChangeRecord:
    """Insert a buffer on a net, optionally rerouting only some loads.

    The buffer's input joins ``net_name``; a fresh net carries its
    output to the selected ``loads`` (all loads by default).  When a
    placement is given the buffer lands at the midpoint between the
    driver and the centroid-most load, which is what the wire-delay
    model needs to actually see an improvement.

    ``buffer_name`` / ``new_net_name`` pin the generated names (ECO
    replay and what-if evaluation need names that do not depend on the
    process-global fresh-name counter); by default both are minted from
    that counter.
    """
    driver = netlist.net_driver(net_name)
    if driver is None:
        raise NetlistError(f"cannot buffer undriven net {net_name}")
    all_loads = netlist.net_loads(net_name)
    selected = list(loads) if loads is not None else list(all_loads)
    if not selected:
        raise NetlistError(f"no loads selected on net {net_name}")
    for ref in selected:
        if ref not in all_loads:
            raise NetlistError(f"{ref} is not a load of net {net_name}")
        if ref.is_port:
            raise NetlistError(
                f"cannot reroute top-level port load {ref} through a buffer"
            )
    if buffer_name is None:
        buffer_name = _fresh_name(netlist, "rbuf")
    elif buffer_name in netlist.gates or buffer_name in netlist.nets:
        raise NetlistError(f"buffer name {buffer_name} already in use")
    if new_net_name is None:
        new_net = _fresh_name(netlist, "rnet")
    elif new_net_name in netlist.gates or new_net_name in netlist.nets:
        raise NetlistError(f"net name {new_net_name} already in use")
    else:
        new_net = new_net_name
    cell = netlist.library.cell(buffer_cell)
    input_pin = cell.input_pins[0].name
    output_pin = cell.output_pins[0].name
    netlist.add_gate(buffer_name, buffer_cell)
    netlist.connect(buffer_name, input_pin, net_name)
    netlist.connect(buffer_name, output_pin, new_net)
    for ref in selected:
        netlist.connect(ref.gate, ref.pin, new_net)
    if placement is not None:
        anchor_names = [r.gate for r in selected if placement.has(r.gate or "")]
        if driver.gate is not None and placement.has(driver.gate):
            src = placement.location(driver.gate)
        elif anchor_names:
            src = placement.location(anchor_names[0])
        else:
            src = None
        if src is not None and anchor_names:
            dst = placement.location(anchor_names[0])
            placement.place(buffer_name, (src.x + dst.x) / 2, (src.y + dst.y) / 2)
        elif src is not None:
            placement.place(buffer_name, src.x, src.y)
    return ChangeRecord(
        kind="insert_buffer",
        gates=[buffer_name] + [r.gate for r in selected if r.gate],
        nets=[net_name, new_net],
        description=(
            f"buffer {buffer_name} ({buffer_cell}) on {net_name}, "
            f"rerouting {len(selected)}/{len(all_loads)} loads"
        ),
        metadata={
            "buffer": buffer_name,
            "buffer_cell": buffer_cell,
            "net": net_name,
            "new_net": new_net,
            "loads": list(selected),
        },
    )


def remove_buffer(netlist: Netlist, buffer_name: str) -> ChangeRecord:
    """Remove a buffer, reconnecting its loads to its input net."""
    cell = netlist.cell_of(buffer_name)
    if not cell.is_buffer:
        raise NetlistError(f"{buffer_name} is not a buffer instance")
    gate = netlist.gate(buffer_name)
    input_pin = cell.input_pins[0].name
    output_pin = cell.output_pins[0].name
    in_net = gate.connections.get(input_pin)
    out_net = gate.connections.get(output_pin)
    if in_net is None or out_net is None:
        raise NetlistError(f"buffer {buffer_name} is not fully connected")
    loads = netlist.net_loads(out_net)
    moved: list[str] = []
    for ref in loads:
        if ref.is_port:
            raise NetlistError(
                f"buffer {buffer_name} drives top port {ref}; cannot remove"
            )
        netlist.connect(ref.gate, ref.pin, in_net)
        moved.append(ref.gate)
    netlist.remove_gate(buffer_name)
    netlist.remove_net(out_net)
    return ChangeRecord(
        kind="remove_buffer",
        gates=moved,
        # out_net no longer exists; listing it lets the incremental
        # engine drop any stale timing edges defensively.
        nets=[in_net, out_net],
        description=f"removed buffer {buffer_name}, merged {out_net} into {in_net}",
    )
