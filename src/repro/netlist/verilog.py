"""Structural-Verilog-subset parser and writer.

Supports the flat gate-level netlists this project generates::

    module top (clk, in0, out0);
      input clk;
      input in0;
      output out0;
      wire n1, n2;
      NAND2_X1 u1 (.A(in0), .B(n1), .Z(n2));
      DFF_X1 ff1 (.D(n2), .CK(clk), .Q(out0));
    endmodule

Only named port connections are supported (positional connections are a
reliability hazard in generated netlists), one module per file, no
behavioural constructs, no buses.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.errors import ParseError
from repro.liberty.library import Library
from repro.netlist.core import Netlist, PortDirection

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<punct>[();,.])
  | (?P<ident>[A-Za-z_\\][A-Za-z0-9_$\[\]\\]*)
  | (?P<space>\s+)
    """,
    re.VERBOSE | re.DOTALL,
)

_KEYWORDS = {"module", "endmodule", "input", "output", "wire"}


class _Tokens:
    def __init__(self, text: str, filename: str):
        self.filename = filename
        self._items: list[tuple[str, int]] = []
        line = 1
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                raise ParseError(
                    f"unexpected character {text[pos]!r}", filename, line
                )
            if match.lastgroup in ("punct", "ident"):
                self._items.append((match.group(), line))
            line += match.group().count("\n")
            pos = match.end()
        self._pos = 0

    def peek(self) -> str | None:
        if self._pos < len(self._items):
            return self._items[self._pos][0]
        return None

    def line(self) -> int:
        if self._pos < len(self._items):
            return self._items[self._pos][1]
        return self._items[-1][1] if self._items else 0

    def next(self, expected: str | None = None) -> str:
        if self._pos >= len(self._items):
            raise ParseError(
                f"unexpected end of input (expected {expected or 'token'})",
                self.filename, self.line(),
            )
        token, line = self._items[self._pos]
        if expected is not None and token != expected:
            raise ParseError(
                f"expected {expected!r}, got {token!r}", self.filename, line
            )
        self._pos += 1
        return token

    def at_end(self) -> bool:
        return self._pos >= len(self._items)


def _parse_name_list(tokens: _Tokens, terminator: str) -> list[str]:
    """Parse ``a, b, c <terminator>`` and consume the terminator."""
    names: list[str] = []
    while True:
        token = tokens.next()
        if token == terminator:
            break
        if token == ",":
            continue
        names.append(token)
    return names


def parse_verilog(text: str, library: Library,
                  filename: str = "<string>") -> Netlist:
    """Parse a flat structural Verilog module into a :class:`Netlist`."""
    tokens = _Tokens(text, filename)
    tokens.next("module")
    module_name = tokens.next()
    netlist = Netlist(module_name, library)
    # Header port list: names only; directions come from declarations.
    if tokens.peek() == "(":
        tokens.next("(")
        header_ports = _parse_name_list(tokens, ")")
        tokens.next(";")
    else:
        header_ports = []
        tokens.next(";")
    declared: set[str] = set()
    while True:
        token = tokens.peek()
        if token is None:
            raise ParseError("missing endmodule", filename, tokens.line())
        if token == "endmodule":
            tokens.next()
            break
        if token in ("input", "output"):
            tokens.next()
            direction = (
                PortDirection.INPUT if token == "input" else PortDirection.OUTPUT
            )
            for name in _parse_name_list(tokens, ";"):
                netlist.add_port(name, direction)
                declared.add(name)
        elif token == "wire":
            tokens.next()
            for name in _parse_name_list(tokens, ";"):
                netlist.add_net(name)
        else:
            _parse_instance(tokens, netlist)
    if not tokens.at_end():
        raise ParseError(
            f"trailing input after endmodule: {tokens.peek()!r}",
            filename, tokens.line(),
        )
    missing = [p for p in header_ports if p not in declared]
    if missing:
        raise ParseError(
            f"ports in header but never declared: {', '.join(missing)}",
            filename, 1,
        )
    return netlist


def _parse_instance(tokens: _Tokens, netlist: Netlist) -> None:
    line = tokens.line()
    cell_name = tokens.next()
    instance_name = tokens.next()
    tokens.next("(")
    connections: dict[str, str] = {}
    while True:
        token = tokens.next()
        if token == ")":
            break
        if token == ",":
            continue
        if token != ".":
            raise ParseError(
                f"only named port connections are supported, got {token!r}",
                tokens.filename, line,
            )
        pin_name = tokens.next()
        tokens.next("(")
        net_name = tokens.next()
        tokens.next(")")
        connections[pin_name] = net_name
    tokens.next(";")
    try:
        netlist.add_gate(instance_name, cell_name, connections)
    except Exception as exc:
        raise ParseError(str(exc), tokens.filename, line) from exc


def write_verilog(netlist: Netlist) -> str:
    """Serialize a :class:`Netlist` as flat structural Verilog."""
    port_names = list(netlist.ports)
    out: list[str] = [f"module {netlist.name} ({', '.join(port_names)});"]
    for name, port in netlist.ports.items():
        out.append(f"  {port.direction.value} {name};")
    wires = sorted(n for n in netlist.nets if n not in netlist.ports)
    for name in wires:
        out.append(f"  wire {name};")
    for name, gate in netlist.gates.items():
        conns = ", ".join(
            f".{pin}({net})" for pin, net in sorted(gate.connections.items())
        )
        out.append(f"  {gate.cell_name} {name} ({conns});")
    out.append("endmodule")
    out.append("")
    return "\n".join(out)


def load_verilog(path, library: Library) -> Netlist:
    """Parse a structural Verilog file from disk."""
    path = Path(path)
    return parse_verilog(path.read_text(), library, str(path))


def save_verilog(netlist: Netlist, path) -> None:
    """Write a netlist to disk as structural Verilog."""
    Path(path).write_text(write_verilog(netlist))
