"""Gate-level netlist data model.

A :class:`Netlist` owns gates (cell instances), nets, and top-level
ports, and keeps driver/load connectivity indexes up to date through
every edit.  It holds a reference to the :class:`~repro.liberty.library.
Library` its instances come from, so pin directions are always known and
edits can be validated immediately.

Conventions
-----------
* A :class:`PinRef` with ``gate=None`` denotes a top-level port.
* An input port *drives* its net; an output port *loads* its net.
* Every net has at most one driver (checked on connect).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import NetlistError
from repro.liberty.cell import Cell, PinDirection
from repro.liberty.library import Library


class PortDirection(enum.Enum):
    """Direction of a top-level module port."""

    INPUT = "input"
    OUTPUT = "output"


@dataclass(frozen=True)
class PinRef:
    """Reference to a gate pin (``gate`` set) or a top port (``gate=None``)."""

    gate: str | None
    pin: str

    @property
    def is_port(self) -> bool:
        """True when this reference names a top-level port."""
        return self.gate is None

    def __str__(self) -> str:
        return self.pin if self.gate is None else f"{self.gate}/{self.pin}"


@dataclass
class Port:
    """A top-level module port, connected to the net of the same name."""

    name: str
    direction: PortDirection


@dataclass
class Gate:
    """A cell instance: maps cell pin names to net names."""

    name: str
    cell_name: str
    connections: dict[str, str] = field(default_factory=dict)


@dataclass
class Net:
    """A net; connectivity lives in the netlist indexes, not here."""

    name: str


class Netlist:
    """A gate-level netlist bound to a cell library.

    All mutation goes through the ``add_*`` / ``connect`` / ``disconnect``
    / ``remove_*`` / ``swap_cell`` methods so the driver/load indexes stay
    consistent; tests assert index consistency after random edit
    sequences.
    """

    def __init__(self, name: str, library: Library):
        self.name = name
        self.library = library
        self.gates: dict[str, Gate] = {}
        self.nets: dict[str, Net] = {}
        self.ports: dict[str, Port] = {}
        self._driver: dict[str, PinRef] = {}
        self._loads: dict[str, set[PinRef]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_net(self, name: str) -> Net:
        """Create a net; returns the existing net if already present."""
        if name in self.nets:
            return self.nets[name]
        net = Net(name)
        self.nets[name] = net
        self._loads[name] = set()
        return net

    def add_port(self, name: str, direction: PortDirection) -> Port:
        """Create a top-level port and its same-named net."""
        if name in self.ports:
            raise NetlistError(f"duplicate port {name}")
        port = Port(name, direction)
        self.ports[name] = port
        self.add_net(name)
        ref = PinRef(None, name)
        if direction is PortDirection.INPUT:
            self._set_driver(name, ref)
        else:
            self._loads[name].add(ref)
        return port

    def add_gate(self, name: str, cell_name: str,
                 connections: dict[str, str] | None = None) -> Gate:
        """Instantiate a cell, optionally connecting pins to nets.

        ``connections`` maps pin names to net names; nets are created on
        demand.  Unconnected pins may be wired later with
        :meth:`connect`.
        """
        if name in self.gates:
            raise NetlistError(f"duplicate gate {name}")
        cell = self.library.cell(cell_name)  # validates the cell exists
        gate = Gate(name, cell_name)
        self.gates[name] = gate
        for pin_name, net_name in (connections or {}).items():
            self.connect(name, pin_name, net_name)
        del cell
        return gate

    # ------------------------------------------------------------------
    # Connectivity edits
    # ------------------------------------------------------------------
    def connect(self, gate_name: str, pin_name: str, net_name: str) -> None:
        """Connect a gate pin to a net (creating the net if needed)."""
        gate = self.gate(gate_name)
        cell = self.cell_of(gate_name)
        pin = cell.pin(pin_name)
        if pin_name in gate.connections:
            self.disconnect(gate_name, pin_name)
        self.add_net(net_name)
        ref = PinRef(gate_name, pin_name)
        if pin.direction is PinDirection.OUTPUT:
            self._set_driver(net_name, ref)
        else:
            self._loads[net_name].add(ref)
        gate.connections[pin_name] = net_name

    def disconnect(self, gate_name: str, pin_name: str) -> None:
        """Remove the connection of a gate pin, if any."""
        gate = self.gate(gate_name)
        net_name = gate.connections.pop(pin_name, None)
        if net_name is None:
            return
        ref = PinRef(gate_name, pin_name)
        if self._driver.get(net_name) == ref:
            del self._driver[net_name]
        else:
            self._loads[net_name].discard(ref)

    def remove_gate(self, gate_name: str) -> None:
        """Delete a gate, disconnecting all its pins."""
        gate = self.gate(gate_name)
        for pin_name in list(gate.connections):
            self.disconnect(gate_name, pin_name)
        del self.gates[gate_name]

    def remove_net(self, net_name: str) -> None:
        """Delete an unconnected net."""
        if net_name not in self.nets:
            raise NetlistError(f"unknown net {net_name}")
        if self._driver.get(net_name) is not None or self._loads[net_name]:
            raise NetlistError(f"net {net_name} is still connected")
        del self.nets[net_name]
        del self._loads[net_name]

    def swap_cell(self, gate_name: str, new_cell_name: str) -> str:
        """Replace a gate's cell with a pin-compatible one (e.g. resize).

        Returns the previous cell name.  Raises when the new cell lacks
        any currently connected pin.
        """
        gate = self.gate(gate_name)
        new_cell = self.library.cell(new_cell_name)
        for pin_name in gate.connections:
            if pin_name not in new_cell.pins:
                raise NetlistError(
                    f"cannot swap {gate_name} to {new_cell_name}: "
                    f"no pin {pin_name}"
                )
        old = gate.cell_name
        gate.cell_name = new_cell_name
        return old

    def _set_driver(self, net_name: str, ref: PinRef) -> None:
        existing = self._driver.get(net_name)
        if existing is not None and existing != ref:
            raise NetlistError(
                f"net {net_name} already driven by {existing}, "
                f"cannot add driver {ref}"
            )
        self._driver[net_name] = ref

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def gate(self, name: str) -> Gate:
        """Return the named gate, raising :class:`NetlistError` if absent."""
        try:
            return self.gates[name]
        except KeyError:
            raise NetlistError(f"unknown gate {name}") from None

    def cell_of(self, gate_name: str) -> Cell:
        """The library cell of the named gate."""
        return self.library.cell(self.gate(gate_name).cell_name)

    def net_driver(self, net_name: str) -> PinRef | None:
        """The pin driving a net, or None for an undriven net."""
        if net_name not in self.nets:
            raise NetlistError(f"unknown net {net_name}")
        return self._driver.get(net_name)

    def net_loads(self, net_name: str) -> list[PinRef]:
        """Pins loading a net, in deterministic (sorted) order."""
        if net_name not in self.nets:
            raise NetlistError(f"unknown net {net_name}")
        return sorted(self._loads[net_name], key=lambda r: (r.gate or "", r.pin))

    def pin_net(self, ref: PinRef) -> str | None:
        """The net a pin reference is connected to, or None."""
        if ref.is_port:
            return ref.pin if ref.pin in self.ports else None
        return self.gate(ref.gate).connections.get(ref.pin)

    def fanout_gates(self, gate_name: str) -> list[str]:
        """Names of gates driven by any output of this gate (deduped)."""
        result: list[str] = []
        seen: set[str] = set()
        gate = self.gate(gate_name)
        cell = self.cell_of(gate_name)
        for pin in cell.output_pins:
            net_name = gate.connections.get(pin.name)
            if net_name is None:
                continue
            for load in self.net_loads(net_name):
                if not load.is_port and load.gate not in seen:
                    seen.add(load.gate)
                    result.append(load.gate)
        return result

    def fanin_gates(self, gate_name: str) -> list[str]:
        """Names of gates driving any input of this gate (deduped)."""
        result: list[str] = []
        seen: set[str] = set()
        gate = self.gate(gate_name)
        cell = self.cell_of(gate_name)
        for pin in cell.input_pins:
            net_name = gate.connections.get(pin.name)
            if net_name is None:
                continue
            driver = self.net_driver(net_name)
            if driver is not None and not driver.is_port and driver.gate not in seen:
                seen.add(driver.gate)
                result.append(driver.gate)
        return result

    def sequential_gates(self) -> list[str]:
        """Names of all sequential instances, in insertion order."""
        return [
            name for name, gate in self.gates.items()
            if self.library.cell(gate.cell_name).is_sequential
        ]

    def combinational_gates(self) -> list[str]:
        """Names of all combinational instances, in insertion order."""
        return [
            name for name, gate in self.gates.items()
            if not self.library.cell(gate.cell_name).is_sequential
        ]

    def net_load_capacitance(self, net_name: str) -> float:
        """Total input-pin capacitance hanging on a net (fF).

        Wire capacitance is added separately by the delay calculator
        from placement geometry.
        """
        total = 0.0
        for load in self.net_loads(net_name):
            if load.is_port:
                continue
            cell = self.cell_of(load.gate)
            total += cell.pin(load.pin).capacitance
        return total

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total_area(self) -> float:
        """Sum of instance areas (um^2)."""
        return sum(self.cell_of(g).area for g in self.gates)

    def total_leakage(self) -> float:
        """Sum of instance leakage power (nW)."""
        return sum(self.cell_of(g).leakage for g in self.gates)

    def buffer_count(self) -> int:
        """Number of buffer instances."""
        return sum(1 for g in self.gates if self.cell_of(g).is_buffer)

    def stats(self) -> dict[str, int]:
        """Basic size statistics for reports."""
        return {
            "gates": len(self.gates),
            "nets": len(self.nets),
            "ports": len(self.ports),
            "flops": len(self.sequential_gates()),
            "buffers": self.buffer_count(),
        }

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"Netlist({self.name!r}, gates={stats['gates']}, "
            f"nets={stats['nets']}, flops={stats['flops']})"
        )
