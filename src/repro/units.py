"""Unit conventions used throughout the library.

All internal quantities use a single fixed unit system so that no module
ever needs to carry units around:

========== ========= =======================================
Quantity   Unit      Notes
========== ========= =======================================
time       ps        delays, slews, arrivals, slacks, periods
distance   nm        placement coordinates, bounding boxes
capacitance fF       pin and wire loads
resistance kOhm      wire resistance (kOhm * fF = ps)
area       um^2      cell area
power      nW        leakage power
========== ========= =======================================

The helpers below exist for readability at call sites that quote values
in other units (e.g. clock periods in ns from an SDC file).
"""

from __future__ import annotations

PS_PER_NS = 1000.0
NM_PER_UM = 1000.0
FF_PER_PF = 1000.0


def ns_to_ps(value_ns: float) -> float:
    """Convert nanoseconds to the internal picosecond unit."""
    return value_ns * PS_PER_NS


def ps_to_ns(value_ps: float) -> float:
    """Convert internal picoseconds to nanoseconds."""
    return value_ps / PS_PER_NS


def um_to_nm(value_um: float) -> float:
    """Convert micrometres to the internal nanometre unit."""
    return value_um * NM_PER_UM


def nm_to_um(value_nm: float) -> float:
    """Convert internal nanometres to micrometres."""
    return value_nm / NM_PER_UM


def pf_to_ff(value_pf: float) -> float:
    """Convert picofarads to the internal femtofarad unit."""
    return value_pf * FF_PER_PF
