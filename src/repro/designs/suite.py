"""The D1-D10 design suite.

Ten specs spanning the size/tightness space the paper's industrial
designs occupy — small-and-tame through large-and-badly-violating —
scaled to laptop size.  ``build_design(name)`` returns a fresh bundle
each call (designs are mutated by the closure flows, so sharing would
poison A/B comparisons); a module-level cache of *pristine* designs is
deliberately absent for the same reason.

Set ``REPRO_SUITE_SCALE`` (a float) to grow or shrink every design's
flop count uniformly — e.g. ``REPRO_SUITE_SCALE=3`` triples the suite
for scaling studies like Table 4's speedup-vs-m sweep.
"""

from __future__ import annotations

import os

from repro.designs.generator import Design, DesignSpec, generate_design, scaled_spec

#: The suite.  Depth ranges widen and violation quantiles drop down the
#: list, echoing the paper's D8/D9-style designs where GBA correlation
#: collapses (Table 3 shows D8 at 0.12% pass ratio).
DESIGN_SPECS: dict[str, DesignSpec] = {
    "D1": DesignSpec("D1", seed=101, n_flops=24, n_inputs=6, n_outputs=4,
                     depth_range=(4, 8), violation_quantile=0.90),
    "D2": DesignSpec("D2", seed=102, n_flops=48, n_inputs=8, n_outputs=6,
                     depth_range=(4, 14), violation_quantile=0.75),
    "D3": DesignSpec("D3", seed=103, n_flops=40, n_inputs=8, n_outputs=6,
                     depth_range=(6, 12), violation_quantile=0.80),
    "D4": DesignSpec("D4", seed=104, n_flops=56, n_inputs=10, n_outputs=6,
                     depth_range=(3, 16), cross_source_prob=0.5,
                     violation_quantile=0.80),
    "D5": DesignSpec("D5", seed=105, n_flops=32, n_inputs=6, n_outputs=4,
                     depth_range=(5, 20), cross_source_prob=0.5,
                     violation_quantile=0.85),
    "D6": DesignSpec("D6", seed=106, n_flops=64, n_inputs=10, n_outputs=8,
                     depth_range=(4, 12), violation_quantile=0.78),
    "D7": DesignSpec("D7", seed=107, n_flops=48, n_inputs=8, n_outputs=6,
                     depth_range=(6, 18), violation_quantile=0.82),
    "D8": DesignSpec("D8", seed=108, n_flops=72, n_inputs=12, n_outputs=8,
                     depth_range=(3, 22), cross_source_prob=0.6,
                     violation_quantile=0.70),
    "D9": DesignSpec("D9", seed=109, n_flops=80, n_inputs=12, n_outputs=8,
                     depth_range=(4, 16), cross_source_prob=0.45,
                     violation_quantile=0.75),
    "D10": DesignSpec("D10", seed=110, n_flops=64, n_inputs=10, n_outputs=6,
                      depth_range=(5, 24), cross_source_prob=0.5,
                      violation_quantile=0.72),
}


def design_names() -> list[str]:
    """D1..D10, suite order."""
    return list(DESIGN_SPECS)


def suite_scale() -> float:
    """The flop-count multiplier from ``REPRO_SUITE_SCALE`` (default 1)."""
    raw = os.environ.get("REPRO_SUITE_SCALE", "")
    if not raw:
        return 1.0
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_SUITE_SCALE must be a number, got {raw!r}"
        ) from None
    if value <= 0:
        raise ValueError("REPRO_SUITE_SCALE must be positive")
    return value


def build_design(name: str) -> Design:
    """Generate a fresh copy of a suite design."""
    try:
        spec = DESIGN_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown design {name!r}; choose from {design_names()}"
        ) from None
    scale = suite_scale()
    if scale != 1.0:
        spec = scaled_spec(spec, scale)
    return generate_design(spec)


def design_factory(name: str):
    """A zero-argument factory yielding (netlist, constraints, placement,
    sta_config) — the shape :func:`repro.opt.compare.run_flow_comparison`
    expects."""

    def factory():
        design = build_design(name)
        return (
            design.netlist,
            design.constraints,
            design.placement,
            design.sta_config,
        )

    return factory
