"""Synthetic industrial-like design suite.

The paper evaluates on ten proprietary industrial designs (65 nm-16 nm).
This package substitutes deterministic synthetic designs with the same
*structural* ingredients — flop-to-flop logic cones of varying depth,
cross-cone sharing (the source of GBA worst-depth pessimism), clustered
placement (the source of AOCV distance spread), and a buffered clock
tree (the source of CRPR) — scaled to laptop size.  See DESIGN.md,
"Substitutions".
"""

from repro.designs.generator import Design, DesignSpec, generate_design
from repro.designs.suite import (
    DESIGN_SPECS,
    build_design,
    design_factory,
    design_names,
)

__all__ = [
    "Design",
    "DesignSpec",
    "generate_design",
    "DESIGN_SPECS",
    "build_design",
    "design_factory",
    "design_names",
]
