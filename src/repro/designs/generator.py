"""Synthetic design generation.

``generate_design`` builds a complete, valid design bundle:

* a flat gate-level netlist of flop-to-flop logic cones with
  cross-cone sharing — shared gates lie on paths of very different
  lengths, which is precisely what makes GBA's worst-depth derating
  pessimistic;
* clustered placement on a die scaled to the gate count, so AOCV
  distances spread over the derating table's range;
* a buffered clock tree (see :mod:`repro.designs.clocktree`);
* SDC constraints whose clock period is *calibrated*: a probe STA run
  measures every endpoint's critical period and the final period is set
  at a quantile, so each design violates on a controlled fraction of
  its endpoints — the regime the paper's closure experiments live in.

Everything is driven by one integer seed; the same spec always yields
the identical design.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.aocv.table import DeratingTable, make_derating_table
from repro.liberty.builder import make_default_library
from repro.liberty.library import Library
from repro.netlist.core import Netlist, PortDirection
from repro.netlist.placement import Placement
from repro.sdc.constraints import Clock, Constraints
from repro.timing.sta import STAConfig, STAEngine
from repro.designs.clocktree import build_clock_tree
from repro.utils.rng import make_rng

#: Combinational footprints the generator samples, weighted toward the
#: cheap 2-input gates real synthesis emits most.
_FOOTPRINT_POOL = (
    "NAND2", "NAND2", "NOR2", "AND2", "OR2",
    "XOR2", "AOI21", "OAI21", "NAND3", "MUX2", "INV", "INV",
)


@dataclass(frozen=True)
class DesignSpec:
    """Parameters of one synthetic design."""

    name: str
    seed: int
    n_flops: int = 64
    n_inputs: int = 8
    n_outputs: int = 8
    depth_range: tuple[int, int] = (4, 12)
    width_range: tuple[int, int] = (1, 3)
    cross_source_prob: float = 0.35   # extra fanin from the global pool
    #: Footprints the cone builder samples (weighted by repetition).
    #: An INV-heavy pool yields chain-like cones whose gates each lie
    #: on one path (no depth pessimism); the default synthesis-like mix
    #: spreads pessimism widely.
    footprint_pool: tuple[str, ...] = _FOOTPRINT_POOL
    pitch: float = 800.0              # nm; die side ~ pitch*sqrt(gates)
    cluster_sigma: float = 2500.0     # nm of in-cone placement jitter
    derate_sigma: float = 0.35
    derate_distance_slope: float = 0.015
    violation_quantile: float = 0.8   # fraction of endpoints left passing
    clock_uncertainty: float = 20.0   # ps
    input_delay: float = 50.0         # ps
    output_delay: float = 40.0        # ps
    max_leaf_fanout: int = 8
    #: Independent clock domains; flops are dealt round-robin, each
    #: domain gets its own port, tree, and calibrated period.
    n_clock_domains: int = 1


@dataclass
class Design:
    """A ready-to-analyze design bundle."""

    name: str
    spec: DesignSpec
    netlist: Netlist
    constraints: Constraints
    placement: Placement
    sta_config: STAConfig
    derating_table: DeratingTable = field(repr=False, default=None)


def _pick_cell(library: Library, rng,
               pool: tuple[str, ...] = _FOOTPRINT_POOL) -> str:
    """Random combinational cell name at a synthesis-like drive mix."""
    footprint = pool[rng.integers(len(pool))]
    group = library.footprint_group(footprint)
    drive = (1, 1, 1, 2, 2, 4)[rng.integers(6)]
    for candidate in group:
        if candidate.drive_strength == drive:
            return candidate.name
    return group[0].name


def _build_cone(
    netlist: Netlist,
    rng,
    spec: DesignSpec,
    sources: "list[str]",
    global_pool: "list[str]",
    cone_index: int,
) -> str:
    """Create one logic cone; returns the net of its final output.

    Levels guarantee a DAG; every gate takes its first input from the
    previous level (so the cone's nominal depth is realized) and the
    rest from sources, earlier levels, or the cross-cone pool (so the
    same gates appear on paths of different lengths).
    """
    depth = int(rng.integers(spec.depth_range[0], spec.depth_range[1] + 1))
    previous_level: list[str] = []
    last_net = ""
    for level in range(depth):
        width = (
            1 if level == depth - 1
            else int(rng.integers(spec.width_range[0], spec.width_range[1] + 1))
        )
        current_level: list[str] = []
        for lane in range(width):
            cell_name = _pick_cell(netlist.library, rng, spec.footprint_pool)
            cell = netlist.library.cell(cell_name)
            gate_name = f"g_{cone_index}_{level}_{lane}"
            out_net = f"n_{gate_name}"
            netlist.add_gate(gate_name, cell_name)
            netlist.connect(gate_name, cell.output_pins[0].name, out_net)
            input_pins = [p.name for p in cell.input_pins]
            # First input pins the cone's spine to the previous level.
            if previous_level:
                spine = previous_level[int(rng.integers(len(previous_level)))]
            else:
                spine = sources[int(rng.integers(len(sources)))]
            netlist.connect(gate_name, input_pins[0], spine)
            used = {spine}
            for pin_name in input_pins[1:]:
                # A few resamples to keep one gate's inputs on distinct
                # nets — tying two pins of a gate to the same net is
                # logic real synthesis would have simplified away, and
                # it creates exactly-tied parallel timing arcs.
                net = spine
                for _ in range(4):
                    use_pool = (
                        global_pool
                        and rng.random() < spec.cross_source_prob
                    )
                    if use_pool:
                        net = global_pool[int(rng.integers(len(global_pool)))]
                    elif previous_level and rng.random() < 0.5:
                        net = previous_level[
                            int(rng.integers(len(previous_level)))
                        ]
                    else:
                        net = sources[int(rng.integers(len(sources)))]
                    if net not in used:
                        break
                used.add(net)
                netlist.connect(gate_name, pin_name, net)
            current_level.append(out_net)
            global_pool.append(out_net)
            last_net = out_net
        previous_level = current_level
    return last_net


def _place_design(
    netlist: Netlist, rng, spec: DesignSpec,
    cone_of_gate: dict[str, int], n_cones: int,
) -> Placement:
    placement = Placement()
    die_side = max(
        spec.pitch * np.sqrt(max(len(netlist.gates), 1)) * 1.2,
        4.0 * spec.cluster_sigma,
    )
    centers = {
        cone: (
            rng.uniform(0.1 * die_side, 0.9 * die_side),
            rng.uniform(0.1 * die_side, 0.9 * die_side),
        )
        for cone in range(n_cones)
    }
    for gate_name in netlist.gates:
        cone = cone_of_gate.get(gate_name)
        if cone is None:
            continue  # clock buffers are placed by the tree builder
        cx, cy = centers[cone]
        x = float(np.clip(rng.normal(cx, spec.cluster_sigma), 0.0, die_side))
        y = float(np.clip(rng.normal(cy, spec.cluster_sigma), 0.0, die_side))
        placement.place(gate_name, x, y)
    for port_name, port in netlist.ports.items():
        if port.direction is PortDirection.INPUT:
            placement.place(port_name, 0.0, rng.uniform(0.0, die_side))
        else:
            placement.place(port_name, die_side, rng.uniform(0.0, die_side))
    return placement


def _clock_names(spec: DesignSpec) -> list[str]:
    return [
        "clk" if d == 0 else f"clk{d}"
        for d in range(max(spec.n_clock_domains, 1))
    ]


def _calibrate_periods(
    netlist: Netlist,
    placement: Placement,
    sta_config: STAConfig,
    spec: DesignSpec,
) -> Constraints:
    """Probe STA to pick per-domain periods violating on ~(1-q) of each
    domain's endpoints."""
    from repro.timing.slack import endpoint_clock_map

    probe_period = 1e6
    clock_names = _clock_names(spec)
    probe = Constraints()
    for name in clock_names:
        probe.add_clock(Clock(
            name=name, period=probe_period, source_port=name,
            uncertainty=spec.clock_uncertainty,
        ))
    for port_name, port in netlist.ports.items():
        if port_name in clock_names:
            continue
        if port.direction is PortDirection.INPUT:
            probe.set_input_delay(port_name, "clk", spec.input_delay)
        else:
            probe.set_output_delay(port_name, "clk", spec.output_delay)
    engine = STAEngine(netlist, probe, placement, sta_config)
    slacks = engine.setup_slacks()
    clock_map = endpoint_clock_map(engine.graph, probe)
    criticals: dict[str, list[float]] = {name: [] for name in clock_names}
    for s in slacks:
        criticals[clock_map[s.node].name].append(probe_period - s.slack)
    final = Constraints()
    for name in clock_names:
        values = criticals[name] or [1000.0]
        period = max(
            float(np.quantile(np.array(values), spec.violation_quantile)),
            1.0,
        )
        final.add_clock(Clock(
            name=name, period=round(period, 1), source_port=name,
            uncertainty=spec.clock_uncertainty,
        ))
    final.io_delays = list(probe.io_delays)
    return final


def generate_design(spec: DesignSpec,
                    library: Library | None = None) -> Design:
    """Build the complete design bundle for a spec (deterministic)."""
    rng = make_rng(spec.seed)
    library = library or make_default_library()
    netlist = Netlist(spec.name, library)
    clock_names = _clock_names(spec)
    for name in clock_names:
        netlist.add_port(name, PortDirection.INPUT)
    input_nets = []
    for i in range(spec.n_inputs):
        netlist.add_port(f"in{i}", PortDirection.INPUT)
        input_nets.append(f"in{i}")
    flop_cell = library.footprint_group("DFF")[0].name
    flops = []
    q_nets = []
    for i in range(spec.n_flops):
        name = f"ff{i}"
        q_net = f"q{i}"
        netlist.add_gate(name, flop_cell)
        netlist.connect(name, "Q", q_net)
        flops.append(name)
        q_nets.append(q_net)
    sources = q_nets + input_nets
    global_pool: list[str] = []
    cone_of_gate: dict[str, int] = {}
    for i, flop in enumerate(flops):
        before = set(netlist.gates)
        final_net = _build_cone(netlist, rng, spec, sources, global_pool, i)
        netlist.connect(flop, "D", final_net)
        for gate_name in set(netlist.gates) - before:
            cone_of_gate[gate_name] = i
    for i in range(spec.n_outputs):
        netlist.add_port(f"out{i}", PortDirection.OUTPUT)
        # An output port observes a flop's Q (registered output).
        source = q_nets[int(rng.integers(len(q_nets)))]
        driver = netlist.net_driver(source)
        assert driver is not None
        # Re-route: the port's net is the port name itself; tie the flop
        # output to it by adding the port as a load of the source net is
        # not possible (ports own their net), so drive the port net with
        # a buffer.
        buffers = library.buffers()
        buf = buffers[0].name
        buf_name = f"obuf{i}"
        netlist.add_gate(buf_name, buf)
        cell = library.cell(buf)
        netlist.connect(buf_name, cell.input_pins[0].name, source)
        netlist.connect(buf_name, cell.output_pins[0].name, f"out{i}")
        cone_of_gate[buf_name] = int(rng.integers(spec.n_flops))
    # Flop placement: each flop sits near its cone's gates, so place
    # after cones exist.  Cone index of a flop = its own index.
    for i, flop in enumerate(flops):
        cone_of_gate[flop] = i
    placement = _place_design(
        netlist, rng, spec, cone_of_gate, spec.n_flops
    )
    n_domains = len(clock_names)
    for domain, clock_name in enumerate(clock_names):
        domain_flops = [
            flop for i, flop in enumerate(flops) if i % n_domains == domain
        ]
        build_clock_tree(
            netlist, placement, clock_name, domain_flops,
            spec.max_leaf_fanout,
        )
    table = make_derating_table(
        sigma=spec.derate_sigma,
        distance_slope=spec.derate_distance_slope,
    )
    sta_config = STAConfig(derating_table=table)
    constraints = _calibrate_periods(netlist, placement, sta_config, spec)
    return Design(
        name=spec.name,
        spec=spec,
        netlist=netlist,
        constraints=constraints,
        placement=placement,
        sta_config=sta_config,
        derating_table=table,
    )


def scaled_spec(spec: DesignSpec, factor: float) -> DesignSpec:
    """A spec with the flop count scaled (quick-vs-full bench modes)."""
    return replace(spec, n_flops=max(4, int(spec.n_flops * factor)))
