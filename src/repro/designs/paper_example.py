"""The paper's Fig. 1/Fig. 2 worked example, reconstructed exactly.

The paper's example: every gate has a 100 ps delay, the derating table
is Table 1, and the 6-gate data path FF1 -> FF4 times at

* **PBA**:  100 ps x 1.15 x 6            = 690 ps   (Eq. 2)
* **GBA**:  100 ps x (three gates at worst-depth 5, two at 4, one at 3)
            = 100 x (1.20*3 + 1.25*2 + 1.30) = 740 ps   (Eq. 3)

The figure's full topology is not recoverable from the paper, but the
derate *multiset* {1.20 x3, 1.25 x2, 1.30} pins the worst-depth
multiset {5,5,5,4,4,3}, and the circuit below realizes it (worst depth
along the path runs 4,4,3,5,5,5):

* main path: FF1 -> G1 -> G2 -> G3 -> G4 -> G5 -> G6 -> FF4
* FF2 -> K1 -> (second input of G3): gives G3 a 2-gate prefix, pulling
  its worst depth (and its upstream neighbours') down;
* G3 -> L1 -> FF5: gives G3 a 2-gate suffix, pulling it down to 3.

With zero-delay flops, unit 100 ps gates, and no placement (distance
clamps to Table 1's 500 nm row) the numbers come out exactly 690/740.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aocv.table import DeratingTable, paper_table_1
from repro.liberty.builder import make_unit_delay_library
from repro.netlist.core import Netlist, PortDirection
from repro.sdc.constraints import Clock, Constraints
from repro.timing.sta import STAConfig

#: Worst (GBA) depth of each main-path gate, in path order G1..G6.
EXPECTED_GBA_DEPTHS = {
    "G1": 4, "G2": 4, "G3": 3, "G4": 5, "G5": 5, "G6": 5,
    # off-path gates
    "K1": 3, "L1": 3,
}

#: The paper's numbers (ps).
PBA_PATH_DELAY = 690.0
GBA_PATH_DELAY = 740.0


@dataclass
class Fig2Design:
    """The example bundle (same shape as a suite design)."""

    netlist: Netlist
    constraints: Constraints
    sta_config: STAConfig
    derating_table: DeratingTable


def build_fig2_design(period: float = 700.0) -> Fig2Design:
    """Build the example; default period makes GBA fail but PBA pass.

    At T = 700 ps the FF1->FF4 path has GBA slack -40 ps (a *phantom*
    violation) and PBA slack +10 ps — the exact situation that makes
    GBA pessimism expensive in a closure flow.
    """
    library = make_unit_delay_library(gate_delay=100.0)
    netlist = Netlist("paper_fig2", library)
    netlist.add_port("clk", PortDirection.INPUT)
    for name in ("FF1", "FF2", "FF4", "FF5"):
        netlist.add_gate(name, "DFF_U", {"CK": "clk"})
    netlist.connect("FF1", "Q", "q1")
    netlist.connect("FF2", "Q", "q2")
    # Launch flops re-register each other so no pin dangles.
    netlist.connect("FF1", "D", "q2")
    netlist.connect("FF2", "D", "q1")
    # Main 6-gate path FF1 -> FF4.
    netlist.add_gate("G1", "INV_U", {"A": "q1", "Z": "n1"})
    netlist.add_gate("G2", "INV_U", {"A": "n1", "Z": "n2"})
    netlist.add_gate("G3", "NAND2_U", {"A": "n2", "B": "k1", "Z": "n3"})
    netlist.add_gate("G4", "INV_U", {"A": "n3", "Z": "n4"})
    netlist.add_gate("G5", "INV_U", {"A": "n4", "Z": "n5"})
    netlist.add_gate("G6", "INV_U", {"A": "n5", "Z": "n6"})
    netlist.connect("FF4", "D", "n6")
    # Short prefix into G3 (FF2 -> K1 -> G3.B).
    netlist.add_gate("K1", "INV_U", {"A": "q2", "Z": "k1"})
    # Short suffix out of G3 (G3 -> L1 -> FF5.D).
    netlist.add_gate("L1", "INV_U", {"A": "n3", "Z": "l1"})
    netlist.connect("FF5", "D", "l1")
    constraints = Constraints()
    constraints.add_clock(Clock("clk", period=period, source_port="clk"))
    table = paper_table_1()
    config = STAConfig(
        derating_table=table,
        clock_derate_late=1.0,
        clock_derate_early=1.0,
        data_early_derate=1.0,
        wire_r_per_nm=0.0,
        wire_c_per_nm=0.0,
    )
    return Fig2Design(
        netlist=netlist,
        constraints=constraints,
        sta_config=config,
        derating_table=table,
    )
