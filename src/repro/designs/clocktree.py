"""Buffered clock-tree generation.

Recursive geometric bisection: the flop set is split along its wider
placement dimension until groups fit under a leaf buffer, and every
group gets a buffer placed at its centroid.  The result is a true tree,
so each CK pin has a unique clock path and launch/capture pairs share
exactly the prefix above their lowest common group — the structure CRPR
credits against.
"""

from __future__ import annotations

import itertools

from repro.errors import NetlistError
from repro.netlist.core import Netlist
from repro.netlist.placement import Placement


def _buffer_for_group(netlist: Netlist, size: int) -> str:
    """Pick a buffer drive matched to the group size."""
    buffers = netlist.library.buffers()
    if not buffers:
        raise NetlistError("library has no buffer cells for the clock tree")
    if size >= 64:
        want = 16.0
    elif size >= 16:
        want = 8.0
    elif size >= 4:
        want = 4.0
    else:
        want = 2.0
    best = min(buffers, key=lambda c: abs(c.drive_strength - want))
    return best.name


def _centroid(placement: Placement, names: "list[str]") -> tuple[float, float]:
    points = [placement.location(n) for n in names]
    return (
        sum(p.x for p in points) / len(points),
        sum(p.y for p in points) / len(points),
    )


def _split(placement: Placement, names: "list[str]") -> tuple[list[str], list[str]]:
    xs = [placement.location(n).x for n in names]
    ys = [placement.location(n).y for n in names]
    wide_x = (max(xs) - min(xs)) >= (max(ys) - min(ys))
    key = (lambda n: placement.location(n).x) if wide_x else (
        lambda n: placement.location(n).y
    )
    ordered = sorted(names, key=key)
    half = len(ordered) // 2
    return ordered[:half], ordered[half:]


def build_clock_tree(
    netlist: Netlist,
    placement: Placement,
    clock_port: str,
    flops: "list[str]",
    max_leaf_fanout: int = 8,
    name_prefix: str | None = None,
) -> list[str]:
    """Wire every flop's CK pin through a buffered tree from the port.

    Returns the names of the created clock buffers (root first-ish).
    ``name_prefix`` namespaces the created instances/nets (defaults to
    the clock port name, so multiple domains never collide).
    """
    if not flops:
        return []
    prefix = name_prefix if name_prefix is not None else clock_port
    created: list[str] = []
    uid = itertools.count()  # local counter keeps naming deterministic

    def wire(group: "list[str]", source_net: str) -> None:
        buffer_cell = _buffer_for_group(netlist, len(group))
        index = next(uid)
        name = f"ckbuf_{prefix}_{index}"
        out_net = f"cknet_{prefix}_{index}"
        netlist.add_gate(name, buffer_cell)
        cell = netlist.library.cell(buffer_cell)
        netlist.connect(name, cell.input_pins[0].name, source_net)
        netlist.connect(name, cell.output_pins[0].name, out_net)
        cx, cy = _centroid(placement, group)
        placement.place(name, cx, cy)
        created.append(name)
        if len(group) <= max_leaf_fanout:
            for flop in group:
                clock_pin = netlist.cell_of(flop).clock_pin
                if clock_pin is None:
                    raise NetlistError(f"{flop} has no clock pin")
                netlist.connect(flop, clock_pin.name, out_net)
        else:
            left, right = _split(placement, group)
            wire(left, out_net)
            wire(right, out_net)

    wire(list(flops), clock_port)
    return created
