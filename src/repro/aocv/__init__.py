"""Advanced On-Chip Variation (AOCV) derating substrate.

* :class:`~repro.aocv.table.DeratingTable` — depth x distance derate
  factors with bilinear interpolation (Table 1 of the paper).
* :func:`~repro.aocv.table.paper_table_1` — the exact example table from
  the paper.
* :mod:`~repro.aocv.depth` — GBA worst-depth (per gate) and PBA
  per-path depth computation.  The inequality
  ``gba_depth(gate) <= pba_depth(any path through gate)`` is what makes
  GBA pessimistic, and is enforced by property tests.
"""

from repro.aocv.table import (
    DeratingTable,
    make_derating_table,
    make_early_derating_table,
    paper_table_1,
    parse_aocv,
    write_aocv,
)
from repro.aocv.depth import (
    compute_gba_depths,
    forward_min_depths,
    backward_min_depths,
)

__all__ = [
    "DeratingTable",
    "make_derating_table",
    "make_early_derating_table",
    "paper_table_1",
    "parse_aocv",
    "write_aocv",
    "compute_gba_depths",
    "forward_min_depths",
    "backward_min_depths",
]
