"""AOCV derating tables.

A derating table maps (cell depth, path distance) to a late derate
factor >= 1.  Foundry tables are monotone: more cells on a path means
more variation cancellation (derate decreases with depth), while longer
distance means less spatial correlation (derate increases with
distance).  :meth:`DeratingTable.validate_monotonic` checks both.

Queries are bilinearly interpolated and clamped to the characterized
window, matching how sign-off tools consume AOCV tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import AOCVError


def _axis(values, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise AOCVError(f"{name} axis must be a non-empty 1-D sequence")
    if arr.size > 1 and not np.all(np.diff(arr) > 0):
        raise AOCVError(f"{name} axis must be strictly increasing")
    return arr


@dataclass(frozen=True)
class DeratingTable:
    """Late derate factors over (depth, distance).

    Parameters
    ----------
    depths:
        Strictly increasing cell-depth breakpoints.
    distances:
        Strictly increasing distance breakpoints (nm).
    values:
        ``len(distances) x len(depths)`` grid of derate factors — rows
        are distances, columns are depths, matching Table 1's layout.
    """

    depths: np.ndarray
    distances: np.ndarray
    values: np.ndarray

    def __post_init__(self):
        depths = _axis(self.depths, "depth")
        distances = _axis(self.distances, "distance")
        values = np.asarray(self.values, dtype=float)
        if values.shape != (distances.size, depths.size):
            raise AOCVError(
                f"grid shape {values.shape} does not match "
                f"(distances={distances.size}, depths={depths.size})"
            )
        if np.any(values <= 0):
            raise AOCVError("derate factors must be positive")
        object.__setattr__(self, "depths", depths)
        object.__setattr__(self, "distances", distances)
        object.__setattr__(self, "values", values)

    def derate(self, depth: float, distance: float) -> float:
        """Interpolated late derate at (depth, distance), clamped."""
        d = float(np.clip(depth, self.depths[0], self.depths[-1]))
        x = float(np.clip(distance, self.distances[0], self.distances[-1]))
        j = self._bracket(self.depths, d)
        i = self._bracket(self.distances, x)
        if self.depths.size == 1 and self.distances.size == 1:
            return float(self.values[0, 0])
        if self.distances.size == 1:
            t = (d - self.depths[j]) / (self.depths[j + 1] - self.depths[j])
            return float((1 - t) * self.values[0, j] + t * self.values[0, j + 1])
        if self.depths.size == 1:
            u = (x - self.distances[i]) / (
                self.distances[i + 1] - self.distances[i]
            )
            return float((1 - u) * self.values[i, 0] + u * self.values[i + 1, 0])
        t = (d - self.depths[j]) / (self.depths[j + 1] - self.depths[j])
        u = (x - self.distances[i]) / (self.distances[i + 1] - self.distances[i])
        v00 = self.values[i, j]
        v01 = self.values[i, j + 1]
        v10 = self.values[i + 1, j]
        v11 = self.values[i + 1, j + 1]
        return float(
            (1 - u) * ((1 - t) * v00 + t * v01)
            + u * ((1 - t) * v10 + t * v11)
        )

    @staticmethod
    def _bracket(axis: np.ndarray, value: float) -> int:
        if axis.size == 1:
            return 0
        idx = int(np.searchsorted(axis, value, side="right") - 1)
        return min(max(idx, 0), axis.size - 2)

    def validate_monotonic(self, early: bool = False) -> "list[str]":
        """Return descriptions of monotonicity violations (empty = clean).

        Physical *late* tables decrease along depth (variation
        cancellation) and increase along distance (decorrelation);
        *early* tables (factors < 1 subtracted margin) run the opposite
        way — toward 1 with depth, away from 1 with distance.
        """
        problems: list[str] = []
        depth_diff = np.diff(self.values, axis=1)
        dist_diff = np.diff(self.values, axis=0)
        if early:
            if np.any(depth_diff < -1e-12):
                problems.append("early derate decreases with depth somewhere")
            if np.any(dist_diff > 1e-12):
                problems.append(
                    "early derate increases with distance somewhere"
                )
        else:
            if np.any(depth_diff > 1e-12):
                problems.append("derate increases with depth somewhere")
            if np.any(dist_diff < -1e-12):
                problems.append("derate decreases with distance somewhere")
        return problems

    def max_derate(self) -> float:
        """Largest factor in the grid (worst-case pessimism bound)."""
        return float(self.values.max())

    def min_derate(self) -> float:
        """Smallest factor in the grid."""
        return float(self.values.min())

    def __eq__(self, other) -> bool:
        if not isinstance(other, DeratingTable):
            return NotImplemented
        return (
            np.array_equal(self.depths, other.depths)
            and np.array_equal(self.distances, other.distances)
            and np.allclose(self.values, other.values)
        )

    def __hash__(self):
        return id(self)


def paper_table_1() -> DeratingTable:
    """The exact example lookup table from Table 1 of the paper."""
    return DeratingTable(
        depths=np.array([3.0, 4.0, 5.0, 6.0]),
        distances=np.array([500.0, 1000.0, 1500.0]),
        values=np.array([
            [1.30, 1.25, 1.20, 1.15],
            [1.32, 1.27, 1.23, 1.18],
            [1.35, 1.31, 1.28, 1.25],
        ]),
    )


def make_derating_table(
    depths=(1, 2, 4, 8, 16, 32, 64),
    distances=(500.0, 2000.0, 8000.0, 32000.0),
    sigma: float = 0.35,
    distance_slope: float = 0.015,
) -> DeratingTable:
    """Generate a physically-shaped derating table.

    Models derate = 1 + 3*sigma_effective where per-stage variation
    cancels as ``sigma / sqrt(depth)`` and spatial decorrelation adds a
    logarithmic distance term.  The result is monotone by construction.
    """
    depth_arr = np.asarray(depths, dtype=float)
    dist_arr = np.asarray(distances, dtype=float)
    base = 1.0 + sigma / np.sqrt(depth_arr)[None, :]
    spread = 1.0 + distance_slope * np.log1p(dist_arr / dist_arr[0])[:, None]
    return DeratingTable(depth_arr, dist_arr, base * spread)


def make_early_derating_table(
    depths=(1, 2, 4, 8, 16, 32, 64),
    distances=(500.0, 2000.0, 8000.0, 32000.0),
    sigma: float = 0.35,
    distance_slope: float = 0.015,
) -> DeratingTable:
    """Generate the early (hold-side) counterpart of
    :func:`make_derating_table`.

    Early factors are < 1 (delays can only be *faster* than nominal by
    the same 3-sigma window), approach 1 as depth cancels variation,
    and shrink with distance as correlation decays.  Monotone by
    construction (``validate_monotonic(early=True)``).
    """
    depth_arr = np.asarray(depths, dtype=float)
    dist_arr = np.asarray(distances, dtype=float)
    base = 1.0 - sigma / np.sqrt(depth_arr)[None, :]
    spread = 1.0 - distance_slope * np.log1p(dist_arr / dist_arr[0])[:, None]
    values = np.clip(base * spread, 0.05, 1.0)
    return DeratingTable(depth_arr, dist_arr, values)


def parse_aocv(text: str, filename: str = "<string>") -> DeratingTable:
    """Parse the simple AOCV text format.

    Format (``#`` comments allowed)::

        depth 3 4 5 6
        distance 500 1000 1500
        1.30 1.25 1.20 1.15
        1.32 1.27 1.23 1.18
        1.35 1.31 1.28 1.25
    """
    from repro.errors import ParseError

    depths: np.ndarray | None = None
    distances: np.ndarray | None = None
    rows: list[np.ndarray] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        try:
            if parts[0] == "depth":
                depths = np.array([float(v) for v in parts[1:]])
            elif parts[0] == "distance":
                distances = np.array([float(v) for v in parts[1:]])
            else:
                rows.append(np.array([float(v) for v in parts]))
        except ValueError as exc:
            raise ParseError(f"bad number in {line!r}", filename, lineno) from exc
    if depths is None or distances is None:
        raise ParseError("missing depth or distance header", filename, 0)
    if not rows:
        raise ParseError("missing value rows", filename, 0)
    try:
        return DeratingTable(depths, distances, np.vstack(rows))
    except AOCVError as exc:
        raise ParseError(str(exc), filename, 0) from exc


def write_aocv(table: DeratingTable) -> str:
    """Serialize a derating table in the simple AOCV text format."""
    out = ["# AOCV derating table (late)"]
    out.append("depth " + " ".join(f"{d:g}" for d in table.depths))
    out.append("distance " + " ".join(f"{d:g}" for d in table.distances))
    for row in table.values:
        out.append(" ".join(f"{v:.6g}" for v in row))
    out.append("")
    return "\n".join(out)


def load_aocv(path) -> DeratingTable:
    """Parse an AOCV table file from disk."""
    path = Path(path)
    return parse_aocv(path.read_text(), str(path))
