"""Cell-depth computation for AOCV derating.

PBA uses the *path* depth — the number of combinational cells on the
specific path being analyzed.  GBA cannot afford per-path state, so it
uses the *worst* depth per gate: the minimum, over all paths through the
gate, of that path's depth.  A smaller depth looks up a larger derate
factor, which is exactly where GBA's pessimism comes from (Fig. 2 of
the paper).

The worst depth decomposes over the DAG::

    gba_depth(g) = fwd(g) + bwd(g) - 1

where ``fwd(g)`` is the minimum number of combinational cells on any
launch-to-g prefix (g inclusive) and ``bwd(g)`` the minimum on any
g-to-endpoint suffix (g inclusive).  Launch boundaries are flip-flop
outputs, input ports, and dangling inputs; capture boundaries are
flip-flop inputs, output ports, and dangling outputs.

Both sweeps run in one topological pass each, so GBA depth costs
O(V + E) — the efficiency that makes GBA usable in implementation flows.
"""

from __future__ import annotations

from collections import deque

from repro.errors import TimingError
from repro.netlist.core import Netlist

_INF = float("inf")


def _comb_graph(netlist: Netlist) -> tuple[
    list[str], dict[str, list[str]], dict[str, list[str]],
    dict[str, bool], dict[str, bool],
]:
    """Build the combinational-gate DAG and boundary flags.

    Returns (gates, preds, succs, boundary_fanin, boundary_fanout) where
    a boundary fanin/fanout means the gate touches a launch/capture
    point directly.
    """
    comb = netlist.combinational_gates()
    comb_set = set(comb)
    preds: dict[str, list[str]] = {g: [] for g in comb}
    succs: dict[str, list[str]] = {g: [] for g in comb}
    boundary_fanin: dict[str, bool] = {}
    boundary_fanout: dict[str, bool] = {}
    for gate_name in comb:
        gate = netlist.gate(gate_name)
        cell = netlist.cell_of(gate_name)
        has_boundary_in = False
        for pin in cell.input_pins:
            net_name = gate.connections.get(pin.name)
            if net_name is None:
                has_boundary_in = True  # dangling input starts a "path"
                continue
            driver = netlist.net_driver(net_name)
            if driver is None or driver.is_port:
                has_boundary_in = True
            elif driver.gate in comb_set:
                preds[gate_name].append(driver.gate)
            else:
                has_boundary_in = True  # flip-flop output launches here
        boundary_fanin[gate_name] = has_boundary_in
        has_boundary_out = False
        any_output = False
        for pin in cell.output_pins:
            net_name = gate.connections.get(pin.name)
            if net_name is None:
                continue
            for load in netlist.net_loads(net_name):
                any_output = True
                if load.is_port:
                    has_boundary_out = True
                elif load.gate in comb_set:
                    succs[gate_name].append(load.gate)
                else:
                    has_boundary_out = True  # flip-flop input captures here
        if not any_output:
            has_boundary_out = True  # dangling output ends the "path"
        boundary_fanout[gate_name] = has_boundary_out
    return comb, preds, succs, boundary_fanin, boundary_fanout


def _topological_order(
    gates: list[str],
    preds: dict[str, list[str]],
    succs: dict[str, list[str]],
) -> list[str]:
    in_degree = {g: len(preds[g]) for g in gates}
    queue = deque(g for g in gates if in_degree[g] == 0)
    order: list[str] = []
    while queue:
        gate = queue.popleft()
        order.append(gate)
        for succ in succs[gate]:
            in_degree[succ] -= 1
            if in_degree[succ] == 0:
                queue.append(succ)
    if len(order) != len(gates):
        raise TimingError(
            "combinational loop detected while computing AOCV depths"
        )
    return order


def forward_min_depths(netlist: Netlist) -> dict[str, int]:
    """Minimum launch-to-gate cell count (gate inclusive) per gate."""
    gates, preds, succs, boundary_fanin, _ = _comb_graph(netlist)
    order = _topological_order(gates, preds, succs)
    fwd: dict[str, float] = {}
    for gate in order:
        best = 1.0 if boundary_fanin[gate] else _INF
        for pred in preds[gate]:
            best = min(best, fwd[pred] + 1)
        fwd[gate] = best if best != _INF else 1.0
    return {g: int(v) for g, v in fwd.items()}


def backward_min_depths(netlist: Netlist) -> dict[str, int]:
    """Minimum gate-to-capture cell count (gate inclusive) per gate."""
    gates, preds, succs, _, boundary_fanout = _comb_graph(netlist)
    order = _topological_order(gates, preds, succs)
    bwd: dict[str, float] = {}
    for gate in reversed(order):
        best = 1.0 if boundary_fanout[gate] else _INF
        for succ in succs[gate]:
            best = min(best, bwd[succ] + 1)
        bwd[gate] = best if best != _INF else 1.0
    return {g: int(v) for g, v in bwd.items()}


def compute_gba_depths(netlist: Netlist) -> dict[str, int]:
    """GBA worst cell depth per combinational gate.

    ``gba_depth(g) = fwd(g) + bwd(g) - 1`` — the depth of the shallowest
    complete path through ``g``.  For every path P through ``g``,
    ``gba_depth(g) <= len(P)`` (property-tested), so GBA always picks a
    derate factor at least as pessimistic as PBA's.
    """
    fwd = forward_min_depths(netlist)
    bwd = backward_min_depths(netlist)
    return {g: fwd[g] + bwd[g] - 1 for g in fwd}


def derates_by_depth(table, depths, distance: float) -> dict[int, float]:
    """Derate factor per distinct depth at one (GBA) distance.

    GBA evaluates every gate at a single conservative distance, so the
    table lookup depends only on the integer depth; the vector kernel
    precomputes this table once and fills a whole edge array by
    indexing it with the per-edge depth array.  Values are exactly
    ``table.derate(depth, distance)`` — the same call the scalar fill
    memoizes — so both kernels read identical factors.
    """
    return {
        int(depth): table.derate(int(depth), distance)
        for depth in set(depths)
    }
