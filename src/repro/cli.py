"""Command-line interface: ``repro-sta <subcommand>``.

Subcommands
-----------
``sta``        report GBA timing of a suite design (or Verilog files).
``explain``    slack provenance & pessimism attribution (JSON/markdown).
``mgba``       run the mGBA flow and report correlation before/after.
``closure``    run the closure optimizer (GBA- or mGBA-driven).
``generate``   emit a suite design as Verilog + SDC + AOCV files.
``designs``    list the D1-D10 suite.
``scenarios``  sweep a corner matrix in one scenario-stacked kernel pass.
``what-if``    score candidate ECO edit-lists against a design.
``min-period`` binary-search the smallest feasible clock period.
``batch``      run a JSONL query file as one coalesced service batch.
``serve``      answer JSONL queries line-by-line on stdin/stdout
               (``--expose-metrics PORT`` scrape endpoint, ``--slo``
               spec, ``--flight-dump`` post-mortem on error exits).
``obs-report`` pretty-print a captured trace as a runtime breakdown
               (``--flight`` renders a flight-recorder dump).
``metrics-export`` OpenMetrics exposition of the live metrics
               registry or of a saved ``--metrics`` snapshot.
``slo-check``  judge a flight-recorder dump against an SLO spec
               (exit 1 on violation — the advisory CI gate).
``bench-history`` list/compare the benchmark time series
               (``bench_metrics/history.jsonl``) and flag regressions.
``cache``      inspect or manage the on-disk artifact store:
               ``stats`` (per-class entry/byte counts), ``warm DESIGN``
               (pre-build and persist the design's levelized layout so
               the next cold process hydrates instead of rebuilding),
               ``clear`` (drop entries, optionally one ``--class``).

Query commands route through the stable :mod:`repro.api` facade;
``batch`` / ``serve`` go through the :class:`repro.service`
:class:`~repro.service.engine.TimingService` and its content-addressed
artifact cache (``--cache-dir`` / ``--no-cache``; see
``docs/service.md``).

Global observability flags (before the subcommand):

* ``--trace FILE`` — capture every tracing span of the run as JSONL,
  **streamed durably**: each root span is flushed as it closes, so a
  crashed run still leaves a valid parseable trace (read it back with
  ``obs-report``);
* ``--chrome-trace FILE`` — same spans as a Chrome ``trace_event``
  file for ``chrome://tracing`` / Perfetto;
* ``--metrics FILE`` — dump the metrics registry (counters, gauges,
  histograms) as JSON when the command finishes;
* ``--profile FILE`` — attach cProfile to the flow's top-level spans
  (``mgba.run``, ``sta.update_timing``, ``closure.run``) and save the
  aggregated per-function stats as JSON (render with
  ``obs-report --profile FILE``).

Global parallelism flag (before the subcommand):

* ``--workers N`` — fan the parallel regions (multi-corner STA,
  per-endpoint PBA, design-suite evaluation) over N workers; overrides
  ``REPRO_WORKERS``.  Backend via ``REPRO_PARALLEL_BACKEND``
  (``thread`` default, ``process`` for CPU-bound wins).  See
  ``docs/parallelism.md``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import api
from repro.aocv.table import write_aocv
from repro.designs import build_design, design_names
from repro.errors import TimingError
from repro.netlist.verilog import save_verilog
from repro.sdc.writer import save_sdc
from repro.timing.report import report_summary, report_timing
from repro.timing.sta import STAEngine
from repro.utils.log import enable_console_logging


def _engine_for(design_name: str) -> STAEngine:
    return api.make_engine(design_name)


def _cmd_designs(args) -> int:
    if not getattr(args, "detail", False):
        for name in design_names():
            print(name)
        return 0

    header = (
        f"{'design':<7} {'gates':>6} {'flops':>6} {'nets':>6} "
        f"{'endpoints':>9} {'period(ps)':>11} {'violations':>10}"
    )
    print(header)
    print("-" * len(header))
    # Fans one design per worker under --workers / REPRO_WORKERS.
    for report in api.evaluate(design_names()):
        print(
            f"{report.name:<7} {report.gates:>6} {report.flops:>6} "
            f"{report.nets:>6} {report.endpoints:>9} "
            f"{report.period:>11.1f} {report.violations:>10}"
        )
    return 0


def _cmd_sta(args) -> int:
    engine = _engine_for(args.design)
    if args.weights:
        from repro.mgba.persistence import load_weights

        engine.set_gate_weights(
            load_weights(args.weights, engine.netlist)
        )
        print(f"applied mGBA weights from {args.weights}\n")
    print(report_timing(engine, max_endpoints=args.paths))
    return 0


def _cmd_explain(args) -> int:
    import json

    from repro.timing.explain import explain_design, format_design_explanation

    engine = _engine_for(args.design)
    if args.weights:
        from repro.mgba.persistence import load_weights

        engine.set_gate_weights(
            load_weights(args.weights, engine.netlist)
        )
    try:
        explanation = explain_design(
            engine, top_k=args.top_k, endpoint=args.endpoint
        )
    except TimingError as exc:
        print(f"repro-sta: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(explanation.to_dict(), indent=2))
    else:
        print(format_design_explanation(explanation))
    return 0


def _cmd_mgba(args) -> int:
    engine = _engine_for(args.design)
    context = api.RunContext.from_env(
        k_per_endpoint=args.k, solver=args.solver, seed=args.seed,
    )
    result = api.fit(engine, context)
    print(f"design:            {args.design}")
    print(f"paths fitted:      {result.num_paths}")
    print(f"gates (variables): {result.num_gates}")
    print(f"solver:            {result.solver} "
          f"({result.iterations} iters, {result.seconds:.2f}s)")
    print(f"mse   GBA -> mGBA: {result.mse_gba:.3e} -> {result.mse_mgba:.3e}")
    print(f"pass  GBA -> mGBA: {result.pass_ratio_gba:.2%} -> "
          f"{result.pass_ratio_mgba:.2%}")
    if args.save_weights:
        from repro.mgba.persistence import save_weights

        save_weights(result.weight_map(), engine.netlist, args.save_weights)
        print(f"weights saved to {args.save_weights}")
    print()
    print(report_summary(engine))
    return 0


def _cmd_obs_report(args) -> int:
    import json

    from repro.obs import (
        format_breakdown,
        format_flight,
        format_metrics,
        format_profile,
        load_flight,
        load_metrics,
        load_profile,
        load_trace,
    )

    if not args.trace_file and not args.metrics_file \
            and not args.profile_file and not args.flight_file:
        print("obs-report: give a trace file, --metrics FILE, "
              "--profile FILE, and/or --flight FILE", file=sys.stderr)
        return 2
    printed = False
    if args.trace_file:
        try:
            roots = load_trace(args.trace_file)
        except FileNotFoundError:
            print(f"obs-report: no such trace file: {args.trace_file}",
                  file=sys.stderr)
            return 2
        except (json.JSONDecodeError, KeyError, ValueError) as exc:
            print(f"obs-report: {args.trace_file} is not a span JSONL "
                  f"trace ({exc})", file=sys.stderr)
            return 2
        spans = sum(1 for root in roots for _ in root.walk())
        print(f"Trace {args.trace_file}: {len(roots)} root span(s), "
              f"{spans} total")
        print()
        print(format_breakdown(roots, sort=args.sort, top=args.top))
        printed = True
    if args.metrics_file:
        if printed:
            print()
        snapshot = load_metrics(args.metrics_file)
        if snapshot is None:
            # Tolerate a missing or empty snapshot: a run that died
            # before its --metrics dump should not break reporting.
            print(f"Metrics {args.metrics_file}: "
                  "missing or empty (nothing recorded)")
        else:
            print(f"Metrics {args.metrics_file}:")
            print()
            print(format_metrics(snapshot))
        printed = True
    if args.profile_file:
        if printed:
            print()
        data = load_profile(args.profile_file)
        if data is None:
            print(f"Profile {args.profile_file}: "
                  "missing or empty (nothing recorded)")
        else:
            print(f"Profile {args.profile_file}:")
            print()
            print(format_profile(data, top=args.top or 20))
        printed = True
    if args.flight_file:
        if printed:
            print()
        dump = load_flight(args.flight_file)
        if dump is None:
            print(f"Flight {args.flight_file}: "
                  "missing or not a flight-recorder dump")
        else:
            print(f"Flight {args.flight_file}:")
            print()
            print(format_flight(dump, top=args.top))
    return 0


def _cmd_bench_history(args) -> int:
    from repro.obs.history import (
        check,
        compare,
        format_compare,
        format_list,
        format_markdown,
        load_history,
    )

    records = load_history(args.history_file)
    if args.markdown:
        print(format_markdown(records, tolerance=args.tolerance))
        return 0
    if args.check:
        failures, warnings = check(
            records, tolerance=args.tolerance, min_points=args.min_points
        )
        for verdict in warnings:
            print(
                f"bench-history: WARNING {verdict.bench}: "
                f"{verdict.latest.seconds:.3f}s vs median "
                f"{verdict.baseline_seconds:.3f}s "
                f"({verdict.delta_percent:+.1f}%) — only "
                f"{verdict.points} data point(s), advisory",
                file=sys.stderr,
            )
        for verdict in failures:
            print(
                f"bench-history: REGRESSION {verdict.bench}: "
                f"{verdict.latest.seconds:.3f}s vs median "
                f"{verdict.baseline_seconds:.3f}s "
                f"({verdict.delta_percent:+.1f}%, n={verdict.points})",
                file=sys.stderr,
            )
        if not failures and not warnings:
            print(f"bench-history: no regressions in {args.history_file} "
                  f"(tolerance {args.tolerance:.0%})")
        return 1 if failures else 0
    if args.compare:
        print(format_compare(compare(records, tolerance=args.tolerance)))
        return 0
    print(format_list(records))
    return 0


def _cmd_cache(args) -> int:
    from collections import Counter as TallyCounter

    from repro.context import RunContext
    from repro.service.store import (
        ARTIFACT_CLASSES,
        SCHEMA_VERSION,
        DiskStore,
    )

    overrides = {}
    if getattr(args, "cache_dir", None):
        overrides["cache_dir"] = args.cache_dir
    context = RunContext.from_env(**overrides)
    if not context.cache or not context.cache_dir:
        print("cache: the artifact cache is disabled "
              "(REPRO_CACHE=0 or empty cache dir)", file=sys.stderr)
        return 2
    store = DiskStore(context.cache_dir,
                      max_bytes=context.cache_disk_bytes)

    if args.action == "clear":
        cls = args.artifact_class
        if cls is not None and cls not in ARTIFACT_CLASSES:
            print(f"cache: unknown class {cls!r}; choose from "
                  f"{', '.join(ARTIFACT_CLASSES)}", file=sys.stderr)
            return 2
        removed = store.invalidate(cls)
        scope = f"class {cls!r}" if cls else "all classes"
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} "
              f"({scope}) from {context.cache_dir}")
        return 0

    if args.action == "warm":
        if not args.design:
            print("cache: warm needs a design name "
                  "(repro-sta cache warm D1)", file=sys.stderr)
            return 2
        from repro.obs.metrics import counter
        from repro.timing import kernel as kernel_mod

        from dataclasses import replace

        design = api.load_design(args.design)
        hits0 = counter("kernel.layout_disk_hits").value
        misses0 = counter("kernel.layout_disk_misses").value
        kernel_mod.set_layout_disk_store(store)
        try:
            # Bypass the in-process LRU: a still-cached layout from an
            # earlier in-process run would skip the disk tier entirely.
            # The kernel is pinned to vector — only it has a layout to
            # warm, regardless of REPRO_STA_KERNEL.
            kernel_mod.clear_layout_cache()
            engine = STAEngine(
                design.netlist, design.constraints, design.placement,
                replace(design.sta_config, kernel="vector"),
            )
            engine.update_timing()
        finally:
            kernel_mod.set_layout_disk_store(None)
        hits = int(counter("kernel.layout_disk_hits").value - hits0)
        misses = int(counter("kernel.layout_disk_misses").value - misses0)
        state = "already warm (hydrated from disk)" if hits else "persisted"
        print(f"{args.design}: levelized layout {state} under "
              f"{context.cache_dir} (disk hits {hits}, misses {misses})")
        return 0

    # stats
    tally: "TallyCounter[str]" = TallyCounter()
    sizes: "TallyCounter[str]" = TallyCounter()
    for path in store.entries():
        cls = path.parent.name
        tally[cls] += 1
        try:
            sizes[cls] += path.stat().st_size
        except OSError:
            pass
    total_entries = sum(tally.values())
    total_bytes = sum(sizes.values())
    print(f"artifact store {context.cache_dir} (schema v{SCHEMA_VERSION}):")
    header = f"{'class':<12} {'entries':>8} {'bytes':>12}"
    print(header)
    print("-" * len(header))
    for cls in ARTIFACT_CLASSES:
        if tally[cls]:
            print(f"{cls:<12} {tally[cls]:>8} {sizes[cls]:>12}")
    print("-" * len(header))
    print(f"{'total':<12} {total_entries:>8} {total_bytes:>12} "
          f"(budget {store.max_bytes})")
    return 0


def _service_for(args):
    from repro.context import RunContext
    from repro.service import TimingService

    overrides = {}
    if getattr(args, "cache_dir", None):
        overrides["cache_dir"] = args.cache_dir
    if getattr(args, "no_cache", False):
        overrides["cache"] = False
    slo_spec = None
    if getattr(args, "slo", None):
        from repro.obs.slo import load_slo_spec

        slo_spec = load_slo_spec(args.slo)  # raises SLOError when bad
    return TimingService(
        context=RunContext.from_env(**overrides), slo_spec=slo_spec
    )


def _cmd_batch(args) -> int:
    from repro.service import run_batch, write_responses

    service = _service_for(args)
    if args.input == "-":
        responses = run_batch(service, sys.stdin)
    else:
        try:
            with open(args.input) as fh:
                responses = run_batch(service, fh)
        except OSError as exc:
            print(f"batch: cannot read {args.input}: {exc}",
                  file=sys.stderr)
            return 2
    errors = sum(1 for r in responses if not r.get("ok"))
    if args.output == "-":
        write_responses(responses, sys.stdout)
    else:
        with open(args.output, "w") as fh:
            count = write_responses(responses, fh)
        print(f"wrote {count} response(s) ({errors} error(s)) "
              f"to {args.output}")
    return 2 if errors else 0


def _cmd_serve(args) -> int:
    from repro.obs.slo import SLOError
    from repro.service import serve

    try:
        service = _service_for(args)
    except SLOError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    server = None
    if args.expose_metrics is not None:
        from repro.obs.expo import start_metrics_server

        try:
            server = start_metrics_server(
                port=args.expose_metrics, health_fn=service.health
            )
        except OSError as exc:
            print(f"serve: cannot bind metrics endpoint on port "
                  f"{args.expose_metrics}: {exc}", file=sys.stderr)
            return 2
        print(f"serve: metrics exposition at {server.url}",
              file=sys.stderr)
    flight_dump = None if args.no_flight_dump else args.flight_dump
    try:
        stats = serve(service, sys.stdin, sys.stdout,
                      flight_dump=flight_dump)
    finally:
        if server is not None:
            server.close()
    summary = (f"served {stats.served} request(s) "
               f"({stats.errors} error(s))")
    if stats.slo_ok is not None:
        summary += f"; SLO {'ok' if stats.slo_ok else 'VIOLATED'}"
    if stats.flight_dump:
        summary += f"; flight recorder dumped to {stats.flight_dump}"
    print(summary, file=sys.stderr)
    return 2 if stats.errors else 0


def _cmd_metrics_export(args) -> int:
    from repro.obs import load_metrics, render_openmetrics

    if args.metrics_file:
        snapshot = load_metrics(args.metrics_file)
        if snapshot is None:
            print(f"metrics-export: {args.metrics_file} is missing, "
                  "empty, or not a metrics snapshot", file=sys.stderr)
            return 2
        text = render_openmetrics(snapshot)
    else:
        # The live process registry: mostly useful after another
        # subcommand ran in-process (tests) or for a quick format demo.
        text = render_openmetrics()
    if args.output == "-":
        sys.stdout.write(text)
    else:
        Path(args.output).write_text(text)
        print(f"wrote OpenMetrics exposition to {args.output}")
    return 0


def _cmd_slo_check(args) -> int:
    from repro.obs import load_flight
    from repro.obs.slo import (
        SLOError,
        evaluate_slo,
        format_slo_report,
        load_slo_spec,
    )

    try:
        spec = load_slo_spec(args.spec)
    except SLOError as exc:
        print(f"slo-check: {exc}", file=sys.stderr)
        return 2
    dump = load_flight(args.flight)
    if dump is None:
        print(f"slo-check: {args.flight} is missing or not a "
              "flight-recorder dump", file=sys.stderr)
        return 2
    report = evaluate_slo(spec, dump.get("requests") or [])
    print(format_slo_report(report))
    return 0 if report.ok else 1


def _cmd_closure(args) -> int:
    name = args.design or args.design_flag
    if not name:
        print("closure: a design name is required "
              "(positional or --design)", file=sys.stderr)
        return 2
    args.design = name
    result = api.close_timing(
        args.design,
        use_mgba=args.mgba,
        max_transforms=args.max_transforms,
        acceptable_violations=args.acceptable,
    )
    if args.eco:
        from repro.opt.eco import save_eco

        save_eco(list(result.eco_commands), args.eco, args.design)
        print(f"wrote {len(result.eco_commands)} ECO command(s) "
              f"to {args.eco}")
    flavor = "mGBA" if args.mgba else "GBA"
    print(f"{flavor} closure on {args.design}:")
    print(f"  transforms: {result.transforms_applied} applied / "
          f"{result.transforms_tried} tried")
    print(f"  runtime:    {result.seconds:.2f}s")
    print(f"  before  WNS={result.wns_before:9.1f}  "
          f"TNS={result.tns_before:11.1f}  "
          f"violations={result.violations_before}")
    print(f"  after   WNS={result.wns_after:9.1f}  "
          f"TNS={result.tns_after:11.1f}  "
          f"area={result.area_after:9.1f}  "
          f"leakage={result.leakage_after:9.1f}  "
          f"buffers={result.buffers_after:4d}  "
          f"violations={result.violations_after}")
    return 0


def _cmd_generate(args) -> int:
    from repro.netlist.parasitics import extract_parasitics, write_spef
    from repro.netlist.plfile import write_placement

    design = build_design(args.design)
    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    save_verilog(design.netlist, out / f"{args.design}.v")
    save_sdc(design.constraints, out / f"{args.design}.sdc")
    (out / f"{args.design}.aocv").write_text(
        write_aocv(design.derating_table)
    )
    (out / f"{args.design}.pl").write_text(
        write_placement(design.placement)
    )
    parasitics = extract_parasitics(
        design.netlist, design.placement,
        design.sta_config.wire_r_per_nm, design.sta_config.wire_c_per_nm,
    )
    (out / f"{args.design}.spef").write_text(write_spef(parasitics))
    print(f"wrote {args.design}.v / .sdc / .aocv / .pl / .spef under {out}")
    return 0


def _cmd_corners(args) -> int:
    from repro.timing.corners import MultiCornerAnalysis

    design = build_design(args.design)
    analysis = MultiCornerAnalysis(
        design.netlist, design.constraints,
        design.placement, design.sta_config,
    )
    analysis.update_all()
    print(f"{args.design} multi-corner analysis:\n")
    print(analysis.report())
    return 0


def _parse_corner_spec(spec: str) -> "list[tuple[str, float]]":
    """Parse ``name:scale,name:scale,...`` into (name, scale) pairs."""
    pairs = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        name, sep, scale = item.partition(":")
        if not sep or not name.strip():
            raise ValueError(
                f"bad corner {item!r}; expected name:scale "
                "(e.g. ss:1.15,tt:1.0,ff:0.87)"
            )
        pairs.append((name.strip(), float(scale)))
    if not pairs:
        raise ValueError("empty corner list")
    return pairs


def _cmd_scenarios(args) -> int:
    corners = None
    if args.corners:
        try:
            corners = _parse_corner_spec(args.corners)
        except ValueError as exc:
            print(f"scenarios: {exc}", file=sys.stderr)
            return 2
    result = api.run_scenarios(
        args.design, corners=corners, stacked=not args.fanout
    )
    mode = "stacked sweep" if result.stacked else "per-corner fan-out"
    print(f"{args.design} scenario sweep "
          f"({len(result.corners)} scenario(s), {mode}, "
          f"{result.seconds:.2f}s):\n")
    header = (
        f"{'corner':<8} {'scale':>6} {'setup WNS':>10} {'setup TNS':>12} "
        f"{'viol':>5} {'hold WNS':>10}"
    )
    print(header)
    print("-" * len(header))
    scales = dict(result.corners)
    hold_wns = {name: wns for name, wns, _tns, _v in result.hold}
    for name, wns, tns, violations in result.setup:
        print(
            f"{name:<8} {scales[name]:>6.2f} {wns:>10.1f} {tns:>12.1f} "
            f"{violations:>5} {hold_wns[name]:>10.1f}"
        )
    if result.dominant:
        print(f"\ndominant setup corner: {result.dominant}")
    for endpoint, slack, corner in result.merged[:args.paths]:
        print(f"  {endpoint:<24} {slack:>10.1f}  @ {corner}")
    return 0


def _cmd_what_if(args) -> int:
    import json

    candidates: "list" = []
    if args.candidates:
        try:
            if args.candidates == "-":
                payload = json.load(sys.stdin)
            else:
                with open(args.candidates) as fh:
                    payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"what-if: cannot read {args.candidates}: {exc}",
                  file=sys.stderr)
            return 2
        if not isinstance(payload, list):
            print("what-if: candidates file must be a JSON list "
                  "(each entry an edit-spec list or ECO text)",
                  file=sys.stderr)
            return 2
        candidates.extend(payload)
    for eco_path in args.eco or ():
        try:
            candidates.append(Path(eco_path).read_text())
        except OSError as exc:
            print(f"what-if: cannot read {eco_path}: {exc}",
                  file=sys.stderr)
            return 2
    if not candidates:
        print("what-if: no candidates (give --candidates FILE "
              "and/or --eco FILE)", file=sys.stderr)
        return 2
    from repro.opt.whatif import WhatIfError

    try:
        result = api.what_if(args.design, candidates)
    except WhatIfError as exc:
        print(f"what-if: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    print(f"{args.design}: {len(result.candidates)} candidate(s), "
          f"baseline WNS={result.wns_baseline:.1f} "
          f"TNS={result.tns_baseline:.1f} "
          f"violations={result.violations_baseline} "
          f"({result.seconds:.2f}s)\n")
    header = (
        f"{'#':>3} {'ok':<3} {'edits':>5} {'ΔWNS':>9} {'ΔTNS':>11} "
        f"{'viol':>5} {'touched':>7}  eco/error"
    )
    print(header)
    print("-" * len(header))
    best = result.best()
    for index, cand in enumerate(result.candidates):
        tail = "; ".join(cand.eco) if cand.ok else (cand.error or "")
        marker = "*" if index == best else " "
        print(
            f"{index:>2}{marker} {'yes' if cand.ok else 'no':<3} "
            f"{cand.edits:>5} {cand.delta_wns:>9.1f} "
            f"{cand.delta_tns:>11.1f} {cand.violations_after:>5} "
            f"{len(cand.touched):>7}  {tail}"
        )
    if best is not None:
        print(f"\nbest candidate: #{best} "
              f"(ΔWNS {result.candidates[best].delta_wns:+.1f})")
    return 0


def _cmd_min_period(args) -> int:
    import json

    corner = None
    if args.corner:
        try:
            pairs = _parse_corner_spec(args.corner)
        except ValueError as exc:
            print(f"min-period: {exc}", file=sys.stderr)
            return 2
        if len(pairs) != 1:
            print("min-period: exactly one corner (name:scale)",
                  file=sys.stderr)
            return 2
        corner = pairs[0]
    from repro.opt.whatif import WhatIfError

    try:
        result = api.min_period(
            args.design, clock=args.clock, tolerance=args.tolerance,
            max_iter=args.max_iter, corner=corner,
        )
    except WhatIfError as exc:
        print(f"min-period: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    label = f" @ {result.corner}" if result.corner else ""
    print(f"{args.design}: clock {result.clock}{label}")
    print(f"  baseline period: {result.baseline_period:10.1f} ps  "
          f"(WNS {result.baseline_wns:+.1f})")
    print(f"  min period:      {result.period:10.1f} ps  "
          f"(WNS {result.wns_at_period:+.1f})")
    print(f"  bracket: ({result.bracket_low:.1f}, {result.bracket_high:.1f}] "
          f"within ±{result.tolerance:g} ps")
    print(f"  {result.iterations} bisection(s), "
          f"{result.evaluations} slack evaluation(s), "
          f"{result.seconds:.2f}s")
    if result.baseline_period > result.period:
        headroom = result.baseline_period - result.period
        print(f"  headroom: {headroom:.1f} ps "
              f"({headroom / result.baseline_period:.1%} of the period)")
    return 0


def _cmd_validate(args) -> int:
    from repro.netlist.validate import Severity, validate_netlist

    design = build_design(args.design)
    findings = validate_netlist(design.netlist)
    errors = [f for f in findings if f.severity is Severity.ERROR]
    warnings = [f for f in findings if f.severity is Severity.WARNING]
    print(f"{args.design}: {design.netlist.stats()}")
    print(f"  {len(errors)} error(s), {len(warnings)} warning(s)")
    for finding in findings[:args.rows]:
        print(f"  {finding}")
    if len(findings) > args.rows:
        print(f"  ... ({len(findings) - args.rows} more)")
    return 1 if errors else 0


def _cmd_pessimism(args) -> int:
    from repro.analysis import format_pessimism_report, pessimism_report

    engine = _engine_for(args.design)
    rows = pessimism_report(engine, k_paths=args.k_paths)
    print(f"Pessimism report for {args.design} (GBA vs golden PBA):\n")
    print(format_pessimism_report(rows, max_rows=args.rows))
    return 0


def _cmd_compare(args) -> int:
    from repro.designs.suite import design_factory
    from repro.mgba.flow import MGBAConfig
    from repro.opt.closure import ClosureConfig
    from repro.opt.compare import run_flow_comparison
    from repro.reporting import comparison_to_dict, save_json

    comparison = run_flow_comparison(
        args.design,
        design_factory(args.design),
        ClosureConfig(
            max_transforms=args.max_transforms,
            mgba=MGBAConfig(seed=0),
        ),
    )
    gains = comparison.qor_improvement()
    runtime = comparison.runtime_row()
    print(f"{args.design}: mGBA flow vs GBA flow")
    print("  QoR improvement (%):  "
          + "  ".join(f"{k}={gains[k]:+.2f}"
                      for k in ("wns", "tns", "area", "leakage", "buffer")))
    print(f"  runtime (s): GBA {runtime['gba_flow']:.2f}  "
          f"mGBA {runtime['total']:.2f} "
          f"(fit {runtime['mgba']:.2f})  speedup {runtime['speedup']:.2f}x")
    if args.json:
        save_json(comparison_to_dict(comparison), args.json)
        print(f"  wrote {args.json}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-sta",
        description="mGBA pessimism-reduction framework (DAC'18 repro)",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    parser.add_argument(
        "--workers", type=int, metavar="N", default=None,
        help="worker count for parallel regions (overrides REPRO_WORKERS; "
             "backend via REPRO_PARALLEL_BACKEND, default thread)",
    )
    parser.add_argument(
        "--trace", metavar="FILE",
        help="write a JSONL span trace of the run (see obs-report)",
    )
    parser.add_argument(
        "--chrome-trace", metavar="FILE",
        help="write a Chrome trace_event file of the run",
    )
    parser.add_argument(
        "--metrics", metavar="FILE",
        help="write the metrics-registry snapshot as JSON",
    )
    parser.add_argument(
        "--profile", metavar="FILE",
        help="attach cProfile to top-level flow spans and write the "
             "aggregated stats as JSON (see obs-report --profile)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_designs = sub.add_parser("designs", help="list the design suite")
    p_designs.add_argument(
        "--detail", action="store_true",
        help="build each design and print size/timing statistics",
    )

    p_sta = sub.add_parser("sta", help="report GBA timing")
    p_sta.add_argument("design")
    p_sta.add_argument("--paths", type=int, default=3)
    p_sta.add_argument(
        "--weights", help="apply a saved mGBA weight file before reporting"
    )

    p_exp = sub.add_parser(
        "explain",
        help="slack provenance & pessimism attribution for a design",
    )
    p_exp.add_argument("design")
    p_exp.add_argument(
        "--endpoint", metavar="PIN", default=None,
        help="narrow the record to one endpoint's worst path "
             "(endpoint pin name, e.g. FF4/D)",
    )
    p_exp.add_argument(
        "--top-k", type=int, default=10, metavar="K",
        help="per-arc detail for the K worst endpoints (default: 10)",
    )
    p_exp.add_argument(
        "--format", choices=["markdown", "json"], default="markdown",
        help="markdown tables (default) or the docs/formats.md JSON "
             "schema",
    )
    p_exp.add_argument(
        "--weights", help="apply a saved mGBA weight file first, so the "
                          "record attributes removed pessimism",
    )

    p_mgba = sub.add_parser("mgba", help="run the mGBA flow")
    p_mgba.add_argument("design")
    p_mgba.add_argument("--k", type=int, default=20)
    p_mgba.add_argument(
        "--solver", default="scg+rs",
        choices=["gd", "scg", "scg+rs", "direct"],
    )
    p_mgba.add_argument("--seed", type=int, default=0)
    p_mgba.add_argument(
        "--save-weights", help="write the fitted weights to this JSON file"
    )

    p_clo = sub.add_parser("closure", help="run closure optimization")
    p_clo.add_argument("design", nargs="?", default=None)
    p_clo.add_argument(
        "--design", dest="design_flag", metavar="NAME",
        help="design name (alternative to the positional argument)",
    )
    p_clo.add_argument("--mgba", action="store_true")
    p_clo.add_argument("--max-transforms", type=int, default=200)
    p_clo.add_argument("--acceptable", type=int, default=0)
    p_clo.add_argument(
        "--eco", help="write accepted moves as a replayable ECO script"
    )

    p_gen = sub.add_parser("generate", help="emit design files")
    p_gen.add_argument("design")
    p_gen.add_argument("-o", "--output", default="out")

    p_cmp = sub.add_parser(
        "compare", help="A/B the GBA and mGBA closure flows"
    )
    p_cmp.add_argument("design")
    p_cmp.add_argument("--max-transforms", type=int, default=150)
    p_cmp.add_argument("--json", help="also write the record as JSON")

    p_pess = sub.add_parser(
        "pessimism", help="per-endpoint GBA-vs-golden pessimism report"
    )
    p_pess.add_argument("design")
    p_pess.add_argument("--k-paths", type=int, default=16)
    p_pess.add_argument("--rows", type=int, default=20)

    p_val = sub.add_parser("validate", help="structural netlist lint")
    p_val.add_argument("design")
    p_val.add_argument("--rows", type=int, default=25)

    p_corners = sub.add_parser(
        "corners", help="SS/TT/FF multi-corner summary"
    )
    p_corners.add_argument("design")

    p_scen = sub.add_parser(
        "scenarios",
        help="sweep a corner matrix in one scenario-stacked kernel pass",
    )
    p_scen.add_argument("design")
    p_scen.add_argument(
        "--corners", metavar="SPEC", default=None,
        help="comma-separated name:scale list "
             "(default: ss:1.15,tt:1.0,ff:0.87)",
    )
    p_scen.add_argument(
        "--fanout", action="store_true",
        help="force the per-corner process/thread fan-out instead of "
             "the stacked kernel (results are bit-identical)",
    )
    p_scen.add_argument(
        "--paths", type=int, default=5, metavar="N",
        help="merged worst endpoints to list (default: 5)",
    )

    p_wi = sub.add_parser(
        "what-if",
        help="score candidate ECO edit-lists (resize/VT/buffer) "
             "against a design",
    )
    p_wi.add_argument("design")
    p_wi.add_argument(
        "--candidates", metavar="FILE",
        help="JSON list of candidates ('-' for stdin); each entry an "
             "edit-spec list or ECO text (see docs/formats.md)",
    )
    p_wi.add_argument(
        "--eco", metavar="FILE", action="append",
        help="append an ECO script file as one candidate (repeatable)",
    )
    p_wi.add_argument(
        "--json", action="store_true",
        help="emit the full WhatIfResult record as JSON",
    )

    p_mp = sub.add_parser(
        "min-period",
        help="binary-search the smallest feasible clock period",
    )
    p_mp.add_argument("design")
    p_mp.add_argument(
        "--clock", metavar="NAME", default=None,
        help="clock to search (default: the primary clock)",
    )
    p_mp.add_argument(
        "--tolerance", type=float, default=1.0, metavar="PS",
        help="bracket resolution in ps (default: 1.0)",
    )
    p_mp.add_argument(
        "--max-iter", type=int, default=64, metavar="N",
        help="bisection iteration cap (default: 64)",
    )
    p_mp.add_argument(
        "--corner", metavar="SPEC", default=None,
        help="search at a scaled-delay corner (name:scale, e.g. ss:1.15)",
    )
    p_mp.add_argument(
        "--json", action="store_true",
        help="emit the full MinPeriodResult record as JSON",
    )

    p_batch = sub.add_parser(
        "batch",
        help="run a JSONL query file as one coalesced service batch",
    )
    p_batch.add_argument(
        "input", help="JSONL request file ('-' for stdin); one query "
                      "object per line (see docs/service.md)",
    )
    p_batch.add_argument(
        "-o", "--output", default="-",
        help="JSONL response file (default: stdout)",
    )
    p_serve = sub.add_parser(
        "serve",
        help="answer JSONL queries line-by-line on stdin/stdout",
    )
    for p_svc in (p_batch, p_serve):
        p_svc.add_argument(
            "--cache-dir", metavar="DIR",
            help="artifact-cache directory "
                 "(default .repro_cache, or REPRO_CACHE_DIR)",
        )
        p_svc.add_argument(
            "--no-cache", action="store_true",
            help="disable the artifact cache for this invocation",
        )
    p_serve.add_argument(
        "--expose-metrics", type=int, metavar="PORT", default=None,
        help="serve an OpenMetrics scrape endpoint on localhost:PORT "
             "for the session (0 = OS-assigned; /metrics and /health)",
    )
    p_serve.add_argument(
        "--flight-dump", metavar="FILE", default="flight_dump.json",
        help="where the flight recorder is dumped when the session "
             "exits on the error path (default: flight_dump.json)",
    )
    p_serve.add_argument(
        "--no-flight-dump", action="store_true",
        help="never dump the flight recorder, even on errors",
    )
    p_serve.add_argument(
        "--slo", metavar="FILE", default=None,
        help="SLO spec (JSON or TOML, see docs/formats.md); the "
             "health verb and exit summary then report SLO status",
    )

    p_mx = sub.add_parser(
        "metrics-export",
        help="render the metrics registry in OpenMetrics text format",
    )
    p_mx.add_argument(
        "--metrics", dest="metrics_file", metavar="FILE", default=None,
        help="render a saved --metrics JSON snapshot instead of the "
             "live process registry",
    )
    p_mx.add_argument(
        "-o", "--output", default="-",
        help="write the exposition here (default: stdout)",
    )

    p_slo = sub.add_parser(
        "slo-check",
        help="judge a flight-recorder dump against an SLO spec "
             "(exit 1 on violation)",
    )
    p_slo.add_argument(
        "--spec", metavar="FILE", default="slo/default.json",
        help="SLO spec, JSON or TOML (default: slo/default.json)",
    )
    p_slo.add_argument(
        "--flight", metavar="FILE", required=True,
        help="flight-recorder dump to evaluate (see serve "
             "--flight-dump and docs/formats.md)",
    )

    p_obs = sub.add_parser(
        "obs-report",
        help="per-stage runtime breakdown of a --trace JSONL file",
    )
    p_obs.add_argument("trace_file", nargs="?", default=None)
    p_obs.add_argument(
        "--metrics", dest="metrics_file", metavar="FILE",
        help="also summarize a --metrics JSON snapshot "
             "(missing/empty files are reported, not fatal)",
    )
    p_obs.add_argument(
        "--profile", dest="profile_file", metavar="FILE",
        help="also render a --profile JSON dump as a top-N "
             "self-time table",
    )
    p_obs.add_argument(
        "--flight", dest="flight_file", metavar="FILE",
        help="also render a flight-recorder dump (recent requests "
             "and errors; see serve --flight-dump)",
    )
    p_obs.add_argument(
        "--sort", choices=["wall", "self", "calls"], default="wall",
        help="sibling ordering of the breakdown rows (default: wall)",
    )
    p_obs.add_argument(
        "--top", type=int, metavar="N", default=None,
        help="truncate the breakdown (and profile table) to N rows",
    )

    p_hist = sub.add_parser(
        "bench-history",
        help="list/compare the benchmark time series and flag "
             "runtime regressions",
    )
    p_hist.add_argument(
        "history_file", nargs="?",
        default="bench_metrics/history.jsonl",
        help="history JSONL file (default: bench_metrics/history.jsonl)",
    )
    p_hist.add_argument(
        "--compare", action="store_true",
        help="judge the latest run of every series against its "
             "median baseline",
    )
    p_hist.add_argument(
        "--check", action="store_true",
        help="like --compare but exit 1 on a regression backed by at "
             "least --min-points runs (younger series only warn)",
    )
    p_hist.add_argument(
        "--markdown", action="store_true",
        help="render the full trend report as markdown",
    )
    p_hist.add_argument(
        "--tolerance", type=float, default=0.2, metavar="FRAC",
        help="relative band around the baseline before a run is "
             "flagged (default: 0.2 = ±20%%)",
    )
    p_hist.add_argument(
        "--min-points", type=int, default=3, metavar="N",
        help="runs a series needs before --check fails on it "
             "(default: 3)",
    )

    p_cache = sub.add_parser(
        "cache",
        help="inspect or manage the on-disk artifact store",
    )
    p_cache.add_argument(
        "action", choices=["stats", "warm", "clear"],
        help="stats: per-class entry/byte counts; warm: pre-build and "
             "persist a design's levelized layout; clear: drop entries",
    )
    p_cache.add_argument(
        "design", nargs="?", default=None,
        help="design to warm (required for the warm action)",
    )
    p_cache.add_argument(
        "--cache-dir", metavar="DIR",
        help="artifact-cache directory "
             "(default .repro_cache, or REPRO_CACHE_DIR)",
    )
    p_cache.add_argument(
        "--class", dest="artifact_class", metavar="CLS", default=None,
        help="restrict clear to one artifact class (e.g. layout, sta)",
    )

    return parser


_COMMANDS = {
    "designs": _cmd_designs,
    "sta": _cmd_sta,
    "explain": _cmd_explain,
    "mgba": _cmd_mgba,
    "closure": _cmd_closure,
    "generate": _cmd_generate,
    "compare": _cmd_compare,
    "pessimism": _cmd_pessimism,
    "validate": _cmd_validate,
    "corners": _cmd_corners,
    "scenarios": _cmd_scenarios,
    "what-if": _cmd_what_if,
    "min-period": _cmd_min_period,
    "batch": _cmd_batch,
    "serve": _cmd_serve,
    "metrics-export": _cmd_metrics_export,
    "slo-check": _cmd_slo_check,
    "obs-report": _cmd_obs_report,
    "bench-history": _cmd_bench_history,
    "cache": _cmd_cache,
}


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.verbose:
        enable_console_logging()
    if args.workers is not None:
        from repro.errors import ParallelError
        from repro.parallel import set_default_workers

        try:
            set_default_workers(args.workers)
        except ParallelError as exc:
            print(f"repro-sta: {exc}", file=sys.stderr)
            return 2
    for out_path in (args.trace, args.chrome_trace, args.metrics,
                     args.profile):
        if out_path:
            parent = Path(out_path).parent
            if str(parent) != "." and not parent.is_dir():
                print(f"repro-sta: output directory does not exist: "
                      f"{parent}", file=sys.stderr)
                return 2
    tracer = None
    if args.trace or args.chrome_trace:
        from repro.obs import install_tracer

        tracer = install_tracer()
        if args.trace:
            # Stream, don't buffer: every closed root span is flushed
            # to the file immediately, so a crashed run still leaves a
            # valid JSONL trace for obs-report.
            tracer.stream_jsonl(args.trace)
    profiler = None
    if args.profile:
        from repro.obs import SpanProfiler, set_span_profiler

        profiler = SpanProfiler()
        set_span_profiler(profiler)
    try:
        return _COMMANDS[args.command](args)
    finally:
        if args.workers is not None:
            from repro.parallel import set_default_workers

            set_default_workers(None)
        if tracer is not None:
            from repro.obs import uninstall_tracer

            uninstall_tracer()
            tracer.close()
            if args.chrome_trace:
                tracer.export_chrome(args.chrome_trace)
        if profiler is not None:
            from repro.obs import set_span_profiler

            set_span_profiler(None)
            profiler.save_json(args.profile)
        if args.metrics:
            from repro.obs import default_registry

            default_registry().save_json(args.metrics)


if __name__ == "__main__":
    sys.exit(main())
