"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers embedding the flow can catch a single base class.  Parse errors
carry the offending location to make hand-written netlists debuggable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class LibertyError(ReproError):
    """Invalid cell-library data (bad table axes, unknown pin, ...)."""


class NetlistError(ReproError):
    """Structural netlist problem (unknown cell, multi-driven net, ...)."""


class SDCError(ReproError):
    """Invalid timing constraint specification."""


class AOCVError(ReproError):
    """Invalid derating-table data."""


class TimingError(ReproError):
    """Timing-graph construction or propagation failure."""


class SolverError(ReproError):
    """Optimization-solver failure (divergence, bad shapes, ...)."""


class ParseError(ReproError):
    """Syntax error in one of the text formats (Verilog/Liberty/SDC/AOCV).

    Attributes
    ----------
    filename:
        Name of the source being parsed, or ``"<string>"``.
    line:
        1-based line number of the offending token, 0 when unknown.
    """

    def __init__(self, message: str, filename: str = "<string>", line: int = 0):
        self.filename = filename
        self.line = line
        location = f"{filename}:{line}: " if line else f"{filename}: "
        super().__init__(location + message)
