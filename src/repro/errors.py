"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers embedding the flow can catch a single base class.  Parse errors
carry the offending location to make hand-written netlists debuggable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class LibertyError(ReproError):
    """Invalid cell-library data (bad table axes, unknown pin, ...)."""


class NetlistError(ReproError):
    """Structural netlist problem (unknown cell, multi-driven net, ...)."""


class SDCError(ReproError):
    """Invalid timing constraint specification."""


class AOCVError(ReproError):
    """Invalid derating-table data."""


class TimingError(ReproError):
    """Timing-graph construction or propagation failure."""


class SolverError(ReproError):
    """Optimization-solver failure (divergence, bad shapes, ...)."""


class ParallelError(ReproError):
    """A parallel worker failed, or the executor is misconfigured.

    When a chunk of work raises inside a worker (thread or child
    process), the executor re-raises a :class:`ParallelError` in the
    caller carrying enough context to debug it without re-running
    serially:

    Attributes
    ----------
    chunk:
        Index of the failing chunk (0-based), or -1 for configuration
        errors raised before any work was distributed.
    backend:
        Executor backend name (``"serial"`` / ``"thread"`` /
        ``"process"``), or ``""`` for configuration errors.
    child_traceback:
        The worker-side formatted traceback.  For child processes this
        is the only faithful record — the original exception object may
        not survive pickling back to the parent.
    """

    def __init__(self, message: str, chunk: int = -1, backend: str = "",
                 child_traceback: str = ""):
        self.chunk = chunk
        self.backend = backend
        self.child_traceback = child_traceback
        super().__init__(message)


class ParseError(ReproError):
    """Syntax error in one of the text formats (Verilog/Liberty/SDC/AOCV).

    Attributes
    ----------
    filename:
        Name of the source being parsed, or ``"<string>"``.
    line:
        1-based line number of the offending token, 0 when unknown.
    """

    def __init__(self, message: str, filename: str = "<string>", line: int = 0):
        self.filename = filename
        self.line = line
        location = f"{filename}:{line}: " if line else f"{filename}: "
        super().__init__(location + message)
