"""repro — a graph-based pessimism reduction framework for timing closure.

Python reproduction of Peng et al., "A General Graph Based Pessimism
Reduction Framework for Design Optimization of Timing Closure",
DAC 2018.

Quick start::

    from repro import build_design, STAEngine, MGBAFlow

    design = build_design("D1")
    engine = STAEngine(design.netlist, design.constraints,
                       design.placement, design.sta_config)
    print(engine.summary())            # pessimistic GBA view

    result = MGBAFlow().run(engine)    # fit + install the correction
    print(engine.summary())            # corrected (mGBA) view
    print(f"pass ratio {result.pass_ratio_gba:.1%} -> "
          f"{result.pass_ratio_mgba:.1%}")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.errors import (
    AOCVError,
    LibertyError,
    NetlistError,
    ParallelError,
    ParseError,
    ReproError,
    SDCError,
    SolverError,
    TimingError,
)
from repro.liberty import (
    Library,
    make_default_library,
    parse_liberty,
    write_liberty,
)
from repro.netlist import (
    Netlist,
    Placement,
    parse_verilog,
    validate_netlist,
    write_verilog,
)
from repro.sdc import Clock, Constraints, parse_sdc, write_sdc
from repro.aocv import DeratingTable, compute_gba_depths, paper_table_1
from repro.timing import STAConfig, STAEngine
from repro.pba import PBAEngine, TimingPath, enumerate_worst_paths
from repro.mgba import (
    MGBAConfig,
    MGBAFlow,
    MGBAProblem,
    MGBAResult,
    build_problem,
    mse,
    pass_ratio,
)
from repro.mgba.solvers import (
    solve_direct,
    solve_gd,
    solve_scg,
    solve_with_row_sampling,
)
from repro.opt import (
    ClosureConfig,
    QoRMetrics,
    TimingClosureOptimizer,
    run_flow_comparison,
)
from repro import obs
from repro import parallel
from repro.parallel import (
    Executor,
    get_executor,
    set_default_workers,
)
from repro import api
from repro.api import (
    ClosureResult,
    FitResult,
    GoldenSlacksResult,
    RunContext,
    STAResult,
)
from repro import service
from repro.service import (
    ArtifactCache,
    DesignReport,
    TimingService,
    evaluate_suite,
)
from repro.analysis import pessimism_report, summarize_pessimism
from repro.timing.corners import Corner, MultiCornerAnalysis
from repro.mgba.validation import endpoint_split_validation, holdout_validation
from repro.mgba.persistence import load_weights, save_weights
from repro.designs import Design, DesignSpec, build_design, generate_design

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError", "LibertyError", "NetlistError", "SDCError", "AOCVError",
    "TimingError", "SolverError", "ParseError", "ParallelError",
    # substrates
    "Library", "make_default_library", "parse_liberty", "write_liberty",
    "Netlist", "Placement", "parse_verilog", "write_verilog",
    "validate_netlist",
    "Clock", "Constraints", "parse_sdc", "write_sdc",
    "DeratingTable", "paper_table_1", "compute_gba_depths",
    # engines
    "STAConfig", "STAEngine",
    "PBAEngine", "TimingPath", "enumerate_worst_paths",
    # mGBA
    "MGBAConfig", "MGBAFlow", "MGBAProblem", "MGBAResult", "build_problem",
    "mse", "pass_ratio",
    "solve_gd", "solve_scg", "solve_with_row_sampling", "solve_direct",
    # optimization
    "ClosureConfig", "QoRMetrics", "TimingClosureOptimizer",
    "run_flow_comparison",
    # analysis & validation
    "pessimism_report", "summarize_pessimism",
    "Corner", "MultiCornerAnalysis",
    "holdout_validation", "endpoint_split_validation",
    "save_weights", "load_weights",
    # observability (tracing spans, metrics registry, solver telemetry)
    "obs",
    # parallel execution (serial/thread/process executors)
    "parallel", "Executor", "get_executor", "set_default_workers",
    # stable facade + unified run context
    "api", "RunContext",
    "STAResult", "GoldenSlacksResult", "FitResult", "ClosureResult",
    # service layer (artifact cache, batched queries, suite fan-out)
    "service", "TimingService", "ArtifactCache",
    "DesignReport", "evaluate_suite",
    # designs
    "Design", "DesignSpec", "build_design", "generate_design",
    "__version__",
]
