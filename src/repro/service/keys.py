"""Content addressing for expensive timing artifacts.

Every cacheable artifact is keyed by a digest of *what it was computed
from*, never by a design's name or a wall-clock stamp:

* **STA state** — (netlist, liberty, SDC, placement, STA config/corner);
* **PBA golden endpoint slacks** — the design key plus the PBA knobs
  (k', slew recalculation, variation model);
* **fitted x\\* vectors** — the A-matrix fingerprint plus the solver
  configuration (solver name, seed, epsilon, penalty).

Content addressing is what makes invalidation trivial: a
:class:`~repro.netlist.edit.ChangeRecord` changes the netlist, the
netlist changes the design key, and every dependent artifact simply
misses — stale entries can never be *served*, only evicted.  See
``docs/service.md`` for the full key schema.

Hashing goes through the canonical text serializers (``write_verilog``,
``write_liberty``, ``write_sdc``, ``write_placement``, ``write_aocv``)
so the key covers exactly what a round-tripped design would contain;
anything the writers don't capture can't affect timing either.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.netlist.core import Netlist
    from repro.netlist.placement import Placement
    from repro.sdc.constraints import Constraints
    from repro.timing.sta import STAConfig

#: Length of every emitted hex digest — short enough for filenames,
#: long enough (80 bits) that accidental collisions are not a concern
#: at any realistic cache size.
DIGEST_CHARS = 20


def digest(parts: "Iterable[Any]") -> str:
    """SHA-256 over the string forms of ``parts``, truncated."""
    hasher = hashlib.sha256()
    for part in parts:
        if isinstance(part, bytes):
            hasher.update(part)
        else:
            hasher.update(str(part).encode())
        hasher.update(b"\x1f")  # field separator: ("ab","c") != ("a","bc")
    return hasher.hexdigest()[:DIGEST_CHARS]


# ----------------------------------------------------------------------
# Component hashes
# ----------------------------------------------------------------------
def netlist_hash(netlist: "Netlist") -> str:
    """Digest of a netlist's full structural content.

    Covers gates, cell bindings, and connectivity via the canonical
    Verilog serialization — any edit that could move timing moves the
    hash.  Supersedes ``repro.mgba.persistence.netlist_fingerprint``
    (which hashed connectivity only and remains as a deprecated alias).
    """
    from repro.netlist.verilog import write_verilog

    return digest([netlist.name, write_verilog(netlist)])


def liberty_hash(library) -> str:
    """Digest of a characterized library (all cells, all tables)."""
    from repro.liberty.writer import write_liberty

    return digest([write_liberty(library)])


def sdc_hash(constraints: "Constraints") -> str:
    """Digest of the timing constraints (clocks, IO delays, exceptions)."""
    from repro.sdc.writer import write_sdc

    return digest([write_sdc(constraints)])


def placement_hash(placement: "Placement | None") -> str:
    """Digest of the placement (AOCV distances depend on it)."""
    if placement is None:
        return "none"
    from repro.netlist.plfile import write_placement

    return digest([write_placement(placement)])


def sta_config_hash(config: "STAConfig") -> str:
    """Digest of the STA configuration, AOCV tables included.

    The corner lives here too: ``delay_scale`` (and any derate knob)
    is exactly what distinguishes SS/TT/FF engines derived from one
    library, so two corners of the same design never share a key.
    """
    from repro.aocv.table import write_aocv

    parts: "list[Any]" = []
    for name in (
        "clock_derate_late", "clock_derate_early", "data_early_derate",
        "input_slew", "clock_slew", "wire_r_per_nm", "wire_c_per_nm",
        "gba_distance", "flat_derate_late", "delay_scale",
    ):
        parts.append(f"{name}={getattr(config, name)!r}")
    for table in (config.derating_table, config.early_derating_table):
        parts.append(write_aocv(table) if table is not None else "none")
    return digest(parts)


# ----------------------------------------------------------------------
# Composite keys
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DesignKey:
    """Content address of one analyzable design at one corner."""

    netlist: str
    liberty: str
    sdc: str
    placement: str
    config: str

    @property
    def token(self) -> str:
        """The single digest the cache files this design under."""
        return digest([
            self.netlist, self.liberty, self.sdc,
            self.placement, self.config,
        ])


def design_key(
    netlist: "Netlist",
    constraints: "Constraints",
    placement: "Placement | None" = None,
    config: "STAConfig | None" = None,
) -> DesignKey:
    """Compute the content address of a design bundle."""
    from repro.timing.sta import STAConfig

    return DesignKey(
        netlist=netlist_hash(netlist),
        liberty=liberty_hash(netlist.library),
        sdc=sdc_hash(constraints),
        placement=placement_hash(placement),
        config=sta_config_hash(config or STAConfig()),
    )


def pba_slacks_key(design: DesignKey, k: int, recalc_slew: bool,
                   variation: str) -> str:
    """Key of a golden-endpoint-slack artifact (design + PBA knobs)."""
    return digest([design.token, k, recalc_slew, variation])


def explain_key(design: DesignKey, endpoint: "Any", top_k: int) -> str:
    """Key of a slack-provenance artifact (design + explain scope)."""
    return digest([design.token, endpoint, top_k])


def scenario_key(design: DesignKey,
                 corners: "Iterable[tuple[str, float]]") -> str:
    """Key of a multi-scenario sweep artifact (design + corner matrix).

    ``corners`` is the (name, delay scale) sequence in declaration
    order — order matters: it fixes merge tie-breaks, so a reordered
    matrix is a different artifact.  ``repr`` of the scale keeps full
    float precision in the key material.
    """
    parts: "list[Any]" = [design.token]
    for name, scale in corners:
        parts.append(f"{name}={scale!r}")
    return digest(parts)


def layout_key(content: "tuple[Any, ...]", schema: int) -> str:
    """Key of a persisted levelized-layout artifact.

    ``content`` is the kernel's in-process layout cache key — netlist
    hash, boundary conditions, and GBA depth map — available only for
    *pristine* graphs (``structure_version == pristine_version``), which
    is exactly what makes slot assignment a pure function of content.
    The payload ``schema`` version is key material too: a layout format
    change simply misses instead of needing a cache wipe.
    """
    return digest(["layout", schema, repr(content)])


def problem_fingerprint(problem) -> str:
    """Digest of one mGBA problem instance (the A matrix and friends).

    Covers the sparse structure and values of A, the right-hand side,
    both slack vectors, the gate column order, and the epsilon/penalty
    shaping — everything a solver's ``x*`` depends on.
    """
    matrix = problem.matrix.tocsr()
    return digest([
        matrix.shape,
        matrix.data.tobytes(),
        matrix.indices.tobytes(),
        matrix.indptr.tobytes(),
        problem.rhs.tobytes(),
        problem.s_gba.tobytes(),
        problem.s_pba.tobytes(),
        "|".join(problem.gates),
        problem.epsilon,
        problem.penalty,
    ])


def solve_key(fingerprint: str, solver: str, seed: "int | None") -> str:
    """Key of a cached ``x*`` vector: A fingerprint + solver config."""
    return digest([fingerprint, solver, seed])


def fit_key(design: DesignKey, fit_fingerprint: "tuple[Any, ...]") -> str:
    """Key of a whole-flow fit artifact (design + every fit knob)."""
    return digest([design.token, *fit_fingerprint])


def what_if_key(design: DesignKey, candidate: "Any") -> str:
    """Key of one scored what-if candidate (design + canonical edits).

    ``candidate`` is the canonical frozen form from
    :func:`repro.opt.whatif.normalize_candidate` — a tuple of sorted
    (field, value) spec tuples, so spelling differences (dict order,
    ECO text vs. spec list) collapse onto one key.  Keys are
    per-candidate, not per-request: a K-candidate batch hits for every
    candidate any earlier request already scored.
    """
    return digest([design.token, "what_if", repr(candidate)])


def min_period_key(design: DesignKey, clock: "str | None",
                   tolerance: float, max_iter: int, corner: str) -> str:
    """Key of a min-period search artifact (design + search contract).

    The bracket/bisection sequence is a pure function of these inputs,
    so the tolerance and iteration cap are key material — a tighter
    tolerance is a different (more precise) artifact.
    """
    return digest([
        design.token, "min_period", clock, repr(float(tolerance)),
        max_iter, corner,
    ])
