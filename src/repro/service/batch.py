"""JSONL batch protocol: stream queries in, stream results out.

This is the wire format behind ``repro-sta batch`` and ``repro-sta
serve`` (see ``docs/service.md``).  One request per line::

    {"id": 1, "op": "sta", "design": "D1"}
    {"id": 2, "op": "pba_slacks", "design": "D1", "k": 32}
    {"id": 3, "op": "mgba_fit", "design": "D1", "solver": "pgd"}

and one response per request, same ``id``, in request order::

    {"id": 1, "op": "sta", "design": "D1", "ok": true,
     "cached": false, "seconds": 0.41, "result": {...}}

A malformed line or failed query produces an error record
(``"ok": false`` plus ``"error"``) instead of aborting the stream —
a batch file with one typo still computes the other N-1 queries.

``run_batch`` reads the whole input and submits it as **one** batch,
so duplicates coalesce and distinct designs shard across workers;
``serve`` answers line-by-line (flushing after each response) for
interactive front-ends that pipeline requests.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, TextIO

from repro.obs.trace import span
from repro.service.engine import Query, QueryResult, TimingService


def parse_request(line: str) -> "dict[str, Any]":
    """One JSONL line → request dict; raises ValueError when malformed."""
    record = json.loads(line)
    if not isinstance(record, dict):
        raise ValueError(
            f"request must be a JSON object, got {type(record).__name__}"
        )
    return record


def _error_record(request_id: Any, message: str) -> "dict[str, Any]":
    record: "dict[str, Any]" = {"ok": False, "error": message}
    if request_id is not None:
        record["id"] = request_id
    return record


def _response(request_id: Any, outcome: QueryResult) -> "dict[str, Any]":
    record = outcome.to_dict()
    if request_id is not None:
        record = {"id": request_id, **record}
    return record


def run_batch(service: TimingService,
              lines: "Iterable[str]") -> "list[dict[str, Any]]":
    """Parse a JSONL request stream, run it as one coalesced batch.

    Returns response records in request order; parse failures become
    error records in place, without consuming a service query.
    """
    requests: "list[tuple[Any, Query | None, str | None]]" = []
    for lineno, line in enumerate(lines, start=1):
        text = line.strip()
        if not text:
            continue
        try:
            record = parse_request(text)
            requests.append((record.get("id"), Query.from_any(record), None))
        except Exception as exc:
            requests.append(
                (None, None, f"line {lineno}: {type(exc).__name__}: {exc}")
            )
    queries = [q for _, q, _ in requests if q is not None]
    with span("service.run_batch", requests=len(requests)):
        outcomes = iter(service.submit(queries))
    responses: "list[dict[str, Any]]" = []
    for request_id, query, error in requests:
        if query is None:
            responses.append(_error_record(request_id, error or "malformed"))
        else:
            responses.append(_response(request_id, next(outcomes)))
    return responses


def write_responses(responses: "Iterable[dict[str, Any]]",
                    stream: TextIO) -> int:
    """Emit response records as JSONL; returns how many were written."""
    count = 0
    for record in responses:
        stream.write(json.dumps(record, default=str) + "\n")
        count += 1
    return count


def serve(service: TimingService, in_stream: TextIO,
          out_stream: TextIO) -> int:
    """Answer requests line-by-line until EOF; returns queries served.

    Each response is flushed immediately, so a front-end driving the
    service through pipes sees every answer as soon as it is computed.
    Unlike :func:`run_batch` there is no cross-request coalescing —
    but the artifact cache still makes repeats cheap.
    """
    served = 0
    for line in in_stream:
        text = line.strip()
        if not text:
            continue
        try:
            record = parse_request(text)
            query = Query.from_any(record)
        except Exception as exc:
            response = _error_record(None, f"{type(exc).__name__}: {exc}")
        else:
            outcome = service.submit([query])[0]
            response = _response(record.get("id"), outcome)
        out_stream.write(json.dumps(response, default=str) + "\n")
        out_stream.flush()
        served += 1
    return served
