"""JSONL batch protocol: stream queries in, stream results out.

This is the wire format behind ``repro-sta batch`` and ``repro-sta
serve`` (see ``docs/service.md``).  One request per line::

    {"id": 1, "op": "sta", "design": "D1"}
    {"id": 2, "op": "pba_slacks", "design": "D1", "k": 32}
    {"id": 3, "op": "mgba_fit", "design": "D1", "solver": "pgd"}

and one response per request, same ``id``, in request order::

    {"id": 1, "v": 1, "op": "sta", "design": "D1", "ok": true,
     "cached": false, "seconds": 0.41, "request_id": "r712-000001",
     "result": {...}}

``"v"`` is :data:`PROTOCOL_VERSION`, stamped on every response record
— success, control, and error alike.  The verb set (queries *and* the
control verbs below) comes from :mod:`repro.service.registry`; this
layer never hard-codes an op name.

Every request is minted a process-unique ``request_id`` the moment it
is parsed; the ID is echoed in the response **and** stamped (via span
baggage) on every tracing span the request opens down through the
engine and solvers, so a trace is filterable per request.  Coalesced
duplicates in one batch share the ID of the request that computed.

Two *control verbs* are answered by the protocol layer itself, without
consuming a timing query:

* ``{"op": "stats"}`` — request/cache/latency statistics
  (:meth:`~repro.service.engine.TimingService.stats`);
* ``{"op": "health"}`` — a cheap liveness summary.

A malformed line or failed query produces an error record
(``"ok": false`` plus ``"error"``) instead of aborting the stream —
a batch file with one typo still computes the other N-1 queries.

``run_batch`` reads the whole input and submits it as **one** batch,
so duplicates coalesce and distinct designs shard across workers;
``serve`` answers line-by-line (flushing after each response) for
interactive front-ends that pipeline requests, and reports how many
error records it emitted so the CLI can exit non-zero.
"""

from __future__ import annotations

import json
import time
import traceback as traceback_mod
from dataclasses import dataclass, field
from typing import Any, Iterable, TextIO

from repro.obs.flight import default_flight_recorder
from repro.obs.trace import span
from repro.service.engine import (
    Query,
    QueryResult,
    TimingService,
    new_request_id,
    note_request,
)
from repro.service.registry import CONTROL_OPS, VERBS, verb

#: Version of the JSONL response schema, echoed as ``"v"`` on every
#: response record (success, control, and error alike) so clients can
#: detect protocol changes without sniffing field shapes.  Bump on any
#: backward-incompatible response change.
PROTOCOL_VERSION = 1


def parse_request(line: str) -> "dict[str, Any]":
    """One JSONL line → request dict; raises ValueError when malformed."""
    record = json.loads(line)
    if not isinstance(record, dict):
        raise ValueError(
            f"request must be a JSON object, got {type(record).__name__}"
        )
    return record


def _error_record(request_id: Any, message: str) -> "dict[str, Any]":
    record: "dict[str, Any]" = {
        "v": PROTOCOL_VERSION, "ok": False, "error": message,
    }
    if request_id is not None:
        record = {"id": request_id, **record}
    return record


def _response(request_id: Any, outcome: QueryResult) -> "dict[str, Any]":
    record = {"v": PROTOCOL_VERSION, **outcome.to_dict()}
    if request_id is not None:
        record = {"id": request_id, **record}
    return record


def _control_response(service: TimingService,
                      record: "dict[str, Any]") -> "dict[str, Any]":
    """Answer a control verb (``stats``/``health``/``metrics_export``).

    Control verbs never reach :meth:`TimingService._run`, so this is
    where their per-verb telemetry and flight-recorder request records
    come from (the same :func:`~repro.service.engine.note_request`
    choke point the query path uses).
    """
    op = record["op"]
    request_id = new_request_id()
    start = time.perf_counter()
    payload = getattr(service, verb(op).handler)()
    note_request(
        op=op, request_id=request_id,
        seconds=time.perf_counter() - start, ok=True,
    )
    response: "dict[str, Any]" = {
        "v": PROTOCOL_VERSION, "op": op, "ok": True,
        "request_id": request_id, "result": payload,
    }
    if record.get("id") is not None:
        response = {"id": record["id"], **response}
    return response


def run_batch(service: TimingService,
              lines: "Iterable[str]") -> "list[dict[str, Any]]":
    """Parse a JSONL request stream, run it as one coalesced batch.

    Returns response records in request order; parse failures become
    error records in place, without consuming a service query, and
    control verbs (``stats`` / ``health``) are answered *after* the
    batch computes — so a trailing ``stats`` line observes the cache
    traffic of the requests above it.
    """
    #: (kind, payload) per request line, in order.  Kinds:
    #: "query" -> (line id, Query, request_id); "control" -> record;
    #: "error" -> (line id, message).
    entries: "list[tuple[str, Any]]" = []
    for lineno, line in enumerate(lines, start=1):
        text = line.strip()
        if not text:
            continue
        try:
            record = parse_request(text)
            if record.get("op") in CONTROL_OPS:
                entries.append(("control", record))
            else:
                entries.append(("query", (
                    record.get("id"), Query.from_any(record),
                    new_request_id(),
                )))
        except Exception as exc:
            entries.append(("error", (
                None, f"line {lineno}: {type(exc).__name__}: {exc}"
            )))
    queries = [p[1] for kind, p in entries if kind == "query"]
    request_ids = [p[2] for kind, p in entries if kind == "query"]
    with span("service.run_batch", requests=len(entries)):
        outcomes = iter(service.submit(queries, request_ids=request_ids))
    responses: "list[dict[str, Any]]" = []
    for kind, payload in entries:
        if kind == "error":
            line_id, message = payload
            responses.append(_error_record(line_id, message))
        elif kind == "control":
            responses.append(_control_response(service, payload))
        else:
            line_id, _query, _rid = payload
            responses.append(_response(line_id, next(outcomes)))
    return responses


def write_responses(responses: "Iterable[dict[str, Any]]",
                    stream: TextIO) -> int:
    """Emit response records as JSONL; returns how many were written."""
    count = 0
    for record in responses:
        stream.write(json.dumps(record, default=str) + "\n")
        count += 1
    return count


@dataclass(frozen=True)
class ServeStats:
    """What one :func:`serve` session did.

    ``by_verb`` always carries one ``(op, served, errors)`` row per
    verb in the registry, in registry order — the row set is a
    projection of :data:`~repro.service.registry.VERBS`, so it can
    never drift from the ops the service dispatches (rows for verbs
    the session never saw are zero, not absent).
    """

    served: int = 0   #: responses written (errors included)
    errors: int = 0   #: error records among them
    by_verb: "tuple[tuple[str, int, int], ...]" = field(
        default_factory=lambda: tuple((v.op, 0, 0) for v in VERBS)
    )
    flight_dump: "str | None" = None  #: post-mortem path, when written
    slo_ok: "bool | None" = None      #: SLO verdict (None: no spec)


def serve(service: TimingService, in_stream: TextIO,
          out_stream: TextIO,
          flight_dump: "Any | None" = None) -> ServeStats:
    """Answer requests line-by-line until EOF.

    Each response is flushed immediately, so a front-end driving the
    service through pipes sees every answer as soon as it is computed.
    Unlike :func:`run_batch` there is no cross-request coalescing —
    but the artifact cache still makes repeats cheap.  Returns a
    :class:`ServeStats` so the CLI can exit non-zero when any request
    failed (malformed line or query error) while still having served
    the rest.

    ``flight_dump`` names the post-mortem file: whenever the session
    ends on the error path — any error record served, or an exception
    escaping the loop — the process flight recorder is dumped there,
    so every exit-2 comes with its recent history.  ``None`` disables
    the dump.
    """
    served = 0
    errors = 0
    counts = {v.op: [0, 0] for v in VERBS}

    def _dump() -> "str | None":
        if flight_dump is None:
            return None
        try:
            default_flight_recorder().save_json(flight_dump)
        except OSError:
            return None  # the dump must never mask the real failure
        return str(flight_dump)

    try:
        for line in in_stream:
            text = line.strip()
            if not text:
                continue
            record: "dict[str, Any] | None" = None
            try:
                record = parse_request(text)
                if record.get("op") in CONTROL_OPS:
                    response = _control_response(service, record)
                else:
                    query = Query.from_any(record)
                    outcome = service.submit(
                        [query], request_ids=[new_request_id()]
                    )[0]
                    response = _response(record.get("id"), outcome)
            except Exception as exc:
                # Echo the request id when the line parsed far enough
                # to have one, so clients can correlate the failure.
                line_id = (
                    record.get("id") if isinstance(record, dict) else None
                )
                response = _error_record(
                    line_id, f"{type(exc).__name__}: {exc}"
                )
                default_flight_recorder().record_error(
                    kind=type(exc).__name__, message=str(exc),
                    traceback=traceback_mod.format_exc(),
                )
            failed = not response.get("ok")
            if failed:
                errors += 1
            op = response.get("op")
            if op in counts:
                counts[op][0] += 1
                if failed:
                    counts[op][1] += 1
            out_stream.write(json.dumps(response, default=str) + "\n")
            out_stream.flush()
            served += 1
    except BaseException as exc:
        # A crash of the serve loop itself is the flight recorder's
        # prime use case: capture it, dump, and re-raise unchanged.
        default_flight_recorder().record_error(
            kind=type(exc).__name__, message=str(exc),
            traceback=traceback_mod.format_exc(),
        )
        _dump()
        raise
    dump_path = _dump() if errors else None
    slo = service.slo_status()
    return ServeStats(
        served=served, errors=errors,
        by_verb=tuple(
            (v.op, counts[v.op][0], counts[v.op][1]) for v in VERBS
        ),
        flight_dump=dump_path,
        slo_ok=None if slo is None else bool(slo["ok"]),
    )
