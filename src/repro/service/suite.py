"""Design-suite fan-out: evaluate many designs on many workers.

Moved here from ``repro.parallel.fanout`` (which remains as a
deprecated alias for one release): suite evaluation is a *service*
operation — it is the coarsest batch axis the
:class:`~repro.service.engine.TimingService` exposes as the
``evaluate`` query, and it belongs next to the other batched query
machinery rather than inside the executor substrate.

The D1-D10 suite is the coarsest parallel axis in the system — each
design's build + STA + (optionally) mGBA fit is completely independent
of every other design's, and a single evaluation is seconds of pure
Python, so the process backend pays off even at suite scale.  Workers
receive only the *design name* (a few bytes to pickle) and rebuild the
design from its deterministic spec inside the child, which keeps the
fan-out cheap no matter how large ``REPRO_SUITE_SCALE`` grows.

Everything here is a module-level function precisely so the process
backend can pickle it (see ``docs/parallelism.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING

from repro.obs.metrics import counter
from repro.obs.trace import span
from repro.parallel.executor import Executor, default_executor

if TYPE_CHECKING:  # pragma: no cover
    from repro.context import RunContext


@dataclass(frozen=True)
class DesignReport:
    """One design's evaluation record (picklable, deterministic fields).

    ``seconds`` is the only field allowed to differ between serial and
    parallel runs; everything else is pure function of the design spec
    and the seeds, which is what the parallel-equivalence checks (tests
    and the ``bench-smoke`` CI gate) compare.
    """

    name: str
    gates: int
    flops: int
    nets: int
    endpoints: int
    period: float
    wns: float
    tns: float
    violations: int
    #: mGBA fit results; NaN / 0 when the evaluation ran STA only.
    mse_gba: float = float("nan")
    mse_mgba: float = float("nan")
    pass_ratio_gba: float = 0.0
    pass_ratio_mgba: float = 0.0
    solver_iterations: int = 0
    seconds: float = 0.0

    def comparable(self) -> tuple:
        """Every deterministic field, for serial-vs-parallel equality.

        NaN placeholders (STA-only runs) are mapped to None so the
        tuple compares equal to itself — ``nan != nan`` would otherwise
        make every STA-only report "diverge" from its identical twin.
        """
        def scrub(value: float) -> "float | None":
            return None if value != value else value

        return (
            self.name, self.gates, self.flops, self.nets, self.endpoints,
            self.period, self.wns, self.tns, self.violations,
            scrub(self.mse_gba), scrub(self.mse_mgba),
            self.pass_ratio_gba, self.pass_ratio_mgba,
            self.solver_iterations,
        )

    def to_dict(self) -> dict:
        """Plain-dict view (the JSONL batch protocol's result payload)."""
        from dataclasses import asdict

        return asdict(self)


def evaluate_design(name: str, mgba: bool = False, k_per_endpoint: int = 20,
                    solver: str = "scg+rs", seed: int = 0) -> DesignReport:
    """Build one suite design, run STA (and optionally the mGBA fit).

    Deterministic given (name, knobs): the design generator and every
    solver are seeded, so two runs — in one process or many — produce
    identical reports up to the ``seconds`` field.
    """
    from repro.designs.suite import build_design
    from repro.timing.sta import STAEngine

    start = time.perf_counter()
    design = build_design(name)
    engine = STAEngine(
        design.netlist, design.constraints,
        design.placement, design.sta_config,
    )
    engine.update_timing()
    stats = engine.netlist.stats()
    summary = engine.summary()
    period = min(c.period for c in engine.constraints.clocks.values())
    fields = {
        "mse_gba": float("nan"), "mse_mgba": float("nan"),
        "pass_ratio_gba": 0.0, "pass_ratio_mgba": 0.0,
        "solver_iterations": 0,
    }
    if mgba:
        from repro.mgba.flow import MGBAConfig, MGBAFlow

        result = MGBAFlow(MGBAConfig(
            k_per_endpoint=k_per_endpoint, solver=solver, seed=seed,
        )).run(engine)
        fields = {
            "mse_gba": result.mse_gba,
            "mse_mgba": result.mse_mgba,
            "pass_ratio_gba": result.pass_ratio_gba,
            "pass_ratio_mgba": result.pass_ratio_mgba,
            "solver_iterations": result.solution.iterations,
        }
    return DesignReport(
        name=name,
        gates=stats["gates"],
        flops=stats["flops"],
        nets=stats["nets"],
        endpoints=summary.endpoints,
        period=period,
        wns=summary.wns,
        tns=summary.tns,
        violations=summary.violations,
        seconds=time.perf_counter() - start,
        **fields,
    )


def evaluate_suite(names: "list[str] | None" = None, *,
                   mgba: bool = False,
                   k_per_endpoint: int = 20,
                   solver: str = "scg+rs",
                   seed: int = 0,
                   executor: "Executor | None" = None,
                   chunk_size: "int | None" = 1,
                   context: "RunContext | None" = None) \
        -> "list[DesignReport]":
    """Evaluate suite designs across workers; reports in input order.

    Chunking defaults to one design per chunk — design costs are very
    uneven (D1 is ~10x cheaper than D10), so fine-grained distribution
    beats the executor's default one-chunk-per-worker split here.

    A :class:`~repro.context.RunContext` supplies the executor (and
    wins over the environment); the explicit ``executor`` argument
    wins over both.
    """
    from repro.designs.suite import design_names

    chosen = list(names) if names is not None else design_names()
    if executor is None:
        executor = (
            context.executor() if context is not None
            else default_executor()
        )
    job = partial(
        evaluate_design, mgba=mgba, k_per_endpoint=k_per_endpoint,
        solver=solver, seed=seed,
    )
    with span(
        "suite.evaluate",
        designs=len(chosen), mgba=mgba,
        backend=executor.backend, workers=executor.workers,
    ):
        reports = executor.map(
            job, chosen, chunk_size=chunk_size, label="suite.evaluate",
        )
    counter("suite.designs_evaluated").inc(len(reports))
    return reports
