"""The mGBA service layer: cached artifacts + batched timing queries.

Three pieces compose here (see ``docs/service.md``):

* :mod:`repro.service.keys` — content addresses for every expensive
  artifact (STA state, PBA golden slacks, fitted ``x*`` vectors);
* :mod:`repro.service.store` — the two-tier cache (in-process LRU over
  an on-disk store under ``.repro_cache/``);
* :mod:`repro.service.engine` — the :class:`TimingService` that
  answers coalesced, sharded batches of ``sta`` / ``pba_slacks`` /
  ``mgba_fit`` / ``evaluate`` queries;
* :mod:`repro.service.batch` — the JSONL protocol behind
  ``repro-sta batch`` and ``repro-sta serve``;
* :mod:`repro.service.suite` — design-suite fan-out (moved from
  ``repro.parallel.fanout``, which remains as a deprecated alias).
"""

from repro.service.batch import (
    CONTROL_OPS,
    ServeStats,
    run_batch,
    serve,
    write_responses,
)
from repro.service.engine import (
    Query,
    QueryResult,
    ServiceError,
    TimingService,
    new_request_id,
)
from repro.service.keys import DesignKey, design_key, netlist_hash
from repro.service.store import (
    ARTIFACT_CLASSES,
    SCHEMA_VERSION,
    ArtifactCache,
    DiskStore,
    LRUCache,
)
from repro.service.suite import DesignReport, evaluate_design, evaluate_suite

__all__ = [
    "ARTIFACT_CLASSES",
    "CONTROL_OPS",
    "ArtifactCache",
    "DesignKey",
    "DesignReport",
    "DiskStore",
    "LRUCache",
    "Query",
    "QueryResult",
    "SCHEMA_VERSION",
    "ServeStats",
    "ServiceError",
    "TimingService",
    "design_key",
    "evaluate_design",
    "evaluate_suite",
    "netlist_hash",
    "new_request_id",
    "run_batch",
    "serve",
    "write_responses",
]
