"""The mGBA service layer: cached artifacts + batched timing queries.

Three pieces compose here (see ``docs/service.md``):

* :mod:`repro.service.keys` — content addresses for every expensive
  artifact (STA state, PBA golden slacks, fitted ``x*`` vectors);
* :mod:`repro.service.store` — the two-tier cache (in-process LRU over
  an on-disk store under ``.repro_cache/``);
* :mod:`repro.service.registry` — the declarative verb table every
  dispatcher (service, JSONL layer, CLI, docs) derives from;
* :mod:`repro.service.engine` — the :class:`TimingService` that
  answers coalesced, sharded batches of registry verbs (``sta``,
  ``pba_slacks``, ``mgba_fit``, ``evaluate``, ``explain``,
  ``scenario_sweep``, ``what_if``, ``min_period``);
* :mod:`repro.service.batch` — the versioned JSONL protocol behind
  ``repro-sta batch`` and ``repro-sta serve``;
* :mod:`repro.service.suite` — design-suite fan-out (moved from
  ``repro.parallel.fanout``, which remains as a deprecated alias).
"""

from repro.service.batch import (
    PROTOCOL_VERSION,
    ServeStats,
    run_batch,
    serve,
    write_responses,
)
from repro.service.engine import (
    Query,
    QueryResult,
    ServiceError,
    TimingService,
    new_request_id,
)
from repro.service.keys import DesignKey, design_key, netlist_hash
from repro.service.registry import (
    CONTROL_OPS,
    QUERY_OPS,
    VERBS,
    Verb,
    verb,
    verb_table_markdown,
)
from repro.service.store import (
    ARTIFACT_CLASSES,
    SCHEMA_VERSION,
    ArtifactCache,
    DiskStore,
    LRUCache,
)
from repro.service.suite import DesignReport, evaluate_design, evaluate_suite

__all__ = [
    "ARTIFACT_CLASSES",
    "CONTROL_OPS",
    "ArtifactCache",
    "DesignKey",
    "DesignReport",
    "DiskStore",
    "LRUCache",
    "PROTOCOL_VERSION",
    "QUERY_OPS",
    "Query",
    "QueryResult",
    "SCHEMA_VERSION",
    "ServeStats",
    "ServiceError",
    "TimingService",
    "VERBS",
    "Verb",
    "design_key",
    "verb",
    "verb_table_markdown",
    "evaluate_design",
    "evaluate_suite",
    "netlist_hash",
    "new_request_id",
    "run_batch",
    "serve",
    "write_responses",
]
