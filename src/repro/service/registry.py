"""The declarative service verb registry: one table, four consumers.

Every operation the timing service speaks — query verbs that take a
design and return a frozen result, and control verbs that introspect
the process — is declared **once** here as a :class:`Verb` row.  The
dispatcher (``TimingService._run``), the JSONL batch/serve layer, the
CLI, and the documentation all derive from this table:

* ``QUERY_OPS`` / ``CONTROL_OPS`` are projections of ``VERBS`` —
  :class:`~repro.service.engine.Query` validates against the former,
  ``run_batch``/``serve`` route control records by the latter;
* ``verb(op).handler`` names the bound method to call, so adding a
  verb is one registry row plus one handler — no if/elif chain to
  thread through four files;
* :func:`verb_table_markdown` renders the table that ``docs/api.md``
  and ``docs/service.md`` embed verbatim (a tier-1 test diffs the docs
  against this function, so the table cannot drift).

The registry is deliberately import-light: it knows verb *metadata*
only, never engine or result types, so ``engine``, ``batch``, the CLI,
and the docs test can all import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Verb:
    """One service operation's complete declarative description.

    ``handler`` is the method name on :class:`TimingService` that
    serves it — ``_q_*`` handlers take a ``Query`` and return
    ``(result, cached)``; control handlers take nothing and return a
    plain dict.  ``request_fields`` are the optional JSONL request
    fields beyond ``op``/``design``/``id``; ``cache_key`` names the
    :mod:`repro.service.keys` function (or the reason there is none);
    ``artifact_class`` is the :data:`~repro.service.store.ARTIFACT_CLASSES`
    bucket cached results live in ("" = uncached); ``result_schema``
    summarizes the response's ``result`` payload.
    """

    op: str
    kind: str  # "query" | "control"
    handler: str
    summary: str
    request_fields: "tuple[str, ...]" = ()
    cache_key: str = ""
    artifact_class: str = ""
    result_schema: str = ""


#: Every verb the service speaks, in pipeline order (queries first).
VERBS: "tuple[Verb, ...]" = (
    Verb(
        op="sta", kind="query", handler="_q_sta",
        summary="GBA timing of one design",
        request_fields=(),
        cache_key="design_key(...).token",
        artifact_class="sta",
        result_schema="STAResult: wns/tns/violations/endpoints/slacks",
    ),
    Verb(
        op="pba_slacks", kind="query", handler="_q_pba",
        summary="Golden PBA endpoint slacks",
        request_fields=("k",),
        cache_key="pba_slacks_key(design, k, recalc_slew, variation)",
        artifact_class="pba",
        result_schema="GoldenSlacksResult: k/slacks",
    ),
    Verb(
        op="mgba_fit", kind="query", handler="_q_fit",
        summary="mGBA correction fit",
        request_fields=(
            "solver", "seed", "epsilon", "penalty", "k_per_endpoint",
            "max_paths", "recalc_slew",
        ),
        cache_key="fit_key(design, fit_fingerprint)",
        artifact_class="fit",
        result_schema="FitResult: weights/mse/pass ratios/slack vectors",
    ),
    Verb(
        op="evaluate", kind="query", handler="_q_evaluate",
        summary="Suite evaluation fan-out",
        request_fields=("designs", "mgba"),
        cache_key="(uncached: internally fanned out)",
        artifact_class="",
        result_schema="list[DesignReport]",
    ),
    Verb(
        op="explain", kind="query", handler="_q_explain",
        summary="Slack provenance attribution",
        request_fields=("endpoint", "top_k"),
        cache_key="explain_key(design, endpoint, top_k)",
        artifact_class="explain",
        result_schema="ExplainResult: per-arc pessimism attribution",
    ),
    Verb(
        op="scenario_sweep", kind="query", handler="_q_scenarios",
        summary="Multi-corner signoff matrix",
        request_fields=("corners",),
        cache_key="scenario_key(design, corners)",
        artifact_class="scenarios",
        result_schema="ScenarioSweepResult: setup/hold/merged/dominant",
    ),
    Verb(
        op="what_if", kind="query", handler="_q_what_if",
        summary="Batched ECO candidate evaluation",
        request_fields=("candidates",),
        cache_key="what_if_key(design, candidate) per candidate",
        artifact_class="what_if",
        result_schema="WhatIfResult: per-candidate deltas/touched/eco",
    ),
    Verb(
        op="min_period", kind="query", handler="_q_min_period",
        summary="Binary-search the min feasible clock period",
        request_fields=("clock", "tolerance", "max_iter", "corner"),
        cache_key="min_period_key(design, clock, tolerance, "
                  "max_iter, corner)",
        artifact_class="min_period",
        result_schema="MinPeriodResult: period/bracket/iterations",
    ),
    Verb(
        op="stats", kind="control", handler="stats",
        summary="Request/cache/latency statistics",
        request_fields=(),
        cache_key="(control: live process state)",
        artifact_class="",
        result_schema="dict: queries/errors/cache/latency percentiles",
    ),
    Verb(
        op="health", kind="control", handler="health",
        summary="Cheap liveness summary plus SLO status",
        request_fields=(),
        cache_key="(control: live process state)",
        artifact_class="",
        result_schema="dict: status/uptime/designs/engines/slo",
    ),
    Verb(
        op="metrics_export", kind="control", handler="metrics_export",
        summary="OpenMetrics exposition of the metrics registry",
        request_fields=(),
        cache_key="(control: live process state)",
        artifact_class="",
        result_schema="dict: format/content_type/text (OpenMetrics)",
    ),
)

VERBS_BY_OP: "dict[str, Verb]" = {v.op: v for v in VERBS}

#: Query operations, in pipeline order (projection of the registry).
QUERY_OPS: "tuple[str, ...]" = tuple(
    v.op for v in VERBS if v.kind == "query"
)

#: Control operations answered at the protocol layer.
CONTROL_OPS: "tuple[str, ...]" = tuple(
    v.op for v in VERBS if v.kind == "control"
)


def verb(op: str) -> Verb:
    """The registry row for one op (raises ``KeyError`` on unknowns)."""
    return VERBS_BY_OP[op]


def verb_table_markdown() -> str:
    """The docs' verb table, rendered from the registry.

    ``docs/api.md`` and ``docs/service.md`` embed this output verbatim
    between ``<!-- verb-table:begin -->`` / ``<!-- verb-table:end -->``
    markers; ``tests/service/test_registry.py`` regenerates it and
    diffs, so the docs can never describe a verb the service does not
    dispatch (or miss one it does).
    """
    lines = [
        "| op | kind | request fields | cache key | result |",
        "|---|---|---|---|---|",
    ]
    for row in VERBS:
        fields = ", ".join(
            f"`{name}`" for name in row.request_fields
        ) or "—"
        lines.append(
            f"| `{row.op}` | {row.kind} | {fields} "
            f"| `{row.cache_key}` | {row.result_schema} |"
        )
    return "\n".join(lines)
