"""Two-tier artifact cache: in-process LRU over an on-disk store.

The memory tier answers repeated queries inside one process at dict
speed; the disk tier (default ``.repro_cache/``) survives process
restarts, so a cold CLI invocation can reuse artifacts a previous run
paid for.  Both tiers are *content-addressed* (see
:mod:`repro.service.keys`): entries are immutable once written, which
makes the whole design embarrassingly safe — a key either maps to the
one true value or misses.

Disk layout (versioned schema)::

    .repro_cache/
      v1/
        meta.json            {"schema": 1}
        sta/<key>.pkl        one pickle per artifact
        pba/<key>.pkl
        solve/<key>.pkl
        fit/<key>.pkl
        layout/<key>.pkl     levelized-layout structural arrays

Bumping :data:`SCHEMA_VERSION` retires every old artifact at once: a
store initialized at version N wipes any ``v*`` directory of a
different version.  Within a version, eviction is LRU by file mtime
(reads touch their file) down to ``max_bytes``.  Corrupt or truncated
entries — a killed writer, a partial disk — are treated as misses and
deleted; writes go through a temp file + atomic rename so readers in
other processes never observe a half-written artifact.

Every lookup increments ``cache.hit`` / ``cache.miss`` (plus the
per-class ``cache.hit.<cls>`` twins), which is what the cold-vs-warm
CI gate and the acceptance tests assert on.  The service-telemetry
namespace mirrors them — ``service.cache.hit`` / ``service.cache.miss``
counters, ``service.cache.eviction``, and the ``service.cache.bytes``
/ ``service.cache.memory_entries`` gauges — so one metrics snapshot
answers both "did the cache work" and "how big is it right now".
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
from collections import OrderedDict
from pathlib import Path
from typing import Any

from repro.obs.metrics import counter, gauge
from repro.utils.log import get_logger

logger = get_logger("service.store")

#: Version of the on-disk artifact schema.  Bump when pickled payload
#: shapes change incompatibly; old versions are wiped, not migrated.
SCHEMA_VERSION = 1

#: Recognized artifact classes, in pipeline order.  ``layout`` holds
#: the vector kernel's persisted :class:`LevelizedLayout` structural
#: arrays (see :func:`repro.timing.kernel.set_layout_disk_store`).
ARTIFACT_CLASSES = (
    "sta", "scenarios", "pba", "solve", "fit", "explain",
    "what_if", "min_period", "layout",
)


class LRUCache:
    """A tiny in-process LRU map (the memory tier)."""

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Any:
        """The cached value, or None; a hit refreshes recency."""
        try:
            self._entries.move_to_end(key)
        except KeyError:
            return None
        return self._entries[key]

    def put(self, key: str, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def pop(self, key: str) -> None:
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()


class DiskStore:
    """Pickle-per-artifact store under a versioned root directory."""

    def __init__(self, root: "str | Path", *,
                 max_bytes: int = 256 * 1024 * 1024):
        self.root = Path(root)
        self.max_bytes = max_bytes
        self._dir = self.root / f"v{SCHEMA_VERSION}"
        self._initialized = False

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def _ensure_layout(self) -> None:
        """Create the versioned directory; retire other schema versions."""
        if self._initialized:
            return
        if self.root.is_dir():
            for child in self.root.iterdir():
                if (
                    child.is_dir() and child.name.startswith("v")
                    and child != self._dir
                ):
                    logger.info("retiring cache schema %s", child.name)
                    shutil.rmtree(child, ignore_errors=True)
        self._dir.mkdir(parents=True, exist_ok=True)
        meta = self._dir / "meta.json"
        if not meta.exists():
            meta.write_text(json.dumps({"schema": SCHEMA_VERSION}) + "\n")
        self._initialized = True

    def _path(self, cls: str, key: str) -> Path:
        if cls not in ARTIFACT_CLASSES:
            raise ValueError(
                f"unknown artifact class {cls!r}; "
                f"choose from {ARTIFACT_CLASSES}"
            )
        return self._dir / cls / f"{key}.pkl"

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def get(self, cls: str, key: str) -> Any:
        """Load one artifact; corrupt entries count as misses."""
        self._ensure_layout()
        path = self._path(cls, key)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception as exc:  # truncated/corrupt pickle
            logger.warning("dropping corrupt cache entry %s: %s", path, exc)
            path.unlink(missing_ok=True)
            return None
        try:
            os.utime(path)  # LRU recency for the evictor
        except OSError:
            pass
        return value

    def put(self, cls: str, key: str, value: Any) -> None:
        """Atomically persist one artifact, then evict if over budget."""
        self._ensure_layout()
        path = self._path(cls, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        self.evict()
        gauge("service.cache.bytes").set(self.total_bytes())

    def invalidate(self, cls: "str | None" = None,
                   key: "str | None" = None) -> int:
        """Remove entries; returns how many files were deleted.

        No arguments clears every class; ``cls`` alone clears one
        class; ``cls`` + ``key`` removes a single entry.
        """
        self._ensure_layout()
        if cls is not None and key is not None:
            path = self._path(cls, key)
            existed = path.exists()
            path.unlink(missing_ok=True)
            return int(existed)
        removed = 0
        classes = (cls,) if cls is not None else ARTIFACT_CLASSES
        for name in classes:
            directory = self._dir / name
            if not directory.is_dir():
                continue
            for entry in directory.glob("*.pkl"):
                entry.unlink(missing_ok=True)
                removed += 1
        return removed

    def entries(self) -> "list[Path]":
        """Every artifact file currently on disk."""
        self._ensure_layout()
        found: "list[Path]" = []
        for name in ARTIFACT_CLASSES:
            directory = self._dir / name
            if directory.is_dir():
                found.extend(directory.glob("*.pkl"))
        return found

    def total_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.entries() if p.exists())

    def evict(self) -> int:
        """Drop least-recently-used entries until under ``max_bytes``."""
        entries = []
        for path in self.entries():
            try:
                stat = path.stat()
            except FileNotFoundError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return 0
        evicted = 0
        for _, size, path in sorted(entries):
            if total <= self.max_bytes:
                break
            path.unlink(missing_ok=True)
            total -= size
            evicted += 1
        if evicted:
            counter("cache.evictions").inc(evicted)
            counter("service.cache.eviction").inc(evicted)
        return evicted


class ArtifactCache:
    """The two tiers composed: memory in front, disk behind.

    A memory hit never touches disk; a disk hit is promoted into the
    memory tier; a double miss returns None and the caller computes
    and :meth:`put`\\ s.  Either tier is optional — ``memory_entries=0``
    disables the LRU, ``disk=None`` makes the cache process-local.
    """

    def __init__(self, *, memory_entries: int = 256,
                 disk: "DiskStore | None" = None):
        self.memory = LRUCache(memory_entries) if memory_entries else None
        self.disk = disk

    @classmethod
    def from_context(cls, context) -> "ArtifactCache | None":
        """The cache a :class:`RunContext` asks for (None when off)."""
        if not context.cache:
            return None
        disk = (
            DiskStore(context.cache_dir,
                      max_bytes=context.cache_disk_bytes)
            if context.cache_dir else None
        )
        return cls(memory_entries=context.cache_memory_entries, disk=disk)

    @staticmethod
    def _memory_key(cls_name: str, key: str) -> str:
        return f"{cls_name}:{key}"

    def get(self, cls: str, key: str) -> Any:
        """Tiered lookup; records ``cache.hit`` / ``cache.miss``."""
        value = None
        if self.memory is not None:
            value = self.memory.get(self._memory_key(cls, key))
        if value is None and self.disk is not None:
            value = self.disk.get(cls, key)
            if value is not None and self.memory is not None:
                self.memory.put(self._memory_key(cls, key), value)
        if value is None:
            counter("cache.miss").inc()
            counter(f"cache.miss.{cls}").inc()
            counter("service.cache.miss").inc()
        else:
            counter("cache.hit").inc()
            counter(f"cache.hit.{cls}").inc()
            counter("service.cache.hit").inc()
        return value

    def put(self, cls: str, key: str, value: Any) -> None:
        if self.memory is not None:
            self.memory.put(self._memory_key(cls, key), value)
            gauge("service.cache.memory_entries").set(len(self.memory))
        if self.disk is not None:
            self.disk.put(cls, key, value)

    def invalidate(self, cls: "str | None" = None,
                   key: "str | None" = None) -> None:
        """Drop entries from both tiers (see :meth:`DiskStore.invalidate`)."""
        if self.memory is not None:
            if cls is not None and key is not None:
                self.memory.pop(self._memory_key(cls, key))
            else:
                self.memory.clear()
        if self.disk is not None:
            self.disk.invalidate(cls, key)
