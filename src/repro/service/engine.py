"""The persistent timing service: batched queries over cached artifacts.

A :class:`TimingService` owns registered designs, their live
:class:`~repro.timing.sta.STAEngine` instances (the in-process tier of
the "timing graph + STA state" artifact class), and an
:class:`~repro.service.store.ArtifactCache` for everything expensive:

* ``sta`` — GBA slack vectors keyed by the design's content address;
* ``scenarios`` — multi-corner sweep matrices keyed by the design's
  content address plus the (name, delay scale) corner sequence;
* ``pba`` — golden PBA endpoint slacks keyed additionally by (k',
  slew-recalc, variation);
* ``solve`` — fitted ``x*`` vectors keyed by (A-matrix fingerprint,
  solver config);
* ``fit`` — whole-flow fit results keyed by (design, fit knobs);
* ``what_if`` — scored ECO candidates keyed by (design, canonical
  edit list) — per candidate, so any batch hits on every candidate an
  earlier request already scored;
* ``min_period`` — min-period searches keyed by (design, clock,
  tolerance, iteration cap, corner);
* ``layout`` — the vector kernel's persisted levelized-layout
  structural arrays, keyed by (netlist hash, boundary, GBA depths) —
  wired into :mod:`repro.timing.kernel` at service construction so a
  serve restart hydrates instead of re-flattening known designs.

Dispatch is declarative: every verb (query and control) is one row in
:mod:`repro.service.registry`, which also feeds the JSONL layer, the
CLI, and the docs' verb table.

Queries arrive as :class:`Query` values (or the JSONL dicts of
``docs/service.md``), are **coalesced** (duplicate queries in one
batch compute once), and cache-miss groups are **sharded** across the
:mod:`repro.parallel` executors — one design per worker, the same
shard axis as ``evaluate_suite``, so results are bit-identical at any
worker count.

Invalidation is key *rotation*, not deletion: a
:class:`~repro.netlist.edit.ChangeRecord` fed to :meth:`apply_change`
updates the live engine incrementally (``repro.timing.incremental``)
and recomputes the design's content address, so every dependent lookup
misses and recomputes — while artifacts of the *previous* content stay
on disk and hit again if an optimizer reverts the edit.  A stale fit
can never be served because nothing maps the new key to old bytes
(property-tested in ``tests/service``).
"""

from __future__ import annotations

import itertools
import os
import time
import traceback as traceback_mod
import warnings
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Any, Callable, Sequence

from repro import api
from repro.context import RunContext
from repro.designs.generator import Design
from repro.errors import ReproError
from repro.netlist.edit import ChangeRecord
from repro.obs.flight import default_flight_recorder
from repro.obs.metrics import (
    counter,
    default_registry,
    gauge,
    histogram,
    labeled,
    latency_buckets,
)
from repro.obs.slo import SLOSpec, evaluate_slo
from repro.obs.trace import baggage, span
from repro.opt.whatif import (
    CandidateResult,
    MinPeriodResult,
    WhatIfResult,
    evaluate_what_if,
    min_period_on_engine,
    normalize_candidate,
)
from repro.service import keys as keymod
from repro.service.registry import QUERY_OPS, VERBS, verb
from repro.service.store import ArtifactCache
from repro.service.suite import DesignReport
from repro.timing.sta import STAEngine

#: mgba_fit parameters that override the service context per query.
_FIT_PARAMS = (
    "solver", "seed", "epsilon", "penalty", "k_per_endpoint",
    "max_paths", "recalc_slew",
)


class ServiceError(ReproError):
    """A malformed or unanswerable service query."""


_request_counter = itertools.count(1)


def new_request_id() -> str:
    """A process-unique request ID (``r<pid>-<seq>``).

    Monotonic per process and pid-qualified, so IDs minted inside
    process-backend shard workers never collide with the parent's —
    and a trace filtered on one ID isolates exactly one request's
    span subtree.
    """
    return f"r{os.getpid()}-{next(_request_counter):06d}"


def note_request(op: str, request_id: str, seconds: float,
                 ok: bool = True, cached: "bool | None" = None,
                 design: str = "", key_prefix: str = "",
                 error: "str | None" = None) -> None:
    """The single per-verb telemetry choke point.

    Every answered request — query verbs through
    :meth:`TimingService._run`, control verbs at the protocol layer —
    passes through here, which keeps three surfaces in lockstep with
    the verb registry: the labeled ``service.requests`` /
    ``service.request.errors`` counters and the per-verb
    ``service.request.latency{verb=...}`` histogram (scraped via
    :mod:`repro.obs.expo`), and the flight recorder's request ring
    (the SLO evaluation window).  No verb can ship without telemetry
    because dispatch itself is registry-driven and lands here.
    """
    counter(labeled("service.requests", verb=op)).inc()
    if not ok:
        counter(labeled("service.request.errors", verb=op)).inc()
    histogram(
        labeled("service.request.latency", verb=op), latency_buckets()
    ).observe(seconds)
    default_flight_recorder().record_request(
        verb=op, request_id=request_id, design=design,
        key_prefix=key_prefix, cached=cached, ok=ok,
        seconds=seconds, error=error,
    )


def _hashable(value: Any) -> Any:
    """Recursively freeze JSON-ish values so queries are hashable."""
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(
            sorted((k, _hashable(v)) for k, v in value.items())
        )
    return value


@dataclass(frozen=True)
class Query:
    """One service query: an operation, a design, and its parameters.

    Frozen and hashable, so a batch can be coalesced with a dict;
    ``params`` is a sorted tuple of (name, value) pairs.
    """

    op: str
    design: str = ""
    params: "tuple[tuple[str, Any], ...]" = ()

    def __post_init__(self):
        if self.op not in QUERY_OPS:
            raise ServiceError(
                f"unknown query op {self.op!r}; choose from {QUERY_OPS}"
            )

    @classmethod
    def from_any(cls, raw: "Query | dict") -> "Query":
        """Normalize a dict (one parsed JSONL record) into a query."""
        if isinstance(raw, Query):
            return raw
        if not isinstance(raw, dict):
            raise ServiceError(
                f"query must be a Query or dict, got {type(raw).__name__}"
            )
        payload = dict(raw)
        payload.pop("id", None)
        op = payload.pop("op", None)
        if not op:
            raise ServiceError("query record is missing 'op'")
        design = payload.pop("design", "") or ""
        params = tuple(sorted(
            (name, _hashable(value)) for name, value in payload.items()
        ))
        return cls(op=str(op), design=str(design), params=params)

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default


@dataclass
class QueryResult:
    """One query's outcome: the result object plus cache provenance."""

    query: Query
    ok: bool
    cached: bool = False
    seconds: float = 0.0
    result: Any = None
    error: "str | None" = None
    request_id: "str | None" = None

    def to_dict(self) -> "dict[str, Any]":
        """JSONL response payload (see ``docs/service.md``)."""
        record: "dict[str, Any]" = {
            "op": self.query.op,
            "design": self.query.design,
            "ok": self.ok,
            "cached": self.cached,
            "seconds": round(self.seconds, 6),
        }
        if self.request_id is not None:
            record["request_id"] = self.request_id
        if self.ok:
            if isinstance(self.result, (list, tuple)):
                record["result"] = [
                    r.to_dict() if hasattr(r, "to_dict") else r
                    for r in self.result
                ]
            elif hasattr(self.result, "to_dict"):
                record["result"] = self.result.to_dict()
            else:
                record["result"] = self.result
        else:
            record["error"] = self.error
        return record


class _SolveCache:
    """The flow-side hook that reuses ``x*`` across identical problems."""

    def __init__(self, cache: ArtifactCache):
        self.cache = cache

    def _key(self, problem, config) -> str:
        return keymod.solve_key(
            keymod.problem_fingerprint(problem),
            config.solver, config.seed,
        )

    def lookup(self, problem, config):
        return self.cache.get("solve", self._key(problem, config))

    def store(self, problem, config, solution) -> None:
        self.cache.put("solve", self._key(problem, config), solution)


def _run_query_group(
    job: "tuple[RunContext, str, tuple[Query, ...], tuple[str | None, ...]]",
) -> "list[QueryResult]":
    """Worker body of the cache-miss shard (module-level: picklable).

    Builds a fresh service in the worker — sharing the *disk* cache
    tier with the parent through the context's ``cache_dir`` — and
    runs one design's queries serially.  A fresh service per group is
    what makes the thread backend safe: no two workers ever touch the
    same engine.  Request IDs ride along so worker-side spans and
    responses keep the caller's identity.
    """
    context, _design, queries, request_ids = job
    service = TimingService(context=context.replace(workers=1))
    return [
        service._run(query, request_id)
        for query, request_id in zip(queries, request_ids)
    ]


class TimingService:
    """Persistent, cached, batched timing queries over many designs."""

    #: Live engines kept in memory at once (LRU beyond this).
    max_engines = 8

    def __init__(self, context: "RunContext | None" = None,
                 cache: "ArtifactCache | None" = None,
                 slo_spec: "SLOSpec | None" = None):
        self.context = context or RunContext.from_env()
        self.cache = (
            cache if cache is not None
            else ArtifactCache.from_context(self.context)
        )
        # Layout persistence rides the same disk tier: engines built
        # by this service (and by the per-design workers, which
        # construct their own TimingService) hydrate cold levelized
        # layouts from the store's ``layout/`` class instead of
        # re-flattening known designs.
        if self.cache is not None and self.cache.disk is not None:
            from repro.timing import kernel as kernel_mod

            kernel_mod.set_layout_disk_store(self.cache.disk)
        #: Declarative objectives the ``health`` verb evaluates over
        #: the flight window (``repro-sta serve --slo FILE``).
        self.slo_spec = slo_spec
        self._bundles: "dict[str, Design]" = {}
        self._factories: "dict[str, Callable[[], Design]]" = {}
        self._engines: "OrderedDict[str, STAEngine]" = OrderedDict()
        self._keys: "dict[str, keymod.DesignKey]" = {}
        #: Names resolvable by rebuild in a worker process (suite/fig2).
        self._by_name: "set[str]" = set()
        self._started = time.monotonic()
        self._register_verb_telemetry()

    @staticmethod
    def _register_verb_telemetry() -> None:
        """Pre-create every verb's labeled instruments from the registry.

        Registration (not first use) is what puts a verb on the
        OpenMetrics exposition, so a scrape of a fresh service already
        shows one ``service.request.latency{verb=...}`` series per
        registered op — zeroed, never absent.  Drift-tested in
        ``tests/service/test_observability.py``: a verb added to the
        registry ships with telemetry by construction.
        """
        registry = default_registry()
        registry.histogram("service.request.latency", latency_buckets())
        for row in VERBS:
            registry.counter(labeled("service.requests", verb=row.op))
            registry.counter(
                labeled("service.request.errors", verb=row.op)
            )
            registry.histogram(
                labeled("service.request.latency", verb=row.op),
                latency_buckets(),
            )

    # ------------------------------------------------------------------
    # Design registry
    # ------------------------------------------------------------------
    def register_design(self, name: str,
                        design: "Design | None" = None,
                        factory: "Callable[[], Design] | None" = None) \
            -> None:
        """Register a design bundle or zero-arg factory under ``name``.

        Unregistered names are resolved through
        :func:`repro.api.load_design` on first use (suite names and
        ``"fig2"``), which is also the only resolution path available
        to process-backend shard workers.
        """
        if (design is None) == (factory is None):
            raise ServiceError(
                "register_design takes exactly one of design= or factory="
            )
        if design is not None:
            self._bundles[name] = design
        else:
            self._factories[name] = factory  # type: ignore[assignment]
        self._engines.pop(name, None)
        self._keys.pop(name, None)

    def design(self, name: str) -> Design:
        """The (memoized) design bundle behind a registered name."""
        bundle = self._bundles.get(name)
        if bundle is None:
            factory = self._factories.get(name)
            if factory is not None:
                bundle = factory()
            else:
                bundle = api.load_design(name)
                self._by_name.add(name)
            self._bundles[name] = bundle
        return bundle

    def engine(self, name: str) -> STAEngine:
        """The live engine for a design (in-process STA-state tier)."""
        engine = self._engines.get(name)
        if engine is None:
            engine = api.make_engine(self.design(name), self.context)
            self._engines[name] = engine
        self._engines.move_to_end(name)
        while len(self._engines) > self.max_engines:
            self._engines.popitem(last=False)
        return engine

    def design_key(self, name: str) -> keymod.DesignKey:
        """The design's current content address (memoized until edited)."""
        key = self._keys.get(name)
        if key is None:
            bundle = self.design(name)
            key = keymod.design_key(
                bundle.netlist, bundle.constraints,
                getattr(bundle, "placement", None), bundle.sta_config,
            )
            self._keys[name] = key
        return key

    def apply_change(self, change, design: "str | None" = None) -> None:
        """Mirror a netlist edit: incremental engine update + key rotation.

        The signature matches ``STAEngine.apply_change(change)`` — the
        :class:`~repro.netlist.edit.ChangeRecord` leads, ``design``
        names which registered design it edits.  The live engine
        re-propagates only the edit's cone
        (:mod:`repro.timing.incremental`); the design's content address
        rotates, so exactly the artifacts derived from the old content
        stop being served — other designs, and this design's *previous*
        content (hit again after a revert), are untouched.

        The pre-unification form ``apply_change(name, change)`` still
        works behind a :class:`DeprecationWarning` for one release.
        """
        if isinstance(change, str) and isinstance(design, ChangeRecord):
            warnings.warn(
                "TimingService.apply_change(name, change) is deprecated; "
                "call apply_change(change, design=name) — the ChangeRecord "
                "now leads, matching STAEngine.apply_change",
                DeprecationWarning,
                stacklevel=2,
            )
            change, design = design, change
        if not isinstance(change, ChangeRecord):
            raise ServiceError(
                f"apply_change takes a ChangeRecord, got "
                f"{type(change).__name__}"
            )
        if design is None:
            raise ServiceError("apply_change needs design= (the design name)")
        engine = self._engines.get(design)
        if engine is not None:
            engine.apply_change(change)
        self._keys.pop(design, None)
        counter("service.invalidations").inc()

    # ------------------------------------------------------------------
    # Introspection (the `stats` / `health` JSONL verbs)
    # ------------------------------------------------------------------
    def health(self) -> "dict[str, Any]":
        """Cheap liveness summary — never touches an engine or the cache.

        When an SLO spec is installed the summary also carries the
        objectives evaluated over the flight-recorder request window
        (``slo`` is ``None`` otherwise), and ``status`` degrades to
        ``"slo_violation"`` so a bare health probe is enough to see
        the service out of objective.
        """
        slo = self.slo_status()
        status = "ok"
        if slo is not None and not slo["ok"]:
            status = "slo_violation"
        return {
            "status": status,
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "designs": len(set(self._bundles) | set(self._factories)),
            "engines_live": len(self._engines),
            "cache_enabled": self.cache is not None,
            "slo": slo,
        }

    def slo_status(self) -> "dict[str, Any] | None":
        """The SLO report over the flight window (None without a spec)."""
        if self.slo_spec is None:
            return None
        report = evaluate_slo(
            self.slo_spec, default_flight_recorder().requests()
        )
        return report.to_dict()

    def metrics_export(self) -> "dict[str, Any]":
        """The registry rendered as OpenMetrics text (control verb)."""
        from repro.obs.expo import CONTENT_TYPE, render_openmetrics

        return {
            "format": "openmetrics",
            "content_type": CONTENT_TYPE,
            "text": render_openmetrics(default_registry()),
        }

    def stats(self) -> "dict[str, Any]":
        """Request/cache/latency statistics of this process.

        Counter values come from the process-wide metrics registry, so
        a service sharing a process with other instrumented work sees
        the combined totals; the latency percentiles are the
        ``service.request.latency`` histogram rendered inline.
        """
        registry = default_registry()
        latency = registry.histogram("service.request.latency")
        cache_stats: "dict[str, Any]" = {
            "hit": registry.counter("cache.hit").value,
            "miss": registry.counter("cache.miss").value,
            "evictions": registry.counter("cache.evictions").value,
        }
        if self.cache is not None and self.cache.memory is not None:
            cache_stats["memory_entries"] = len(self.cache.memory)
        if self.cache is not None and self.cache.disk is not None:
            cache_stats["disk_bytes"] = self.cache.disk.total_bytes()
        # One row per registered verb, driven by the registry itself —
        # the row set cannot drift from the ops the service dispatches.
        verbs = {
            row.op: {
                "requests": registry.counter(
                    labeled("service.requests", verb=row.op)
                ).value,
                "errors": registry.counter(
                    labeled("service.request.errors", verb=row.op)
                ).value,
            }
            for row in VERBS
        }
        return {
            **self.health(),
            "queries": registry.counter("service.queries").value,
            "verbs": verbs,
            "coalesced": registry.counter("service.coalesced").value,
            "errors": registry.counter("service.request.errors").value,
            "invalidations": registry.counter("service.invalidations").value,
            "inflight": registry.gauge("service.inflight").value or 0,
            "design_names": sorted(
                set(self._bundles) | set(self._factories)
            ),
            "cache": cache_stats,
            "latency": {
                "count": latency.count,
                "mean": latency.mean,
                "p50": latency.percentile(50),
                "p95": latency.percentile(95),
                "p99": latency.percentile(99),
                "max": latency.maximum if latency.count else 0.0,
            },
        }

    # ------------------------------------------------------------------
    # Individual queries (raise on failure)
    # ------------------------------------------------------------------
    def sta(self, name: str) -> api.STAResult:
        """GBA timing of one design (cached by content address)."""
        result, _ = self._q_sta(Query(op="sta", design=name))
        return result

    def pba_slacks(self, name: str, k: "int | None" = None) \
            -> api.GoldenSlacksResult:
        """Golden PBA endpoint slacks (cached by content + k')."""
        params = (("k", k),) if k is not None else ()
        result, _ = self._q_pba(
            Query(op="pba_slacks", design=name, params=params)
        )
        return result

    def mgba_fit(self, name: str, **overrides: Any) -> api.FitResult:
        """The mGBA fit (cached whole-flow; ``x*`` reused by fingerprint)."""
        params = tuple(sorted(overrides.items()))
        result, _ = self._q_fit(
            Query(op="mgba_fit", design=name, params=params)
        )
        return result

    def explain(self, name: str,
                endpoint: "int | str | None" = None,
                top_k: "int | None" = None) -> api.ExplainResult:
        """Slack provenance record (cached by content + explain scope)."""
        params: "tuple[tuple[str, Any], ...]" = ()
        if endpoint is not None:
            params += (("endpoint", endpoint),)
        if top_k is not None:
            params += (("top_k", top_k),)
        result, _ = self._q_explain(
            Query(op="explain", design=name, params=tuple(sorted(params)))
        )
        return result

    def scenario_sweep(self, name: str,
                       corners: "Sequence[tuple[str, float]] | None" = None) \
            -> api.ScenarioSweepResult:
        """Multi-corner sweep matrix (cached by content + corner set)."""
        params: "tuple[tuple[str, Any], ...]" = ()
        if corners is not None:
            params = (("corners", tuple(
                (str(n), float(s)) for n, s in corners
            )),)
        result, _ = self._q_scenarios(
            Query(op="scenario_sweep", design=name, params=params)
        )
        return result

    def evaluate(self, names: "list[str] | None" = None,
                 mgba: bool = False) -> "list[DesignReport]":
        """Suite evaluation (uncached; internally fanned out)."""
        params: "tuple[tuple[str, Any], ...]" = (("mgba", mgba),)
        if names is not None:
            params += (("designs", tuple(names)),)
        result, _ = self._q_evaluate(
            Query(op="evaluate", params=params)
        )
        return list(result)

    def what_if(self, name: str, candidates: "Sequence[Any]") \
            -> WhatIfResult:
        """Score K candidate edit-lists (cached per candidate by content)."""
        params = (("candidates", _hashable(list(candidates))),)
        result, _ = self._q_what_if(
            Query(op="what_if", design=name, params=params)
        )
        return result

    def min_period(self, name: str,
                   clock: "str | None" = None,
                   tolerance: float = 1.0,
                   max_iter: int = 64,
                   corner: "tuple[str, float] | None" = None) \
            -> MinPeriodResult:
        """Min feasible clock period (cached by content + search contract)."""
        params: "tuple[tuple[str, Any], ...]" = (
            ("tolerance", float(tolerance)), ("max_iter", int(max_iter)),
        )
        if clock is not None:
            params += (("clock", clock),)
        if corner is not None:
            params += (("corner", (str(corner[0]), float(corner[1]))),)
        result, _ = self._q_min_period(
            Query(op="min_period", design=name, params=tuple(sorted(params)))
        )
        return result

    # ------------------------------------------------------------------
    # Query handlers: (result, cached)
    # ------------------------------------------------------------------
    def _cache_get(self, cls: str, key: str) -> Any:
        if self.cache is None:
            return None
        return self.cache.get(cls, key)

    def _cache_put(self, cls: str, key: str, value: Any) -> None:
        if self.cache is not None:
            self.cache.put(cls, key, value)

    def _q_sta(self, query: Query) -> "tuple[api.STAResult, bool]":
        key = self.design_key(query.design).token
        hit = self._cache_get("sta", key)
        if hit is not None:
            return replace(hit, design=query.design), True
        result = api.sta_result_from_engine(self.engine(query.design))
        result = replace(result, design=query.design)
        self._cache_put("sta", key, result)
        return result, False

    def _q_pba(self, query: Query) -> "tuple[api.GoldenSlacksResult, bool]":
        k = query.param("k")
        k = int(k) if k is not None else self.context.pba_k
        key = keymod.pba_slacks_key(
            self.design_key(query.design), k,
            self.context.recalc_slew, "table",
        )
        hit = self._cache_get("pba", key)
        if hit is not None:
            return replace(hit, design=query.design), True
        result = api.golden_slacks_from_engine(
            self.engine(query.design), self.context, k
        )
        result = replace(result, design=query.design)
        self._cache_put("pba", key, result)
        return result, False

    def _q_fit(self, query: Query) -> "tuple[api.FitResult, bool]":
        overrides = {
            name: value for name, value in query.params
            if name in _FIT_PARAMS
        }
        ctx = self.context.replace(**overrides)
        key = keymod.fit_key(
            self.design_key(query.design), ctx.fit_fingerprint()
        )
        hit = self._cache_get("fit", key)
        if hit is not None:
            return replace(hit, design=query.design), True
        solve_cache = (
            _SolveCache(self.cache) if self.cache is not None else None
        )
        result = api.fit(
            self.engine(query.design), ctx,
            apply=False, solve_cache=solve_cache,
        )
        result = replace(result, design=query.design)
        self._cache_put("fit", key, result)
        return result, False

    def _q_explain(self, query: Query) -> "tuple[api.ExplainResult, bool]":
        endpoint = query.param("endpoint")
        top_k = query.param("top_k")
        top_k = int(top_k) if top_k is not None else 10
        key = keymod.explain_key(
            self.design_key(query.design), endpoint, top_k
        )
        hit = self._cache_get("explain", key)
        if hit is not None:
            return replace(hit, design=query.design), True
        result = api.explain_result_from_engine(
            self.engine(query.design), endpoint=endpoint, top_k=top_k
        )
        result = replace(result, design=query.design)
        self._cache_put("explain", key, result)
        return result, False

    def _q_scenarios(self, query: Query) \
            -> "tuple[api.ScenarioSweepResult, bool]":
        raw = query.param("corners")
        if raw is not None:
            pairs = [(str(n), float(s)) for n, s in raw]
        else:
            from repro.timing.corners import DEFAULT_CORNERS

            pairs = [(c.name, float(c.delay_scale)) for c in DEFAULT_CORNERS]
        key = keymod.scenario_key(self.design_key(query.design), pairs)
        hit = self._cache_get("scenarios", key)
        if hit is not None:
            return replace(hit, design=query.design), True
        result = api.run_scenarios(
            self.design(query.design), corners=pairs, context=self.context
        )
        result = replace(result, design=query.design)
        self._cache_put("scenarios", key, result)
        return result, False

    def _q_evaluate(self, query: Query) \
            -> "tuple[tuple[DesignReport, ...], bool]":
        names = query.param("designs")
        reports = api.evaluate(
            list(names) if names is not None else None,
            mgba=bool(query.param("mgba", False)),
            context=self.context,
        )
        return tuple(reports), False

    def _q_what_if(self, query: Query) -> "tuple[WhatIfResult, bool]":
        raw = query.param("candidates")
        if raw is None or isinstance(raw, str) or not len(raw):
            raise ServiceError(
                "what_if query needs a non-empty 'candidates' list "
                "(each entry an edit-spec list or ECO text)"
            )
        normalized = [normalize_candidate(c) for c in raw]
        dkey = self.design_key(query.design)
        scored: "dict[Any, CandidateResult]" = {}
        misses: "list[Any]" = []
        for candidate in normalized:
            if candidate in scored or candidate in misses:
                continue
            hit = self._cache_get(
                "what_if", keymod.what_if_key(dkey, candidate)
            )
            if hit is not None:
                scored[candidate] = hit
            else:
                misses.append(candidate)
        if misses:
            if self.context.executor().is_serial:
                # Apply/revert on the live engine: content is restored
                # exactly, so the design key never rotates.
                partial = evaluate_what_if(
                    query.design, misses, self.context,
                    engine=self.engine(query.design),
                )
            else:
                source: "str | Design" = (
                    query.design if self._rebuildable(query.design)
                    else self.design(query.design)
                )
                partial = evaluate_what_if(source, misses, self.context)
            baseline = (
                partial.wns_baseline, partial.tns_baseline,
                partial.violations_baseline,
            )
            for candidate, outcome in zip(misses, partial.candidates):
                scored[candidate] = outcome
                self._cache_put(
                    "what_if", keymod.what_if_key(dkey, candidate), outcome
                )
        else:
            first = scored[normalized[0]]
            baseline = (
                first.wns_before, first.tns_before,
                first.violations_before,
            )
        return WhatIfResult(
            design=query.design,
            wns_baseline=baseline[0],
            tns_baseline=baseline[1],
            violations_baseline=baseline[2],
            candidates=tuple(scored[c] for c in normalized),
        ), not misses

    def _q_min_period(self, query: Query) -> "tuple[MinPeriodResult, bool]":
        clock = query.param("clock")
        tolerance = float(query.param("tolerance", 1.0))
        max_iter = int(query.param("max_iter", 64))
        corner = query.param("corner")
        corner_label = ""
        if corner is not None:
            corner_label = f"{corner[0]}:{float(corner[1])!r}"
        key = keymod.min_period_key(
            self.design_key(query.design), clock, tolerance, max_iter,
            corner_label,
        )
        hit = self._cache_get("min_period", key)
        if hit is not None:
            return replace(hit, design=query.design), True
        if corner is None:
            engine = self.engine(query.design)
        else:
            # An ephemeral corner engine: scaled delays, same content
            # (min_period never mutates the design, so sharing the
            # bundle's netlist/constraints is safe).
            bundle = self.design(query.design)
            config = replace(
                bundle.sta_config,
                delay_scale=bundle.sta_config.delay_scale * float(corner[1]),
            )
            engine = STAEngine(
                bundle.netlist, bundle.constraints,
                getattr(bundle, "placement", None), config,
            )
            engine.update_timing()
        result = min_period_on_engine(
            engine, clock=clock, tolerance=tolerance, max_iter=max_iter,
            corner=corner_label,
        )
        result = replace(result, design=query.design)
        self._cache_put("min_period", key, result)
        return result, False

    def _run(self, query: Query,
             request_id: "str | None" = None) -> QueryResult:
        """Execute one query, capturing failures into the result.

        Every query runs under a ``service.query`` span tagged with a
        ``request_id`` (minted here when the batch layer did not pass
        one), and the ID rides thread-local baggage so each span the
        engine, PBA, and solvers open below is filterable per request.
        The wall time lands in the ``service.request.latency``
        histogram, and ``service.inflight`` tracks concurrency.
        """
        if request_id is None:
            request_id = new_request_id()
        start = time.perf_counter()
        counter("service.queries").inc()
        inflight = gauge("service.inflight")
        inflight.add(1)
        ok = False
        cached_flag: "bool | None" = None
        error_text: "str | None" = None
        try:
            with span(
                "service.query", op=query.op, design=query.design,
                request_id=request_id,
            ) as query_span, baggage(request_id=request_id):
                try:
                    handler = getattr(self, verb(query.op).handler)
                    result, cached = handler(query)
                except Exception as exc:
                    query_span.set(error_type=type(exc).__name__)
                    counter("service.request.errors").inc()
                    error_text = f"{type(exc).__name__}: {exc}"
                    default_flight_recorder().record_error(
                        kind=type(exc).__name__, message=str(exc),
                        traceback=traceback_mod.format_exc(),
                        request_id=request_id,
                    )
                    return QueryResult(
                        query=query, ok=False,
                        seconds=time.perf_counter() - start,
                        error=error_text,
                        request_id=request_id,
                    )
                query_span.set(cached=cached)
            ok, cached_flag = True, cached
            return QueryResult(
                query=query, ok=True, cached=cached,
                seconds=time.perf_counter() - start, result=result,
                request_id=request_id,
            )
        finally:
            inflight.add(-1)
            seconds = time.perf_counter() - start
            histogram(
                "service.request.latency", latency_buckets()
            ).observe(seconds)
            # The design key is read from the memo only — telemetry
            # must never trigger a key computation the request itself
            # did not.
            key = self._keys.get(query.design)
            note_request(
                op=query.op, request_id=request_id, seconds=seconds,
                ok=ok, cached=cached_flag, design=query.design,
                key_prefix=key.token[:12] if key is not None else "",
                error=error_text,
            )

    # ------------------------------------------------------------------
    # Batched execution
    # ------------------------------------------------------------------
    def submit(self, queries: "Sequence[Query | dict]",
               request_ids: "Sequence[str] | None" = None) \
            -> "list[QueryResult]":
        """Run a batch: coalesce duplicates, shard misses, keep order.

        Duplicate queries in one batch compute once and share the
        result object; distinct designs fan out one-design-per-worker
        through the context's executor (names a worker can rebuild —
        suite designs and ``fig2`` — only; bundle-registered designs
        run in process).  Results come back in input order.

        ``request_ids`` (aligned with ``queries``) lets the JSONL
        layer thread externally minted per-request IDs through to the
        spans and responses; coalesced duplicates share the ID of the
        request that computed.  Missing IDs are minted per unique
        query.
        """
        normalized = [Query.from_any(q) for q in queries]
        if request_ids is not None and len(request_ids) != len(normalized):
            raise ServiceError(
                f"request_ids length {len(request_ids)} != "
                f"queries length {len(normalized)}"
            )
        unique: "OrderedDict[Query, QueryResult | None]" = OrderedDict()
        ids: "dict[Query, str]" = {}
        for index, query in enumerate(normalized):
            unique.setdefault(query, None)
            if request_ids is not None:
                ids.setdefault(query, request_ids[index])
        coalesced = len(normalized) - len(unique)
        if coalesced:
            counter("service.coalesced").inc(coalesced)
        with span(
            "service.batch", queries=len(normalized),
            unique=len(unique), coalesced=coalesced,
        ):
            self._execute(unique, ids)
        return [unique[query] for query in normalized]  # type: ignore

    def _execute(self, unique: "OrderedDict[Query, QueryResult | None]",
                 ids: "dict[Query, str] | None" = None) -> None:
        ids = ids or {}
        executor = self.context.executor()
        pending = list(unique)
        shardable: "OrderedDict[str, list[Query]]" = OrderedDict()
        inline: "list[Query]" = []
        for query in pending:
            if (
                not executor.is_serial
                and query.op != "evaluate"
                and query.design
                and self._rebuildable(query.design)
            ):
                shardable.setdefault(query.design, []).append(query)
            else:
                inline.append(query)
        if len(shardable) > 1:
            jobs = [
                (
                    self.context, design, tuple(queries),
                    tuple(ids.get(q) for q in queries),
                )
                for design, queries in shardable.items()
            ]
            groups = executor.map(
                _run_query_group, jobs, chunk_size=1,
                label="service.batch",
            )
            for results in groups:
                for outcome in results:
                    unique[outcome.query] = outcome
        else:
            inline = pending
        for query in inline:
            if unique.get(query) is None:
                unique[query] = self._run(query, ids.get(query))

    def _rebuildable(self, name: str) -> bool:
        """Can a worker process reconstruct this design from its name?"""
        if name in self._bundles and name not in self._by_name:
            return False
        if name in self._factories:
            return False
        from repro.designs.suite import DESIGN_SPECS

        return name in DESIGN_SPECS or name in ("fig2", "paper_fig2")
