"""Path records shared by the PBA engine and the mGBA problem builder."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TimingPath:
    """One launch-to-endpoint data path.

    Structure (filled by enumeration)
    ---------------------------------
    endpoint / launch:
        Timing-node ids of the capture pin and the launch pin (a flop Q
        output or an input port).
    edges:
        Edge ids from launch to endpoint, in path order.
    endpoint_name / launch_name:
        Printable pin names.

    Analysis (filled by :class:`~repro.pba.engine.PBAEngine`)
    ---------------------------------------------------------
    gba_slack / pba_slack:
        Slack of this path under graph-based and path-based derating.
        ``gba_slack <= pba_slack`` always (property-tested).
    depth:
        PBA cell depth (number of combinational data cells on the path).
    distance:
        AOCV bounding-box half-perimeter of the path (nm).
    crpr_credit:
        Exact launch/capture common-clock-path credit (PBA only).
    contributions:
        ``(gate, base_delay, gba_derate)`` per data cell, in path order —
        the raw material of one row of the mGBA matrix ``A``.
    """

    endpoint: int
    launch: int
    edges: tuple[int, ...]
    endpoint_name: str = ""
    launch_name: str = ""
    analyzed: bool = False
    is_false: bool = False
    gba_arrival: float = 0.0
    gba_slack: float = 0.0
    pba_slack: float = 0.0
    depth: int = 0
    distance: float = 0.0
    crpr_credit: float = 0.0
    contributions: list[tuple[str, float, float]] = field(default_factory=list)

    @property
    def pessimism(self) -> float:
        """GBA pessimism on this path: ``pba_slack - gba_slack`` (>= 0)."""
        return self.pba_slack - self.gba_slack

    def gates(self) -> list[str]:
        """Data cells on the path, in path order."""
        return [gate for gate, _, _ in self.contributions]

    def key(self) -> tuple[int, tuple[int, ...]]:
        """Hashable identity of the path (endpoint + edge sequence)."""
        return (self.endpoint, self.edges)

    def __len__(self) -> int:
        return len(self.edges)
