"""Exact k-worst path enumeration.

For each endpoint the enumerator walks *backward* from the capture pin,
growing path suffixes best-first.  The priority of a partial suffix
rooted at node ``v`` with accumulated suffix delay ``S`` is::

    arrival_late(v) + S

Because ``arrival_late(v)`` is the exact longest-prefix delay into
``v``, this bound is tight: suffixes pop off the heap in exact
non-increasing order of the complete-path arrival they extend to, so the
first k completed paths *are* the k worst — no heuristic slop.  This is
the classic "path peeling" trick that makes per-endpoint top-k' path
selection (§3.2 of the paper) cheap: nothing is enumerated beyond what
is returned.

A path is complete when the walk reaches a launch boundary: a flop Q
output (whose arrival already contains the late clock insertion and
CK->Q) or an input port (whose arrival is the SDC input delay).
"""

from __future__ import annotations

import heapq
import itertools
from functools import partial

from repro.timing.graph import NodeKind, TimingGraph
from repro.timing.propagation import TimingState, effective_late
from repro.parallel.executor import Executor, default_executor
from repro.pba.paths import TimingPath


def _is_launch_boundary(graph: TimingGraph, node_id: int) -> bool:
    node = graph.node(node_id)
    if node.kind is NodeKind.PORT_IN:
        return True
    if node.kind is NodeKind.PIN_OUT and node.ref.gate is not None:
        cell = graph.netlist.cell_of(node.ref.gate)
        return cell.is_sequential
    return not graph.in_edges[node_id]


def worst_paths_to_endpoint(
    graph: TimingGraph,
    state: TimingState,
    endpoint: int,
    k: int,
    min_arrival: float = float("-inf"),
) -> list[TimingPath]:
    """The k worst data paths into one endpoint, worst first.

    ``min_arrival`` prunes the enumeration: paths whose total arrival
    falls below it can never be returned, so the walk stops as soon as
    the best remaining suffix drops under the bound (used to enumerate
    "violating paths only").
    """
    results: list[TimingPath] = []
    # Tie-breaker: *newest first* (LIFO).  Equal-priority plateaus are
    # common — reconvergent fanin through arcs with identical delays —
    # and FIFO tie-breaking explores such a plateau breadth-first,
    # which can pop exponentially many partial suffixes before the
    # first complete path.  LIFO makes ties depth-first, so every
    # completion costs ~path-length pops and the enumeration stays
    # O(k * L) even on tie-heavy designs.  The returned order is still
    # exact (ties are interchangeable by definition).
    counter = itertools.count(0, -1)
    heap: list[tuple[float, int, int, tuple[int, ...]]] = []
    heapq.heappush(
        heap, (-float(state.arrival_late[endpoint]), next(counter), endpoint, ())
    )
    while heap and len(results) < k:
        neg_priority, _, node_id, suffix = heapq.heappop(heap)
        priority = -neg_priority
        if priority < min_arrival:
            break
        if _is_launch_boundary(graph, node_id):
            results.append(TimingPath(
                endpoint=endpoint,
                launch=node_id,
                edges=suffix,
                endpoint_name=str(graph.node(endpoint).ref),
                launch_name=str(graph.node(node_id).ref),
                gba_arrival=priority,
            ))
            continue
        suffix_delay = priority - float(state.arrival_late[node_id])
        for edge_id in graph.in_edges[node_id]:
            edge = graph.edge(edge_id)
            if graph.node(edge.src).is_clock_tree:
                continue  # never peel into the clock network
            new_delay = suffix_delay + effective_late(state, edge)
            bound = float(state.arrival_late[edge.src]) + new_delay
            if bound < min_arrival:
                continue
            heapq.heappush(
                heap,
                (-bound, next(counter), edge.src, (edge_id,) + suffix),
            )
    return results


def _endpoint_paths(graph: TimingGraph, state: TimingState, k: int,
                    endpoint: int) -> list[TimingPath]:
    """Worker body of the sharded enumeration (module-level: picklable)."""
    return worst_paths_to_endpoint(graph, state, endpoint, k)


def enumerate_worst_paths(
    graph: TimingGraph,
    state: TimingState,
    k_per_endpoint: int,
    endpoints: "list[int] | None" = None,
    max_total: int | None = None,
    executor: "Executor | None" = None,
) -> list[TimingPath]:
    """Per-endpoint top-k enumeration over (a subset of) endpoints.

    This is the paper's second path-selection scheme: sorting only the
    paths that end at each endpoint, k' at a time, instead of globally.
    ``max_total`` caps the result (the paper uses m' <= 5e6).

    Endpoints are independent by construction (§3.2), so with a
    parallel ``executor`` (default: the ``REPRO_WORKERS``-configured
    one) they are sharded across workers; per-endpoint results are
    merged back in endpoint order, so the returned list — including the
    ``max_total`` truncation point — is bit-identical to the serial
    walk.  The serial path keeps its early stop once the cap is hit.
    """
    chosen = endpoints if endpoints is not None else graph.endpoint_nodes()
    if executor is None:
        executor = default_executor()
    if executor.is_serial or len(chosen) <= 1:
        paths: list[TimingPath] = []
        for endpoint in chosen:
            paths.extend(
                worst_paths_to_endpoint(graph, state, endpoint,
                                        k_per_endpoint)
            )
            if max_total is not None and len(paths) >= max_total:
                return paths[:max_total]
        return paths
    per_endpoint = executor.map(
        partial(_endpoint_paths, graph, state, k_per_endpoint),
        chosen,
        label="pba.enumerate",
    )
    merged: list[TimingPath] = []
    for batch in per_endpoint:
        merged.extend(batch)
        if max_total is not None and len(merged) >= max_total:
            return merged[:max_total]
    return merged


def count_paths_to_endpoint(graph: TimingGraph, endpoint: int,
                            limit: int = 10**9) -> int:
    """Number of distinct data paths into an endpoint (DP, capped).

    Used by tests and by the DESIGN.md-style design reports; the count
    grows exponentially with reconvergence, hence the cap.
    """
    # Iterative post-order DFS: the recursive formulation recursed once
    # per topological predecessor and blew the interpreter stack on deep
    # chains (>~1k levels).  A node stays on the explicit stack until
    # every non-clock predecessor is memoized, then folds their counts
    # in fanin order with the same capped early break as before.
    memo: dict[int, int] = {}
    stack: list[int] = [endpoint]
    while stack:
        node_id = stack[-1]
        if node_id in memo:
            stack.pop()
            continue
        if _is_launch_boundary(graph, node_id):
            memo[node_id] = 1
            stack.pop()
            continue
        pending: list[int] = []
        for edge_id in graph.in_edges[node_id]:
            edge = graph.edge(edge_id)
            if graph.node(edge.src).is_clock_tree:
                continue
            if edge.src not in memo:
                pending.append(edge.src)
        if pending:
            stack.extend(reversed(pending))
            continue
        total = 0
        for edge_id in graph.in_edges[node_id]:
            edge = graph.edge(edge_id)
            if graph.node(edge.src).is_clock_tree:
                continue
            total += memo[edge.src]
            if total >= limit:
                break
        memo[node_id] = min(total, limit)
        stack.pop()
    return memo[endpoint]
