"""Path-based analysis engine — the golden reference for mGBA fitting.

PBA re-times an enumerated path with *path-specific* information GBA
threw away:

* **depth** — the number of cells on *this* path (GBA used the worst
  depth of each gate individually);
* **distance** — the bounding box of *this* path (GBA used the whole
  design's);
* **CRPR** — the exact launch/capture common-clock-path credit (GBA
  used zero);
* **slew** (optional, ``recalc_slew=True``) — slews re-propagated along
  the path itself instead of GBA's worst-fanin slew, removing the
  "worst slew propagation" pessimism the paper lists among the features
  prior AOCV-only work left aside.

All corrections are one-sided, so ``pba_slack >= gba_slack`` holds for
every path (property-tested) — PBA only ever removes pessimism.

By default base arc delays come from the GBA propagation (paper model:
"the delays of gates are constant"; only derating is path-specific);
slew recalculation is the documented extension beyond that model.
"""

from __future__ import annotations

from functools import partial

from repro.errors import TimingError
from repro.netlist.core import PinRef
from repro.obs.metrics import counter
from repro.obs.trace import span
from repro.parallel.executor import Executor, default_executor
from repro.timing.graph import EdgeKind
from repro.timing.propagation import EdgeDomain, classify_edge, effective_late
from repro.timing.slack import setup_required
from repro.timing.sta import STAEngine
from repro.pba.paths import TimingPath

#: TimingPath fields written by :meth:`PBAEngine.analyze_path` — what a
#: process-backend worker must ship back into the caller's path objects.
_ANALYSIS_FIELDS = (
    "analyzed", "is_false", "gba_arrival", "gba_slack", "pba_slack",
    "depth", "distance", "crpr_credit", "contributions",
)


def _endpoint_slack_job(pba: "PBAEngine", k: int, endpoint: int) -> float:
    """Worker body of the endpoint-slack fan-out (module-level: picklable).

    Runs strictly serially inside the worker — the outer shard is the
    parallel axis; nesting pools under it would only thrash.
    """
    return pba.golden_endpoint_slack(endpoint, k)


class PBAEngine:
    """Computes golden per-path slacks on top of a (clean) GBA engine.

    The engine must carry no mGBA weights: the fitted correction is
    defined relative to the original GBA derates, so feeding an already
    corrected engine in would fold the fix in twice.
    """

    def __init__(self, sta: STAEngine, recalc_slew: bool = False,
                 variation: str = "table"):
        if sta.weights:
            raise TimingError(
                "PBAEngine requires a clean GBA engine (no mGBA weights); "
                "call clear_gate_weights() first"
            )
        if variation not in ("table", "rss"):
            raise TimingError(
                f"variation must be 'table' or 'rss', got {variation!r}"
            )
        sta.ensure_timing()
        self.sta = sta
        self.recalc_slew = recalc_slew
        #: Variation model for the golden path delay:
        #: ``"table"`` — the paper's model: one AOCV factor at
        #: (path depth, path distance) scales every data cell;
        #: ``"rss"`` — SSTA-lite: per-stage sigmas (derived from the
        #: table's depth-1 corner) accumulate as root-sum-square, the
        #: statistically correct combination.  RSS and the table agree
        #: on balanced paths (both follow 1/sqrt(N) cancellation) but
        #: RSS grants *less* credit when one slow stage dominates — on
        #: such paths the "golden" can sit below GBA, i.e. pessimism
        #: can be negative, and the mGBA fit absorbs that too (weights
        #: above 1).  The one-sided gba<=pba invariant holds only for
        #: ``"table"``.
        self.variation = variation
        from repro.timing.slack import endpoint_clock_map

        self._clock_map = endpoint_clock_map(sta.graph, sta.constraints)

    # ------------------------------------------------------------------
    # Per-path ingredients
    # ------------------------------------------------------------------
    def path_depth(self, path: TimingPath) -> int:
        """PBA cell depth: combinational data cells on the path."""
        graph = self.sta.graph
        depth = 0
        for edge_id in path.edges:
            edge = graph.edge(edge_id)
            if classify_edge(graph, edge) is EdgeDomain.DATA_CELL:
                depth += 1
        return depth

    def path_distance(self, path: TimingPath) -> float:
        """AOCV distance: bbox half-perimeter of the path's anchors (nm)."""
        placement = self.sta.placement
        if placement is None:
            return 0.0
        graph = self.sta.graph
        anchors: list[str] = []
        seen: set[str] = set()
        for node_id in self._path_nodes(path):
            ref = graph.node(node_id).ref
            name = ref.gate if ref.gate is not None else ref.pin
            if name not in seen and placement.has(name):
                seen.add(name)
                anchors.append(name)
        if not anchors:
            return 0.0
        return placement.bbox_half_perimeter(anchors)

    def _path_nodes(self, path: TimingPath) -> list[int]:
        graph = self.sta.graph
        nodes = [path.launch]
        for edge_id in path.edges:
            nodes.append(graph.edge(edge_id).dst)
        return nodes

    def launch_ck_node(self, path: TimingPath) -> int | None:
        """The launching flop's CK node (None for port-launched paths)."""
        graph = self.sta.graph
        launch = graph.node(path.launch)
        if launch.ref.gate is None:
            return None
        cell = graph.netlist.cell_of(launch.ref.gate)
        clock_pin = cell.clock_pin
        if clock_pin is None:
            return None
        return graph.node_of.get(PinRef(launch.ref.gate, clock_pin.name))

    def _path_base_delays(self, path: TimingPath) -> "list[float]":
        """Per-edge *base* delays seen along this specific path.

        Default mode returns the GBA delay-calc results (worst-fanin
        slews).  With ``recalc_slew`` the slew is re-propagated along
        the path itself, so every arc sees its true path slew — always
        <= the worst slew, hence always <= the GBA base delay (delay
        tables are monotone in slew).
        """
        graph = self.sta.graph
        if not self.recalc_slew:
            return [graph.edge(e).delay for e in path.edges]
        calc = self.sta.calc
        slew = float(self.sta.state.slew[path.launch])
        delays: list[float] = []
        for edge_id in path.edges:
            edge = graph.edge(edge_id)
            if edge.kind is EdgeKind.CELL:
                delay, out_slew = calc.cell_edge(graph, edge, slew)
            else:
                delay, out_slew = calc.net_edge(graph, edge, slew)
            delays.append(min(delay, edge.delay))
            slew = min(out_slew, edge.out_slew)
        return delays

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def analyze_path(self, path: TimingPath) -> TimingPath:
        """Fill a path's GBA/PBA slacks and matrix contributions in place."""
        graph = self.sta.graph
        state = self.sta.state
        info = graph.endpoints.get(path.endpoint)
        if info is None:
            raise TimingError(
                f"path endpoint node {path.endpoint} is not an endpoint"
            )
        required_gba, _ = setup_required(
            graph, state, info, self._clock_map[path.endpoint],
            self.sta.constraints,
        )
        launch_arrival = float(state.arrival_late[path.launch])
        gba_data_delay = 0.0
        contributions: list[tuple[str, float, float]] = []
        for edge_id in path.edges:
            edge = graph.edge(edge_id)
            gba_data_delay += effective_late(state, edge)
            if classify_edge(graph, edge) is EdgeDomain.DATA_CELL:
                assert edge.gate is not None
                contributions.append((
                    edge.gate,
                    edge.delay,
                    float(state.derate_late[edge.id]),
                ))
        path.gba_arrival = launch_arrival + gba_data_delay
        path.gba_slack = required_gba - path.gba_arrival
        path.depth = len(contributions)
        path.distance = self.path_distance(path)
        table = self.sta.config.derating_table
        base_delays = self._path_base_delays(path)
        if self.variation == "rss" and table is not None and path.depth > 0:
            pba_data_delay = self._rss_data_delay(
                path, base_delays, table
            )
        else:
            if table is not None and path.depth > 0:
                pba_derate = table.derate(path.depth, path.distance)
            else:
                pba_derate = self.sta.config.flat_derate_late
            pba_data_delay = 0.0
            for edge_id, base_delay in zip(path.edges, base_delays):
                edge = graph.edge(edge_id)
                if classify_edge(graph, edge) is EdgeDomain.DATA_CELL:
                    pba_data_delay += base_delay * pba_derate
                else:
                    pba_data_delay += base_delay * float(
                        state.derate_late[edge.id]
                    )
        credit = self.sta.crpr.credit(
            self.launch_ck_node(path),
            info.ck_node,
        )
        path.crpr_credit = credit
        path.pba_slack = (
            required_gba + credit - (launch_arrival + pba_data_delay)
        )
        path.contributions = contributions
        constraints = self.sta.constraints
        if constraints.has_exceptions():
            launch = graph.node(path.launch).ref
            launch_name = launch.gate if launch.gate is not None else launch.pin
            capture_name = (
                info.gate if info.gate is not None
                else graph.node(path.endpoint).ref.pin
            )
            path.is_false = constraints.is_false_path(
                launch_name, capture_name
            )
        path.analyzed = True
        return path

    def _rss_data_delay(self, path: TimingPath,
                        base_delays: "list[float]", table) -> float:
        """SSTA-lite path delay: mean + 3 * RSS of per-stage sigmas.

        Each data cell's sigma is ``sigma_frac * base_delay`` with
        ``sigma_frac = (derate(1, distance) - 1) / 3`` — the single-
        stage corner of the same table, so both variation models share
        one characterization.
        """
        graph, state = self.sta.graph, self.sta.state
        sigma_frac = (table.derate(1, path.distance) - 1.0) / 3.0
        mean = 0.0
        variance = 0.0
        for edge_id, base_delay in zip(path.edges, base_delays):
            edge = graph.edge(edge_id)
            if classify_edge(graph, edge) is EdgeDomain.DATA_CELL:
                mean += base_delay
                variance += (sigma_frac * base_delay) ** 2
            else:
                mean += base_delay * float(state.derate_late[edge.id])
        return mean + 3.0 * variance ** 0.5

    def analyze(self, paths: "list[TimingPath]",
                executor: "Executor | None" = None) -> "list[TimingPath]":
        """Analyze a batch of paths in place; returns the same list.

        Paths are mutually independent, so with a parallel ``executor``
        (default: the ``REPRO_WORKERS``-configured one) the batch is
        chunked across workers.  Per-path results merge back in input
        order — serial, thread, and process backends all fill the
        *same* list with bit-identical values; the process backend
        copies each worker's analysis fields back into the caller's
        path objects.
        """
        if executor is None:
            executor = default_executor()
        with span(
            "pba.analyze", paths=len(paths),
            backend=executor.backend, workers=executor.workers,
        ):
            if executor.is_serial:
                for path in paths:
                    self.analyze_path(path)
            else:
                analyzed = executor.map(
                    self.analyze_path, paths, label="pba.analyze",
                )
                for original, result in zip(paths, analyzed):
                    if result is not original:
                        for name in _ANALYSIS_FIELDS:
                            setattr(original, name, getattr(result, name))
        counter("pba.paths_analyzed").inc(len(paths))
        return paths

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def golden_endpoint_slack(self, endpoint: int, k: int = 64) -> float:
        """PBA endpoint slack: min PBA slack over the k worst paths.

        With k large enough to cover every path whose GBA arrival could
        dominate after PBA re-derating, this equals the true path-based
        endpoint slack.  False paths are excluded (this is where PBA
        honours ``set_false_path`` and GBA cannot); an endpoint whose
        every path is false is unconstrained — +inf.
        """
        from repro.pba.enumerate import worst_paths_to_endpoint

        from repro.parallel.executor import SerialExecutor

        paths = worst_paths_to_endpoint(
            self.sta.graph, self.sta.state, endpoint, k
        )
        if not paths:
            raise TimingError(f"endpoint {endpoint} has no data paths")
        # One endpoint is a few dozen paths — always analyze serially;
        # the parallel axis is *across* endpoints (golden_endpoint_slacks),
        # and nesting pools under a sharded worker would only thrash.
        self.analyze(paths, executor=SerialExecutor())
        real = [p.pba_slack for p in paths if not p.is_false]
        if not real:
            return float("inf")
        return min(real)

    def golden_endpoint_slacks(
        self,
        endpoints: "list[int] | None" = None,
        k: int = 64,
        executor: "Executor | None" = None,
    ) -> "dict[int, float]":
        """PBA endpoint slack for many endpoints, sharded across workers.

        Endpoints are independent by construction (§3.2 — each owns its
        k-worst enumeration), so this is the natural shard axis: every
        worker runs :meth:`golden_endpoint_slack` for its chunk of
        endpoints and the merge re-keys results in endpoint order,
        making the mapping bit-identical across backends and worker
        counts.  The per-endpoint work stays serial inside the worker.
        """
        if endpoints is None:
            endpoints = self.sta.graph.endpoint_nodes()
        if executor is None:
            executor = default_executor()
        with span(
            "pba.endpoint_slacks", endpoints=len(endpoints), k=k,
            backend=executor.backend, workers=executor.workers,
        ):
            slacks = executor.map(
                partial(_endpoint_slack_job, self, k),
                endpoints,
                label="pba.endpoint_slacks",
            )
        return dict(zip(endpoints, slacks))
