"""Path-based analysis (PBA) — the golden reference.

* :class:`~repro.pba.paths.TimingPath` — one enumerated data path with
  its GBA and PBA analyses.
* :mod:`~repro.pba.enumerate` — exact k-worst path enumeration per
  endpoint (best-first peeling over the timing DAG).
* :class:`~repro.pba.engine.PBAEngine` — path-specific AOCV depth,
  bounding-box distance, and CRPR credit; produces the golden slacks
  the mGBA model is fitted against.
"""

from repro.pba.paths import TimingPath
from repro.pba.enumerate import enumerate_worst_paths, worst_paths_to_endpoint
from repro.pba.engine import PBAEngine

__all__ = [
    "TimingPath",
    "enumerate_worst_paths",
    "worst_paths_to_endpoint",
    "PBAEngine",
]
