"""Process-wide metrics registry: counters, gauges, histograms.

Zero-dependency and allocation-light — instruments can sit on hot-ish
paths (one solver *run*, one flow *stage*; never per matrix row).
Three instrument kinds:

* :class:`Counter` — monotonically increasing total
  (``solver.iterations``, ``closure.transforms_tried``);
* :class:`Gauge` — last-written value (``mgba.pass_ratio``);
* :class:`Histogram` — fixed-bucket distribution with percentile
  estimation (``scg.grad_norm``, ``sta.update_seconds``).

All instruments live in a :class:`MetricsRegistry`; the module-level
:func:`default_registry` is what the instrumented library code and the
CLI's ``--metrics FILE`` flag share.  The registry snapshots to plain
dicts / JSON so benches can archive a ``BENCH_<name>.json`` per run.
"""

from __future__ import annotations

import json
import math
import threading
from bisect import bisect_right
from typing import Sequence


class Counter:
    """A monotonically increasing value.

    Thread-safe: :meth:`inc` holds a per-instrument lock, so counters
    updated from ``repro.parallel`` thread-backend workers never drop
    increments (``x += y`` is not atomic in CPython).
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that can move both ways; records the last write.

    Thread-safe: :meth:`set` and :meth:`add` share a lock, so
    concurrent ``add`` deltas (an in-flight gauge) never lose updates.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, delta: float) -> float:
        """Adjust the gauge by ``delta`` (from 0 when unset); returns it."""
        with self._lock:
            self.value = (self.value or 0.0) + float(delta)
            return self.value

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


def default_buckets() -> list[float]:
    """Half-decade geometric boundaries from 1e-6 to 1e6.

    Wide enough for seconds, counts, and gradient norms alike; 25
    boundaries keep ``observe`` a single bisect into a tiny list.
    """
    return [10.0 ** (k / 2.0) for k in range(-12, 13)]


def latency_buckets() -> list[float]:
    """Explicit request-latency boundaries (seconds).

    Denser than :func:`default_buckets` in the 1 ms – 60 s band where
    service requests actually land, so the OpenMetrics exposition
    (:mod:`repro.obs.expo`) exports scrape-friendly ``le`` edges and
    the SLO layer gets tight percentile interpolation.
    """
    return [
        0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
        0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
    ]


def labeled(name: str, **labels: str) -> str:
    """The canonical registry name of one labeled time series.

    The flat registry has no native label dimension; instead a family
    plus labels is spelled into a single canonical name —
    ``labeled("service.request.latency", verb="sta")`` →
    ``service.request.latency{verb="sta"}`` — with label keys sorted
    so the same labels always produce the same instrument.  The
    OpenMetrics renderer (:mod:`repro.obs.expo`) parses the convention
    back into real exposition labels.
    """
    if not labels:
        return name
    for key in labels:
        if not key or not key.replace("_", "a").isalnum() \
                or key[0].isdigit():
            raise ValueError(f"bad label key {key!r} for metric {name!r}")
    inner = ",".join(
        '{}="{}"'.format(
            key,
            str(value).replace("\\", r"\\").replace('"', r"\"")
        )
        for key, value in sorted(labels.items())
    )
    return f"{name}{{{inner}}}"


class Histogram:
    """Fixed-bucket histogram with interpolated percentiles.

    ``boundaries`` are the *upper* edges of the finite buckets; one
    overflow bucket catches everything beyond the last edge.  Exact
    ``count`` / ``total`` / ``minimum`` / ``maximum`` are tracked on
    the side, so ``mean`` is exact and percentile interpolation can
    clamp to the true observed range.
    """

    __slots__ = (
        "name", "boundaries", "counts", "count", "total",
        "minimum", "maximum", "_lock",
    )

    def __init__(self, name: str, boundaries: Sequence[float] | None = None):
        self.name = name
        bounds = list(boundaries) if boundaries is not None \
            else default_buckets()
        if bounds != sorted(bounds):
            raise ValueError(f"histogram {name}: boundaries must be sorted")
        self.boundaries = bounds
        self.counts = [0] * (len(bounds) + 1)   # +1 overflow
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        bucket = bisect_right(self.boundaries, value)
        with self._lock:
            self.counts[bucket] += 1
            self.count += 1
            self.total += value
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated p-th percentile (p in [0, 100]).

        Linear interpolation inside the bucket where the rank falls,
        clamped to the exact observed [minimum, maximum] — so p=0 /
        p=100 are exact, and single-bucket histograms do not smear.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} outside [0, 100]")
        if self.count == 0:
            return 0.0
        rank = p / 100.0 * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lo = self.boundaries[index - 1] if index > 0 \
                    else min(self.minimum, self.boundaries[0])
                hi = self.boundaries[index] if index < len(self.boundaries) \
                    else self.maximum
                lo = max(lo, self.minimum)
                hi = min(hi, self.maximum)
                if bucket_count == 0 or hi <= lo:
                    return lo
                fraction = (rank - cumulative) / bucket_count
                return lo + fraction * (hi - lo)
            cumulative += bucket_count
        return self.maximum

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "boundaries": self.boundaries,
            "counts": self.counts,
        }


class MetricsRegistry:
    """Name -> instrument map with on-demand creation.

    Thread-safe: on-demand creation races (two threads asking for the
    same new name) resolve to one shared instrument under a registry
    lock; the instruments themselves lock their own mutations.
    """

    def __init__(self):
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, boundaries: Sequence[float] | None = None
    ) -> Histogram:
        return self._get(
            name, Histogram, lambda: Histogram(name, boundaries)
        )

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def reset(self) -> None:
        """Drop every instrument (tests / per-bench isolation)."""
        with self._lock:
            self._instruments.clear()

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument, sorted by name."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        return {name: instrument.to_dict()
                for name, instrument in instruments}

    def save_json(self, path) -> None:
        """Write the snapshot as pretty-printed JSON."""
        with open(path, "w") as fh:
            json.dump(self.snapshot(), fh, indent=2, default=str)
            fh.write("\n")


_default = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry the library instruments write to."""
    return _default


def counter(name: str) -> Counter:
    """Shortcut: ``default_registry().counter(name)``."""
    return _default.counter(name)


def gauge(name: str) -> Gauge:
    """Shortcut: ``default_registry().gauge(name)``."""
    return _default.gauge(name)


def histogram(name: str, boundaries: Sequence[float] | None = None) \
        -> Histogram:
    """Shortcut: ``default_registry().histogram(name)``."""
    return _default.histogram(name, boundaries)
