"""Hierarchical tracing spans (zero-dependency).

A *span* is one timed region of the flow — ``mgba.solve``, say — with a
wall-clock interval, a CPU-time interval, arbitrary attributes, and
child spans for the regions nested inside it.  Opening a span is cheap
(two clock reads and one small object), so the instrumented layers open
them unconditionally: the span a caller keeps (``MGBAResult.stages``)
is useful even when no collector is installed, and everything else is
garbage the moment the ``with`` block exits.

A :class:`Tracer` collects every *root* span closed while it is
installed (:func:`install_tracer` / the :func:`tracing` context
manager), and can export the forest as JSONL (one flattened span per
line, re-assemblable by :mod:`repro.obs.report`) or as a Chrome
``trace_event`` file loadable in ``chrome://tracing`` / Perfetto.

Typical use::

    from repro.obs import span, tracing

    with tracing() as tracer:
        with span("flow", design="D3"):
            with span("flow.solve"):
                ...
    tracer.export_jsonl("trace.jsonl")
"""

from __future__ import annotations

import json
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, TextIO

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None  # type: ignore[assignment]


@dataclass
class Span:
    """One timed, attributed, possibly-nested region."""

    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    start: float = 0.0        #: perf_counter at open (s)
    end: float | None = None  #: perf_counter at close; None while open
    cpu_start: float = 0.0    #: process_time at open (s)
    cpu_end: float | None = None
    children: "list[Span]" = field(default_factory=list)
    error: str | None = None  #: exception type name if the body raised

    @property
    def duration(self) -> float:
        """Wall-clock seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def cpu_seconds(self) -> float:
        """CPU seconds consumed by the process inside this span."""
        if self.cpu_end is None:
            return 0.0
        return self.cpu_end - self.cpu_start

    @property
    def self_seconds(self) -> float:
        """Wall seconds not covered by any child span."""
        return self.duration - sum(c.duration for c in self.children)

    def child(self, name: str) -> "Span | None":
        """First direct child with this name (None when absent)."""
        for c in self.children:
            if c.name == name:
                return c
        return None

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to an open (or closed) span."""
        self.attrs.update(attrs)
        return self

    def walk(self) -> "Iterator[Span]":
        """This span and every descendant, depth-first, pre-order."""
        yield self
        for c in self.children:
            yield from c.walk()


class _State(threading.local):
    """Per-thread open-span stack, installed tracer, and baggage."""

    def __init__(self):
        self.stack: list[Span] = []
        self.tracer: "Tracer | None" = None
        self.baggage: "list[dict[str, Any]]" = []


_state = _State()

#: Installed span profiler (see :mod:`repro.obs.profile`); a tiny
#: seam so the hot span() path costs one ``is None`` check when
#: profiling is off.
_span_profiler: "Any | None" = None

#: Installed flight recorder (see :mod:`repro.obs.flight`); the same
#: kind of seam — importing ``repro.obs`` installs the default
#: recorder, and every span close then costs one extra deque append.
_flight_recorder: "Any | None" = None


def set_flight_recorder(recorder: "Any | None") -> "Any | None":
    """Install (or clear, with None) the span-close flight recorder.

    The recorder must expose ``record_span(name, seconds, error=...,
    request_id=...)``; :func:`span` feeds it every completed span.
    Returns the previously installed one.
    """
    global _flight_recorder
    previous = _flight_recorder
    _flight_recorder = recorder
    return previous


def set_span_profiler(profiler: "Any | None") -> "Any | None":
    """Install (or clear, with None) the span-scoped profiler.

    The profiler must expose ``start(name) -> bool`` and
    ``stop(name)``; :func:`span` calls them around every region whose
    name the profiler claims.  Returns the previously installed one.
    """
    global _span_profiler
    previous = _span_profiler
    _span_profiler = profiler
    return previous


def _flatten_root(root: Span, start_id: int) -> list[dict]:
    """Flatten one root's subtree to records with ids from ``start_id``.

    Parent references never cross roots, so per-root flattening with a
    running id offset produces exactly the same records as flattening
    the whole forest at once — which is what lets a streaming tracer
    write roots as they close and still match ``export_jsonl``.
    """
    records: list[dict] = []

    def emit(span_obj: Span, parent: int | None) -> None:
        my_id = start_id + len(records)
        record = {
            "id": my_id,
            "parent": parent,
            "name": span_obj.name,
            "start": span_obj.start,
            "end": span_obj.end,
            "cpu_start": span_obj.cpu_start,
            "cpu_end": span_obj.cpu_end,
            "attrs": span_obj.attrs,
        }
        if span_obj.error is not None:
            record["error"] = span_obj.error
        records.append(record)
        for c in span_obj.children:
            emit(c, my_id)

    emit(root, None)
    return records


class Tracer:
    """Collects the root spans closed while installed.

    Optionally *streams*: :meth:`stream_jsonl` opens a JSONL file that
    every root is appended to (and flushed) the moment it closes, so a
    run killed mid-flight still leaves a valid, parseable trace of
    everything that completed — the in-memory forest and the file stay
    in lockstep.  :meth:`close` is idempotent; an unclosed stream still
    holds flushed lines because every write is followed by ``flush``.
    """

    def __init__(self):
        self.roots: list[Span] = []
        self._stream: "TextIO | None" = None
        self._streamed = 0  #: records already written to the stream

    def add_root(self, span_obj: Span) -> None:
        self.roots.append(span_obj)
        if self._stream is not None:
            records = _flatten_root(span_obj, self._streamed)
            for record in records:
                self._stream.write(json.dumps(record, default=str) + "\n")
            self._stream.flush()
            self._streamed += len(records)

    def all_spans(self) -> Iterator[Span]:
        """Every collected span, depth-first across roots."""
        for root in self.roots:
            yield from root.walk()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def stream_jsonl(self, path) -> None:
        """Start appending every future root to ``path``, durably.

        Roots already collected are written immediately, so installing
        the stream late loses nothing.  Each root's records are flushed
        as soon as the root closes: an unhandled exception (or a kill)
        after that point cannot truncate them.
        """
        if self._stream is not None:
            raise ValueError("tracer is already streaming")
        self._stream = open(path, "w")
        self._streamed = 0
        for root in self.roots:
            records = _flatten_root(root, self._streamed)
            for record in records:
                self._stream.write(json.dumps(record, default=str) + "\n")
            self._streamed += len(records)
        self._stream.flush()

    def close(self) -> None:
        """Flush and close the stream (idempotent; no-op when not set)."""
        if self._stream is not None:
            self._stream.flush()
            self._stream.close()
            self._stream = None

    def to_records(self) -> list[dict]:
        """Flatten the forest to JSON-able records.

        Each record carries an ``id`` (depth-first index) and
        ``parent`` id (None for roots) so the tree round-trips.
        """
        records: list[dict] = []
        for root in self.roots:
            records.extend(_flatten_root(root, len(records)))
        return records

    def export_jsonl(self, path) -> None:
        """Write one flattened span record per line."""
        with open(path, "w") as fh:
            for record in self.to_records():
                fh.write(json.dumps(record, default=str) + "\n")

    def export_chrome(self, path) -> None:
        """Write a Chrome ``trace_event`` file (``chrome://tracing``)."""
        events = []
        for record in self.to_records():
            end = record["end"]
            duration = 0.0 if end is None else end - record["start"]
            events.append({
                "name": record["name"],
                "ph": "X",
                "ts": record["start"] * 1e6,   # microseconds
                "dur": duration * 1e6,
                "pid": 1,
                "tid": 1,
                "args": record["attrs"],
            })
        with open(path, "w") as fh:
            json.dump({"traceEvents": events}, fh, default=str)


def sample_peak_rss_mb() -> "float | None":
    """Process peak RSS in MiB (None where ``resource`` is unavailable).

    ``ru_maxrss`` is KiB on Linux but bytes on macOS — normalized here
    so the gauge means the same thing everywhere.
    """
    if _resource is None:
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def _record_peak_rss() -> None:
    """Write the ``obs.rss_peak_mb`` gauge (called at root-span close).

    Root closes are rare (one per top-level operation), so one
    ``getrusage`` syscall here gives every trace and metrics snapshot a
    memory high-water mark without touching the hot span path.
    """
    peak = sample_peak_rss_mb()
    if peak is None:
        return
    from repro.obs.metrics import gauge

    gauge("obs.rss_peak_mb").set(peak)


def install_tracer(tracer: Tracer | None = None) -> Tracer:
    """Install (and return) the collector for this thread's root spans."""
    if tracer is None:
        tracer = Tracer()
    _state.tracer = tracer
    return tracer


def uninstall_tracer() -> Tracer | None:
    """Remove and return the installed tracer (None when absent)."""
    tracer = _state.tracer
    _state.tracer = None
    return tracer


def current_tracer() -> Tracer | None:
    """The installed tracer, if any."""
    return _state.tracer


def current_span() -> Span | None:
    """The innermost open span on this thread, if any."""
    return _state.stack[-1] if _state.stack else None


@contextmanager
def tracing(tracer: Tracer | None = None):
    """Scope-install a tracer: ``with tracing() as t: ... t.roots``."""
    previous = _state.tracer
    installed = install_tracer(tracer)
    try:
        yield installed
    finally:
        _state.tracer = previous


@contextmanager
def baggage(**attrs: Any):
    """Stamp ``attrs`` onto every span opened inside this scope.

    Baggage is how cross-cutting identity — a service request ID, a
    batch label — reaches spans opened many layers below without
    threading a parameter through every signature.  Scopes nest; inner
    baggage wins on key collision, and a span's own explicit attributes
    always win over baggage.  Thread-local: a span opened on another
    thread (or in a process-backend worker) does not inherit it.
    """
    _state.baggage.append(attrs)
    try:
        yield
    finally:
        _state.baggage.pop()


def current_baggage() -> "dict[str, Any]":
    """The merged baggage in effect on this thread (outermost first)."""
    merged: "dict[str, Any]" = {}
    for scope in _state.baggage:
        merged.update(scope)
    return merged


@contextmanager
def span(name: str, **attrs: Any):
    """Open a span named ``name``; nests under any enclosing span.

    Always times the region and yields the :class:`Span` (callers may
    keep it — the mGBA flow does, for its runtime breakdown).  The span
    is attached to the enclosing open span when there is one, and
    handed to the installed tracer when it closes as a root.  Any
    active :func:`baggage` attributes are stamped on (explicit
    ``attrs`` win), and an installed span profiler gets a chance to
    profile the region.
    """
    if _state.baggage:
        merged = current_baggage()
        merged.update(attrs)
        attrs = merged
    span_obj = Span(name=name, attrs=attrs)
    stack = _state.stack
    parent = stack[-1] if stack else None
    if parent is not None:
        parent.children.append(span_obj)
    stack.append(span_obj)
    profiler = _span_profiler
    profiling = profiler is not None and profiler.start(name)
    span_obj.start = time.perf_counter()
    span_obj.cpu_start = time.process_time()
    try:
        yield span_obj
    except BaseException as exc:
        span_obj.error = type(exc).__name__
        raise
    finally:
        span_obj.cpu_end = time.process_time()
        span_obj.end = time.perf_counter()
        if profiling:
            profiler.stop(name)
        stack.pop()
        recorder = _flight_recorder
        if recorder is not None:
            recorder.record_span(
                name, span_obj.end - span_obj.start,
                error=span_obj.error,
                request_id=span_obj.attrs.get("request_id"),
            )
        if parent is None:
            _record_peak_rss()
            if _state.tracer is not None:
                _state.tracer.add_root(span_obj)
