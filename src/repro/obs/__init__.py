"""Observability layer: tracing spans, metrics, solver telemetry.

Three independent, zero-dependency facilities the rest of the library
is instrumented with (see ``docs/observability.md`` for the tour):

* :mod:`repro.obs.trace` — hierarchical :func:`span` context managers
  with wall/CPU time and attributes, collected by a :class:`Tracer`
  and exportable as JSONL or Chrome ``trace_event`` files;
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  of counters, gauges, and fixed-bucket histograms;
* :mod:`repro.obs.telemetry` — per-iteration :class:`IterationStats`
  callbacks published by the mGBA solvers;
* :mod:`repro.obs.history` — the append-only benchmark time series
  behind ``repro-sta bench-history``;
* :mod:`repro.obs.profile` — opt-in span-scoped cProfile
  (``repro-sta --profile``).

Everything is importable from the package root::

    from repro.obs import span, tracing, counter, record_iterations
"""

from repro.obs.history import (
    BenchRecord,
    append_record,
    compare,
    load_history,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    default_registry,
    gauge,
    histogram,
)
from repro.obs.report import (
    format_breakdown,
    format_metrics,
    format_tracer,
    load_metrics,
    load_trace,
    stage_breakdown,
)
from repro.obs.profile import (
    DEFAULT_PROFILED_SPANS,
    SpanProfiler,
    format_profile,
    load_profile,
    profiling,
)
from repro.obs.telemetry import (
    IterationStats,
    iteration_callbacks,
    record_iterations,
    subscribe,
    unsubscribe,
)
from repro.obs.trace import (
    Span,
    Tracer,
    baggage,
    current_baggage,
    current_span,
    current_tracer,
    install_tracer,
    sample_peak_rss_mb,
    set_span_profiler,
    span,
    tracing,
    uninstall_tracer,
)

__all__ = [
    # tracing
    "Span", "Tracer", "span", "tracing",
    "install_tracer", "uninstall_tracer",
    "current_tracer", "current_span",
    "baggage", "current_baggage", "set_span_profiler",
    "sample_peak_rss_mb",
    # metrics
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "default_registry", "counter", "gauge", "histogram",
    # telemetry
    "IterationStats", "subscribe", "unsubscribe",
    "iteration_callbacks", "record_iterations",
    # reports
    "load_trace", "stage_breakdown", "format_breakdown", "format_tracer",
    "load_metrics", "format_metrics",
    # history
    "BenchRecord", "append_record", "load_history", "compare",
    # profiling
    "DEFAULT_PROFILED_SPANS", "SpanProfiler", "profiling",
    "load_profile", "format_profile",
]
