"""Observability layer: tracing spans, metrics, solver telemetry.

Three independent, zero-dependency facilities the rest of the library
is instrumented with (see ``docs/observability.md`` for the tour):

* :mod:`repro.obs.trace` — hierarchical :func:`span` context managers
  with wall/CPU time and attributes, collected by a :class:`Tracer`
  and exportable as JSONL or Chrome ``trace_event`` files;
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  of counters, gauges, and fixed-bucket histograms;
* :mod:`repro.obs.telemetry` — per-iteration :class:`IterationStats`
  callbacks published by the mGBA solvers;
* :mod:`repro.obs.history` — the append-only benchmark time series
  behind ``repro-sta bench-history``;
* :mod:`repro.obs.profile` — opt-in span-scoped cProfile
  (``repro-sta --profile``);
* :mod:`repro.obs.flight` — the always-on bounded flight recorder
  (last N spans / M requests / E errors), dumped on serve failures;
* :mod:`repro.obs.expo` — OpenMetrics text exposition of the registry
  plus the ``--expose-metrics`` HTTP scrape endpoint;
* :mod:`repro.obs.slo` — declarative latency/error/cache objectives
  evaluated over the flight window.

Everything is importable from the package root::

    from repro.obs import span, tracing, counter, record_iterations
"""

from repro.obs.expo import (
    CONTENT_TYPE,
    MetricsServer,
    render_openmetrics,
    start_metrics_server,
)
from repro.obs.flight import (
    FLIGHT_SCHEMA_VERSION,
    FlightRecorder,
    default_flight_recorder,
    format_flight,
    load_flight,
)
from repro.obs.history import (
    BenchRecord,
    append_record,
    compare,
    load_history,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    default_registry,
    gauge,
    histogram,
    labeled,
    latency_buckets,
)
from repro.obs.slo import (
    SLOReport,
    SLOSpec,
    evaluate_slo,
    format_slo_report,
    load_slo_spec,
)
from repro.obs.report import (
    format_breakdown,
    format_metrics,
    format_tracer,
    load_metrics,
    load_trace,
    stage_breakdown,
)
from repro.obs.profile import (
    DEFAULT_PROFILED_SPANS,
    SpanProfiler,
    format_profile,
    load_profile,
    profiling,
)
from repro.obs.telemetry import (
    IterationStats,
    iteration_callbacks,
    record_iterations,
    subscribe,
    unsubscribe,
)
from repro.obs.trace import (
    Span,
    Tracer,
    baggage,
    current_baggage,
    current_span,
    current_tracer,
    install_tracer,
    sample_peak_rss_mb,
    set_span_profiler,
    span,
    tracing,
    uninstall_tracer,
)

__all__ = [
    # tracing
    "Span", "Tracer", "span", "tracing",
    "install_tracer", "uninstall_tracer",
    "current_tracer", "current_span",
    "baggage", "current_baggage", "set_span_profiler",
    "sample_peak_rss_mb",
    # metrics
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "default_registry", "counter", "gauge", "histogram",
    "labeled", "latency_buckets",
    # flight recorder
    "FLIGHT_SCHEMA_VERSION", "FlightRecorder",
    "default_flight_recorder", "format_flight", "load_flight",
    # exposition
    "CONTENT_TYPE", "MetricsServer",
    "render_openmetrics", "start_metrics_server",
    # SLOs
    "SLOReport", "SLOSpec", "evaluate_slo", "format_slo_report",
    "load_slo_spec",
    # telemetry
    "IterationStats", "subscribe", "unsubscribe",
    "iteration_callbacks", "record_iterations",
    # reports
    "load_trace", "stage_breakdown", "format_breakdown", "format_tracer",
    "load_metrics", "format_metrics",
    # history
    "BenchRecord", "append_record", "load_history", "compare",
    # profiling
    "DEFAULT_PROFILED_SPANS", "SpanProfiler", "profiling",
    "load_profile", "format_profile",
]
