"""OpenMetrics exposition: render the metrics registry for scrapers.

The :class:`~repro.obs.metrics.MetricsRegistry` snapshots to plain
dicts; this module renders that snapshot in the Prometheus /
OpenMetrics text format so any standard scraper can consume it.
Three surfaces share the renderer:

* the ``metrics_export`` control verb of the JSONL service protocol;
* the ``repro-sta metrics-export`` subcommand (live registry or a
  saved ``--metrics`` snapshot file);
* the opt-in background scrape endpoint (``repro-sta serve
  --expose-metrics PORT`` → :func:`start_metrics_server`), a stdlib
  ``http.server`` on a daemon thread — the first real network
  listener on the road to the async timing service (ROADMAP item 1).

Label convention: the registry is flat, so a labeled series is one
instrument named ``family{key="value"}`` (built with
:func:`repro.obs.metrics.labeled`); :func:`parse_metric_name` inverts
the convention and the renderer groups label sets under one
``# TYPE`` family header.  Dots become underscores
(``service.request.latency`` → ``service_request_latency``), counters
gain the ``_total`` suffix, histograms export cumulative ``le``
buckets plus ``_sum`` / ``_count``, and the document ends with
``# EOF`` as OpenMetrics requires.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping

from repro.obs.metrics import MetricsRegistry, default_registry

#: The OpenMetrics content type, scrape responses included.
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

_LABEL_RE = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')
_NAME_RE = re.compile(r"^(?P<family>[^{]+)(?:\{(?P<labels>.*)\})?$")


def parse_metric_name(name: str) -> "tuple[str, dict[str, str]]":
    """Split a registry name into (family, labels).

    Inverts the :func:`repro.obs.metrics.labeled` convention; a name
    without braces is a bare family with no labels.
    """
    match = _NAME_RE.match(name)
    if match is None:  # pragma: no cover - regex matches any string
        return name, {}
    family = match.group("family")
    raw = match.group("labels")
    if not raw:
        return family, {}
    labels = {
        key: value.replace(r"\"", '"').replace(r"\\", "\\")
        for key, value in _LABEL_RE.findall(raw)
    }
    return family, labels


def sanitize_metric_name(name: str) -> str:
    """A valid exposition metric name: ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: Any) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _format_labels(labels: "Mapping[str, str]") -> str:
    if not labels:
        return ""
    inner = ",".join(
        '{}="{}"'.format(
            sanitize_metric_name(key),
            str(value).replace("\\", r"\\").replace('"', r"\"")
        )
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _render_histogram(lines: "list[str]", family: str,
                      labels: "Mapping[str, str]",
                      record: "Mapping[str, Any]") -> None:
    boundaries = list(record.get("boundaries") or [])
    counts = list(record.get("counts") or [])
    cumulative = 0
    for edge, bucket_count in zip(boundaries, counts):
        cumulative += int(bucket_count)
        bucket_labels = dict(labels)
        bucket_labels["le"] = format(float(edge), ".10g")
        lines.append(
            f"{family}_bucket{_format_labels(bucket_labels)} {cumulative}"
        )
    total = int(record.get("count") or 0)
    inf_labels = dict(labels)
    inf_labels["le"] = "+Inf"
    lines.append(f"{family}_bucket{_format_labels(inf_labels)} {total}")
    lines.append(
        f"{family}_sum{_format_labels(labels)} "
        f"{_format_value(record.get('sum') or 0.0)}"
    )
    lines.append(f"{family}_count{_format_labels(labels)} {total}")


def render_openmetrics(
    source: "MetricsRegistry | Mapping[str, Any] | None" = None,
) -> str:
    """The OpenMetrics text document for a registry or snapshot.

    ``source`` may be a live :class:`MetricsRegistry`, a snapshot dict
    (``MetricsRegistry.snapshot()`` / a ``--metrics`` JSON file), or
    ``None`` for the process-wide default registry.  Instruments
    sharing a family (label convention) render under one ``# TYPE``
    header; unset gauges are omitted (no value to expose).
    """
    if source is None:
        source = default_registry()
    snapshot: "Mapping[str, Any]" = (
        source.snapshot() if isinstance(source, MetricsRegistry) else source
    )
    #: family -> kind -> list of (labels, record); insertion sorted.
    families: "dict[str, dict[str, list[tuple[dict[str, str], Any]]]]" = {}
    for name in sorted(snapshot):
        record = snapshot[name]
        if not isinstance(record, Mapping):
            continue
        kind = record.get("type")
        if kind not in ("counter", "gauge", "histogram"):
            continue
        raw_family, labels = parse_metric_name(name)
        family = sanitize_metric_name(raw_family)
        families.setdefault(family, {}).setdefault(kind, []).append(
            (labels, record)
        )
    lines: "list[str]" = []
    for family in sorted(families):
        for kind in sorted(families[family]):
            series = families[family][kind]
            if kind == "counter":
                lines.append(f"# TYPE {family} counter")
                for labels, record in series:
                    lines.append(
                        f"{family}_total{_format_labels(labels)} "
                        f"{_format_value(record.get('value') or 0.0)}"
                    )
            elif kind == "gauge":
                samples = [
                    (labels, record) for labels, record in series
                    if record.get("value") is not None
                ]
                if not samples:
                    continue
                lines.append(f"# TYPE {family} gauge")
                for labels, record in samples:
                    lines.append(
                        f"{family}{_format_labels(labels)} "
                        f"{_format_value(record['value'])}"
                    )
            else:
                lines.append(f"# TYPE {family} histogram")
                for labels, record in series:
                    _render_histogram(lines, family, labels, record)
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class _ScrapeHandler(BaseHTTPRequestHandler):
    """GET-only handler: ``/metrics`` exposition, ``/health`` JSON."""

    server: "MetricsServer"  # type: ignore[assignment]

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = render_openmetrics(self.server.registry).encode()
            self._reply(200, CONTENT_TYPE, body)
        elif path == "/health" and self.server.health_fn is not None:
            try:
                payload = self.server.health_fn()
            except Exception as exc:
                payload = {"status": "error", "error": str(exc)}
            body = json.dumps(payload, default=str).encode()
            self._reply(200, "application/json; charset=utf-8", body)
        else:
            self._reply(404, "text/plain; charset=utf-8", b"not found\n")

    def _reply(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args: Any) -> None:
        """Silence per-request stderr logging (scrapes are periodic)."""


class MetricsServer(ThreadingHTTPServer):
    """The background scrape endpoint behind ``--expose-metrics``.

    A stdlib ``ThreadingHTTPServer`` running ``serve_forever`` on a
    daemon thread: it can never block interpreter exit, and
    :meth:`close` shuts it down deterministically for tests and the
    CLI's ``finally``.  Binds localhost by default; port ``0`` asks
    the OS for a free port (read it back from :attr:`port`).
    """

    daemon_threads = True

    def __init__(self, port: int = 0, host: str = "127.0.0.1",
                 registry: "MetricsRegistry | None" = None,
                 health_fn: "Callable[[], Any] | None" = None):
        self.registry = registry if registry is not None \
            else default_registry()
        self.health_fn = health_fn
        super().__init__((host, port), _ScrapeHandler)
        self._thread: "threading.Thread | None" = None

    @property
    def port(self) -> int:
        return int(self.server_address[1])

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        thread = threading.Thread(
            target=self.serve_forever, name="repro-metrics-export",
            daemon=True,
        )
        thread.start()
        self._thread = thread
        return self

    def close(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


def start_metrics_server(
    port: int = 0, host: str = "127.0.0.1",
    registry: "MetricsRegistry | None" = None,
    health_fn: "Callable[[], Any] | None" = None,
) -> MetricsServer:
    """Bind, start, and return the scrape endpoint (caller closes it)."""
    return MetricsServer(
        port=port, host=host, registry=registry, health_fn=health_fn
    ).start()


__all__ = [
    "CONTENT_TYPE",
    "MetricsServer",
    "parse_metric_name",
    "render_openmetrics",
    "sanitize_metric_name",
    "start_metrics_server",
]
