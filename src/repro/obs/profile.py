"""Span-scoped profiling: cProfile attached to chosen top-level spans.

Tracing answers *which stage* is slow; this module answers *which
function inside it*.  A :class:`SpanProfiler` installs into the span
machinery (:func:`repro.obs.trace.set_span_profiler`) and, whenever a
span whose name it claims opens — by default the flow's coarse stages
``mgba.run``, ``sta.update_timing``, and ``closure.run`` — wraps the
region in a :class:`cProfile.Profile`.  Stats from every profiled
region aggregate by function, so the thousands of incremental STA
updates inside a closure run fold into one self-time ranking.

cProfile cannot nest (and ``sta.update_timing`` *does* open inside
``closure.run``), so only the outermost claimed span on a thread
profiles; inner claimed spans are counted but skipped.  Profiling is
strictly opt-in — ``repro-sta --profile FILE`` — because cProfile
costs real overhead; nothing here runs when no profiler is installed.

The aggregate serializes as JSON (one record per function) and
``repro-sta obs-report --profile FILE`` renders the top-N self-time
table.
"""

from __future__ import annotations

import cProfile
import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from repro.obs.trace import set_span_profiler

#: The flow's coarse stages — where a profile answers "what dominates
#: a run" without drowning in per-call noise.
DEFAULT_PROFILED_SPANS = frozenset(
    {"mgba.run", "sta.update_timing", "closure.run"}
)

#: Version of the saved profile schema.
PROFILE_SCHEMA = 1


@dataclass(frozen=True)
class ProfileRow:
    """One function's aggregate across every profiled region."""

    func: str       #: ``file:lineno(name)`` or ``<builtin name>``
    calls: int
    self_seconds: float   #: time inside the function itself (tottime)
    cum_seconds: float    #: time including callees (cumtime)

    def to_dict(self) -> "dict[str, Any]":
        return {
            "func": self.func, "calls": self.calls,
            "self": self.self_seconds, "cum": self.cum_seconds,
        }


def _func_label(code: Any) -> str:
    if isinstance(code, str):   # builtin: cProfile stores a str
        return code
    return f"{code.co_filename}:{code.co_firstlineno}({code.co_name})"


class SpanProfiler:
    """Aggregating cProfile harness keyed on span names.

    ``start``/``stop`` are the :func:`repro.obs.trace.span` hook
    protocol; everything else reads the aggregate out.  Thread-safe in
    the narrow sense that matters: only one region profiles at a time
    (cProfile is per-thread and non-reentrant), claimed spans opening
    on other threads or nested inside a profiled region are tallied in
    :attr:`skipped` instead of crashing the run.
    """

    def __init__(self, names: "frozenset[str] | set[str] | None" = None):
        self.names = frozenset(
            names if names is not None else DEFAULT_PROFILED_SPANS
        )
        self.spans_profiled = 0
        self.skipped = 0
        self._lock = threading.Lock()
        self._active: "cProfile.Profile | None" = None
        self._active_name = ""
        self._active_thread = 0
        self._totals: "dict[str, list[float]]" = {}  # func -> [calls, self, cum]

    # ------------------------------------------------------------------
    # Span hook protocol
    # ------------------------------------------------------------------
    def start(self, name: str) -> bool:
        """Begin profiling ``name`` if claimed and nothing is active."""
        if name not in self.names:
            return False
        profile = cProfile.Profile()
        with self._lock:
            if self._active is not None:
                self.skipped += 1
                return False
            self._active = profile
            self._active_name = name
            self._active_thread = threading.get_ident()
        profile.enable()
        return True

    def stop(self, name: str) -> None:
        """Finish the active region and fold its stats in."""
        with self._lock:
            if (
                self._active is None
                or name != self._active_name
                or threading.get_ident() != self._active_thread
            ):
                return
            profile = self._active
            self._active = None
            self._active_name = ""
            self._active_thread = 0
        profile.disable()
        self._merge(profile)

    def _merge(self, profile: "cProfile.Profile") -> None:
        with self._lock:
            self.spans_profiled += 1
            for entry in profile.getstats():
                label = _func_label(entry.code)
                row = self._totals.get(label)
                if row is None:
                    row = self._totals[label] = [0, 0.0, 0.0]
                row[0] += entry.callcount
                row[1] += entry.inlinetime
                row[2] += entry.totaltime

    # ------------------------------------------------------------------
    # Reading the aggregate
    # ------------------------------------------------------------------
    def rows(self) -> "list[ProfileRow]":
        """Every function, self-time descending."""
        with self._lock:
            rows = [
                ProfileRow(func=func, calls=int(calls),
                           self_seconds=self_s, cum_seconds=cum_s)
                for func, (calls, self_s, cum_s) in self._totals.items()
            ]
        rows.sort(key=lambda r: (-r.self_seconds, r.func))
        return rows

    def top(self, n: int = 20) -> "list[ProfileRow]":
        return self.rows()[:n]

    def to_dict(self) -> "dict[str, Any]":
        return {
            "schema": PROFILE_SCHEMA,
            "spans": sorted(self.names),
            "spans_profiled": self.spans_profiled,
            "skipped": self.skipped,
            "rows": [row.to_dict() for row in self.rows()],
        }

    def save_json(self, path: Any) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")


@contextmanager
def profiling(names: "set[str] | frozenset[str] | None" = None) \
        -> "Iterator[SpanProfiler]":
    """Scope-install a :class:`SpanProfiler`; restores the previous one."""
    profiler = SpanProfiler(names)
    previous = set_span_profiler(profiler)
    try:
        yield profiler
    finally:
        set_span_profiler(previous)


def load_profile(path: Any) -> "dict[str, Any] | None":
    """Load a saved profile, tolerantly (None when missing/garbled)."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or "rows" not in data:
        return None
    return data


def format_profile(data: "dict[str, Any]", top: int = 20) -> str:
    """Render a saved profile as the top-N self-time table."""
    rows = data.get("rows") or []
    header_bits = (
        f"{data.get('spans_profiled', 0)} span(s) profiled"
        f" ({', '.join(data.get('spans', []))})"
    )
    if data.get("skipped"):
        header_bits += f", {data['skipped']} nested/concurrent skipped"
    if not rows:
        return f"{header_bits}\n(no profile samples)"
    shown = rows[:top] if top else rows
    func_width = max(len("function"), *(len(str(r["func"])) for r in shown))
    header = (
        f"{'function':<{func_width}}  {'calls':>9}  "
        f"{'self(s)':>9}  {'cum(s)':>9}"
    )
    lines = [header_bits, "", header, "-" * len(header)]
    for row in shown:
        lines.append(
            f"{row['func']:<{func_width}}  {row['calls']:>9}  "
            f"{row['self']:>9.4f}  {row['cum']:>9.4f}"
        )
    if top and len(rows) > top:
        lines.append(f"... ({len(rows) - top} more)")
    return "\n".join(lines)
