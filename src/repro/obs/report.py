"""Reading traces back: JSONL parsing and per-stage breakdown tables.

The inverse of :meth:`repro.obs.trace.Tracer.export_jsonl`:
:func:`load_trace` re-assembles the span forest from a JSONL file, and
:func:`format_breakdown` renders it as the per-stage runtime table the
``repro-sta obs-report`` subcommand prints::

    stage                        calls   wall(s)    cpu(s)   self(s)      %
    closure.run                      1     12.41     12.38      0.52  100.0
      closure.mgba_fit               1      3.10      3.09      0.01   25.0
        mgba.run                     1      3.09      3.08      0.02   24.9
          mgba.select                1      0.41      0.41      0.41    3.3
    ...

Aggregation is by *tree path*: two spans count in the same row when
their name chain from the root matches, so repeated stages (every
``sta.update_timing`` inside the fix loop) fold into one row with a
call count instead of thousands of lines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.trace import Span, Tracer


def parse_records(records: "list[dict]") -> "list[Span]":
    """Rebuild the span forest from flattened records (see to_records)."""
    spans: dict[int, Span] = {}
    roots: list[Span] = []
    for record in records:
        span_obj = Span(
            name=record["name"],
            attrs=dict(record.get("attrs") or {}),
            start=record.get("start", 0.0),
            end=record.get("end"),
            cpu_start=record.get("cpu_start", 0.0),
            cpu_end=record.get("cpu_end"),
            error=record.get("error"),
        )
        spans[record["id"]] = span_obj
        parent = record.get("parent")
        if parent is None:
            roots.append(span_obj)
        else:
            try:
                spans[parent].children.append(span_obj)
            except KeyError:
                raise ValueError(
                    f"span {record['id']} references unknown parent {parent}"
                ) from None
    return roots


def load_trace(path) -> "list[Span]":
    """Load a JSONL trace file into its root spans."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return parse_records(records)


@dataclass
class BreakdownRow:
    """Aggregate of every span sharing one name chain from the root."""

    path: tuple[str, ...]
    calls: int = 0
    wall: float = 0.0
    cpu: float = 0.0
    self_wall: float = 0.0
    errors: int = 0
    children: "dict[str, BreakdownRow]" = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.path[-1]

    @property
    def depth(self) -> int:
        return len(self.path) - 1


#: Sort keys accepted by :func:`stage_breakdown` / ``obs-report --sort``.
SORT_KEYS = ("wall", "self", "calls")

_SORTERS = {
    "wall": lambda r: -r.wall,
    "self": lambda r: -r.self_wall,
    "calls": lambda r: -r.calls,
}


def stage_breakdown(roots: "list[Span]",
                    sort: str = "wall") -> "list[BreakdownRow]":
    """Fold a span forest into aggregated rows, one per name chain.

    ``sort`` orders siblings at every depth: ``wall`` (inclusive time,
    the default), ``self`` (exclusive time — where the work actually
    is), or ``calls`` (hot by invocation count).  The tree shape is
    preserved regardless; only sibling order changes.
    """
    if sort not in _SORTERS:
        raise ValueError(
            f"unknown sort key {sort!r}; choose from {SORT_KEYS}"
        )
    sorter = _SORTERS[sort]
    top: dict[str, BreakdownRow] = {}

    def fold(span_obj: Span, siblings: "dict[str, BreakdownRow]",
             prefix: tuple[str, ...]) -> None:
        path = prefix + (span_obj.name,)
        row = siblings.get(span_obj.name)
        if row is None:
            row = siblings[span_obj.name] = BreakdownRow(path=path)
        row.calls += 1
        row.wall += span_obj.duration
        row.cpu += span_obj.cpu_seconds
        row.self_wall += span_obj.self_seconds
        if span_obj.error is not None:
            row.errors += 1
        for child in span_obj.children:
            fold(child, row.children, path)

    for root in roots:
        fold(root, top, ())

    rows: list[BreakdownRow] = []

    def flatten(row: BreakdownRow) -> None:
        rows.append(row)
        for child in sorted(row.children.values(), key=sorter):
            flatten(child)

    for row in sorted(top.values(), key=sorter):
        flatten(row)
    return rows


def format_breakdown(roots: "list[Span]", sort: str = "wall",
                     top: "int | None" = None) -> str:
    """Render the per-stage runtime breakdown table.

    ``sort`` picks the sibling ordering (see :func:`stage_breakdown`);
    ``top`` truncates the table to its first N rows (depth-first, so
    the hottest subtrees survive the cut).
    """
    rows = stage_breakdown(roots, sort=sort)
    if not rows:
        return "(empty trace)"
    total_wall = sum(r.wall for r in rows if r.depth == 0) or 1.0
    truncated = 0
    if top is not None and top > 0 and len(rows) > top:
        truncated = len(rows) - top
        rows = rows[:top]
    name_width = max(
        len("stage"), *(2 * r.depth + len(r.name) for r in rows)
    )
    header = (
        f"{'stage':<{name_width}}  {'calls':>6}  {'wall(s)':>9}  "
        f"{'cpu(s)':>9}  {'self(s)':>9}  {'%':>6}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        label = "  " * row.depth + row.name
        if row.errors:
            label += f" [!{row.errors}]"
        lines.append(
            f"{label:<{name_width}}  {row.calls:>6}  {row.wall:>9.3f}  "
            f"{row.cpu:>9.3f}  {row.self_wall:>9.3f}  "
            f"{100.0 * row.wall / total_wall:>6.1f}"
        )
    if truncated:
        lines.append(f"... ({truncated} more row(s); raise --top)")
    return "\n".join(lines)


def format_tracer(tracer: Tracer) -> str:
    """Breakdown of a live (in-memory) tracer."""
    return format_breakdown(tracer.roots)


def load_metrics(path) -> "dict | None":
    """Load a ``--metrics`` JSON snapshot, tolerantly.

    Returns the snapshot dict, or ``None`` when the file is missing,
    empty, or not a JSON object — a run that crashed before writing
    metrics should degrade an ``obs-report`` invocation to a note, not
    a traceback.
    """
    try:
        with open(path) as fh:
            text = fh.read()
    except OSError:
        return None
    text = text.strip()
    if not text:
        return None
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        return None
    return data if isinstance(data, dict) else None


def format_metrics(snapshot: "dict") -> str:
    """Render a metrics snapshot (``MetricsRegistry.snapshot``) as a table."""
    if not snapshot:
        return "(no metrics recorded)"
    name_width = max(len("metric"), *(len(name) for name in snapshot))
    header = f"{'metric':<{name_width}}  {'type':<9}  value"
    lines = [header, "-" * len(header)]
    for name in sorted(snapshot):
        record = snapshot[name]
        if not isinstance(record, dict):
            lines.append(f"{name:<{name_width}}  {'?':<9}  {record}")
            continue
        kind = record.get("type", "?")
        if kind == "histogram":
            if record.get("count"):
                value = (
                    f"count={record.get('count')} "
                    f"mean={record.get('mean'):.4g} "
                    f"p50={record.get('p50'):.4g}"
                )
                if record.get("p95") is not None:
                    value += f" p95={record.get('p95'):.4g}"
                value += f" p99={record.get('p99'):.4g}"
                if record.get("max") is not None:
                    value += f" max={record.get('max'):.4g}"
            else:
                value = "count=0"
        else:
            raw = record.get("value")
            # Gauges like obs.rss_peak_mb carry long floats; compact them.
            value = f"{raw:.6g}" if isinstance(raw, float) else f"{raw}"
        lines.append(f"{name:<{name_width}}  {kind:<9}  {value}")
    return "\n".join(lines)
