"""The flight recorder: an always-on, bounded post-mortem buffer.

A production timing service cannot afford to trace everything all the
time, but when a request fails the *recent* history is exactly what a
post-mortem needs.  The :class:`FlightRecorder` is the compromise: a
thread-safe, fixed-capacity ring buffer that passively captures

* the last N **completed spans** (name, wall seconds, error, and the
  ``request_id`` baggage when present) — fed by
  :func:`repro.obs.trace.span` through a one-``is None``-check seam,
  so the hot path cost is one lock + one deque append;
* the last M **service requests** (verb, request id, design, cache-key
  prefix, cache hit/miss, latency, ok/error) — fed by the
  :class:`~repro.service.engine.TimingService` dispatch path;
* the last E **error records** with full tracebacks.

The recorder never grows past its capacities (``collections.deque``
with ``maxlen``), never raises into the paths that feed it, and dumps
to a schema-versioned JSON document (:meth:`FlightRecorder.dump` /
:meth:`FlightRecorder.save_json`) that ``repro-sta obs-report
--flight`` renders and :func:`repro.service.batch.serve` writes
automatically on any error-path exit — so every exit-2 comes with its
recent history.  See ``docs/observability.md`` and the dump schema in
``docs/formats.md``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass
from typing import Any

#: Bump on any backward-incompatible change to the dump document.
FLIGHT_SCHEMA_VERSION = 1

#: Default ring capacities: sized so a dump stays a few hundred KB at
#: most while still covering minutes of moderate service traffic.
DEFAULT_MAX_SPANS = 256
DEFAULT_MAX_REQUESTS = 512
DEFAULT_MAX_ERRORS = 64


@dataclass(frozen=True)
class SpanRecord:
    """One completed span, reduced to what a post-mortem needs."""

    name: str
    seconds: float
    error: "str | None" = None
    request_id: "str | None" = None
    when: float = 0.0  #: time.time() at close


@dataclass(frozen=True)
class RequestRecord:
    """One service request as the dispatch layer saw it.

    ``cached`` is ``None`` for control verbs (``stats``, ``health``,
    ``metrics_export``) — they never touch the artifact cache, so a
    cache-hit-ratio SLO must not count them.
    """

    verb: str
    request_id: str = ""
    design: str = ""
    key_prefix: str = ""
    cached: "bool | None" = None
    ok: bool = True
    seconds: float = 0.0
    error: "str | None" = None
    when: float = 0.0


@dataclass(frozen=True)
class ErrorRecord:
    """One captured failure, traceback included."""

    kind: str
    message: str
    traceback: str = ""
    request_id: "str | None" = None
    when: float = 0.0


@dataclass
class _Totals:
    """Lifetime counts (the rings only retain the newest entries)."""

    spans: int = 0
    requests: int = 0
    errors: int = 0


class FlightRecorder:
    """Thread-safe fixed-capacity rings of spans/requests/errors.

    One lock guards all three rings: every feed path does a single
    append under it, so records are never torn and the capacity bound
    holds under arbitrary concurrency (hammer-tested in
    ``tests/obs/test_flight.py``).
    """

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS,
                 max_requests: int = DEFAULT_MAX_REQUESTS,
                 max_errors: int = DEFAULT_MAX_ERRORS):
        self._spans: "deque[SpanRecord]" = deque(maxlen=max_spans)
        self._requests: "deque[RequestRecord]" = deque(maxlen=max_requests)
        self._errors: "deque[ErrorRecord]" = deque(maxlen=max_errors)
        self._totals = _Totals()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Feed paths (never raise)
    # ------------------------------------------------------------------
    def record_span(self, name: str, seconds: float,
                    error: "str | None" = None,
                    request_id: "str | None" = None) -> None:
        record = SpanRecord(
            name=name, seconds=seconds, error=error,
            request_id=request_id, when=time.time(),
        )
        with self._lock:
            self._spans.append(record)
            self._totals.spans += 1

    def record_request(self, verb: str, request_id: str = "",
                       design: str = "", key_prefix: str = "",
                       cached: "bool | None" = None, ok: bool = True,
                       seconds: float = 0.0,
                       error: "str | None" = None) -> None:
        record = RequestRecord(
            verb=verb, request_id=request_id, design=design,
            key_prefix=key_prefix, cached=cached, ok=ok,
            seconds=seconds, error=error, when=time.time(),
        )
        with self._lock:
            self._requests.append(record)
            self._totals.requests += 1

    def record_error(self, kind: str, message: str, traceback: str = "",
                     request_id: "str | None" = None) -> None:
        record = ErrorRecord(
            kind=kind, message=message, traceback=traceback,
            request_id=request_id, when=time.time(),
        )
        with self._lock:
            self._errors.append(record)
            self._totals.errors += 1

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def spans(self) -> "list[SpanRecord]":
        with self._lock:
            return list(self._spans)

    def requests(self) -> "list[RequestRecord]":
        with self._lock:
            return list(self._requests)

    def errors(self) -> "list[ErrorRecord]":
        with self._lock:
            return list(self._errors)

    def clear(self) -> None:
        """Drop everything (tests / per-session isolation)."""
        with self._lock:
            self._spans.clear()
            self._requests.clear()
            self._errors.clear()
            self._totals = _Totals()

    # ------------------------------------------------------------------
    # Dumping
    # ------------------------------------------------------------------
    def dump(self) -> "dict[str, Any]":
        """The schema-versioned post-mortem document (JSON-able)."""
        with self._lock:
            spans = [asdict(r) for r in self._spans]
            requests = [asdict(r) for r in self._requests]
            errors = [asdict(r) for r in self._errors]
            totals = {
                "spans": self._totals.spans,
                "requests": self._totals.requests,
                "errors": self._totals.errors,
            }
        return {
            "schema_version": FLIGHT_SCHEMA_VERSION,
            "dumped_at": time.time(),
            "pid": os.getpid(),
            "recorded": totals,       # lifetime counts
            "retained": {             # what the rings still hold
                "spans": len(spans),
                "requests": len(requests),
                "errors": len(errors),
            },
            "spans": spans,
            "requests": requests,
            "errors": errors,
        }

    def save_json(self, path: Any) -> None:
        """Write the dump atomically (tmp file + ``os.replace``).

        Atomic so a dump racing a crash (its whole reason to exist)
        never leaves a half-written document behind.
        """
        document = self.dump()
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(document, fh, indent=2, default=str)
            fh.write("\n")
        os.replace(tmp, path)


_default = FlightRecorder()


def default_flight_recorder() -> FlightRecorder:
    """The process-wide recorder every feed path writes to."""
    return _default


def load_flight(path: Any) -> "dict[str, Any] | None":
    """Load a flight dump, tolerantly.

    Returns ``None`` when the file is missing, empty, or not a JSON
    object — ``obs-report --flight`` degrades to a note, matching
    :func:`repro.obs.report.load_metrics`.
    """
    try:
        with open(path) as fh:
            text = fh.read()
    except OSError:
        return None
    text = text.strip()
    if not text:
        return None
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        return None
    return data if isinstance(data, dict) else None


def format_flight(dump: "dict[str, Any]", top: "int | None" = None) -> str:
    """Render a flight dump as the recent-requests table.

    Newest requests last (the tail is what a post-mortem reads first);
    error records follow with their tracebacks truncated to the last
    frame line.  ``top`` keeps only the newest N request rows.
    """
    requests = list(dump.get("requests") or [])
    errors = list(dump.get("errors") or [])
    retained = dump.get("retained") or {}
    recorded = dump.get("recorded") or {}
    lines = [
        f"schema v{dump.get('schema_version', '?')}, pid "
        f"{dump.get('pid', '?')}: "
        f"{retained.get('requests', len(requests))} request(s) retained "
        f"of {recorded.get('requests', '?')} recorded, "
        f"{retained.get('errors', len(errors))} error(s), "
        f"{retained.get('spans', '?')} span(s)",
    ]
    if top is not None and top > 0 and len(requests) > top:
        dropped = len(requests) - top
        requests = requests[-top:]
        lines.append(f"... ({dropped} older request(s) hidden; raise --top)")
    if requests:
        header = (
            f"{'verb':<15} {'design':<8} {'cache':<6} {'ok':<4} "
            f"{'seconds':>9}  {'request_id':<16} error"
        )
        lines += ["", header, "-" * len(header)]
        for record in requests:
            cached = record.get("cached")
            cache = "-" if cached is None else ("hit" if cached else "miss")
            error = record.get("error") or ""
            lines.append(
                f"{record.get('verb', '?'):<15} "
                f"{record.get('design') or '-':<8} {cache:<6} "
                f"{'yes' if record.get('ok') else 'NO':<4} "
                f"{record.get('seconds', 0.0):>9.4f}  "
                f"{record.get('request_id') or '-':<16} {error}"
            )
    else:
        lines.append("(no requests recorded)")
    if errors:
        lines.append("")
        lines.append(f"{len(errors)} recent error(s):")
        for record in errors:
            rid = record.get("request_id")
            tag = f" [{rid}]" if rid else ""
            lines.append(
                f"  {record.get('kind', '?')}{tag}: "
                f"{record.get('message', '')}"
            )
            tb = (record.get("traceback") or "").strip().splitlines()
            if tb:
                lines.append(f"    {tb[-1].strip()}")
    return "\n".join(lines)


# Install the default recorder as the span-close seam: importing this
# module (which ``repro.obs`` always does) turns passive span capture
# on.  Kept at the bottom so the import cannot run before the
# recorder exists.
from repro.obs import trace as _trace  # noqa: E402

_trace.set_flight_recorder(_default)

__all__ = [
    "FLIGHT_SCHEMA_VERSION",
    "ErrorRecord",
    "FlightRecorder",
    "RequestRecord",
    "SpanRecord",
    "default_flight_recorder",
    "format_flight",
    "load_flight",
]
