"""Per-iteration solver telemetry.

The solvers (:func:`~repro.mgba.solvers.scg.solve_scg`,
:func:`~repro.mgba.solvers.gd.solve_gd`, and the Algorithm-1 wrapper)
publish one :class:`IterationStats` per outer iteration to whoever
subscribed — either a callback passed directly as ``on_iteration=`` or
a process-wide subscriber registered here.

Design constraints (see the solver docstrings):

* **No RNG perturbation** — stats are read-only views of values the
  solver already computed; a telemetry-enabled run is bit-identical to
  a silent one for the same seed.
* **Cheap no-subscriber path** — solvers snapshot the subscriber tuple
  once per solve and guard the hot loop with a single truthiness check;
  with nobody listening the cost is one ``if`` per iteration.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class IterationStats:
    """One solver iteration, as seen from outside.

    ``objective`` is ``None`` on iterations where the solver did not
    sample it (SCG samples every ``objective_every`` iterations — the
    full objective is exactly the cost stochastic solvers avoid).
    ``beta`` is the Polak-Ribiere mixing coefficient (0.0 for plain
    gradient descent).  ``step`` is the applied step length alpha_k.
    """

    solver: str
    iteration: int
    grad_norm: float
    step: float
    beta: float = 0.0
    objective: float | None = None
    x_change: float = 0.0
    #: Rows visited this iteration (k'' for SCG, m for GD).
    rows: int = 0


IterationCallback = Callable[[IterationStats], None]

_subscribers: list[IterationCallback] = []


def subscribe(callback: IterationCallback) -> IterationCallback:
    """Register a process-wide per-iteration callback; returns it."""
    _subscribers.append(callback)
    return callback


def unsubscribe(callback: IterationCallback) -> None:
    """Remove a previously registered callback (no-op if absent)."""
    try:
        _subscribers.remove(callback)
    except ValueError:
        pass


def iteration_callbacks(
    extra: Optional[IterationCallback] = None,
) -> tuple[IterationCallback, ...]:
    """Solver-side snapshot: global subscribers plus a local callback.

    Returns an (often empty) tuple the solver captures once per run —
    subscription changes mid-solve intentionally do not take effect.
    """
    if extra is None:
        return tuple(_subscribers)
    return tuple(_subscribers) + (extra,)


@contextmanager
def record_iterations(into: "list[IterationStats] | None" = None):
    """Scope-subscribe a list collector; yields the list.

    ::

        with record_iterations() as stats:
            solve_scg(problem, seed=0)
        print(stats[-1].grad_norm)
    """
    collected: list[IterationStats] = [] if into is None else into
    callback = collected.append
    subscribe(callback)
    try:
        yield collected
    finally:
        unsubscribe(callback)
