"""Declarative service-level objectives over the flight window.

An SLO spec is a small JSON or TOML document declaring what "healthy"
means for the serve path: per-verb p95/p99 latency ceilings, an
error-rate budget, and a cache-hit-ratio floor.  Objectives are
evaluated over the **flight-recorder request window** (the last M
requests the :class:`~repro.obs.flight.FlightRecorder` retained, or a
saved flight dump), which makes the evaluation cheap, always
available, and exactly as recent as the post-mortem data — the same
triad a production timing-signoff service runs behind.

Spec shape (JSON shown; ``.toml`` loads the same keys)::

    {
      "schema_version": 1,
      "name": "serve-path defaults",
      "min_requests": 5,
      "latency": {
        "*":   {"p95": 30.0, "p99": 60.0},
        "sta": {"p95": 10.0}
      },
      "error_rate_max": 0.05,
      "cache_hit_ratio_min": 0.0
    }

``latency`` maps a verb (or ``"*"`` for all) to percentile ceilings in
**seconds**; ``error_rate_max`` budgets ``errors / requests``;
``cache_hit_ratio_min`` floors ``hits / (hits + misses)`` over query
requests (control verbs never touch the cache and are excluded).  An
objective whose window holds fewer than ``min_requests`` matching
requests is *skipped*, not failed — a freshly started service is not
in violation.  Results surface through the extended ``health`` verb,
``repro-sta slo-check``, and the advisory CI gate against the
committed ``slo/default.json``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

try:
    import tomllib as _tomllib  # Python >= 3.11
except ImportError:  # pragma: no cover - py3.10
    _tomllib = None  # type: ignore[assignment]

#: Bump on any backward-incompatible spec-document change.
SLO_SCHEMA_VERSION = 1

#: Objective kinds and the comparison direction each implies.
_CEILING_KINDS = ("latency_p95", "latency_p99", "error_rate")
_FLOOR_KINDS = ("cache_hit_ratio",)
OBJECTIVE_KINDS = _CEILING_KINDS + _FLOOR_KINDS


class SLOError(ValueError):
    """A malformed SLO spec (bad file, unknown key, bad threshold)."""


@dataclass(frozen=True)
class Objective:
    """One declarative objective: kind, verb scope, and threshold.

    Latency and error-rate thresholds are *ceilings* (actual must stay
    at or under); the cache-hit ratio is a *floor*.
    """

    kind: str
    threshold: float
    verb: str = "*"

    def __post_init__(self):
        if self.kind not in OBJECTIVE_KINDS:
            raise SLOError(
                f"unknown objective kind {self.kind!r}; "
                f"choose from {OBJECTIVE_KINDS}"
            )
        if not math.isfinite(self.threshold) or self.threshold < 0:
            raise SLOError(
                f"objective {self.kind} ({self.verb}): threshold must be "
                f"a finite non-negative number, got {self.threshold!r}"
            )

    @property
    def is_floor(self) -> bool:
        return self.kind in _FLOOR_KINDS

    def describe(self) -> str:
        scope = "all verbs" if self.verb == "*" else f"verb {self.verb}"
        op = ">=" if self.is_floor else "<="
        return f"{self.kind} ({scope}) {op} {self.threshold:g}"


@dataclass(frozen=True)
class SLOSpec:
    """A named set of objectives plus the evaluation window floor."""

    objectives: "tuple[Objective, ...]"
    min_requests: int = 1
    name: str = ""

    @classmethod
    def from_dict(cls, payload: "Mapping[str, Any]") -> "SLOSpec":
        version = payload.get("schema_version", SLO_SCHEMA_VERSION)
        if version != SLO_SCHEMA_VERSION:
            raise SLOError(
                f"unsupported SLO schema_version {version!r} "
                f"(this build speaks {SLO_SCHEMA_VERSION})"
            )
        objectives: "list[Objective]" = []
        latency = payload.get("latency") or {}
        if not isinstance(latency, Mapping):
            raise SLOError("'latency' must map verb -> {p95/p99: seconds}")
        for verb, ceilings in sorted(latency.items()):
            if not isinstance(ceilings, Mapping):
                raise SLOError(
                    f"latency[{verb!r}] must be a {{p95/p99: seconds}} map"
                )
            for percentile, threshold in sorted(ceilings.items()):
                if percentile not in ("p95", "p99"):
                    raise SLOError(
                        f"latency[{verb!r}]: unknown percentile "
                        f"{percentile!r} (p95/p99)"
                    )
                objectives.append(Objective(
                    kind=f"latency_{percentile}",
                    threshold=float(threshold), verb=str(verb),
                ))
        if "error_rate_max" in payload:
            objectives.append(Objective(
                kind="error_rate",
                threshold=float(payload["error_rate_max"]),
            ))
        if "cache_hit_ratio_min" in payload:
            objectives.append(Objective(
                kind="cache_hit_ratio",
                threshold=float(payload["cache_hit_ratio_min"]),
            ))
        if not objectives:
            raise SLOError(
                "SLO spec declares no objectives (latency / "
                "error_rate_max / cache_hit_ratio_min)"
            )
        return cls(
            objectives=tuple(objectives),
            min_requests=int(payload.get("min_requests", 1)),
            name=str(payload.get("name", "")),
        )


def load_slo_spec(path: "str | Path") -> SLOSpec:
    """Load a spec file; ``.toml`` via ``tomllib``, anything else JSON."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise SLOError(f"cannot read SLO spec {path}: {exc}") from exc
    if path.suffix.lower() == ".toml":
        if _tomllib is None:
            raise SLOError(
                f"{path}: TOML specs need Python >= 3.11 (tomllib); "
                "use the JSON form on this interpreter"
            )
        try:
            payload = _tomllib.loads(raw.decode())
        except _tomllib.TOMLDecodeError as exc:
            raise SLOError(f"{path} is not valid TOML: {exc}") from exc
    else:
        try:
            payload = json.loads(raw.decode())
        except json.JSONDecodeError as exc:
            raise SLOError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, Mapping):
        raise SLOError(f"{path}: SLO spec must be a JSON/TOML object")
    return SLOSpec.from_dict(payload)


@dataclass(frozen=True)
class ObjectiveResult:
    """One objective's verdict over the window."""

    objective: Objective
    actual: "float | None"
    ok: bool
    skipped: bool = False
    reason: str = ""

    def to_dict(self) -> "dict[str, Any]":
        return {
            "kind": self.objective.kind,
            "verb": self.objective.verb,
            "threshold": self.objective.threshold,
            "actual": self.actual,
            "ok": self.ok,
            "skipped": self.skipped,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class SLOReport:
    """The full evaluation: overall verdict plus per-objective rows."""

    ok: bool
    window: int  #: requests the evaluation saw
    results: "tuple[ObjectiveResult, ...]"
    spec_name: str = ""

    @property
    def violations(self) -> "tuple[ObjectiveResult, ...]":
        return tuple(r for r in self.results if not r.ok and not r.skipped)

    def to_dict(self) -> "dict[str, Any]":
        return {
            "ok": self.ok,
            "window": self.window,
            "spec": self.spec_name,
            "objectives": [r.to_dict() for r in self.results],
        }


def _request_fields(record: Any) -> "tuple[str, float, bool, bool | None]":
    """(verb, seconds, ok, cached) from a RequestRecord or a dump dict."""
    if isinstance(record, Mapping):
        return (
            str(record.get("verb", "")),
            float(record.get("seconds", 0.0)),
            bool(record.get("ok", True)),
            record.get("cached"),
        )
    return (record.verb, record.seconds, record.ok, record.cached)


def _percentile(values: "list[float]", p: float) -> float:
    """Exact nearest-rank percentile of a non-empty value list."""
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


def evaluate_slo(spec: SLOSpec, requests: "Iterable[Any]") -> SLOReport:
    """Judge every objective against a request window.

    ``requests`` may be live :class:`~repro.obs.flight.RequestRecord`
    values (``FlightRecorder.requests()``) or the dict rows of a saved
    flight dump's ``"requests"`` list — the CI gate replays dumps.
    """
    rows = [_request_fields(r) for r in requests]
    results: "list[ObjectiveResult]" = []
    for objective in spec.objectives:
        if objective.kind in ("latency_p95", "latency_p99"):
            scoped = [
                seconds for verb, seconds, _ok, _cached in rows
                if objective.verb in ("*", verb)
            ]
            if len(scoped) < spec.min_requests:
                results.append(ObjectiveResult(
                    objective=objective, actual=None, ok=True, skipped=True,
                    reason=f"{len(scoped)} matching request(s) in window "
                           f"(< min_requests {spec.min_requests})",
                ))
                continue
            percent = 95.0 if objective.kind == "latency_p95" else 99.0
            actual = _percentile(scoped, percent)
            results.append(ObjectiveResult(
                objective=objective, actual=actual,
                ok=actual <= objective.threshold,
            ))
        elif objective.kind == "error_rate":
            if len(rows) < spec.min_requests:
                results.append(ObjectiveResult(
                    objective=objective, actual=None, ok=True, skipped=True,
                    reason=f"{len(rows)} request(s) in window "
                           f"(< min_requests {spec.min_requests})",
                ))
                continue
            failed = sum(1 for _v, _s, ok, _c in rows if not ok)
            actual = failed / len(rows)
            results.append(ObjectiveResult(
                objective=objective, actual=actual,
                ok=actual <= objective.threshold,
            ))
        else:  # cache_hit_ratio
            cacheable = [
                cached for _v, _s, _ok, cached in rows if cached is not None
            ]
            if len(cacheable) < spec.min_requests:
                results.append(ObjectiveResult(
                    objective=objective, actual=None, ok=True, skipped=True,
                    reason=f"{len(cacheable)} cacheable request(s) in "
                           f"window (< min_requests {spec.min_requests})",
                ))
                continue
            actual = sum(1 for c in cacheable if c) / len(cacheable)
            results.append(ObjectiveResult(
                objective=objective, actual=actual,
                ok=actual >= objective.threshold,
            ))
    return SLOReport(
        ok=all(r.ok for r in results),
        window=len(rows),
        results=tuple(results),
        spec_name=spec.name,
    )


def format_slo_report(report: SLOReport) -> str:
    """Render the evaluation as the ``slo-check`` verdict table."""
    title = f" ({report.spec_name})" if report.spec_name else ""
    lines = [
        f"SLO evaluation{title}: "
        f"{'PASS' if report.ok else 'FAIL'} over "
        f"{report.window} request(s)",
    ]
    if report.results:
        header = (
            f"{'objective':<34} {'threshold':>10} {'actual':>10} verdict"
        )
        lines += ["", header, "-" * len(header)]
        for row in report.results:
            if row.skipped:
                verdict = f"skipped ({row.reason})"
                actual = "-"
            else:
                verdict = "ok" if row.ok else "VIOLATION"
                actual = f"{row.actual:.4g}"
            lines.append(
                f"{row.objective.describe():<34} "
                f"{row.objective.threshold:>10.4g} {actual:>10} {verdict}"
            )
    return "\n".join(lines)


__all__ = [
    "OBJECTIVE_KINDS",
    "SLO_SCHEMA_VERSION",
    "Objective",
    "ObjectiveResult",
    "SLOError",
    "SLOReport",
    "SLOSpec",
    "evaluate_slo",
    "format_slo_report",
    "load_slo_spec",
]
