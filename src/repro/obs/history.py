"""Benchmark history: an append-only time series of bench runs.

The per-run ``bench_metrics/BENCH_<name>.json`` snapshots capture *one*
run in full; this module is the trajectory across runs.  Every bench
executed under ``benchmarks/conftest.py`` appends one JSONL record to a
history file (default ``bench_metrics/history.jsonl``), keyed by

* ``sha`` — the git commit the run was taken at,
* ``bench`` — the pytest node name (``test_table4_solver_race``),
* ``fingerprint`` — a digest of the problem actually run (design
  subset, transform budget, worker count), so a ``D1``-only CI smoke
  run never gets compared against a full ten-design sweep.

Records carry the bench's wall seconds plus a compact scalar summary
of the metrics registry (counter values, histogram count/mean).  The
file is append-only and line-oriented: concatenating two histories is
a merge, a truncated last line is skipped, and nothing ever rewrites
old records.

:func:`compare` turns a history into per-bench verdicts — the latest
run against the *median* of the earlier runs with the same
(bench, fingerprint) key, flagged when outside a relative tolerance
band — and :func:`format_markdown` renders the trend as a table per
bench.  ``repro-sta bench-history`` is the CLI over all of this; its
``--check`` mode stays advisory until a series has
``min_points`` runs, so a young history warns instead of failing CI.
"""

from __future__ import annotations

import json
import os
import subprocess
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from statistics import median
from typing import Any, Iterable

#: Version of the history record schema (bump on incompatible change;
#: readers skip records of a different schema instead of crashing).
HISTORY_SCHEMA = 1


def git_sha(short: int = 12) -> str:
    """The current commit hash, or ``"unknown"`` outside a checkout.

    Prefers the live repository; falls back to ``GITHUB_SHA`` (set in
    CI even for shallow or detached checkouts).
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", f"--short={short}", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    env = os.environ.get("GITHUB_SHA", "")
    return env[:short] if env else "unknown"


def utc_now() -> str:
    """ISO-8601 UTC timestamp for new records."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


@dataclass(frozen=True)
class BenchRecord:
    """One bench run: identity key + measured outcome."""

    sha: str
    bench: str
    fingerprint: str
    seconds: float
    when: str = ""
    metrics: "dict[str, float]" = field(default_factory=dict)
    schema: int = HISTORY_SCHEMA

    @property
    def key(self) -> "tuple[str, str]":
        """The series this record belongs to (bench, fingerprint)."""
        return (self.bench, self.fingerprint)

    def to_dict(self) -> "dict[str, Any]":
        return asdict(self)

    @classmethod
    def from_dict(cls, record: "dict[str, Any]") -> "BenchRecord":
        return cls(
            sha=str(record.get("sha", "unknown")),
            bench=str(record["bench"]),
            fingerprint=str(record.get("fingerprint", "")),
            seconds=float(record["seconds"]),
            when=str(record.get("when", "")),
            metrics={
                str(k): float(v)
                for k, v in (record.get("metrics") or {}).items()
            },
            schema=int(record.get("schema", HISTORY_SCHEMA)),
        )


def metrics_summary(snapshot: "dict[str, Any]",
                    limit: int = 64) -> "dict[str, float]":
    """Scalar digest of a registry snapshot for one history record.

    Counters and gauges contribute their value; histograms contribute
    ``<name>.count`` and ``<name>.mean`` — enough to trend solver
    iterations or STA-update cost without archiving every bucket.
    """
    summary: "dict[str, float]" = {}
    for name in sorted(snapshot):
        if len(summary) >= limit:
            break
        record = snapshot[name]
        if not isinstance(record, dict):
            continue
        kind = record.get("type")
        if kind == "histogram":
            count = record.get("count") or 0
            if count:
                summary[f"{name}.count"] = float(count)
                summary[f"{name}.mean"] = float(record.get("mean", 0.0))
        elif record.get("value") is not None:
            summary[name] = float(record["value"])
    return summary


def append_record(path: "str | Path", record: BenchRecord) -> None:
    """Append one record (creating the file and its directory)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as fh:
        fh.write(json.dumps(record.to_dict(), default=str) + "\n")


def load_history(path: "str | Path") -> "list[BenchRecord]":
    """Every readable record, in file (= append) order.

    Tolerant by design: a missing file is an empty history, and a
    malformed or foreign-schema line (a truncated append, a future
    writer) is skipped rather than fatal.
    """
    path = Path(path)
    if not path.exists():
        return []
    records: "list[BenchRecord]" = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
                if raw.get("schema", HISTORY_SCHEMA) != HISTORY_SCHEMA:
                    continue
                records.append(BenchRecord.from_dict(raw))
            except (ValueError, KeyError, TypeError):
                continue
    return records


def series(records: "Iterable[BenchRecord]") \
        -> "dict[tuple[str, str], list[BenchRecord]]":
    """Group records into per-(bench, fingerprint) series, append order."""
    grouped: "dict[tuple[str, str], list[BenchRecord]]" = {}
    for record in records:
        grouped.setdefault(record.key, []).append(record)
    return grouped


@dataclass(frozen=True)
class Comparison:
    """The latest run of one series against its own baseline."""

    bench: str
    fingerprint: str
    latest: BenchRecord
    baseline_seconds: "float | None"  #: median of earlier runs; None if first
    points: int                       #: runs in the series, latest included
    ratio: "float | None"             #: latest / baseline
    status: str                       #: "ok" | "regression" | "improvement" | "new"

    @property
    def delta_percent(self) -> "float | None":
        if self.ratio is None:
            return None
        return (self.ratio - 1.0) * 100.0


def compare(records: "Iterable[BenchRecord]",
            tolerance: float = 0.2) -> "list[Comparison]":
    """Judge the latest run of every series against its history.

    The baseline is the **median** seconds of all earlier runs in the
    series — robust to one noisy CI machine — and the verdict is a
    relative band: ``latest > baseline * (1 + tolerance)`` is a
    regression, ``< baseline * (1 - tolerance)`` an improvement,
    anything else ``ok``.  A series with a single run is ``new``.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    verdicts: "list[Comparison]" = []
    for (bench, fingerprint), runs in sorted(series(records).items()):
        latest = runs[-1]
        earlier = runs[:-1]
        if not earlier:
            verdicts.append(Comparison(
                bench=bench, fingerprint=fingerprint, latest=latest,
                baseline_seconds=None, points=len(runs),
                ratio=None, status="new",
            ))
            continue
        baseline = median(r.seconds for r in earlier)
        ratio = latest.seconds / baseline if baseline > 0 else None
        if ratio is None:
            status = "ok"
        elif ratio > 1.0 + tolerance:
            status = "regression"
        elif ratio < 1.0 - tolerance:
            status = "improvement"
        else:
            status = "ok"
        verdicts.append(Comparison(
            bench=bench, fingerprint=fingerprint, latest=latest,
            baseline_seconds=baseline, points=len(runs),
            ratio=ratio, status=status,
        ))
    return verdicts


def check(records: "Iterable[BenchRecord]", tolerance: float = 0.2,
          min_points: int = 3) \
        -> "tuple[list[Comparison], list[Comparison]]":
    """Split regressions into hard failures and advisory warnings.

    A regression only *fails* once its series has ``min_points`` runs
    (latest included) — below that the history is too young to trust,
    so the same finding is a warning.  Returns
    ``(failures, warnings)``.
    """
    failures: "list[Comparison]" = []
    warnings: "list[Comparison]" = []
    for verdict in compare(records, tolerance=tolerance):
        if verdict.status != "regression":
            continue
        if verdict.points >= min_points:
            failures.append(verdict)
        else:
            warnings.append(verdict)
    return failures, warnings


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fingerprint_label(fingerprint: str) -> str:
    return fingerprint[:8] if fingerprint else "-"


def format_list(records: "Iterable[BenchRecord]") -> str:
    """Fixed-width summary: one line per series, latest run shown."""
    grouped = series(records)
    if not grouped:
        return "(empty history)"
    rows = []
    for (bench, fingerprint), runs in sorted(grouped.items()):
        latest = runs[-1]
        rows.append((
            bench, _fingerprint_label(fingerprint), str(len(runs)),
            latest.sha, f"{latest.seconds:.3f}", latest.when or "-",
        ))
    headers = ("bench", "fingerprint", "runs", "latest sha",
               "seconds", "when")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
    ]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_compare(verdicts: "Iterable[Comparison]") -> str:
    """One line per series: latest vs baseline with its verdict."""
    verdicts = list(verdicts)
    if not verdicts:
        return "(empty history)"
    lines = []
    for v in verdicts:
        if v.baseline_seconds is None:
            lines.append(
                f"new         {v.bench} [{_fingerprint_label(v.fingerprint)}]"
                f"  {v.latest.seconds:.3f}s (first run)"
            )
        else:
            lines.append(
                f"{v.status:<11} {v.bench}"
                f" [{_fingerprint_label(v.fingerprint)}]"
                f"  {v.latest.seconds:.3f}s vs median"
                f" {v.baseline_seconds:.3f}s"
                f" ({v.delta_percent:+.1f}%, n={v.points})"
            )
    return "\n".join(lines)


def format_markdown(records: "Iterable[BenchRecord]",
                    tolerance: float = 0.2) -> str:
    """Markdown trend report: a table per bench series plus verdicts."""
    grouped = series(records)
    if not grouped:
        return "# Benchmark history\n\n(empty history)\n"
    verdicts = {
        (v.bench, v.fingerprint): v
        for v in compare(records, tolerance=tolerance)
    }
    lines = ["# Benchmark history", ""]
    for (bench, fingerprint), runs in sorted(grouped.items()):
        verdict = verdicts[(bench, fingerprint)]
        badge = {
            "regression": "🔺 regression",
            "improvement": "🔻 improvement",
            "new": "new",
        }.get(verdict.status, "ok")
        lines.append(
            f"## `{bench}` (fingerprint `"
            f"{_fingerprint_label(fingerprint)}`) — {badge}"
        )
        lines.append("")
        lines.append("| sha | when | seconds | Δ vs prev |")
        lines.append("|---|---|---:|---:|")
        previous: "float | None" = None
        for run in runs:
            if previous and previous > 0:
                delta = f"{(run.seconds / previous - 1.0) * 100.0:+.1f}%"
            else:
                delta = "-"
            lines.append(
                f"| `{run.sha}` | {run.when or '-'} |"
                f" {run.seconds:.3f} | {delta} |"
            )
            previous = run.seconds
        lines.append("")
    return "\n".join(lines)
