"""Cell-library substrate: NLDM-style lookup tables and Liberty-lite I/O.

The library models the subset of Liberty needed for gate-level STA with
AOCV derating:

* :class:`~repro.liberty.lut.LookupTable2D` — delay / output-slew tables
  indexed by (input slew, output load) with bilinear interpolation.
* :class:`~repro.liberty.cell.Cell` / :class:`~repro.liberty.cell.Pin` /
  :class:`~repro.liberty.cell.TimingArc` — cell structure.
* :class:`~repro.liberty.library.Library` — named cells plus footprint
  groups ("size families") used by the sizing transforms.
* :func:`~repro.liberty.builder.make_default_library` — the realistic
  built-in library used by the design suite.
* :func:`~repro.liberty.parser.parse_liberty` /
  :func:`~repro.liberty.writer.write_liberty` — Liberty-lite text format.
"""

from repro.liberty.lut import LookupTable2D
from repro.liberty.cell import ArcKind, Cell, Pin, PinDirection, TimingArc
from repro.liberty.library import Library
from repro.liberty.builder import make_default_library
from repro.liberty.parser import parse_liberty
from repro.liberty.writer import write_liberty

__all__ = [
    "LookupTable2D",
    "ArcKind",
    "Cell",
    "Pin",
    "PinDirection",
    "TimingArc",
    "Library",
    "make_default_library",
    "parse_liberty",
    "write_liberty",
]
