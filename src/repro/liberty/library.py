"""Library container: cells by name plus footprint (size-family) groups."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LibertyError
from repro.liberty.cell import Cell


@dataclass
class Library:
    """A named collection of cells.

    Cells sharing a ``footprint`` form a size family (e.g. NAND2_X1,
    NAND2_X2, NAND2_X4): same pins and function, different drive.  The
    sizing transforms of :mod:`repro.opt` step through a family in
    drive-strength order.
    """

    name: str
    cells: dict[str, Cell] = field(default_factory=dict)

    def add_cell(self, cell: Cell) -> Cell:
        """Register a cell; raises on duplicate names."""
        if cell.name in self.cells:
            raise LibertyError(f"library {self.name}: duplicate cell {cell.name}")
        self.cells[cell.name] = cell
        return cell

    def cell(self, name: str) -> Cell:
        """Return the named cell, raising :class:`LibertyError` if absent."""
        try:
            return self.cells[name]
        except KeyError:
            raise LibertyError(f"library {self.name} has no cell {name}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def __len__(self) -> int:
        return len(self.cells)

    def footprint_group(self, footprint: str) -> list[Cell]:
        """All cells of a footprint, sorted by ascending drive strength."""
        group = [c for c in self.cells.values() if c.footprint == footprint]
        group.sort(key=lambda c: (c.drive_strength, c.name))
        return group

    def size_variants(self, cell_name: str) -> list[Cell]:
        """Size family of the named cell (including the cell itself)."""
        return self.footprint_group(self.cell(cell_name).footprint)

    def next_size_up(self, cell_name: str) -> Cell | None:
        """The next stronger variant of a cell, or None at the top."""
        cell = self.cell(cell_name)
        group = self.size_variants(cell_name)
        idx = group.index(cell)
        return group[idx + 1] if idx + 1 < len(group) else None

    def next_size_down(self, cell_name: str) -> Cell | None:
        """The next weaker variant of a cell, or None at the bottom."""
        cell = self.cell(cell_name)
        group = self.size_variants(cell_name)
        idx = group.index(cell)
        return group[idx - 1] if idx > 0 else None

    def vt_variant(self, cell_name: str, vt: str) -> Cell | None:
        """The same function + drive at another threshold voltage.

        Returns None when the library has no such flavour (e.g. buffers
        and flops are characterized at SVT only).
        """
        cell = self.cell(cell_name)
        if cell.vt == vt:
            return cell
        for candidate in self.cells.values():
            if (
                candidate.function == cell.function
                and candidate.drive_strength == cell.drive_strength
                and candidate.vt == vt
            ):
                return candidate
        return None

    def vt_flavours(self, cell_name: str) -> list[Cell]:
        """All VT flavours of a cell at its drive, leakiest first."""
        cell = self.cell(cell_name)
        flavours = [
            c for c in self.cells.values()
            if c.function == cell.function
            and c.drive_strength == cell.drive_strength
        ]
        flavours.sort(key=lambda c: -c.leakage)
        return flavours

    def buffers(self) -> list[Cell]:
        """All buffer cells, sorted by ascending drive strength."""
        bufs = [c for c in self.cells.values() if c.is_buffer]
        bufs.sort(key=lambda c: (c.drive_strength, c.name))
        return bufs

    def sequential_cells(self) -> list[Cell]:
        """All sequential cells."""
        return [c for c in self.cells.values() if c.is_sequential]

    def combinational_cells(self) -> list[Cell]:
        """All non-sequential cells."""
        return [c for c in self.cells.values() if not c.is_sequential]
