"""Liberty-lite writer: the inverse of :mod:`repro.liberty.parser`.

``parse_liberty(write_liberty(lib))`` round-trips every field the data
model carries (verified by property tests).
"""

from __future__ import annotations

import math
from pathlib import Path

from repro.liberty.cell import ArcKind, Cell, TimingArc
from repro.liberty.library import Library
from repro.liberty.lut import LookupTable2D

_KIND_TO_TIMING_TYPE = {
    ArcKind.COMBINATIONAL: "combinational",
    ArcKind.CLK_TO_Q: "rising_edge",
    ArcKind.SETUP: "setup_rising",
    ArcKind.HOLD: "hold_rising",
}


def _fmt(value: float) -> str:
    # 12 significant digits: enough for exact round-trips of every value
    # the builder produces, short enough to stay readable.
    return f"{value:.12g}"


def _axis_text(values) -> str:
    return ", ".join(_fmt(v) for v in values)


def _emit_table(name: str, table: LookupTable2D, indent: str, out: list[str]) -> None:
    out.append(f"{indent}{name} (tmpl) {{")
    out.append(f'{indent}  index_1 ("{_axis_text(table.rows)}");')
    out.append(f'{indent}  index_2 ("{_axis_text(table.cols)}");')
    rows = ", ".join(f'"{_axis_text(row)}"' for row in table.values)
    out.append(f"{indent}  values ({rows});")
    out.append(f"{indent}}}")


def _emit_delay_timing(arc: TimingArc, indent: str, out: list[str]) -> None:
    out.append(f"{indent}timing () {{")
    out.append(f'{indent}  related_pin : "{arc.from_pin}";')
    out.append(f"{indent}  timing_type : {_KIND_TO_TIMING_TYPE[arc.kind]};")
    _emit_table("cell_rise", arc.delay, indent + "  ", out)
    assert arc.output_slew is not None
    _emit_table("rise_transition", arc.output_slew, indent + "  ", out)
    out.append(f"{indent}}}")


def _emit_constraint_timing(arc: TimingArc, indent: str, out: list[str]) -> None:
    out.append(f"{indent}timing () {{")
    out.append(f'{indent}  related_pin : "{arc.to_pin}";')
    out.append(f"{indent}  timing_type : {_KIND_TO_TIMING_TYPE[arc.kind]};")
    _emit_table("rise_constraint", arc.delay, indent + "  ", out)
    out.append(f"{indent}}}")


def _emit_cell(cell: Cell, out: list[str]) -> None:
    out.append(f"  cell ({cell.name}) {{")
    out.append(f"    area : {_fmt(cell.area)};")
    out.append(f"    cell_leakage_power : {_fmt(cell.leakage)};")
    out.append(f"    drive_strength : {_fmt(cell.drive_strength)};")
    out.append(f'    cell_footprint : "{cell.footprint}";')
    if cell.function != cell.footprint:
        out.append(f'    function_class : "{cell.function}";')
    if cell.vt != "svt":
        out.append(f"    threshold_voltage_group : {cell.vt};")
    if cell.is_buffer:
        out.append("    is_buffer : true;")
    if cell.is_sequential:
        out.append("    ff () { }")
    for pin in cell.pins.values():
        out.append(f"    pin ({pin.name}) {{")
        out.append(f"      direction : {pin.direction.value};")
        if pin.capacitance:
            out.append(f"      capacitance : {_fmt(pin.capacitance)};")
        if pin.is_clock:
            out.append("      clock : true;")
        if not math.isinf(pin.max_capacitance):
            out.append(f"      max_capacitance : {_fmt(pin.max_capacitance)};")
        if not math.isinf(pin.max_transition):
            out.append(f"      max_transition : {_fmt(pin.max_transition)};")
        # Delay arcs are emitted under their destination (output) pin,
        # constraint arcs under their data (from) pin.
        for arc in cell.arcs:
            if arc.kind in (ArcKind.SETUP, ArcKind.HOLD):
                if arc.from_pin == pin.name:
                    _emit_constraint_timing(arc, "      ", out)
            elif arc.to_pin == pin.name:
                _emit_delay_timing(arc, "      ", out)
        out.append("    }")
    out.append("  }")


def write_liberty(library: Library) -> str:
    """Serialize a :class:`Library` to Liberty-lite text."""
    out: list[str] = [f"library ({library.name}) {{"]
    for cell in library.cells.values():
        _emit_cell(cell, out)
    out.append("}")
    out.append("")
    return "\n".join(out)


def save_liberty(library: Library, path) -> None:
    """Write a library to disk in Liberty-lite format."""
    Path(path).write_text(write_liberty(library))
