"""Programmatic construction of a realistic default cell library.

The default library models a generic nanometre standard-cell family.
Delay follows the usual first-order model

    delay(slew, load) = intrinsic + slew_sens * slew + R_drive * load

sampled onto NLDM grids, where ``R_drive`` shrinks with drive strength
and input capacitance grows with it — so upsizing a gate speeds up the
gate itself but loads its fanin, exactly the trade-off the closure
optimizer has to navigate.  Area and leakage grow with drive strength
(sub-linearly and super-linearly respectively), which is what makes
pessimism expensive: every unnecessary upsize costs leakage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.liberty.cell import ArcKind, Cell, Pin, PinDirection, TimingArc
from repro.liberty.library import Library
from repro.liberty.lut import LookupTable2D

#: Input-slew breakpoints (ps) shared by all characterized tables.
SLEW_AXIS = (5.0, 20.0, 60.0, 150.0)
#: Output-load breakpoints (fF) shared by all characterized tables.
LOAD_AXIS = (1.0, 4.0, 16.0, 64.0)

#: Drive strengths characterized for ordinary gates.
GATE_DRIVES = (1, 2, 4, 8)
#: Drive strengths characterized for buffers (used as repeaters).
BUFFER_DRIVES = (1, 2, 4, 8, 16)

#: Threshold-voltage flavours: (suffix, delay multiplier, leakage
#: multiplier).  LVT trades leakage for speed, HVT the reverse; SVT is
#: the default flavour instances start at.
VT_FLAVOURS = (
    ("svt", 1.00, 1.00),
    ("lvt", 0.85, 2.50),
    ("hvt", 1.25, 0.40),
)


@dataclass(frozen=True)
class _GateSpec:
    """Base parameters of one logic function at drive strength X1."""

    footprint: str
    inputs: tuple[str, ...]
    output: str
    intrinsic: float      # ps
    r_drive: float        # ps per fF at X1
    input_cap: float      # fF per input at X1
    area: float           # um^2 at X1
    leakage: float        # nW at X1
    is_buffer: bool = False


_GATE_SPECS = (
    _GateSpec("INV", ("A",), "Z", 8.0, 3.2, 1.0, 0.5, 1.5),
    _GateSpec("BUF", ("A",), "Z", 16.0, 3.0, 1.0, 0.8, 2.2, is_buffer=True),
    _GateSpec("NAND2", ("A", "B"), "Z", 12.0, 3.6, 1.2, 0.8, 2.4),
    _GateSpec("NOR2", ("A", "B"), "Z", 14.0, 4.2, 1.3, 0.8, 2.6),
    _GateSpec("AND2", ("A", "B"), "Z", 20.0, 3.4, 1.2, 1.1, 3.0),
    _GateSpec("OR2", ("A", "B"), "Z", 22.0, 3.5, 1.3, 1.1, 3.1),
    _GateSpec("XOR2", ("A", "B"), "Z", 30.0, 4.5, 1.8, 1.6, 4.5),
    _GateSpec("XNOR2", ("A", "B"), "Z", 31.0, 4.5, 1.8, 1.6, 4.6),
    _GateSpec("NAND3", ("A", "B", "C"), "Z", 16.0, 4.0, 1.3, 1.1, 3.2),
    _GateSpec("NOR3", ("A", "B", "C"), "Z", 19.0, 4.8, 1.4, 1.1, 3.4),
    _GateSpec("AOI21", ("A", "B", "C"), "Z", 17.0, 4.1, 1.3, 1.0, 3.0),
    _GateSpec("OAI21", ("A", "B", "C"), "Z", 18.0, 4.2, 1.3, 1.0, 3.0),
    _GateSpec("MUX2", ("A", "B", "S"), "Z", 26.0, 4.0, 1.5, 1.5, 4.0),
)

#: Design-rule slew ceiling characterized for every pin (ps).
MAX_TRANSITION = 180.0

# First-order sensitivities shared by all gates.
_DELAY_SLEW_SENS = 0.18      # ps of delay per ps of input slew
_OUT_SLEW_INTRINSIC = 0.55   # output slew fraction of intrinsic delay
_OUT_SLEW_SLEW_SENS = 0.08   # ps of output slew per ps of input slew
_OUT_SLEW_LOAD_FACTOR = 1.9  # output slew load sensitivity vs delay's

# Flip-flop base characterization (X1).
_DFF_INTRINSIC = 45.0
_DFF_R_DRIVE = 3.4
_DFF_D_CAP = 1.4
_DFF_CK_CAP = 1.1
_DFF_AREA = 4.5
_DFF_LEAKAGE = 9.0
_DFF_SETUP = 28.0
_DFF_HOLD = 6.0


def _delay_table(intrinsic: float, r_drive: float) -> LookupTable2D:
    slews = np.asarray(SLEW_AXIS)
    loads = np.asarray(LOAD_AXIS)
    values = (
        intrinsic
        + _DELAY_SLEW_SENS * slews[:, None]
        + r_drive * loads[None, :]
    )
    return LookupTable2D(slews, loads, values)


def _slew_table(intrinsic: float, r_drive: float) -> LookupTable2D:
    slews = np.asarray(SLEW_AXIS)
    loads = np.asarray(LOAD_AXIS)
    values = (
        _OUT_SLEW_INTRINSIC * intrinsic
        + _OUT_SLEW_SLEW_SENS * slews[:, None]
        + _OUT_SLEW_LOAD_FACTOR * r_drive * loads[None, :]
    )
    return LookupTable2D(slews, loads, values)


def _constraint_table(base: float, slew_sens: float) -> LookupTable2D:
    """Setup/hold vs (data slew, clock slew): mild slew dependence."""
    slews = np.asarray(SLEW_AXIS)
    values = base + slew_sens * slews[:, None] + 0.02 * slews[None, :]
    return LookupTable2D(slews, slews, values)


def _drive_scaling(drive: int) -> tuple[float, float, float, float]:
    """(r_drive, input_cap, area, leakage) multipliers at drive X{drive}."""
    r_mult = 1.0 / drive
    cap_mult = 0.55 + 0.45 * drive       # cap grows sub-linearly
    area_mult = drive ** 0.85
    leak_mult = drive ** 1.1             # leakage grows super-linearly
    return r_mult, cap_mult, area_mult, leak_mult


def _build_gate(spec: _GateSpec, drive: int, vt: str = "svt",
                delay_mult: float = 1.0, leak_mult_vt: float = 1.0) -> Cell:
    r_mult, cap_mult, area_mult, leak_mult = _drive_scaling(drive)
    suffix = "" if vt == "svt" else f"_{vt.upper()}"
    cell = Cell(
        name=f"{spec.footprint}_X{drive}{suffix}",
        area=round(spec.area * area_mult, 4),
        leakage=round(spec.leakage * leak_mult * leak_mult_vt, 4),
        drive_strength=float(drive),
        footprint=f"{spec.footprint}{suffix}",
        function=spec.footprint,
        vt=vt,
        is_buffer=spec.is_buffer,
    )
    for pin_name in spec.inputs:
        cell.add_pin(Pin(
            pin_name, PinDirection.INPUT,
            capacitance=spec.input_cap * cap_mult,
            max_transition=MAX_TRANSITION,
        ))
    max_cap = LOAD_AXIS[-1] * drive
    cell.add_pin(Pin(
        spec.output, PinDirection.OUTPUT,
        max_capacitance=max_cap, max_transition=MAX_TRANSITION,
    ))
    r_drive = spec.r_drive * r_mult
    delay = _delay_table(spec.intrinsic * delay_mult, r_drive * delay_mult)
    slew = _slew_table(spec.intrinsic * delay_mult, r_drive * delay_mult)
    for pin_name in spec.inputs:
        cell.add_arc(
            TimingArc(pin_name, spec.output, ArcKind.COMBINATIONAL, delay, slew)
        )
    return cell


def _build_dff(drive: int) -> Cell:
    r_mult, cap_mult, area_mult, leak_mult = _drive_scaling(drive)
    cell = Cell(
        name=f"DFF_X{drive}",
        area=round(_DFF_AREA * area_mult, 4),
        leakage=round(_DFF_LEAKAGE * leak_mult, 4),
        drive_strength=float(drive),
        footprint="DFF",
        is_sequential=True,
    )
    cell.add_pin(Pin("D", PinDirection.INPUT, capacitance=_DFF_D_CAP * cap_mult))
    cell.add_pin(
        Pin("CK", PinDirection.INPUT, capacitance=_DFF_CK_CAP * cap_mult,
            is_clock=True)
    )
    max_cap = LOAD_AXIS[-1] * drive
    cell.add_pin(Pin("Q", PinDirection.OUTPUT, max_capacitance=max_cap))
    r_drive = _DFF_R_DRIVE * r_mult
    cell.add_arc(
        TimingArc("CK", "Q", ArcKind.CLK_TO_Q,
                  _delay_table(_DFF_INTRINSIC, r_drive),
                  _slew_table(_DFF_INTRINSIC, r_drive))
    )
    cell.add_arc(
        TimingArc("D", "CK", ArcKind.SETUP, _constraint_table(_DFF_SETUP, 0.12))
    )
    cell.add_arc(
        TimingArc("D", "CK", ArcKind.HOLD, _constraint_table(_DFF_HOLD, 0.05))
    )
    return cell


def make_default_library(name: str = "repro_generic") -> Library:
    """Build the default characterized library used by the design suite.

    13 combinational footprints at drives X1-X8 (buffers up to X16) plus
    DFFs at X1-X4; every non-buffer combinational cell additionally has
    LVT (fast/leaky) and HVT (slow/frugal) flavours for the VT-swap
    transforms — 157 cells total.
    """
    library = Library(name)
    for spec in _GATE_SPECS:
        drives = BUFFER_DRIVES if spec.is_buffer else GATE_DRIVES
        flavours = (VT_FLAVOURS[0],) if spec.is_buffer else VT_FLAVOURS
        for drive in drives:
            for vt, delay_mult, leak_mult in flavours:
                library.add_cell(
                    _build_gate(spec, drive, vt, delay_mult, leak_mult)
                )
    for drive in (1, 2, 4):
        library.add_cell(_build_dff(drive))
    return library


def make_unit_delay_library(gate_delay: float = 100.0,
                            name: str = "unit_delay") -> Library:
    """A tiny library whose every gate has a fixed delay.

    Used to replicate the paper's Fig. 2 example, where every gate is
    "simply assumed to be 100 ps": constant tables remove slew/load
    dependence so path delay = 100 ps x depth x derate exactly.
    """
    library = Library(name)
    delay = LookupTable2D.constant(gate_delay)
    slew = LookupTable2D.constant(10.0)
    for footprint, inputs in (("INV", ("A",)), ("BUF", ("A",)),
                              ("NAND2", ("A", "B")), ("NOR2", ("A", "B"))):
        cell = Cell(name=f"{footprint}_U", area=1.0, leakage=1.0,
                    footprint=footprint, is_buffer=footprint == "BUF")
        for pin_name in inputs:
            cell.add_pin(Pin(pin_name, PinDirection.INPUT, capacitance=1.0))
        cell.add_pin(Pin("Z", PinDirection.OUTPUT))
        for pin_name in inputs:
            cell.add_arc(
                TimingArc(pin_name, "Z", ArcKind.COMBINATIONAL, delay, slew)
            )
        library.add_cell(cell)
    dff = Cell(name="DFF_U", area=4.0, leakage=4.0, footprint="DFF",
               is_sequential=True)
    dff.add_pin(Pin("D", PinDirection.INPUT, capacitance=1.0))
    dff.add_pin(Pin("CK", PinDirection.INPUT, capacitance=1.0, is_clock=True))
    dff.add_pin(Pin("Q", PinDirection.OUTPUT))
    dff.add_arc(TimingArc("CK", "Q", ArcKind.CLK_TO_Q,
                          LookupTable2D.constant(0.0),
                          LookupTable2D.constant(10.0)))
    dff.add_arc(TimingArc("D", "CK", ArcKind.SETUP, LookupTable2D.constant(0.0)))
    dff.add_arc(TimingArc("D", "CK", ArcKind.HOLD, LookupTable2D.constant(0.0)))
    library.add_cell(dff)
    return library
