"""Liberty-lite parser.

Parses the subset of the Liberty grammar this project emits (see
:mod:`repro.liberty.writer`).  The grammar has three member forms inside
a group body::

    simple_attribute  : name : value ;
    complex_attribute : name ( "arg", "arg", ... ) ;
    group             : name ( args ) { members }

The parser is two-stage — a generic group-tree parse followed by
semantic interpretation — so malformed syntax and malformed semantics
produce distinct, located errors.

Supported semantic structure::

    library (NAME) {
      cell (CELL) {
        area : 0.8;
        cell_leakage_power : 2.4;
        drive_strength : 1;
        cell_footprint : "NAND2";
        is_buffer : true;        /* extension attribute */
        ff () { }                /* marks the cell sequential */
        pin (A) {
          direction : input;
          capacitance : 1.2;
          clock : true;
          max_capacitance : 64;
          timing () {
            related_pin : "B";
            timing_type : combinational;  /* | rising_edge |
                                             setup_rising | hold_rising */
            cell_rise (tmpl) {
              index_1 ("5, 20");
              index_2 ("1, 4");
              values ("1, 2", "3, 4");
            }
            rise_transition (tmpl) { ... }
          }
        }
      }
    }
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ParseError
from repro.liberty.cell import ArcKind, Cell, Pin, PinDirection, TimingArc
from repro.liberty.library import Library
from repro.liberty.lut import LookupTable2D

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>/\*.*?\*/)
  | (?P<string>"[^"]*")
  | (?P<punct>[(){};:,])
  | (?P<word>[^\s(){};:,"]+)
  | (?P<space>\s+)
    """,
    re.VERBOSE | re.DOTALL,
)

_TIMING_TYPE_TO_KIND = {
    "combinational": ArcKind.COMBINATIONAL,
    "rising_edge": ArcKind.CLK_TO_Q,
    "setup_rising": ArcKind.SETUP,
    "hold_rising": ArcKind.HOLD,
}

_KIND_TO_TIMING_TYPE = {v: k for k, v in _TIMING_TYPE_TO_KIND.items()}


@dataclass
class _Token:
    text: str
    line: int
    is_string: bool = False

    def is_punct(self, char: str) -> bool:
        return not self.is_string and self.text == char


@dataclass
class Group:
    """Generic parsed Liberty group: ``kind (args) { members }``."""

    kind: str
    args: list[str]
    line: int
    attributes: dict[str, str] = field(default_factory=dict)
    complex_attributes: dict[str, list[str]] = field(default_factory=dict)
    subgroups: list["Group"] = field(default_factory=list)

    def first(self, kind: str) -> "Group | None":
        """First subgroup of the given kind, or None."""
        for group in self.subgroups:
            if group.kind == kind:
                return group
        return None

    def all(self, kind: str) -> list["Group"]:
        """All subgroups of the given kind."""
        return [g for g in self.subgroups if g.kind == kind]


def _tokenize(text: str, filename: str) -> list[_Token]:
    tokens: list[_Token] = []
    line = 1
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", filename, line)
        kind = match.lastgroup
        value = match.group()
        if kind == "string":
            tokens.append(_Token(value[1:-1], line, is_string=True))
        elif kind in ("punct", "word"):
            tokens.append(_Token(value, line))
        line += value.count("\n")
        pos = match.end()
    return tokens


class _GroupParser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[_Token], filename: str):
        self._tokens = tokens
        self._pos = 0
        self._filename = filename

    def _peek(self, offset: int = 0) -> _Token | None:
        idx = self._pos + offset
        return self._tokens[idx] if idx < len(self._tokens) else None

    def _next(self, expected: str | None = None) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError(
                f"unexpected end of input (expected {expected or 'more input'})",
                self._filename,
                self._tokens[-1].line if self._tokens else 0,
            )
        if expected is not None and not token.is_punct(expected):
            raise ParseError(
                f"expected {expected!r}, got {token.text!r}",
                self._filename, token.line,
            )
        self._pos += 1
        return token

    def _parse_args(self) -> list[str]:
        """Consume ``( a, b, ... )`` and return the argument texts."""
        self._next("(")
        args: list[str] = []
        while True:
            token = self._next()
            if token.is_punct(")"):
                break
            if token.is_punct(","):
                continue
            args.append(token.text)
        return args

    def parse_group(self) -> Group:
        name = self._next()
        args = self._parse_args()
        self._next("{")
        group = Group(kind=name.text, args=args, line=name.line)
        while True:
            token = self._peek()
            if token is None:
                raise ParseError(
                    f"unterminated group {name.text!r}",
                    self._filename, name.line,
                )
            if token.is_punct("}"):
                self._next()
                break
            self._parse_member(group)
        return group

    def _parse_member(self, group: Group) -> None:
        name = self._peek()
        assert name is not None
        after = self._peek(1)
        if after is not None and after.is_punct(":"):
            self._next()          # name
            self._next(":")
            value_parts: list[str] = []
            while True:
                token = self._next()
                if token.is_punct(";"):
                    break
                value_parts.append(token.text)
            group.attributes[name.text] = " ".join(value_parts)
            return
        if after is not None and after.is_punct("("):
            self._next()          # name
            args = self._parse_args()
            follow = self._peek()
            if follow is not None and follow.is_punct(";"):
                self._next(";")
                group.complex_attributes[name.text] = args
                return
            self._next("{")
            subgroup = Group(kind=name.text, args=args, line=name.line)
            while True:
                token = self._peek()
                if token is None:
                    raise ParseError(
                        f"unterminated group {name.text!r}",
                        self._filename, name.line,
                    )
                if token.is_punct("}"):
                    self._next()
                    break
                self._parse_member(subgroup)
            group.subgroups.append(subgroup)
            return
        raise ParseError(
            f"expected attribute or group after {name.text!r}",
            self._filename, name.line,
        )

    def expect_end(self) -> None:
        token = self._peek()
        if token is not None:
            raise ParseError(
                f"trailing input {token.text!r}", self._filename, token.line
            )


def parse_group_tree(text: str, filename: str = "<string>") -> Group:
    """Parse Liberty-lite text into the generic :class:`Group` tree."""
    tokens = _tokenize(text, filename)
    if not tokens:
        raise ParseError("empty input", filename, 1)
    parser = _GroupParser(tokens, filename)
    group = parser.parse_group()
    parser.expect_end()
    return group


def _parse_number_list(text: str) -> np.ndarray:
    values = [v for v in text.replace(",", " ").split() if v]
    return np.array([float(v) for v in values])


def _read_table(group: Group, filename: str) -> LookupTable2D:
    complex_attrs = group.complex_attributes
    value_rows = complex_attrs.get("values")
    if not value_rows:
        raise ParseError("table group lacks values()", filename, group.line)
    grid = np.vstack([_parse_number_list(row) for row in value_rows])
    index_1 = complex_attrs.get("index_1")
    index_2 = complex_attrs.get("index_2")
    row_axis = (
        _parse_number_list(index_1[0])
        if index_1 else np.arange(grid.shape[0], dtype=float)
    )
    col_axis = (
        _parse_number_list(index_2[0])
        if index_2 else np.arange(grid.shape[1], dtype=float)
    )
    return LookupTable2D(row_axis, col_axis, grid)


def _read_bool(value: str) -> bool:
    return value.strip().lower() in ("true", "1", "yes")


def _read_arc(timing: Group, pin_name: str, filename: str) -> TimingArc:
    related = timing.attributes.get("related_pin", "").strip('"')
    if not related:
        raise ParseError("timing group lacks related_pin", filename, timing.line)
    timing_type = timing.attributes.get("timing_type", "combinational")
    kind = _TIMING_TYPE_TO_KIND.get(timing_type)
    if kind is None:
        raise ParseError(
            f"unsupported timing_type {timing_type!r}", filename, timing.line
        )
    if kind in (ArcKind.SETUP, ArcKind.HOLD):
        table_group = timing.first("rise_constraint")
        if table_group is None:
            raise ParseError(
                "constraint timing group lacks rise_constraint",
                filename, timing.line,
            )
        # Constraint arcs live on the data pin: from=data, to=clock.
        return TimingArc(pin_name, related, kind,
                         _read_table(table_group, filename))
    delay_group = timing.first("cell_rise")
    slew_group = timing.first("rise_transition")
    if delay_group is None or slew_group is None:
        raise ParseError(
            "delay timing group needs cell_rise and rise_transition",
            filename, timing.line,
        )
    return TimingArc(
        related, pin_name, kind,
        _read_table(delay_group, filename),
        _read_table(slew_group, filename),
    )


def _read_pin(pin_group: Group, cell: Cell, filename: str) -> None:
    if not pin_group.args:
        raise ParseError("pin group lacks a name", filename, pin_group.line)
    attrs = pin_group.attributes
    direction_text = attrs.get("direction", "input")
    try:
        direction = PinDirection(direction_text)
    except ValueError:
        raise ParseError(
            f"pin {pin_group.args[0]}: bad direction {direction_text!r}",
            filename, pin_group.line,
        ) from None
    cell.add_pin(Pin(
        name=pin_group.args[0],
        direction=direction,
        capacitance=float(attrs.get("capacitance", 0.0)),
        max_capacitance=float(attrs.get("max_capacitance", "inf")),
        max_transition=float(attrs.get("max_transition", "inf")),
        is_clock=_read_bool(attrs.get("clock", "false")),
    ))


def _read_cell(cell_group: Group, filename: str) -> Cell:
    if not cell_group.args:
        raise ParseError("cell group lacks a name", filename, cell_group.line)
    attrs = cell_group.attributes
    cell = Cell(
        name=cell_group.args[0],
        area=float(attrs.get("area", 0.0)),
        leakage=float(attrs.get("cell_leakage_power", 0.0)),
        drive_strength=float(attrs.get("drive_strength", 1.0)),
        footprint=attrs.get("cell_footprint", "").strip('"'),
        function=attrs.get("function_class", "").strip('"'),
        vt=attrs.get("threshold_voltage_group", "svt"),
        is_sequential=cell_group.first("ff") is not None,
        is_buffer=_read_bool(attrs.get("is_buffer", "false")),
    )
    # Two passes: pins first so arcs can validate their endpoints.
    for pin_group in cell_group.all("pin"):
        _read_pin(pin_group, cell, filename)
    for pin_group in cell_group.all("pin"):
        pin_name = pin_group.args[0]
        for timing in pin_group.all("timing"):
            cell.add_arc(_read_arc(timing, pin_name, filename))
    return cell


def parse_liberty(text: str, filename: str = "<string>") -> Library:
    """Parse Liberty-lite text into a :class:`Library`."""
    root = parse_group_tree(text, filename)
    if root.kind != "library":
        raise ParseError(
            f"top-level group must be 'library', got {root.kind!r}",
            filename, root.line,
        )
    library = Library(root.args[0] if root.args else "unnamed")
    for cell_group in root.all("cell"):
        library.add_cell(_read_cell(cell_group, filename))
    return library


def load_liberty(path) -> Library:
    """Parse a Liberty-lite file from disk."""
    path = Path(path)
    return parse_liberty(path.read_text(), str(path))
