"""Cell, pin, and timing-arc models.

A :class:`Cell` is a characterized standard cell: pins with direction and
capacitance, timing arcs between pins, plus the physical attributes the
closure optimizer trades off (area, leakage power, drive strength).

Sequential cells (flip-flops) carry ``setup`` / ``hold`` constraint arcs
from the data pin against the clock pin and a clock-to-Q delay arc.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import LibertyError
from repro.liberty.lut import LookupTable2D


class PinDirection(enum.Enum):
    """Signal direction of a cell pin."""

    INPUT = "input"
    OUTPUT = "output"


class ArcKind(enum.Enum):
    """Role of a timing arc."""

    COMBINATIONAL = "combinational"  # input -> output delay
    CLK_TO_Q = "clk_to_q"            # clock edge -> output delay
    SETUP = "setup"                  # data vs clock constraint
    HOLD = "hold"                    # data vs clock constraint


@dataclass
class Pin:
    """A cell pin.

    Attributes
    ----------
    name:
        Pin name unique within the cell (e.g. ``"A"``, ``"Z"``).
    direction:
        :class:`PinDirection`.
    capacitance:
        Input pin capacitance in fF (0.0 for outputs).
    max_capacitance:
        Maximum load an output pin may legally drive, in fF
        (``float("inf")`` when uncharacterized).
    max_transition:
        Maximum slew legal at this pin, in ps (design rule; checked by
        :meth:`repro.timing.sta.STAEngine.design_rule_violations`).
    is_clock:
        True for the clock pin of a sequential cell.
    """

    name: str
    direction: PinDirection
    capacitance: float = 0.0
    max_capacitance: float = float("inf")
    max_transition: float = float("inf")
    is_clock: bool = False


@dataclass
class TimingArc:
    """A characterized timing relationship between two pins of one cell.

    For delay arcs (``COMBINATIONAL``, ``CLK_TO_Q``) the tables give the
    arc delay and the slew at the output pin as functions of
    (input slew, output load).  For constraint arcs (``SETUP``/``HOLD``)
    only ``delay`` is used, as a function of (data slew, clock slew) —
    the column axis is reinterpreted as clock slew.
    """

    from_pin: str
    to_pin: str
    kind: ArcKind
    delay: LookupTable2D
    output_slew: LookupTable2D | None = None

    def __post_init__(self):
        needs_slew = self.kind in (ArcKind.COMBINATIONAL, ArcKind.CLK_TO_Q)
        if needs_slew and self.output_slew is None:
            raise LibertyError(
                f"delay arc {self.from_pin}->{self.to_pin} requires an "
                "output_slew table"
            )


@dataclass
class Cell:
    """A standard cell.

    Attributes
    ----------
    name:
        Library-unique cell name, e.g. ``"NAND2_X2"``.
    area:
        Cell area in um^2.
    leakage:
        Leakage power in nW.
    drive_strength:
        Relative drive (1 for X1, 2 for X2, ...); used to order size
        variants inside a footprint group.
    footprint:
        Size-family name: all drive variants at the *same* threshold
        voltage share it (``"NAND2"`` for SVT, ``"NAND2_LVT"`` ...).
    function:
        Logic function shared across VT flavours (``"NAND2"``); together
        with ``drive_strength`` it identifies VT-swap candidates.
    vt:
        Threshold-voltage flavour: ``"svt"`` (default), ``"lvt"``
        (faster, leakier), or ``"hvt"`` (slower, low leakage).
    is_sequential:
        True for flip-flops and latches.
    is_buffer:
        True for plain buffers (eligible for buffer-insertion cleanup).
    """

    name: str
    area: float
    leakage: float
    drive_strength: float = 1.0
    footprint: str = ""
    function: str = ""
    vt: str = "svt"
    is_sequential: bool = False
    is_buffer: bool = False
    pins: dict[str, Pin] = field(default_factory=dict)
    arcs: list[TimingArc] = field(default_factory=list)

    def __post_init__(self):
        if not self.footprint:
            self.footprint = self.name
        if not self.function:
            self.function = self.footprint

    def add_pin(self, pin: Pin) -> Pin:
        """Register a pin; raises on duplicate names."""
        if pin.name in self.pins:
            raise LibertyError(f"cell {self.name}: duplicate pin {pin.name}")
        self.pins[pin.name] = pin
        return pin

    def add_arc(self, arc: TimingArc) -> TimingArc:
        """Register a timing arc; validates both endpoints exist."""
        for pin_name in (arc.from_pin, arc.to_pin):
            if pin_name not in self.pins:
                raise LibertyError(
                    f"cell {self.name}: arc references unknown pin {pin_name}"
                )
        self.arcs.append(arc)
        return arc

    def pin(self, name: str) -> Pin:
        """Return the named pin, raising :class:`LibertyError` if absent."""
        try:
            return self.pins[name]
        except KeyError:
            raise LibertyError(f"cell {self.name} has no pin {name}") from None

    @property
    def input_pins(self) -> list[Pin]:
        """Input pins in declaration order (clock pin included)."""
        return [p for p in self.pins.values() if p.direction is PinDirection.INPUT]

    @property
    def output_pins(self) -> list[Pin]:
        """Output pins in declaration order."""
        return [p for p in self.pins.values() if p.direction is PinDirection.OUTPUT]

    @property
    def clock_pin(self) -> Pin | None:
        """The clock pin for sequential cells, else None."""
        for pin in self.pins.values():
            if pin.is_clock:
                return pin
        return None

    def delay_arcs(self) -> list[TimingArc]:
        """All arcs that propagate a transition (not constraints)."""
        return [
            a for a in self.arcs
            if a.kind in (ArcKind.COMBINATIONAL, ArcKind.CLK_TO_Q)
        ]

    def constraint_arcs(self) -> list[TimingArc]:
        """All setup/hold constraint arcs."""
        return [a for a in self.arcs if a.kind in (ArcKind.SETUP, ArcKind.HOLD)]

    def arcs_to(self, output_pin: str) -> list[TimingArc]:
        """Delay arcs terminating at the given output pin."""
        return [a for a in self.delay_arcs() if a.to_pin == output_pin]

    def arc_between(self, from_pin: str, to_pin: str) -> TimingArc | None:
        """The delay arc from ``from_pin`` to ``to_pin``, or None."""
        for arc in self.delay_arcs():
            if arc.from_pin == from_pin and arc.to_pin == to_pin:
                return arc
        return None
