"""Two-dimensional lookup tables with bilinear interpolation.

NLDM characterizes each timing arc by a table of values over
(input slew, output load).  Queries between grid points are bilinearly
interpolated; queries outside the characterized window are clamped to
the nearest edge, which is the conservative choice industrial tools
default to when extrapolation is disabled.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np

from repro.errors import LibertyError


def _as_axis(values, name: str) -> np.ndarray:
    axis = np.asarray(values, dtype=float)
    if axis.ndim != 1 or axis.size == 0:
        raise LibertyError(f"{name} axis must be a non-empty 1-D sequence")
    if axis.size > 1 and not np.all(np.diff(axis) > 0):
        raise LibertyError(f"{name} axis must be strictly increasing: {axis.tolist()}")
    return axis


@dataclass(frozen=True)
class LookupTable2D:
    """A value grid over (row axis = input slew, column axis = load).

    Parameters
    ----------
    rows:
        Strictly increasing input-slew breakpoints (ps).
    cols:
        Strictly increasing output-load breakpoints (fF).
    values:
        ``len(rows) x len(cols)`` grid of table values (ps).
    """

    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray
    # Plain-Python mirrors: lookup() runs millions of times per closure
    # run, and scalar numpy indexing/clipping costs ~10x a float
    # compare + bisect on these tiny (<=8 entry) axes.
    _rows_list: list = field(init=False, repr=False)
    _cols_list: list = field(init=False, repr=False)
    _values_list: list = field(init=False, repr=False)

    def __post_init__(self):
        rows = _as_axis(self.rows, "row")
        cols = _as_axis(self.cols, "column")
        values = np.asarray(self.values, dtype=float)
        if values.shape != (rows.size, cols.size):
            raise LibertyError(
                f"table shape {values.shape} does not match axes "
                f"({rows.size}, {cols.size})"
            )
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "cols", cols)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "_rows_list", rows.tolist())
        object.__setattr__(self, "_cols_list", cols.tolist())
        object.__setattr__(self, "_values_list", values.tolist())

    @classmethod
    def constant(cls, value: float) -> "LookupTable2D":
        """A 1x1 table returning ``value`` for every query."""
        return cls(np.array([0.0]), np.array([0.0]), np.array([[value]]))

    def lookup(self, slew: float, load: float) -> float:
        """Bilinearly interpolate the table at (slew, load), clamped."""
        rows = self._rows_list
        cols = self._cols_list
        values = self._values_list
        n_rows = len(rows)
        n_cols = len(cols)
        r = rows[0] if slew < rows[0] else (
            rows[-1] if slew > rows[-1] else slew
        )
        c = cols[0] if load < cols[0] else (
            cols[-1] if load > cols[-1] else load
        )
        if n_rows == 1 and n_cols == 1:
            return values[0][0]
        if n_rows == 1:
            j = bisect_right(cols, c) - 1
            j = 0 if j < 0 else (n_cols - 2 if j > n_cols - 2 else j)
            t = (c - cols[j]) / (cols[j + 1] - cols[j])
            row0 = values[0]
            return (1 - t) * row0[j] + t * row0[j + 1]
        if n_cols == 1:
            i = bisect_right(rows, r) - 1
            i = 0 if i < 0 else (n_rows - 2 if i > n_rows - 2 else i)
            u = (r - rows[i]) / (rows[i + 1] - rows[i])
            return (1 - u) * values[i][0] + u * values[i + 1][0]
        i = bisect_right(rows, r) - 1
        i = 0 if i < 0 else (n_rows - 2 if i > n_rows - 2 else i)
        j = bisect_right(cols, c) - 1
        j = 0 if j < 0 else (n_cols - 2 if j > n_cols - 2 else j)
        u = (r - rows[i]) / (rows[i + 1] - rows[i])
        t = (c - cols[j]) / (cols[j + 1] - cols[j])
        row_i = values[i]
        row_i1 = values[i + 1]
        return (
            (1 - u) * ((1 - t) * row_i[j] + t * row_i[j + 1])
            + u * ((1 - t) * row_i1[j] + t * row_i1[j + 1])
        )

    def _grid_coords(self, slews, loads):
        """Clamped query points and cell indices for a batched lookup.

        ``np.minimum(np.maximum(...))`` and the bound ``searchsorted``
        method compute exactly what ``np.clip``/``np.searchsorted``
        would, without the wrapper dispatch that dominates small-batch
        lookups (the vector kernel issues one batch per level x table).
        """
        rows = self.rows
        cols = self.cols
        r = np.minimum(
            np.maximum(np.asarray(slews, dtype=float), rows[0]), rows[-1]
        )
        c = np.minimum(
            np.maximum(np.asarray(loads, dtype=float), cols[0]), cols[-1]
        )
        i = np.minimum(
            np.maximum(rows.searchsorted(r, side="right") - 1, 0),
            max(rows.size - 2, 0),
        )
        j = np.minimum(
            np.maximum(cols.searchsorted(c, side="right") - 1, 0),
            max(cols.size - 2, 0),
        )
        return r, c, i, j

    def lookup_many(self, slews, loads) -> np.ndarray:
        """Vectorized :meth:`lookup` over equal-length arrays."""
        if self.rows.size == 1 and self.cols.size == 1:
            r = np.asarray(slews, dtype=float)
            return np.full(r.shape, self.values[0, 0])
        r, c, i, j = self._grid_coords(slews, loads)
        return self._interpolate_at(r, c, i, j)

    def _interpolate_at(self, r, c, i, j) -> np.ndarray:
        """Bilinear interpolation at precomputed grid coordinates.

        The expression tree is the same as :meth:`lookup_many`'s, so a
        caller that shares (r, c, i, j) between two tables with equal
        axes gets bit-identical values at half the coordinate cost.
        """
        if self.rows.size == 1:
            t = (c - self.cols[j]) / (self.cols[j + 1] - self.cols[j])
            return (1 - t) * self.values[0, j] + t * self.values[0, j + 1]
        if self.cols.size == 1:
            u = (r - self.rows[i]) / (self.rows[i + 1] - self.rows[i])
            return (1 - u) * self.values[i, 0] + u * self.values[i + 1, 0]
        u = (r - self.rows[i]) / (self.rows[i + 1] - self.rows[i])
        t = (c - self.cols[j]) / (self.cols[j + 1] - self.cols[j])
        v00 = self.values[i, j]
        v01 = self.values[i, j + 1]
        v10 = self.values[i + 1, j]
        v11 = self.values[i + 1, j + 1]
        return (
            (1 - u) * ((1 - t) * v00 + t * v01)
            + u * ((1 - t) * v10 + t * v11)
        )

    def scaled(self, factor: float) -> "LookupTable2D":
        """Return a copy with every value multiplied by ``factor``."""
        return LookupTable2D(self.rows.copy(), self.cols.copy(), self.values * factor)

    def min_value(self) -> float:
        """Smallest value in the grid."""
        return float(self.values.min())

    def max_value(self) -> float:
        """Largest value in the grid."""
        return float(self.values.max())

    def __eq__(self, other) -> bool:
        if not isinstance(other, LookupTable2D):
            return NotImplemented
        return (
            np.array_equal(self.rows, other.rows)
            and np.array_equal(self.cols, other.cols)
            and np.allclose(self.values, other.values)
        )

    def __hash__(self):  # frozen dataclass with arrays: identity hash
        return id(self)


def _same_axes(a: LookupTable2D, b: LookupTable2D) -> bool:
    """True when two tables index their grids by identical breakpoints."""
    rows_equal = a.rows is b.rows or (
        a.rows.size == b.rows.size and bool((a.rows == b.rows).all())
    )
    if not rows_equal:
        return False
    return a.cols is b.cols or (
        a.cols.size == b.cols.size and bool((a.cols == b.cols).all())
    )


def lookup_pair_many(
    first: LookupTable2D, second: LookupTable2D, slews, loads,
) -> "tuple[np.ndarray, np.ndarray]":
    """Batched lookups of two tables at the same (slew, load) points.

    An arc's delay and output-slew grids are characterized over the same
    breakpoints, so the clamp / cell-index / interpolation-weight work
    can be shared; the returned values are bit-identical to two
    :meth:`LookupTable2D.lookup_many` calls because both paths evaluate
    the same expression trees.  Tables with differing axes (or the 1x1
    constant special case) fall back to independent lookups.
    """
    if (
        not (first.rows.size == 1 and first.cols.size == 1)
        and _same_axes(first, second)
    ):
        r, c, i, j = first._grid_coords(slews, loads)
        return first._interpolate_at(r, c, i, j), second._interpolate_at(
            r, c, i, j
        )
    return first.lookup_many(slews, loads), second.lookup_many(slews, loads)
