"""The stable top-level facade: one entry surface for everything.

``repro.api`` is the supported way in — the CLI subcommands, the
:class:`~repro.service.engine.TimingService`, and library callers all
route through the same six verbs::

    from repro import api

    design = api.load_design("D1")
    sta    = api.run_sta(design)          # GBA slacks + WNS/TNS
    golden = api.golden_slacks(design)    # PBA endpoint slacks
    fitres = api.fit(design)              # mGBA correction fit
    suite  = api.evaluate(["D1", "D2"])   # many designs, fanned out
    closed = api.close_timing(design)     # the optimization loop

Every verb takes an optional :class:`~repro.context.RunContext`
(parallelism, solver, epsilon knobs — resolved from the environment in
exactly one place) and returns a **frozen typed result dataclass**
whose deterministic fields support ``==`` bit-identity comparison:
two runs of the same verb on the same content produce equal results,
which is the contract the service's artifact cache is property-tested
against.

Compatibility: the exported name set below is snapshot-tested
(``tests/api/test_facade.py``); additions are fine, removals and
renames require a deprecation shim for one release (see
``docs/api.md`` for the policy).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.context import RunContext
from repro.designs.generator import Design, DesignSpec, generate_design
from repro.opt.whatif import CandidateResult, MinPeriodResult, WhatIfResult
from repro.timing.explain import DesignExplanation
from repro.timing.sta import STAEngine

__all__ = [
    "RunContext",
    "STAResult",
    "GoldenSlacksResult",
    "FitResult",
    "ClosureResult",
    "ExplainResult",
    "ScenarioSweepResult",
    "CandidateResult",
    "WhatIfResult",
    "MinPeriodResult",
    "load_design",
    "make_engine",
    "run_sta",
    "golden_slacks",
    "fit",
    "evaluate",
    "close_timing",
    "explain_slack",
    "run_scenarios",
    "what_if",
    "min_period",
]


# ----------------------------------------------------------------------
# Result types (frozen: results are facts, not workspaces)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class STAResult:
    """GBA timing of one design: per-endpoint slacks + QoR aggregate.

    ``slacks`` is (endpoint name, slack ps) in deterministic endpoint
    order.  ``seconds`` is wall time and excluded from equality — two
    results are ``==`` iff their timing content is bit-identical.
    """

    design: str
    wns: float
    tns: float
    violations: int
    endpoints: int
    slacks: "tuple[tuple[str, float], ...]"
    seconds: float = field(default=0.0, compare=False)

    def to_dict(self) -> "dict[str, Any]":
        return asdict(self)


@dataclass(frozen=True)
class GoldenSlacksResult:
    """PBA golden endpoint slacks (the expensive reference GBA bounds)."""

    design: str
    k: int
    slacks: "tuple[tuple[str, float], ...]"
    seconds: float = field(default=0.0, compare=False)

    @property
    def worst(self) -> float:
        """The design's golden WNS (+inf when every path is false)."""
        return min(
            (s for _, s in self.slacks), default=float("inf")
        )

    def to_dict(self) -> "dict[str, Any]":
        return asdict(self)


@dataclass(frozen=True)
class FitResult:
    """One mGBA fit: the correction weights and both slack views.

    ``s_gba`` / ``s_pba`` / ``s_mgba`` are the fitted paths' slack
    vectors (GBA, golden, corrected) — kept as tuples so equality is
    exact element-wise bit-identity, which the cache-transparency
    property tests rely on.
    """

    design: str
    solver: str
    iterations: int
    converged: bool
    num_paths: int
    num_gates: int
    mse_gba: float
    mse_mgba: float
    pass_ratio_gba: float
    pass_ratio_mgba: float
    weights: "tuple[tuple[str, float], ...]"
    s_gba: "tuple[float, ...]"
    s_pba: "tuple[float, ...]"
    s_mgba: "tuple[float, ...]"
    seconds: float = field(default=0.0, compare=False)

    @property
    def pass_ratio_improvement(self) -> float:
        return self.pass_ratio_mgba - self.pass_ratio_gba

    def weight_map(self) -> "dict[str, float]":
        """The weights as the dict ``STAEngine.set_gate_weights`` takes."""
        return dict(self.weights)

    def to_dict(self) -> "dict[str, Any]":
        return asdict(self)


@dataclass(frozen=True)
class ClosureResult:
    """Outcome of the closure optimization loop on one design."""

    design: str
    use_mgba: bool
    transforms_applied: int
    transforms_tried: int
    wns_before: float
    tns_before: float
    violations_before: int
    wns_after: float
    tns_after: float
    violations_after: int
    area_after: float
    leakage_after: float
    buffers_after: int
    eco_commands: "tuple[str, ...]" = ()
    seconds: float = field(default=0.0, compare=False)

    def to_dict(self) -> "dict[str, Any]":
        return asdict(self)


@dataclass(frozen=True)
class ExplainResult:
    """Slack provenance for one endpoint or the whole design.

    ``explanation`` is the full nested
    :class:`~repro.timing.explain.DesignExplanation` record (frozen all
    the way down, so ``==`` is exact bit-identity across kernels and
    cache round-trips).  ``endpoint`` is the resolved endpoint name
    when the record was narrowed, None for a design-wide explanation.
    """

    design: str
    endpoint: "str | None"
    top_k: int
    explanation: DesignExplanation
    seconds: float = field(default=0.0, compare=False)

    def to_dict(self) -> "dict[str, Any]":
        return asdict(self)


@dataclass(frozen=True)
class ScenarioSweepResult:
    """Multi-scenario (corner/mode) signoff matrix of one design.

    ``corners`` lists (name, delay scale) in declaration order;
    ``setup``/``hold`` carry per-corner (name, WNS, TNS, violations)
    rows; ``merged`` is the per-endpoint worst setup slack across the
    matrix as (endpoint, slack, corner), worst-first — exactly how a
    multi-corner signoff report is read.  ``stacked`` records whether
    the sweep ran as one scenario-stacked kernel pass or fell back to
    the per-corner fan-out; both produce bit-identical content, so
    ``stacked`` (like ``seconds``) is excluded from equality.
    """

    design: str
    corners: "tuple[tuple[str, float], ...]"
    setup: "tuple[tuple[str, float, float, int], ...]"
    hold: "tuple[tuple[str, float, float, int], ...]"
    merged: "tuple[tuple[str, float, str], ...]"
    dominant: str
    stacked: bool = field(default=True, compare=False)
    seconds: float = field(default=0.0, compare=False)

    def to_dict(self) -> "dict[str, Any]":
        return asdict(self)


# ----------------------------------------------------------------------
# Designs and engines
# ----------------------------------------------------------------------
def load_design(name: "str | DesignSpec") -> Design:
    """A fresh design bundle by suite name, ``"fig2"``, or spec.

    Suite names are D1-D10 (see ``repro-sta designs``); ``"fig2"`` is
    the paper's worked example.  A :class:`DesignSpec` generates a
    custom synthetic design.  Every call returns a fresh, mutable copy.
    """
    if isinstance(name, DesignSpec):
        return generate_design(name)
    if name in ("fig2", "paper_fig2"):
        from repro.designs.paper_example import build_fig2_design

        fig2 = build_fig2_design()
        return Design(
            name="paper_fig2",
            spec=DesignSpec(name="paper_fig2", seed=0),
            netlist=fig2.netlist,
            constraints=fig2.constraints,
            placement=None,
            sta_config=fig2.sta_config,
            derating_table=fig2.derating_table,
        )
    from repro.designs.suite import build_design

    return build_design(name)


def make_engine(design: "Design | str",
                context: "RunContext | None" = None) -> STAEngine:
    """A timing-updated :class:`STAEngine` over a design bundle."""
    del context  # engine construction has no context knobs (yet)
    bundle = load_design(design) if isinstance(design, str) else design
    engine = STAEngine(
        bundle.netlist, bundle.constraints,
        getattr(bundle, "placement", None), bundle.sta_config,
    )
    engine.update_timing()
    return engine


def _as_engine(design: "Design | STAEngine | str",
               context: "RunContext | None") -> "tuple[STAEngine, str]":
    if isinstance(design, STAEngine):
        return design, design.netlist.name
    engine = make_engine(design, context)
    return engine, engine.netlist.name


# ----------------------------------------------------------------------
# Result builders (shared by the facade and the TimingService)
# ----------------------------------------------------------------------
def sta_result_from_engine(engine: STAEngine,
                           seconds: float = 0.0) -> STAResult:
    """Fold an engine's current GBA view into an :class:`STAResult`."""
    slacks = engine.setup_slacks()
    summary = engine.summary()
    return STAResult(
        design=engine.netlist.name,
        wns=summary.wns,
        tns=summary.tns,
        violations=summary.violations,
        endpoints=summary.endpoints,
        slacks=tuple((s.name, float(s.slack)) for s in slacks),
        seconds=seconds,
    )


def golden_slacks_from_engine(
    engine: STAEngine,
    context: "RunContext | None" = None,
    k: "int | None" = None,
    seconds: float = 0.0,
) -> GoldenSlacksResult:
    """Run golden PBA over every endpoint of a clean GBA engine."""
    from repro.pba.engine import PBAEngine

    ctx = context or RunContext.from_env()
    chosen_k = k if k is not None else ctx.pba_k
    pba = PBAEngine(engine, recalc_slew=ctx.recalc_slew)
    start = time.perf_counter()
    by_node = pba.golden_endpoint_slacks(
        k=chosen_k, executor=ctx.executor()
    )
    graph = engine.graph
    slacks = tuple(
        (str(graph.node(node_id).ref), float(slack))
        for node_id, slack in sorted(by_node.items())
    )
    return GoldenSlacksResult(
        design=engine.netlist.name,
        k=chosen_k,
        slacks=slacks,
        seconds=seconds or (time.perf_counter() - start),
    )


def fit_result_from_flow(design_name: str, result,
                         seconds: float = 0.0) -> FitResult:
    """Freeze an :class:`~repro.mgba.flow.MGBAResult` into a facade result."""
    corrected = result.problem.corrected_slacks(result.solution.x)
    return FitResult(
        design=design_name,
        solver=result.solution.solver,
        iterations=result.solution.iterations,
        converged=result.solution.converged,
        num_paths=result.problem.num_paths,
        num_gates=result.problem.num_gates,
        mse_gba=result.mse_gba,
        mse_mgba=result.mse_mgba,
        pass_ratio_gba=result.pass_ratio_gba,
        pass_ratio_mgba=result.pass_ratio_mgba,
        weights=tuple(sorted(result.weights.items())),
        s_gba=tuple(float(v) for v in result.problem.s_gba),
        s_pba=tuple(float(v) for v in result.problem.s_pba),
        s_mgba=tuple(float(v) for v in corrected),
        seconds=seconds or result.total_seconds,
    )


def explain_result_from_engine(
    engine: STAEngine,
    endpoint: "int | str | None" = None,
    top_k: int = 10,
    seconds: float = 0.0,
) -> ExplainResult:
    """Fold an engine's slack provenance into an :class:`ExplainResult`."""
    from repro.timing.explain import explain_design

    explanation = explain_design(engine, top_k=top_k, endpoint=endpoint)
    resolved = (
        explanation.paths[0].endpoint
        if endpoint is not None and explanation.paths else None
    )
    return ExplainResult(
        design=engine.netlist.name,
        endpoint=resolved,
        top_k=top_k,
        explanation=explanation,
        seconds=seconds,
    )


def scenario_result_from_analysis(analysis, seconds: float = 0.0) \
        -> ScenarioSweepResult:
    """Freeze a :class:`~repro.timing.corners.MultiCornerAnalysis`."""
    from repro.timing.slack import CheckKind

    summary = analysis.summary()
    setup_rows = []
    hold_rows = []
    for corner in analysis.corners:
        per = summary[corner.name]
        setup_rows.append((
            corner.name, float(per["setup"].wns), float(per["setup"].tns),
            int(per["setup"].violations),
        ))
        hold_rows.append((
            corner.name, float(per["hold"].wns), float(per["hold"].tns),
            int(per["hold"].violations),
        ))
    merged = tuple(
        (m.name, float(m.slack), m.corner)
        for m in analysis.merged_setup()
    )
    dominant = (
        analysis.dominant_corner(CheckKind.SETUP) if merged else ""
    )
    base = analysis.engines[analysis.corners[0].name]
    return ScenarioSweepResult(
        design=base.netlist.name,
        corners=tuple(
            (c.name, float(c.delay_scale)) for c in analysis.corners
        ),
        setup=tuple(setup_rows),
        hold=tuple(hold_rows),
        merged=merged,
        dominant=dominant,
        stacked=analysis.last_update_mode == "stacked",
        seconds=seconds,
    )


# ----------------------------------------------------------------------
# The verbs
# ----------------------------------------------------------------------
def run_sta(design: "Design | STAEngine | str",
            context: "RunContext | None" = None) -> STAResult:
    """GBA timing analysis of one design."""
    start = time.perf_counter()
    engine, _ = _as_engine(design, context)
    return sta_result_from_engine(
        engine, seconds=time.perf_counter() - start
    )


def golden_slacks(design: "Design | STAEngine | str",
                  k: "int | None" = None,
                  context: "RunContext | None" = None) -> GoldenSlacksResult:
    """Golden PBA endpoint slacks of one design."""
    start = time.perf_counter()
    engine, _ = _as_engine(design, context)
    return golden_slacks_from_engine(
        engine, context, k, seconds=time.perf_counter() - start
    )


def explain_slack(design: "Design | STAEngine | str",
                  endpoint: "int | str | None" = None,
                  top_k: int = 10,
                  context: "RunContext | None" = None) -> ExplainResult:
    """Slack provenance and pessimism attribution of one design.

    ``endpoint`` (node id or endpoint pin name) narrows the record to
    one endpoint's worst path; None explains the whole design with
    per-arc detail for the ``top_k`` worst endpoints.  Per-arc rows sum
    bit-identically to the engine's reported slack under either
    propagation kernel.
    """
    start = time.perf_counter()
    engine, _ = _as_engine(design, context)
    return explain_result_from_engine(
        engine, endpoint=endpoint, top_k=top_k,
        seconds=time.perf_counter() - start,
    )


def fit(design: "Design | STAEngine | str",
        context: "RunContext | None" = None, *,
        apply: bool = True,
        solve_cache=None) -> FitResult:
    """Run the mGBA flow: select, golden PBA, fit, (optionally) apply.

    Passing an :class:`STAEngine` fits *that* engine and leaves the
    weights installed (``apply=True``), which is how the CLI reports a
    corrected summary after fitting.  ``solve_cache`` is the service's
    hook for reusing ``x*`` across identical problems.
    """
    from repro.mgba.flow import MGBAFlow

    start = time.perf_counter()
    ctx = context or RunContext.from_env()
    engine, name = _as_engine(design, ctx)
    flow = MGBAFlow(context=ctx, solve_cache=solve_cache)
    result = flow.run(engine, apply=apply)
    return fit_result_from_flow(
        name, result, seconds=time.perf_counter() - start
    )


def evaluate(names: "list[str] | None" = None, *,
             mgba: bool = False,
             context: "RunContext | None" = None):
    """Evaluate suite designs (STA, optionally + mGBA fit), fanned out.

    Returns a list of frozen
    :class:`~repro.service.suite.DesignReport` records in input order;
    see :func:`repro.service.suite.evaluate_suite` for the sharding
    contract.
    """
    from repro.service.suite import evaluate_suite

    ctx = context or RunContext.from_env()
    return evaluate_suite(
        names,
        mgba=mgba,
        k_per_endpoint=ctx.k_per_endpoint,
        solver=ctx.solver,
        seed=ctx.seed if ctx.seed is not None else 0,
        context=ctx,
    )


def run_scenarios(design: "Design | str",
                  corners=None,
                  context: "RunContext | None" = None, *,
                  stacked: bool = True) -> ScenarioSweepResult:
    """Multi-scenario STA: the whole corner matrix in one stacked sweep.

    ``corners`` is a sequence of
    :class:`~repro.timing.corners.Corner` values or (name, delay scale)
    pairs; None sweeps the classic ss/tt/ff set.  All scenarios
    propagate in *one* scenario-stacked kernel pass when the stack
    accepts them (vector kernel, shared structure); ``stacked=False``
    — or a structurally incompatible scenario set — takes the
    per-corner :mod:`repro.parallel` fan-out instead.  Both paths are
    bit-identical per corner, so the result content never depends on
    the path taken.
    """
    from repro.timing.corners import (
        DEFAULT_CORNERS,
        Corner,
        MultiCornerAnalysis,
    )

    start = time.perf_counter()
    ctx = context or RunContext.from_env()
    bundle = load_design(design) if isinstance(design, str) else design
    chosen = tuple(
        c if isinstance(c, Corner) else Corner(str(c[0]), float(c[1]))
        for c in (corners if corners is not None else DEFAULT_CORNERS)
    )
    analysis = MultiCornerAnalysis(
        bundle.netlist, bundle.constraints,
        getattr(bundle, "placement", None), bundle.sta_config, chosen,
    )
    analysis.update_all(ctx.executor(), stacked=stacked)
    return scenario_result_from_analysis(
        analysis, seconds=time.perf_counter() - start
    )


def what_if(design: "Design | STAEngine | str",
            candidates: "list[Any]",
            context: "RunContext | None" = None) -> WhatIfResult:
    """Score K candidate ECO edit-lists against one design, in parallel.

    Each candidate is an edit-spec list (``{"kind": "resize", ...}``
    dicts — see :mod:`repro.opt.whatif`) or ECO text in the
    :mod:`repro.opt.eco` grammar.  Candidates are applied, measured,
    and reverted; passing an :class:`STAEngine` evaluates on *that*
    engine (serially) and leaves it bit-identical to how it arrived.
    Parallel and serial evaluation produce equal frozen results, which
    is the contract the service's per-candidate cache rests on.
    """
    from repro.opt.whatif import evaluate_what_if

    if isinstance(design, STAEngine):
        return evaluate_what_if(
            design.netlist.name, candidates, context, engine=design
        )
    return evaluate_what_if(design, candidates, context)


def min_period(design: "Design | STAEngine | str",
               clock: "str | None" = None,
               tolerance: float = 1.0,
               max_iter: int = 64,
               corner: "tuple[str, float] | None" = None,
               context: "RunContext | None" = None) -> MinPeriodResult:
    """Binary-search the smallest feasible period of one clock.

    ``clock`` defaults to the design's primary clock; ``corner``
    (name, delay scale) searches against a scaled-delay engine instead
    of the nominal one.  The bracket/bisection sequence is a pure
    function of (content, clock, tolerance, max_iter), so the result
    is deterministic at any worker count.
    """
    from dataclasses import replace as dc_replace

    from repro.opt.whatif import min_period_on_engine

    corner_label = ""
    if corner is not None:
        corner_label = f"{corner[0]}:{float(corner[1])!r}"
    if isinstance(design, STAEngine):
        if corner is not None:
            raise ValueError(
                "corner= needs a design bundle or name, not a live engine"
            )
        engine = design
    else:
        bundle = load_design(design) if isinstance(design, str) else design
        if corner is not None:
            bundle = dc_replace(
                bundle,
                sta_config=dc_replace(
                    bundle.sta_config,
                    delay_scale=(
                        bundle.sta_config.delay_scale * float(corner[1])
                    ),
                ),
            )
        engine = make_engine(bundle, context)
    return min_period_on_engine(
        engine, clock=clock, tolerance=tolerance, max_iter=max_iter,
        corner=corner_label,
    )


def close_timing(design: "Design | str", *,
                 use_mgba: bool = True,
                 max_transforms: int = 200,
                 acceptable_violations: int = 0,
                 context: "RunContext | None" = None) -> ClosureResult:
    """Run the timing-closure optimization loop on one design."""
    from repro.opt.closure import ClosureConfig, TimingClosureOptimizer

    ctx = context or RunContext.from_env()
    bundle = load_design(design) if isinstance(design, str) else design
    config = ClosureConfig(
        use_mgba=use_mgba,
        max_transforms=max_transforms,
        acceptable_violations=acceptable_violations,
        mgba=ctx.mgba_config(),
    )
    optimizer = TimingClosureOptimizer(
        bundle.netlist, bundle.constraints,
        getattr(bundle, "placement", None), bundle.sta_config, config,
    )
    report = optimizer.run()
    return ClosureResult(
        design=bundle.name,
        use_mgba=use_mgba,
        transforms_applied=report.transforms_applied,
        transforms_tried=report.transforms_tried,
        wns_before=report.initial.wns,
        tns_before=report.initial.tns,
        violations_before=report.initial.violations,
        wns_after=report.final.wns,
        tns_after=report.final.tns,
        violations_after=report.final.violations,
        area_after=report.final.area,
        leakage_after=report.final.leakage,
        buffers_after=report.final.buffers,
        eco_commands=tuple(report.eco_commands),
        seconds=report.seconds_total,
    )
