"""ECO (engineering change order) export and replay.

A closure run's value is the *netlist delta* it found; this module
serializes that delta as a PrimeTime-style ECO script and replays it
onto a pristine netlist.  Round trip guarantee (tested): replaying a
run's ECO onto a fresh copy of the design reproduces the optimized
netlist gate-for-gate.

Script grammar (one command per line, ``#`` comments)::

    size_cell <gate> <new_cell>
    insert_buffer <net> <buffer_cell> <new_gate> <new_net> <load> [...]
    remove_buffer <gate>

``insert_buffer`` records the names the original run generated so the
replay is exact (fresh-name counters differ between sessions); loads
are ``gate/pin`` references.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import NetlistError, ParseError
from repro.netlist.core import Netlist, PinRef
from repro.netlist.edit import remove_buffer
from repro.netlist.placement import Placement


class EcoRecorder:
    """Collects replayable commands during an optimization run."""

    def __init__(self):
        self.commands: list[str] = []

    def record_size(self, gate: str, new_cell: str) -> None:
        """A resize or VT swap (both are cell substitutions)."""
        self.commands.append(f"size_cell {gate} {new_cell}")

    def record_insert_buffer(self, net: str, buffer_cell: str,
                             buffer_name: str, new_net: str,
                             loads: "list[PinRef]") -> None:
        """A buffer insertion with its generated names and moved loads."""
        load_refs = " ".join(str(ref) for ref in loads)
        self.commands.append(
            f"insert_buffer {net} {buffer_cell} {buffer_name} "
            f"{new_net} {load_refs}"
        )

    def record_remove_buffer(self, gate: str) -> None:
        """A buffer removal."""
        self.commands.append(f"remove_buffer {gate}")

    def pop_last(self, count: int = 1) -> None:
        """Drop the most recent commands (a reverted transform)."""
        del self.commands[len(self.commands) - count:]

    def __len__(self) -> int:
        return len(self.commands)


def write_eco(commands: "list[str]", design: str = "") -> str:
    """Serialize an ECO command list."""
    out = [f"# repro ECO{' for ' + design if design else ''}",
           f"# {len(commands)} command(s)"]
    out.extend(commands)
    out.append("")
    return "\n".join(out)


def save_eco(commands: "list[str]", path, design: str = "") -> None:
    """Write an ECO script to disk."""
    Path(path).write_text(write_eco(commands, design))


def _parse_pin_ref(text: str, filename: str, lineno: int) -> PinRef:
    if "/" not in text:
        raise ParseError(
            f"load reference {text!r} must be gate/pin", filename, lineno
        )
    gate, pin = text.rsplit("/", 1)
    return PinRef(gate, pin)


def apply_eco(netlist: Netlist, text: str,
              placement: Placement | None = None,
              filename: str = "<eco>") -> int:
    """Replay an ECO script onto a netlist; returns commands applied.

    The replay uses the exact instance/net names recorded at capture
    time, so the resulting netlist is identical to the optimized one.
    """
    applied = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        command = parts[0]
        try:
            if command == "size_cell":
                if len(parts) != 3:
                    raise ParseError(
                        "size_cell expects: gate new_cell", filename, lineno
                    )
                netlist.swap_cell(parts[1], parts[2])
            elif command == "insert_buffer":
                if len(parts) < 6:
                    raise ParseError(
                        "insert_buffer expects: net cell name new_net "
                        "load...", filename, lineno,
                    )
                net, buffer_cell, buffer_name, new_net = parts[1:5]
                loads = [
                    _parse_pin_ref(p, filename, lineno) for p in parts[5:]
                ]
                cell = netlist.library.cell(buffer_cell)
                netlist.add_gate(buffer_name, buffer_cell)
                netlist.connect(buffer_name, cell.input_pins[0].name, net)
                netlist.connect(
                    buffer_name, cell.output_pins[0].name, new_net
                )
                for ref in loads:
                    netlist.connect(ref.gate, ref.pin, new_net)
                if placement is not None:
                    driver = netlist.net_driver(net)
                    if (
                        driver is not None and driver.gate is not None
                        and placement.has(driver.gate)
                        and loads and placement.has(loads[0].gate or "")
                    ):
                        src = placement.location(driver.gate)
                        dst = placement.location(loads[0].gate)
                        placement.place(
                            buffer_name,
                            (src.x + dst.x) / 2, (src.y + dst.y) / 2,
                        )
            elif command == "remove_buffer":
                if len(parts) != 2:
                    raise ParseError(
                        "remove_buffer expects: gate", filename, lineno
                    )
                remove_buffer(netlist, parts[1])
            else:
                raise ParseError(
                    f"unknown ECO command {command!r}", filename, lineno
                )
        except NetlistError as exc:
            raise ParseError(
                f"replay failed: {exc}", filename, lineno
            ) from exc
        applied += 1
    return applied


def load_eco(path) -> str:
    """Read an ECO script from disk."""
    return Path(path).read_text()
