"""ECO what-if evaluation and min-period search (the closure loop's oracle).

A design optimizer iterates *candidate* edits — resize, VT swap, buffer
insert/remove — against a timing oracle and keeps the winners.  This
module turns that inner loop into a batched, parallel API:

* :func:`evaluate_what_if` scores K candidate edit-lists against one
  design.  Each candidate is applied to an engine, measured, and
  reverted; with a parallel :class:`~repro.context.RunContext` the
  candidate list is chunked across workers, each worker evaluating its
  chunk on a private engine clone.  The apply→measure→revert loop is
  *layout-stable*: bounded structural edits (buffer in/out) are spliced
  into the engine's levelized layout by
  :func:`repro.timing.kernel.patch_layout` instead of re-flattening the
  whole graph per candidate.  Both paths are **bit-identical**: a
  candidate's result never depends on which worker (or how many)
  evaluated it, which is what lets the service cache single candidates
  content-addressed (``repro.service.keys.what_if_key``).
* :func:`min_period_on_engine` binary-searches the smallest feasible
  clock period (pyPPA's period optimizer, made deterministic): the
  clock period only enters endpoint *required* times, so feasibility at
  a trial period is one pure slack recomputation — no re-propagation —
  and WNS is monotone in the period, so bisection converges to a
  bracket/tolerance-deterministic answer.

Candidates are lists of edit *specs* (JSON-friendly dicts) or ECO text
in the :mod:`repro.opt.eco` grammar::

    {"kind": "resize",        "gate": "u12", "up": true}
    {"kind": "size_cell",     "gate": "u12", "cell": "NAND2_X4"}
    {"kind": "vt_swap",       "gate": "u12", "vt": "lvt"}
    {"kind": "insert_buffer", "net": "n7", "buffer_cell": "BUF_X2",
     "loads": ["u3/A"], "buffer": "wbuf0", "new_net": "wnet0"}
    {"kind": "remove_buffer", "gate": "rbuf_3"}

Generated buffer/net names default to *candidate-local deterministic*
names (``wbuf<i>`` probed against the netlist), never the process-global
fresh-name counter — sequential and parallel evaluation must produce
identical ECO text and identical results.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import ReproError
from repro.netlist.core import PinRef
from repro.netlist.edit import (
    ChangeRecord,
    insert_buffer,
    remove_buffer,
    resize_gate,
    swap_vt,
)
from repro.obs.metrics import counter, histogram
from repro.obs.trace import span
from repro.timing import slack as slack_mod
from repro.timing.sta import STAEngine

#: Recognized edit-spec kinds and their required fields.
SPEC_KINDS = {
    "resize": ("gate", "up"),
    "size_cell": ("gate", "cell"),
    "vt_swap": ("gate", "vt"),
    "insert_buffer": ("net", "buffer_cell"),
    "remove_buffer": ("gate",),
}

#: Optional fields per kind (beyond the required set).
_OPTIONAL_FIELDS = {
    "insert_buffer": ("loads", "buffer", "new_net"),
}


class WhatIfError(ReproError):
    """A malformed or inapplicable what-if candidate."""


# ----------------------------------------------------------------------
# Candidate normalization (dicts / frozen tuples / ECO text -> canonical)
# ----------------------------------------------------------------------
def _is_pair(value: Any) -> bool:
    return (
        isinstance(value, (tuple, list)) and len(value) == 2
        and isinstance(value[0], str)
    )


def _spec_dict(spec: Any) -> "dict[str, Any]":
    """One spec (dict or frozen (key, value) pairs) -> a plain dict."""
    if isinstance(spec, dict):
        return dict(spec)
    if isinstance(spec, (tuple, list)) and all(_is_pair(p) for p in spec) \
            and len(spec) > 0:
        return {str(k): v for k, v in spec}
    raise WhatIfError(
        f"edit spec must be a dict of fields, got {type(spec).__name__}: "
        f"{spec!r}"
    )


def _canonical_spec(raw: Any) -> "tuple[tuple[str, Any], ...]":
    """Validate one edit spec and freeze it into sorted (key, value) pairs."""
    data = _spec_dict(raw)
    kind = data.pop("kind", None)
    if kind not in SPEC_KINDS:
        raise WhatIfError(
            f"unknown edit kind {kind!r}; choose from "
            f"{tuple(SPEC_KINDS)}"
        )
    required = SPEC_KINDS[kind]
    allowed = set(required) | set(_OPTIONAL_FIELDS.get(kind, ()))
    missing = [name for name in required if name not in data]
    if missing:
        raise WhatIfError(f"{kind} spec is missing {missing}")
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise WhatIfError(f"{kind} spec has unknown fields {unknown}")
    canonical: "dict[str, Any]" = {"kind": kind}
    for name, value in data.items():
        if name == "up":
            canonical[name] = bool(value)
        elif name == "loads":
            canonical[name] = tuple(str(v) for v in value)
        else:
            canonical[name] = str(value)
    return tuple(sorted(canonical.items()))


def parse_eco_candidate(text: str) -> "list[dict[str, Any]]":
    """ECO script text (:mod:`repro.opt.eco` grammar) -> edit specs."""
    specs: "list[dict[str, Any]]" = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        command = parts[0]
        if command == "size_cell" and len(parts) == 3:
            specs.append(
                {"kind": "size_cell", "gate": parts[1], "cell": parts[2]}
            )
        elif command == "insert_buffer" and len(parts) >= 6:
            specs.append({
                "kind": "insert_buffer", "net": parts[1],
                "buffer_cell": parts[2], "buffer": parts[3],
                "new_net": parts[4], "loads": parts[5:],
            })
        elif command == "remove_buffer" and len(parts) == 2:
            specs.append({"kind": "remove_buffer", "gate": parts[1]})
        else:
            raise WhatIfError(
                f"ECO line {lineno}: cannot parse {line!r}"
            )
    return specs


def normalize_candidate(candidate: Any) \
        -> "tuple[tuple[tuple[str, Any], ...], ...]":
    """One candidate (spec list, single spec, or ECO text) -> canonical form.

    The canonical form — a tuple of frozen specs — is hashable and
    order-preserving; it is both the cache-key material
    (:func:`repro.service.keys.what_if_key`) and what the evaluation
    workers consume, so "same candidate" and "same key" coincide.
    """
    if isinstance(candidate, str):
        candidate = parse_eco_candidate(candidate)
    elif isinstance(candidate, dict) or (
        isinstance(candidate, (tuple, list)) and len(candidate) > 0
        and all(_is_pair(p) for p in candidate)
    ):
        candidate = [candidate]  # a bare single spec
    if not isinstance(candidate, (list, tuple)):
        raise WhatIfError(
            f"candidate must be an edit-spec list or ECO text, got "
            f"{type(candidate).__name__}"
        )
    if not candidate:
        raise WhatIfError("candidate has no edits")
    return tuple(_canonical_spec(spec) for spec in candidate)


# ----------------------------------------------------------------------
# Apply / revert (the transforms.py idiom, deterministic names)
# ----------------------------------------------------------------------
def _deterministic_name(netlist, base: str) -> str:
    """A fresh name derived from the candidate, not a global counter."""
    name = base
    while name in netlist.gates or name in netlist.nets:
        name += "_"
    return name


def _swap_spec(engine: STAEngine, gate: str, new_cell: "str | None",
               change: "ChangeRecord | None", label: str) \
        -> "tuple[ChangeRecord, Callable[[STAEngine], None], str]":
    """Shared tail of the three cell-substitution kinds."""
    if change is None:
        raise WhatIfError(label)
    old_cell = change.description.split(": ", 1)[1].split(" -> ")[0]
    engine.apply_change(change)
    new_cell = engine.netlist.gate(gate).cell_name

    def undo(target: STAEngine) -> None:
        target.netlist.swap_cell(gate, old_cell)
        target.apply_change(change)

    return change, undo, f"size_cell {gate} {new_cell}"


def _apply_spec(engine: STAEngine, spec: "dict[str, Any]", ordinal: int) \
        -> "tuple[ChangeRecord, Callable[[STAEngine], None], str]":
    """Apply one edit spec; returns (change, undo closure, ECO command)."""
    netlist = engine.netlist
    kind = spec["kind"]
    if kind == "resize":
        gate = spec["gate"]
        change = resize_gate(netlist, gate, up=spec["up"])
        return _swap_spec(
            engine, gate, None, change,
            f"gate {gate} is already at the "
            f"{'largest' if spec['up'] else 'smallest'} size",
        )
    if kind == "size_cell":
        gate, cell = spec["gate"], spec["cell"]
        old_cell = netlist.gate(gate).cell_name
        netlist.library.cell(cell)  # unknown cells raise here
        if cell == old_cell:
            raise WhatIfError(f"gate {gate} is already a {cell}")
        netlist.swap_cell(gate, cell)
        change = ChangeRecord(
            kind="resize", gates=[gate],
            nets=list(netlist.gate(gate).connections.values()),
            description=f"{gate}: {old_cell} -> {cell}",
        )
        return _swap_spec(engine, gate, cell, change, "")
    if kind == "vt_swap":
        gate = spec["gate"]
        change = swap_vt(netlist, gate, spec["vt"])
        return _swap_spec(
            engine, gate, None, change,
            f"gate {gate} has no {spec['vt']} flavour (or is there already)",
        )
    if kind == "insert_buffer":
        return _apply_insert_buffer(engine, spec, ordinal)
    if kind == "remove_buffer":
        return _apply_remove_buffer(engine, spec)
    raise WhatIfError(f"unknown edit kind {kind!r}")  # pragma: no cover


def _apply_insert_buffer(engine: STAEngine, spec: "dict[str, Any]",
                         ordinal: int):
    netlist = engine.netlist
    loads = None
    if "loads" in spec:
        loads = []
        for ref in spec["loads"]:
            if "/" not in ref:
                raise WhatIfError(f"load {ref!r} must be gate/pin")
            gate, pin = ref.rsplit("/", 1)
            loads.append(PinRef(gate, pin))
    buffer_name = spec.get(
        "buffer", _deterministic_name(netlist, f"wbuf{ordinal}")
    )
    new_net = spec.get(
        "new_net", _deterministic_name(netlist, f"wnet{ordinal}")
    )
    change = insert_buffer(
        netlist, spec["net"], spec["buffer_cell"], loads=loads,
        placement=engine.placement, buffer_name=buffer_name,
        new_net_name=new_net,
    )
    engine.apply_change(change)

    def undo(target: STAEngine) -> None:
        inverse = remove_buffer(target.netlist, buffer_name)
        inverse.gates.append(buffer_name)
        inverse.nets.extend(change.nets)
        if target.placement is not None:
            target.placement.locations.pop(buffer_name, None)
        target.apply_change(inverse)

    meta = change.metadata
    eco = (
        f"insert_buffer {meta['net']} {meta['buffer_cell']} "
        f"{meta['buffer']} {meta['new_net']} "
        + " ".join(str(r) for r in meta["loads"])
    )
    return change, undo, eco


def _apply_remove_buffer(engine: STAEngine, spec: "dict[str, Any]"):
    netlist = engine.netlist
    buffer_name = spec["gate"]
    # Capture everything the undo needs *before* removal.
    cell = netlist.cell_of(buffer_name)
    if not cell.is_buffer:
        raise WhatIfError(f"{buffer_name} is not a buffer instance")
    gate = netlist.gate(buffer_name)
    in_net = gate.connections.get(cell.input_pins[0].name)
    out_net = gate.connections.get(cell.output_pins[0].name)
    moved = list(netlist.net_loads(out_net)) if out_net else []
    location = None
    if engine.placement is not None and engine.placement.has(buffer_name):
        location = engine.placement.location(buffer_name)
    change = remove_buffer(netlist, buffer_name)
    # The record must name the removed instance for the incremental
    # updater to drop its graph nodes (same append transforms.py does).
    change.gates.append(buffer_name)
    engine.apply_change(change)
    cell_name = cell.name

    def undo(target: STAEngine) -> None:
        inverse = insert_buffer(
            target.netlist, in_net, cell_name, loads=moved,
            placement=None, buffer_name=buffer_name, new_net_name=out_net,
        )
        if location is not None and target.placement is not None:
            target.placement.place(buffer_name, location.x, location.y)
        target.apply_change(inverse)

    return change, undo, f"remove_buffer {buffer_name}"


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CandidateResult:
    """One candidate's scored outcome (frozen; ``seconds`` is provenance).

    ``touched`` lists the endpoints whose setup slack the candidate
    moved, as (endpoint, slack before, slack after) in deterministic
    endpoint order.  ``eco`` is the exact replayable command list
    (:mod:`repro.opt.eco` grammar) with the deterministic generated
    names, so a winning candidate can be committed verbatim.  A failed
    candidate (``ok=False``) carries the error and a zero delta.
    """

    ok: bool
    edits: int
    applied: int
    eco: "tuple[str, ...]"
    wns_before: float
    tns_before: float
    violations_before: int
    wns_after: float
    tns_after: float
    violations_after: int
    touched: "tuple[tuple[str, float, float], ...]"
    error: "str | None" = None
    seconds: float = field(default=0.0, compare=False)

    @property
    def delta_wns(self) -> float:
        """Positive = the candidate improved the worst slack."""
        return self.wns_after - self.wns_before

    @property
    def delta_tns(self) -> float:
        return self.tns_after - self.tns_before

    def to_dict(self) -> "dict[str, Any]":
        from dataclasses import asdict

        record = asdict(self)
        record["delta_wns"] = self.delta_wns
        record["delta_tns"] = self.delta_tns
        return record


@dataclass(frozen=True)
class WhatIfResult:
    """K candidates scored against one design's baseline timing."""

    design: str
    wns_baseline: float
    tns_baseline: float
    violations_baseline: int
    candidates: "tuple[CandidateResult, ...]"
    seconds: float = field(default=0.0, compare=False)

    def best(self) -> "int | None":
        """Index of the best successful candidate (by ΔWNS, then ΔTNS)."""
        scored = [
            (c.delta_wns, c.delta_tns, -i)
            for i, c in enumerate(self.candidates) if c.ok
        ]
        if not scored:
            return None
        return -max(scored)[2]

    def to_dict(self) -> "dict[str, Any]":
        return {
            "design": self.design,
            "wns_baseline": self.wns_baseline,
            "tns_baseline": self.tns_baseline,
            "violations_baseline": self.violations_baseline,
            "candidates": [c.to_dict() for c in self.candidates],
            "best": self.best(),
            "seconds": self.seconds,
        }


@dataclass(frozen=True)
class MinPeriodResult:
    """Outcome of the min-period bisection on one clock.

    ``period`` is the smallest period *verified feasible* (WNS >= 0)
    with the bracket resolved to ``tolerance`` ps: ``bracket_high ==
    period`` is feasible and ``bracket_low`` is infeasible (or the
    search floor), with ``bracket_high - bracket_low <= tolerance``.
    The bracket/bisection sequence is a pure function of (content,
    clock, tolerance, max_iter) — worker counts and evaluation order
    cannot move it.
    """

    design: str
    clock: str
    period: float
    wns_at_period: float
    baseline_period: float
    baseline_wns: float
    bracket_low: float
    bracket_high: float
    tolerance: float
    iterations: int
    evaluations: int
    corner: str = ""
    seconds: float = field(default=0.0, compare=False)

    def to_dict(self) -> "dict[str, Any]":
        from dataclasses import asdict

        return asdict(self)


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Baseline:
    wns: float
    tns: float
    violations: int
    slacks: "tuple[tuple[str, float], ...]"


def _snapshot(engine: STAEngine) -> _Baseline:
    slacks = engine.setup_slacks()
    summary = engine.summary()
    return _Baseline(
        wns=float(summary.wns), tns=float(summary.tns),
        violations=int(summary.violations),
        slacks=tuple((s.name, float(s.slack)) for s in slacks),
    )


def evaluate_candidate_on_engine(
    engine: STAEngine,
    candidate: "tuple[tuple[tuple[str, Any], ...], ...]",
    base: _Baseline,
) -> CandidateResult:
    """Apply one canonical candidate, measure, and revert — always.

    The apply -> measure -> revert cycle leaves the engine bit-identical
    to ``base`` (the revert restores the exact netlist content, and
    incremental re-propagation is property-tested equal to a full
    update), which is what makes sequential reuse of one engine
    equivalent to parallel fresh-engine clones.
    """
    start = time.perf_counter()
    undos: "list[Callable[[STAEngine], None]]" = []
    eco: "list[str]" = []
    error: "str | None" = None
    after = base
    try:
        for ordinal, frozen in enumerate(candidate):
            spec = {key: value for key, value in frozen}
            change, undo, command = _apply_spec(engine, spec, ordinal)
            undos.append(undo)
            eco.append(command)
        after = _snapshot(engine)
    except Exception as exc:
        error = f"{type(exc).__name__}: {exc}"
    finally:
        for undo in reversed(undos):
            undo(engine)
    base_map = dict(base.slacks)
    touched = tuple(
        (name, base_map[name], slack)
        for name, slack in after.slacks
        if name in base_map and slack != base_map[name]
    )
    return CandidateResult(
        ok=error is None,
        edits=len(candidate),
        applied=len(undos),
        eco=tuple(eco) if error is None else (),
        wns_before=base.wns, tns_before=base.tns,
        violations_before=base.violations,
        wns_after=after.wns, tns_after=after.tns,
        violations_after=after.violations,
        touched=touched if error is None else (),
        error=error,
        seconds=time.perf_counter() - start,
    )


def _evaluate_chunk(job) -> "tuple[_Baseline, list[CandidateResult]]":
    """Worker body of the candidate fan-out (module-level: picklable).

    Builds a private engine — rebuilding by name for a string source,
    deep-copying the bundle otherwise (thread workers must never share
    a mutable netlist) — and evaluates its candidate chunk sequentially
    through the exact same apply/measure/revert path as serial mode.
    """
    from repro import api

    source, candidates = job
    bundle = (
        api.load_design(source) if isinstance(source, str)
        else copy.deepcopy(source)
    )
    engine = api.make_engine(bundle)
    base = _snapshot(engine)
    return base, [
        evaluate_candidate_on_engine(engine, candidate, base)
        for candidate in candidates
    ]


def evaluate_what_if(
    design,
    candidates: "Sequence[Any]",
    context=None,
    *,
    engine: "STAEngine | None" = None,
) -> WhatIfResult:
    """Score candidate edit-lists against one design; parallel over K.

    ``design`` is a suite name, a ``Design`` bundle, or (with
    ``engine=``) ignored in favour of a live engine.  Duplicate
    candidates evaluate once.  With a non-serial context and no pinned
    engine, unique candidates chunk contiguously across workers
    (:func:`repro.parallel.chunk_ranges` — one private engine clone per
    chunk); results merge positionally, so the output is bit-identical
    at any worker count.
    """
    from repro.context import RunContext
    from repro.parallel import chunk_ranges

    start = time.perf_counter()
    ctx = context or RunContext.from_env()
    normalized = [normalize_candidate(c) for c in candidates]
    unique: "dict[tuple, int]" = {}
    for candidate in normalized:
        unique.setdefault(candidate, len(unique))
    unique_list = list(unique)
    executor = ctx.executor()
    parallel = (
        engine is None and not executor.is_serial and len(unique_list) > 1
    )
    with span(
        "whatif.evaluate", candidates=len(normalized),
        unique=len(unique_list), parallel=parallel,
    ):
        counter("whatif.candidates").inc(len(normalized))
        if parallel:
            source = design  # name (rebuilt) or bundle (deep-copied)
            chunks = chunk_ranges(len(unique_list), ctx.workers)
            jobs = [
                (source, [unique_list[i] for i in chunk])
                for chunk in chunks
            ]
            counter("whatif.chunks").inc(len(jobs))
            groups = executor.map(
                _evaluate_chunk, jobs, chunk_size=1,
                label="whatif.candidates",
            )
            base = groups[0][0]
            scored: "list[CandidateResult]" = []
            for chunk_base, results in groups:
                scored.extend(results)
        else:
            if engine is None:
                from repro import api

                engine = api.make_engine(design, ctx)
            base = _snapshot(engine)
            scored = [
                evaluate_candidate_on_engine(engine, candidate, base)
                for candidate in unique_list
            ]
    by_candidate = dict(zip(unique_list, scored))
    ordered = tuple(by_candidate[c] for c in normalized)
    name = engine.netlist.name if engine is not None else (
        design if isinstance(design, str) else design.name
    )
    if name in ("fig2",):
        name = "paper_fig2"
    return WhatIfResult(
        design=name,
        wns_baseline=base.wns,
        tns_baseline=base.tns,
        violations_baseline=base.violations,
        candidates=ordered,
        seconds=time.perf_counter() - start,
    )


# ----------------------------------------------------------------------
# Min-period search
# ----------------------------------------------------------------------
def min_period_on_engine(
    engine: STAEngine,
    clock: "str | None" = None,
    tolerance: float = 1.0,
    max_iter: int = 64,
    corner: str = "",
) -> MinPeriodResult:
    """Bisect the smallest feasible period of one clock (deterministic).

    The clock period enters timing only through endpoint *required*
    times (``window = cycles * period``), never through arrivals — so a
    trial period costs one pure slack recomputation over the existing
    propagated state, and WNS is monotone non-decreasing in the period.
    Bracket contract: the upper bound doubles up from the baseline
    period until feasible (the lower starts at the last infeasible
    probe); a feasible baseline instead halves the lower bound down
    until infeasible or below ``tolerance``.  Bisection then shrinks
    the bracket to ``tolerance`` and returns the feasible upper bound.
    """
    if tolerance <= 0:
        raise WhatIfError(f"tolerance must be > 0, got {tolerance}")
    start = time.perf_counter()
    engine.ensure_timing()
    constraints = engine.constraints
    try:
        clk = (
            constraints.primary_clock() if clock is None
            else constraints.clock(clock)
        )
    except ReproError as exc:
        raise WhatIfError(str(exc)) from exc
    evaluations = 0

    def wns_at(period: float) -> float:
        nonlocal evaluations
        evaluations += 1
        saved = clk.period
        clk.period = period
        try:
            slacks = slack_mod.setup_slacks(
                engine.graph, engine.state, engine.constraints
            )
        finally:
            clk.period = saved
        return min((float(s.slack) for s in slacks), default=float("inf"))

    with span("whatif.min_period", clock=clk.name, tolerance=tolerance):
        baseline_period = float(clk.period)
        baseline_wns = wns_at(baseline_period)
        if baseline_wns >= 0.0:
            hi, hi_wns = baseline_period, baseline_wns
            lo = baseline_period
            while lo > tolerance:
                probe = lo / 2.0
                probe_wns = wns_at(probe)
                if probe_wns < 0.0:
                    lo = probe
                    break
                hi, hi_wns = probe, probe_wns
                lo = probe
            else:
                probe_wns = 0.0
            feasible_bracket = hi > lo
        else:
            lo = baseline_period
            hi, hi_wns = baseline_period, baseline_wns
            for _ in range(64):
                hi *= 2.0
                hi_wns = wns_at(hi)
                if hi_wns >= 0.0:
                    break
                lo = hi
            else:
                raise WhatIfError(
                    f"no feasible period for clock {clk.name} up to "
                    f"{hi:.1f} ps (another clock may be violating)"
                )
            feasible_bracket = True
        iterations = 0
        if feasible_bracket:
            while hi - lo > tolerance and iterations < max_iter:
                mid = 0.5 * (lo + hi)
                mid_wns = wns_at(mid)
                if mid_wns >= 0.0:
                    hi, hi_wns = mid, mid_wns
                else:
                    lo = mid
                iterations += 1
        counter("whatif.min_period.evaluations").inc(evaluations)
        histogram("whatif.min_period.iterations").observe(iterations)
    return MinPeriodResult(
        design=engine.netlist.name,
        clock=clk.name,
        period=hi,
        wns_at_period=hi_wns,
        baseline_period=baseline_period,
        baseline_wns=baseline_wns,
        bracket_low=lo,
        bracket_high=hi,
        tolerance=float(tolerance),
        iterations=iterations,
        evaluations=evaluations,
        corner=corner,
        seconds=time.perf_counter() - start,
    )
