"""Optimization transforms evaluated under incremental timing.

Each transform applies a netlist edit, mirrors it into the engine
incrementally, and can revert itself exactly — the greedy closure loop
tries candidates and keeps only improvements.  Transforms never touch
the clock network or sequential cells (clock-tree surgery is a
different discipline than data-path closure).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.core import Netlist, PinRef
from repro.netlist.edit import insert_buffer, remove_buffer, resize_gate, swap_vt
from repro.timing.sta import STAEngine


@dataclass
class AppliedTransform:
    """A successfully applied, revertible transform.

    ``eco`` holds the replayable ECO command(s) representing the move
    (see :mod:`repro.opt.eco`); the closure loop collects them for
    accepted moves only.
    """

    kind: str
    description: str
    _undo: "callable"
    eco: list[str] = None

    def __post_init__(self):
        if self.eco is None:
            self.eco = []

    def revert(self, engine: STAEngine) -> None:
        """Undo the transform and update the engine incrementally."""
        self._undo(engine)


def _clock_gates(engine: STAEngine) -> set[str]:
    gates: set[str] = set()
    for node in engine.graph.live_nodes():
        if node.is_clock_tree and node.ref.gate is not None:
            gates.add(node.ref.gate)
    return gates


class TransformEngine:
    """Applies and reverts sizing/buffering moves on one engine."""

    def __init__(self, engine: STAEngine):
        self.engine = engine
        self.netlist: Netlist = engine.netlist
        self._clock_gates = _clock_gates(engine)

    def refresh_clock_gates(self) -> None:
        """Re-derive the untouchable clock-gate set after structure edits."""
        self._clock_gates = _clock_gates(self.engine)

    def is_touchable(self, gate_name: str) -> bool:
        """True when the optimizer may modify this gate."""
        if gate_name in self._clock_gates:
            return False
        return not self.netlist.cell_of(gate_name).is_sequential

    # ------------------------------------------------------------------
    # Individual transforms
    # ------------------------------------------------------------------
    def upsize(self, gate_name: str) -> AppliedTransform | None:
        """One size step up; None when impossible or untouchable."""
        if not self.is_touchable(gate_name):
            return None
        old_cell = self.netlist.gate(gate_name).cell_name
        change = resize_gate(self.netlist, gate_name, up=True)
        if change is None:
            return None
        self.engine.apply_change(change)
        new_cell = self.netlist.gate(gate_name).cell_name

        def undo(engine: STAEngine) -> None:
            engine.netlist.swap_cell(gate_name, old_cell)
            engine.apply_change(change)

        return AppliedTransform(
            "upsize", change.description, undo,
            eco=[f"size_cell {gate_name} {new_cell}"],
        )

    def downsize(self, gate_name: str) -> AppliedTransform | None:
        """One size step down; None when impossible or untouchable."""
        if not self.is_touchable(gate_name):
            return None
        old_cell = self.netlist.gate(gate_name).cell_name
        change = resize_gate(self.netlist, gate_name, up=False)
        if change is None:
            return None
        self.engine.apply_change(change)
        new_cell = self.netlist.gate(gate_name).cell_name

        def undo(engine: STAEngine) -> None:
            engine.netlist.swap_cell(gate_name, old_cell)
            engine.apply_change(change)

        return AppliedTransform(
            "downsize", change.description, undo,
            eco=[f"size_cell {gate_name} {new_cell}"],
        )

    def swap_to_vt(self, gate_name: str, vt: str) -> AppliedTransform | None:
        """Move a gate to another VT flavour (``"lvt"`` to speed a
        critical gate up, ``"hvt"`` to recover leakage on a slack-rich
        one); None when no such flavour exists."""
        if not self.is_touchable(gate_name):
            return None
        old_cell = self.netlist.gate(gate_name).cell_name
        change = swap_vt(self.netlist, gate_name, vt)
        if change is None:
            return None
        self.engine.apply_change(change)
        new_cell = self.netlist.gate(gate_name).cell_name

        def undo(engine: STAEngine) -> None:
            engine.netlist.swap_cell(gate_name, old_cell)
            engine.apply_change(change)

        return AppliedTransform(
            "vt_swap", change.description, undo,
            eco=[f"size_cell {gate_name} {new_cell}"],
        )

    def pad_hold_path(self, endpoint_ref: PinRef,
                      buffer_cell: str | None = None) -> AppliedTransform | None:
        """Insert a delay buffer immediately before a hold endpoint.

        Reroutes only the endpoint's own load through the buffer, so
        other sinks of the net (and their setup paths) are untouched;
        the padded pin gains the buffer's insertion delay on *every*
        path, early and late — helping hold at a bounded setup cost the
        acceptance check verifies.
        """
        if endpoint_ref.is_port or endpoint_ref.gate is None:
            return None
        net_name = self.netlist.gate(endpoint_ref.gate).connections.get(
            endpoint_ref.pin
        )
        if net_name is None:
            return None
        driver = self.netlist.net_driver(net_name)
        if driver is None:
            return None
        if buffer_cell is None:
            buffers = self.netlist.library.buffers()
            if not buffers:
                return None
            buffer_cell = buffers[0].name  # smallest = most delay/cheap
        change = insert_buffer(
            self.netlist, net_name, buffer_cell,
            loads=[endpoint_ref], placement=self.engine.placement,
        )
        self.engine.apply_change(change)
        buffer_name = change.gates[0]

        def undo(engine: STAEngine) -> None:
            inverse = remove_buffer(engine.netlist, buffer_name)
            inverse.gates.append(buffer_name)
            inverse.nets.extend(change.nets)
            if engine.placement is not None:
                engine.placement.locations.pop(buffer_name, None)
            engine.apply_change(inverse)

        meta = change.metadata
        eco_command = (
            f"insert_buffer {meta['net']} {meta['buffer_cell']} "
            f"{meta['buffer']} {meta['new_net']} "
            + " ".join(str(r) for r in meta["loads"])
        )
        return AppliedTransform(
            "hold_pad", change.description, undo, eco=[eco_command]
        )

    def buffer_net(self, net_name: str,
                   buffer_cell: str | None = None) -> AppliedTransform | None:
        """Insert a buffer isolating the off-path loads of a net.

        Keeps the single most critical load (the one with the latest
        required-arrival pressure is approximated by the largest arrival)
        on the original net and moves the rest behind a buffer, cutting
        the load the critical arc sees.
        """
        driver = self.netlist.net_driver(net_name)
        if driver is None or (driver.gate and not self.is_touchable(driver.gate)):
            return None
        loads = [r for r in self.netlist.net_loads(net_name) if not r.is_port]
        if len(loads) < 2:
            return None
        arrivals = []
        for ref in loads:
            node_id = self.engine.graph.node_of.get(ref)
            arrivals.append(
                float(self.engine.state.arrival_late[node_id])
                if node_id is not None else 0.0
            )
        critical_idx = max(range(len(loads)), key=lambda i: arrivals[i])
        rerouted = [r for i, r in enumerate(loads) if i != critical_idx]
        if buffer_cell is None:
            bufs = self.netlist.library.buffers()
            if not bufs:
                return None
            buffer_cell = bufs[len(bufs) // 2].name
        change = insert_buffer(
            self.netlist, net_name, buffer_cell,
            loads=rerouted, placement=self.engine.placement,
        )
        self.engine.apply_change(change)
        buffer_name = change.gates[0]

        def undo(engine: STAEngine) -> None:
            inverse = remove_buffer(engine.netlist, buffer_name)
            # The buffer's own nodes must leave the graph too.
            inverse.gates.append(buffer_name)
            inverse.nets.extend(change.nets)
            if engine.placement is not None:
                engine.placement.locations.pop(buffer_name, None)
            engine.apply_change(inverse)

        meta = change.metadata
        eco_command = (
            f"insert_buffer {meta['net']} {meta['buffer_cell']} "
            f"{meta['buffer']} {meta['new_net']} "
            + " ".join(str(r) for r in meta["loads"])
        )
        return AppliedTransform(
            "buffer", change.description, undo, eco=[eco_command]
        )
