"""Timing-closure optimization framework (left half of the paper's Fig. 5).

* :class:`~repro.opt.qor.QoRMetrics` — WNS/TNS/area/leakage/buffers.
* :mod:`~repro.opt.transforms` — sizing and buffering moves evaluated
  under incremental timing, with clean revert.
* :class:`~repro.opt.closure.TimingClosureOptimizer` — the greedy
  fix-violations / recover-area loop, run with plain GBA or with the
  mGBA-corrected engine.
* :func:`~repro.opt.compare.run_flow_comparison` — GBA-flow vs
  mGBA-flow A/B on one design (Tables 2 and 5).
* :mod:`~repro.opt.whatif` — batched what-if candidate evaluation and
  min-period search: the closure loop's inner oracle as a parallel,
  cacheable API (served by ``TimingService`` as ``what_if`` /
  ``min_period``).
"""

from repro.opt.qor import QoRMetrics
from repro.opt.closure import ClosureConfig, ClosureReport, TimingClosureOptimizer
from repro.opt.compare import FlowComparison, run_flow_comparison
from repro.opt.whatif import (
    CandidateResult,
    MinPeriodResult,
    WhatIfError,
    WhatIfResult,
    evaluate_what_if,
    min_period_on_engine,
    normalize_candidate,
    parse_eco_candidate,
)

__all__ = [
    "QoRMetrics",
    "ClosureConfig",
    "ClosureReport",
    "TimingClosureOptimizer",
    "FlowComparison",
    "run_flow_comparison",
    "CandidateResult",
    "MinPeriodResult",
    "WhatIfError",
    "WhatIfResult",
    "evaluate_what_if",
    "min_period_on_engine",
    "normalize_candidate",
    "parse_eco_candidate",
]
