"""Quality-of-result metrics — the columns of the paper's Table 2."""

from __future__ import annotations

from dataclasses import dataclass

from repro.timing.slack import CheckKind
from repro.timing.sta import STAEngine


@dataclass(frozen=True)
class QoRMetrics:
    """One design's quality snapshot.

    ``wns``/``tns`` are setup values in ps; ``area`` um^2; ``leakage``
    nW; ``buffers`` instance count; ``violations`` the number of
    negative-slack setup endpoints.
    """

    wns: float
    tns: float
    area: float
    leakage: float
    buffers: int
    violations: int

    @classmethod
    def measure(cls, engine: STAEngine) -> "QoRMetrics":
        """Snapshot QoR from an engine's current (GBA or mGBA) view."""
        summary = engine.summary(CheckKind.SETUP)
        netlist = engine.netlist
        return cls(
            wns=summary.wns,
            tns=summary.tns,
            area=netlist.total_area(),
            leakage=netlist.total_leakage(),
            buffers=netlist.buffer_count(),
            violations=summary.violations,
        )

    def improvement_over(self, baseline: "QoRMetrics") -> dict[str, float]:
        """Percent improvements relative to a baseline (Table 2's rows).

        Positive means better: smaller area/leakage/buffers, less
        negative WNS/TNS.  WNS/TNS improvements are normalized by the
        baseline magnitude (0 when the baseline is already clean).
        """

        def shrink(ours: float, theirs: float) -> float:
            return 100.0 * (theirs - ours) / theirs if theirs else 0.0

        def slack_gain(ours: float, theirs: float) -> float:
            scale = abs(theirs)
            return 100.0 * (ours - theirs) / scale if scale else 0.0

        return {
            "wns": slack_gain(self.wns, baseline.wns),
            "tns": slack_gain(self.tns, baseline.tns),
            "area": shrink(self.area, baseline.area),
            "leakage": shrink(self.leakage, baseline.leakage),
            "buffer": shrink(float(self.buffers), float(baseline.buffers)),
        }
