"""The timing-closure optimization loop (Fig. 5, left).

Greedy violation fixing under incremental timing:

1. analyze (GBA, or mGBA-corrected when a flow installed weights);
2. pick the worst violating endpoint, trace its worst path;
3. try candidate transforms (upsize path gates, buffer heavy nets) and
   keep the first one that improves the endpoint without hurting the
   design's TNS; revert the rest;
4. repeat until few enough violating endpoints remain (the paper notes
   "usually no more than 100 violated endpoints is acceptable") or the
   move budget runs out;
5. recovery: downsize comfortably-positive gates to win back area and
   leakage without creating violations.

The pessimism connection: a flow driven by plain GBA sees phantom
violations (paths PBA would accept), burns moves and area on them, and
keeps iterating; the mGBA-driven flow sees corrected slacks, fixes only
real violations, and exits earlier with a smaller design — Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mgba.flow import MGBAConfig, MGBAFlow, MGBAResult
from repro.netlist.core import Netlist
from repro.netlist.placement import Placement
from repro.obs.metrics import counter
from repro.obs.trace import Span, span
from repro.opt.qor import QoRMetrics
from repro.opt.transforms import TransformEngine
from repro.sdc.constraints import Constraints
from repro.timing.graph import EdgeKind
from repro.timing.report import trace_worst_path
from repro.timing.sta import STAConfig, STAEngine
from repro.utils.log import get_logger

logger = get_logger("opt.closure")


@dataclass(frozen=True)
class ClosureConfig:
    """Knobs of the closure loop."""

    max_transforms: int = 400
    acceptable_violations: int = 0
    fix_hold: bool = False
    max_hold_transforms: int = 100
    recovery: bool = True
    recovery_margin: float = 30.0   # ps of slack a gate must keep
    #: Recovery move budget; None = bounded only by the candidate list.
    #: Kept separate from the fixing budget: capping both at the same
    #: number makes the GBA and mGBA flows converge artificially (both
    #: just exhaust the cap) and hides the pessimism cost.
    max_recovery: int | None = None
    candidate_gates_per_path: int = 6
    use_mgba: bool = False
    #: Re-run the mGBA fit after this many accepted fixing moves; the
    #: netlist drifts away from the fitted one as transforms land, so
    #: long flows refresh the correction (0 = fit once up front).
    mgba_refresh_every: int = 0
    mgba: MGBAConfig = field(default_factory=MGBAConfig)


@dataclass
class ClosureReport:
    """Outcome of one closure run.

    ``fix_*`` counts cover the violation-fixing phase (the work
    pessimism inflates); ``recovery_*`` the area/leakage recovery phase
    (where *more* work is better — each accepted move is savings).
    """

    initial: QoRMetrics
    final: QoRMetrics
    transforms_applied: int
    transforms_tried: int
    fix_applied: int = 0
    fix_tried: int = 0
    recovery_applied: int = 0
    recovery_tried: int = 0
    iterations: int = 0
    seconds_total: float = 0.0
    seconds_mgba: float = 0.0
    seconds_fix: float = 0.0
    seconds_recovery: float = 0.0
    mgba_refreshes: int = 0
    mgba_result: MGBAResult | None = None
    #: Replayable ECO commands for every accepted move, in order (see
    #: :mod:`repro.opt.eco`).
    eco_commands: list[str] = field(default_factory=list)
    #: The ``closure.run`` tracing span (fix/recover/mGBA stages are
    #: its children); the ``seconds_*`` fields above are derived from
    #: its tree.
    run_span: Span | None = None

    @property
    def seconds_optimization(self) -> float:
        """Time spent in the transform loop (excl. the mGBA fit)."""
        return self.seconds_total - self.seconds_mgba


class TimingClosureOptimizer:
    """Runs the closure loop on one design."""

    def __init__(
        self,
        netlist: Netlist,
        constraints: Constraints,
        placement: Placement | None = None,
        sta_config: STAConfig | None = None,
        config: ClosureConfig | None = None,
    ):
        self.config = config or ClosureConfig()
        self.engine = STAEngine(netlist, constraints, placement, sta_config)
        self.transforms = TransformEngine(self.engine)

    # ------------------------------------------------------------------
    # Candidate generation
    # ------------------------------------------------------------------
    def _path_candidates(self, endpoint: int) -> tuple[list[str], list[str]]:
        """(gates to upsize, nets to buffer) along the worst path."""
        graph, state = self.engine.graph, self.engine.state
        edges = trace_worst_path(graph, state, endpoint)
        gates: list[str] = []
        nets: list[str] = []
        seen_gates: set[str] = set()
        seen_nets: set[str] = set()
        for edge_id in edges:
            edge = graph.edge(edge_id)
            if edge.kind is EdgeKind.CELL and edge.gate is not None:
                if (
                    edge.gate not in seen_gates
                    and self.transforms.is_touchable(edge.gate)
                ):
                    seen_gates.add(edge.gate)
                    gates.append(edge.gate)
            elif edge.kind is EdgeKind.NET and edge.net is not None:
                if edge.net not in seen_nets:
                    seen_nets.add(edge.net)
                    nets.append(edge.net)
        # Heaviest-loaded driver first: upsizing helps most where the
        # cell is weakest relative to its load.
        def load_pressure(gate_name: str) -> float:
            cell = self.engine.netlist.cell_of(gate_name)
            gate = self.engine.netlist.gate(gate_name)
            pressure = 0.0
            for pin in cell.output_pins:
                net = gate.connections.get(pin.name)
                if net is not None:
                    pressure = max(
                        pressure,
                        self.engine.calc.output_load(net) / cell.drive_strength,
                    )
            return pressure

        gates.sort(key=load_pressure, reverse=True)
        limit = self.config.candidate_gates_per_path
        heavy_nets = [
            n for n in nets
            if len(self.engine.netlist.net_loads(n)) >= 3
        ]
        return gates[:limit], heavy_nets[:limit]

    # ------------------------------------------------------------------
    # Greedy accept/revert
    # ------------------------------------------------------------------
    def _endpoint_slack(self, endpoint: int) -> float:
        for s in self.engine.setup_slacks():
            if s.node == endpoint:
                return s.slack
        return 0.0

    def _try_fix_endpoint(self, endpoint: int) -> bool:
        """Try candidates on one endpoint; True when one was accepted."""
        before_slack = self._endpoint_slack(endpoint)
        before = self.engine.summary()
        gates, nets = self._path_candidates(endpoint)
        moves = (
            [("upsize", g) for g in gates]
            + [("lvt", g) for g in gates]
            + [("buffer", n) for n in nets]
        )
        for kind, target in moves:
            self._tried += 1
            if kind == "upsize":
                applied = self.transforms.upsize(target)
            elif kind == "lvt":
                applied = self.transforms.swap_to_vt(target, "lvt")
            else:
                applied = self.transforms.buffer_net(target)
            if applied is None:
                continue
            after_slack = self._endpoint_slack(endpoint)
            after = self.engine.summary()
            improved = (
                after_slack > before_slack + 1e-9
                and after.tns >= before.tns - 1e-9
            )
            if improved:
                logger.debug("accepted %s", applied.description)
                self._eco.extend(applied.eco)
                if kind == "buffer":
                    self.transforms.refresh_clock_gates()
                return True
            applied.revert(self.engine)
        return False

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def fix_violations(self) -> tuple[int, int]:
        """Greedy violation fixing; returns (applied, iterations)."""
        applied = 0
        iterations = 0
        since_refresh = 0
        hopeless: set[int] = set()
        refresh_every = (
            self.config.mgba_refresh_every if self.config.use_mgba else 0
        )
        while applied + len(hopeless) <= self.config.max_transforms:
            iterations += 1
            violations = [
                s for s in self.engine.violating_endpoints()
                if s.node not in hopeless
            ]
            if len(violations) <= self.config.acceptable_violations:
                break
            if applied >= self.config.max_transforms:
                break
            endpoint = violations[0].node
            if self._try_fix_endpoint(endpoint):
                applied += 1
                since_refresh += 1
                if refresh_every and since_refresh >= refresh_every:
                    self._refresh_mgba()
                    since_refresh = 0
                    hopeless.clear()  # corrected view may re-rank them
            else:
                hopeless.add(endpoint)
        return applied, iterations

    def _refresh_mgba(self) -> None:
        """Re-fit the correction against the current netlist."""
        with span("closure.mgba_refresh") as refresh_span:
            MGBAFlow(self.config.mgba).run(self.engine)
            self.transforms.refresh_clock_gates()
        self._mgba_refreshes += 1
        self._refresh_spans.append(refresh_span)

    def fix_hold_violations(self) -> int:
        """Pad hold-violating endpoints with delay buffers.

        Each pad must improve the endpoint's hold slack and must not
        increase setup violations or TNS (padding a D pin delays its
        late arrival too).  Returns accepted pads.
        """
        from repro.netlist.core import PinRef

        applied = 0
        hopeless: set[int] = set()
        while applied < self.config.max_hold_transforms:
            holds = sorted(
                (
                    s for s in self.engine.hold_slacks()
                    if s.slack < 0 and s.node not in hopeless
                ),
                key=lambda s: s.slack,
            )
            if not holds:
                break
            worst = holds[0]
            info = self.engine.graph.endpoints[worst.node]
            endpoint_ref = self.engine.graph.node(worst.node).ref
            setup_before = self.engine.summary()
            self._tried += 1
            move = self.transforms.pad_hold_path(
                PinRef(endpoint_ref.gate, endpoint_ref.pin)
            )
            if move is None:
                hopeless.add(worst.node)
                continue
            hold_after = next(
                (s for s in self.engine.hold_slacks()
                 if s.node == worst.node), None
            )
            setup_after = self.engine.summary()
            improved = (
                hold_after is not None
                and hold_after.slack > worst.slack + 1e-9
                and setup_after.violations <= setup_before.violations
                and setup_after.tns >= setup_before.tns - 1e-9
            )
            if improved:
                applied += 1
                self._eco.extend(move.eco)
                self.transforms.refresh_clock_gates()
            else:
                move.revert(self.engine)
                hopeless.add(worst.node)
        return applied

    def recover(self) -> int:
        """Recover area/leakage on comfortably-positive gates.

        Tries, per candidate in descending-slack order, an HVT swap
        (big leakage win, no area change) and then a downsize (area +
        leakage win); each move must not create violations or worsen
        TNS, else it reverts.  Returns the number of applied moves.
        """
        applied = 0
        margin = self.config.recovery_margin
        gate_slacks = self.engine.gate_slacks()
        candidates = sorted(
            (g for g, s in gate_slacks.items() if s > margin),
            key=lambda g: -gate_slacks[g],
        )
        budget = self.config.max_recovery
        before = self.engine.summary()
        for gate_name in candidates:
            if budget is not None and applied >= budget:
                break
            for attempt in ("hvt", "downsize"):
                self._tried += 1
                move = (
                    self.transforms.swap_to_vt(gate_name, "hvt")
                    if attempt == "hvt"
                    else self.transforms.downsize(gate_name)
                )
                if move is None:
                    continue
                after = self.engine.summary()
                if (
                    after.violations > before.violations
                    or after.tns < before.tns - 1e-9
                ):
                    move.revert(self.engine)
                else:
                    applied += 1
                    self._eco.extend(move.eco)
                    before = after
        return applied

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self) -> ClosureReport:
        """Execute the configured flow and return its report."""
        self._tried = 0
        self._mgba_refreshes = 0
        self._refresh_spans: list[Span] = []
        self._eco: list[str] = []
        with span(
            "closure.run", use_mgba=self.config.use_mgba
        ) as run_span:
            self.engine.update_timing()
            initial = QoRMetrics.measure(self.engine)
            mgba_result = None
            seconds_fit = 0.0
            if self.config.use_mgba:
                with span("closure.mgba_fit") as fit_span:
                    mgba_result = MGBAFlow(self.config.mgba).run(self.engine)
                seconds_fit = fit_span.duration
                logger.info(
                    "mGBA fit: pass ratio %.2f%% -> %.2f%%",
                    100 * mgba_result.pass_ratio_gba,
                    100 * mgba_result.pass_ratio_mgba,
                )
            with span("closure.fix") as fix_span:
                fixed, iterations = self.fix_violations()
                if self.config.fix_hold:
                    with span("closure.fix_hold"):
                        fixed += self.fix_hold_violations()
            fix_span.set(applied=fixed, iterations=iterations)
            fix_tried = self._tried
            with span("closure.recover") as recover_span:
                recovered = self.recover() if self.config.recovery else 0
            recover_span.set(applied=recovered)
            final = QoRMetrics.measure(self.engine)
        # mGBA refreshes happen *inside* the fix loop; keep the
        # historical accounting: they count toward seconds_mgba, not
        # seconds_fix.
        seconds_refresh = sum(s.duration for s in self._refresh_spans)
        counter("closure.transforms_tried").inc(self._tried)
        counter("closure.transforms_applied").inc(fixed + recovered)
        return ClosureReport(
            initial=initial,
            final=final,
            transforms_applied=fixed + recovered,
            transforms_tried=self._tried,
            fix_applied=fixed,
            fix_tried=fix_tried,
            recovery_applied=recovered,
            recovery_tried=self._tried - fix_tried,
            iterations=iterations,
            seconds_total=run_span.duration,
            seconds_mgba=seconds_fit + seconds_refresh,
            seconds_fix=fix_span.duration - seconds_refresh,
            seconds_recovery=recover_span.duration,
            mgba_refreshes=self._mgba_refreshes,
            mgba_result=mgba_result,
            eco_commands=list(self._eco),
            run_span=run_span,
        )
