"""GBA-flow vs mGBA-flow A/B comparison (Tables 2 and 5).

Both flows start from identical copies of a design (the caller passes a
factory so each run gets a pristine netlist), run the same closure
configuration, and are finally judged by the *same* sign-off measure —
golden PBA endpoint slacks — so the comparison never rewards a flow for
merely believing its own numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.opt.closure import ClosureConfig, ClosureReport, TimingClosureOptimizer
from repro.pba.engine import PBAEngine
from repro.timing.sta import STAEngine


@dataclass(frozen=True)
class SignoffQoR:
    """PBA-golden WNS/TNS over all endpoints."""

    wns: float
    tns: float
    violations: int


def signoff_qor(engine: STAEngine, k_paths: int = 16) -> SignoffQoR:
    """Golden (PBA) endpoint slacks of the engine's current netlist."""
    engine.clear_gate_weights()
    engine.update_timing()
    pba = PBAEngine(engine)
    wns = 0.0
    tns = 0.0
    violations = 0
    for endpoint in engine.graph.endpoint_nodes():
        try:
            slack = pba.golden_endpoint_slack(endpoint, k=k_paths)
        except Exception:
            continue
        wns = min(wns, slack)
        if slack < 0:
            tns += slack
            violations += 1
    return SignoffQoR(wns=wns, tns=tns, violations=violations)


@dataclass
class FlowComparison:
    """One Table 2 / Table 5 row."""

    design: str
    gba: ClosureReport
    mgba: ClosureReport
    gba_signoff: SignoffQoR
    mgba_signoff: SignoffQoR

    def qor_improvement(self) -> dict[str, float]:
        """Table 2 percentages: positive = mGBA flow better."""
        gains = self.mgba.final.improvement_over(self.gba.final)
        # WNS/TNS are judged at sign-off, not by each flow's own view.
        scale_wns = abs(self.gba_signoff.wns) or 1.0
        scale_tns = abs(self.gba_signoff.tns) or 1.0
        gains["wns"] = 100.0 * (
            self.mgba_signoff.wns - self.gba_signoff.wns
        ) / scale_wns
        gains["tns"] = 100.0 * (
            self.mgba_signoff.tns - self.gba_signoff.tns
        ) / scale_tns
        return gains

    def runtime_row(self) -> dict[str, float]:
        """Table 5 columns (seconds).

        ``fix_speedup`` isolates the violation-fixing phase, which is
        the work GBA pessimism inflates; ``speedup`` is the total
        including recovery (where the mGBA flow may legitimately spend
        *more* time banking extra savings).
        """
        fix_gba = self.gba.seconds_fix or 1e-9
        fix_mgba = self.mgba.seconds_fix + self.mgba.seconds_mgba
        return {
            "gba_flow": self.gba.seconds_total,
            "post_route": self.mgba.seconds_optimization,
            "mgba": self.mgba.seconds_mgba,
            "total": self.mgba.seconds_total,
            "speedup": (
                self.gba.seconds_total / self.mgba.seconds_total
                if self.mgba.seconds_total > 0 else float("inf")
            ),
            "fix_speedup": fix_gba / fix_mgba if fix_mgba > 0 else float("inf"),
        }


def run_flow_comparison(
    design_name: str,
    design_factory: Callable[[], tuple],
    closure_config: ClosureConfig | None = None,
) -> FlowComparison:
    """Run the closure loop twice (GBA-driven, mGBA-driven) on a design.

    ``design_factory`` must return a fresh
    ``(netlist, constraints, placement, sta_config)`` tuple per call —
    the two flows mutate their netlists independently.
    """
    from dataclasses import replace

    base = closure_config or ClosureConfig()

    netlist, constraints, placement, sta_config = design_factory()
    gba_opt = TimingClosureOptimizer(
        netlist, constraints, placement, sta_config,
        replace(base, use_mgba=False),
    )
    gba_report = gba_opt.run()
    gba_sign = signoff_qor(gba_opt.engine)

    netlist, constraints, placement, sta_config = design_factory()
    mgba_opt = TimingClosureOptimizer(
        netlist, constraints, placement, sta_config,
        replace(base, use_mgba=True),
    )
    mgba_report = mgba_opt.run()
    mgba_sign = signoff_qor(mgba_opt.engine)

    return FlowComparison(
        design=design_name,
        gba=gba_report,
        mgba=mgba_report,
        gba_signoff=gba_sign,
        mgba_signoff=mgba_sign,
    )
