"""Library-wide logging configuration.

The library never configures the root logger; it only emits under the
``repro`` namespace so embedding applications keep control of handlers.
:func:`get_logger` is the single entry point used by all modules.
"""

from __future__ import annotations

import logging

_BASE = "repro"


def get_logger(name: str = "") -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``get_logger("mgba.flow")`` returns the ``repro.mgba.flow`` logger.
    """
    if not name:
        return logging.getLogger(_BASE)
    return logging.getLogger(f"{_BASE}.{name}")


_DEFAULT_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"


def enable_console_logging(
    level: int = logging.INFO, fmt: "str | None" = None
) -> logging.Handler:
    """Attach a stderr handler to the ``repro`` logger (CLI use).

    Idempotent: repeated calls reuse the handler this function
    installed (handlers added by the embedding application are left
    alone) and re-apply the requested ``level`` and ``fmt`` — so
    ``enable_console_logging(logging.DEBUG)`` after an earlier
    INFO-level call actually turns debug output on.  Returns the
    console handler.
    """
    logger = logging.getLogger(_BASE)
    handler = next(
        (h for h in logger.handlers
         if getattr(h, "_repro_console", False)),
        None,
    )
    if handler is None:
        handler = logging.StreamHandler()
        handler._repro_console = True
        logger.addHandler(handler)
    handler.setFormatter(logging.Formatter(fmt or _DEFAULT_FORMAT))
    handler.setLevel(level)
    logger.setLevel(level)
    return handler
