"""Library-wide logging configuration.

The library never configures the root logger; it only emits under the
``repro`` namespace so embedding applications keep control of handlers.
:func:`get_logger` is the single entry point used by all modules.
"""

from __future__ import annotations

import logging

_BASE = "repro"


def get_logger(name: str = "") -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``get_logger("mgba.flow")`` returns the ``repro.mgba.flow`` logger.
    """
    if not name:
        return logging.getLogger(_BASE)
    return logging.getLogger(f"{_BASE}.{name}")


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a basic stderr handler to the ``repro`` logger (CLI use)."""
    logger = logging.getLogger(_BASE)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
    logger.setLevel(level)
