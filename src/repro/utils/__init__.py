"""Small shared helpers (seeded RNG, logging)."""

from repro.utils.rng import make_rng
from repro.utils.log import get_logger

__all__ = ["make_rng", "get_logger"]
