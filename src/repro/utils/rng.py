"""Seeded random-number-generator helpers.

Every stochastic component in the library (design generation, row
sampling, stochastic CG) accepts either an integer seed or an existing
:class:`numpy.random.Generator`.  Routing all construction through
:func:`make_rng` keeps runs reproducible and lets callers share one
generator across stages when they want correlated randomness.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def make_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a numpy Generator from a seed, an existing generator, or None.

    Passing an existing generator returns it unchanged (shared state);
    passing an int builds a fresh ``default_rng(seed)``; passing None
    builds an unseeded generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
