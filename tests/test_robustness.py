"""Error-path and edge-case robustness tests across modules."""

import pytest

from repro.errors import SDCError, TimingError
from repro.liberty.builder import make_default_library
from repro.netlist.core import Netlist, PortDirection
from repro.sdc.constraints import Clock, Constraints
from repro.timing.sta import STAConfig, STAEngine

LIB = make_default_library()


def _one_gate_design():
    netlist = Netlist("tiny", LIB)
    netlist.add_port("clk", PortDirection.INPUT)
    netlist.add_port("a", PortDirection.INPUT)
    netlist.add_port("y", PortDirection.OUTPUT)
    netlist.add_gate("u1", "INV_X1", {"A": "a", "Z": "y"})
    constraints = Constraints()
    constraints.add_clock(Clock("clk", 1000.0, "clk"))
    return netlist, constraints


class TestDegenerateDesigns:
    def test_pure_combinational_design(self):
        """No flops: only the output-port endpoint is checked."""
        netlist, constraints = _one_gate_design()
        engine = STAEngine(netlist, constraints, None, STAConfig())
        slacks = engine.setup_slacks()
        assert [s.name for s in slacks] == ["y"]
        assert engine.hold_slacks() == []

    def test_empty_netlist(self):
        netlist = Netlist("void", LIB)
        netlist.add_port("clk", PortDirection.INPUT)
        constraints = Constraints()
        constraints.add_clock(Clock("clk", 1000.0, "clk"))
        engine = STAEngine(netlist, constraints, None, STAConfig())
        assert engine.setup_slacks() == []
        summary = engine.summary()
        assert summary.endpoints == 0 and summary.violations == 0

    def test_unconstrained_design_raises(self):
        netlist, _ = _one_gate_design()
        engine = STAEngine(netlist, Constraints(), None, STAConfig())
        with pytest.raises((SDCError, TimingError)):
            engine.setup_slacks()

    def test_clock_port_missing_from_netlist(self):
        netlist, _ = _one_gate_design()
        constraints = Constraints()
        constraints.add_clock(Clock("sys", 1000.0, "ghost_port"))
        engine = STAEngine(netlist, constraints, None, STAConfig())
        with pytest.raises(TimingError):
            engine.update_timing()


class TestEnumerationEdges:
    def test_endpoint_with_single_path(self):
        from repro.pba.enumerate import worst_paths_to_endpoint

        netlist, constraints = _one_gate_design()
        engine = STAEngine(netlist, constraints, None, STAConfig())
        engine.update_timing()
        endpoint = engine.graph.node_of[
            next(
                ref for ref in engine.graph.node_of
                if ref.is_port and ref.pin == "y"
            )
        ]
        paths = worst_paths_to_endpoint(
            engine.graph, engine.state, endpoint, 10
        )
        assert len(paths) == 1
        assert paths[0].launch_name == "a"

    def test_k_zero_returns_nothing(self, small_engine):
        from repro.pba.enumerate import worst_paths_to_endpoint

        endpoint = small_engine.graph.endpoint_nodes()[0]
        assert worst_paths_to_endpoint(
            small_engine.graph, small_engine.state, endpoint, 0
        ) == []


class TestSolverEdges:
    def _single_row_problem(self):
        from repro.mgba.problem import build_problem
        from repro.pba.paths import TimingPath

        path = TimingPath(
            endpoint=1, launch=0, edges=(1,), gba_slack=-10.0,
            pba_slack=0.0, contributions=[("A", 100.0, 1.2)],
        )
        return build_problem([path])

    def test_single_row_single_gate(self):
        from repro.mgba.solvers import solve_direct, solve_gd, solve_scg

        problem = self._single_row_problem()
        for solver in (solve_direct, solve_gd,
                       lambda p: solve_scg(p, seed=0)):
            result = solver(problem)
            corrected = problem.corrected_slacks(result.x)
            assert abs(corrected[0] - problem.s_pba[0]) < 2.0

    def test_row_sampling_on_tiny_problem(self):
        from repro.mgba.solvers import solve_with_row_sampling

        problem = self._single_row_problem()
        result = solve_with_row_sampling(problem, seed=0)
        assert result.converged

    def test_zero_norm_rows_fall_back_to_uniform(self):
        import numpy as np
        from scipy import sparse

        from repro.mgba.problem import MGBAProblem
        from repro.mgba.solvers.scg import kaczmarz_probabilities

        problem = MGBAProblem(
            matrix=sparse.csr_matrix((2, 1)),
            rhs=np.zeros(2),
            s_gba=np.zeros(2),
            s_pba=np.zeros(2),
            gates=["A"],
        )
        p = kaczmarz_probabilities(problem)
        assert p == pytest.approx([0.5, 0.5])


class TestFlowEdges:
    def test_flow_on_design_without_violations(self):
        """The fit also runs on clean designs (paths are selected by
        criticality, not by violation)."""
        from dataclasses import replace

        from repro.mgba.flow import MGBAConfig, MGBAFlow
        from repro.designs.generator import generate_design
        from tests.conftest import SMALL_SPEC, engine_for

        design = generate_design(
            replace(SMALL_SPEC, violation_quantile=0.999)
        )
        engine = engine_for(design)
        result = MGBAFlow(
            MGBAConfig(k_per_endpoint=5, solver="direct")
        ).run(engine)
        assert result.pass_ratio_mgba >= result.pass_ratio_gba
