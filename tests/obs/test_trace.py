"""Tracing-span tests: nesting, ordering, export round-trips."""

import json
import time

import pytest

from repro.obs import (
    Span,
    Tracer,
    current_span,
    current_tracer,
    format_breakdown,
    install_tracer,
    load_trace,
    span,
    stage_breakdown,
    tracing,
    uninstall_tracer,
)
from repro.obs.report import parse_records


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Tests must not leave a tracer installed for the rest of the run."""
    yield
    uninstall_tracer()


class TestSpanNesting:
    def test_children_attach_to_enclosing_span(self):
        with span("outer") as outer:
            with span("inner.a"):
                pass
            with span("inner.b"):
                with span("leaf"):
                    pass
        names = [s.name for s in outer.walk()]
        assert names == ["outer", "inner.a", "inner.b", "leaf"]
        assert outer.child("inner.b").child("leaf") is not None
        assert outer.child("missing") is None

    def test_current_span_tracks_stack(self):
        assert current_span() is None
        with span("a") as a:
            assert current_span() is a
            with span("b") as b:
                assert current_span() is b
            assert current_span() is a
        assert current_span() is None

    def test_timing_monotone_and_contained(self):
        with span("outer") as outer:
            with span("inner") as inner:
                time.sleep(0.01)
        assert inner.duration >= 0.01
        assert outer.duration >= inner.duration
        assert outer.start <= inner.start
        assert outer.end >= inner.end
        assert outer.self_seconds == pytest.approx(
            outer.duration - inner.duration
        )

    def test_attrs_via_kwargs_and_set(self):
        with span("s", design="D1") as s:
            s.set(paths=42)
        assert s.attrs == {"design": "D1", "paths": 42}

    def test_exception_recorded_and_propagated(self):
        with pytest.raises(ValueError):
            with span("boom") as s:
                raise ValueError("no")
        assert s.error == "ValueError"
        assert s.end is not None  # closed despite the raise

    def test_open_span_has_zero_duration(self):
        s = Span(name="open")
        assert s.duration == 0.0
        assert s.cpu_seconds == 0.0


class TestTracerCollection:
    def test_collects_only_roots(self):
        with tracing() as tracer:
            with span("root1"):
                with span("child"):
                    pass
            with span("root2"):
                pass
        assert [r.name for r in tracer.roots] == ["root1", "root2"]
        assert [s.name for s in tracer.all_spans()] == [
            "root1", "child", "root2"
        ]

    def test_no_tracer_is_silent(self):
        assert current_tracer() is None
        with span("untracked"):
            pass  # nothing to assert: must simply not blow up

    def test_install_uninstall(self):
        tracer = install_tracer()
        assert current_tracer() is tracer
        assert uninstall_tracer() is tracer
        assert current_tracer() is None
        assert uninstall_tracer() is None

    def test_tracing_restores_previous(self):
        outer_tracer = install_tracer()
        with tracing() as inner_tracer:
            assert current_tracer() is inner_tracer
        assert current_tracer() is outer_tracer


class TestExport:
    def _sample_tracer(self) -> Tracer:
        with tracing() as tracer:
            with span("flow", design="D3"):
                with span("flow.solve", iterations=7):
                    pass
                with span("flow.apply"):
                    pass
        return tracer

    def test_jsonl_round_trip(self, tmp_path):
        tracer = self._sample_tracer()
        path = tmp_path / "t.jsonl"
        tracer.export_jsonl(path)
        roots = load_trace(path)
        assert len(roots) == 1
        original = tracer.roots[0]
        loaded = roots[0]
        assert [s.name for s in loaded.walk()] \
            == [s.name for s in original.walk()]
        for a, b in zip(loaded.walk(), original.walk()):
            assert a.start == b.start
            assert a.end == b.end
            assert a.attrs == b.attrs

    def test_jsonl_is_one_object_per_line(self, tmp_path):
        tracer = self._sample_tracer()
        path = tmp_path / "t.jsonl"
        tracer.export_jsonl(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        records = [json.loads(line) for line in lines]
        assert records[0]["parent"] is None
        assert records[1]["parent"] == records[0]["id"]

    def test_chrome_export(self, tmp_path):
        tracer = self._sample_tracer()
        path = tmp_path / "chrome.json"
        tracer.export_chrome(path)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert len(events) == 3
        assert all(e["ph"] == "X" for e in events)
        assert events[0]["name"] == "flow"
        assert events[0]["dur"] >= events[1]["dur"]

    def test_parse_rejects_orphan_parent(self):
        with pytest.raises(ValueError):
            parse_records([
                {"id": 0, "parent": 99, "name": "x",
                 "start": 0.0, "end": 1.0},
            ])


class TestBreakdown:
    def test_aggregates_repeated_stages(self):
        with tracing() as tracer:
            with span("run"):
                for _ in range(3):
                    with span("step"):
                        pass
        rows = stage_breakdown(tracer.roots)
        by_name = {row.name: row for row in rows}
        assert by_name["run"].calls == 1
        assert by_name["step"].calls == 3
        assert by_name["step"].depth == 1

    def test_format_contains_names_and_counts(self):
        with tracing() as tracer:
            with span("closure.run"):
                with span("closure.fix"):
                    pass
        text = format_breakdown(tracer.roots)
        assert "closure.run" in text
        assert "closure.fix" in text
        assert "wall(s)" in text

    def test_empty_trace(self):
        assert format_breakdown([]) == "(empty trace)"


class TestBaggage:
    def test_baggage_stamps_spans_opened_in_scope(self):
        from repro.obs import baggage

        with tracing() as tracer:
            with baggage(request_id="r-1"):
                with span("outer"):
                    with span("inner"):
                        pass
            with span("outside"):
                pass
        by_name = {s.name: s for s in tracer.roots[0].walk()}
        assert by_name["outer"].attrs["request_id"] == "r-1"
        assert by_name["inner"].attrs["request_id"] == "r-1"
        assert "request_id" not in tracer.roots[1].attrs

    def test_explicit_attrs_win_over_baggage(self):
        from repro.obs import baggage

        with baggage(request_id="ambient", design="d"):
            with span("s", request_id="explicit") as s:
                pass
        assert s.attrs["request_id"] == "explicit"
        assert s.attrs["design"] == "d"

    def test_nested_scopes_merge_inner_wins(self):
        from repro.obs import baggage, current_baggage

        with baggage(a=1, b=1):
            with baggage(b=2):
                assert current_baggage() == {"a": 1, "b": 2}
            assert current_baggage() == {"a": 1, "b": 1}
        assert current_baggage() == {}

    def test_baggage_does_not_cross_threads(self):
        import threading

        from repro.obs import baggage, current_baggage

        seen = {}

        def probe():
            seen["other"] = current_baggage()

        with baggage(request_id="main-only"):
            t = threading.Thread(target=probe)
            t.start()
            t.join()
        assert seen["other"] == {}


class TestSpanProfilerHook:
    def test_hook_called_for_matching_spans(self):
        from repro.obs import set_span_profiler

        calls = []

        class Recorder:
            def start(self, name):
                calls.append(("start", name))
                return name == "want"

            def stop(self, name):
                calls.append(("stop", name))

        previous = set_span_profiler(Recorder())
        try:
            with span("want"):
                with span("skip"):
                    pass
        finally:
            set_span_profiler(previous)
        assert ("start", "want") in calls
        assert ("stop", "want") in calls
        assert ("start", "skip") in calls
        assert ("stop", "skip") not in calls

    def test_set_span_profiler_returns_previous(self):
        from repro.obs import set_span_profiler

        first = object()
        assert set_span_profiler(first) is None
        assert set_span_profiler(None) is first


class TestStreaming:
    def test_stream_matches_buffered_export(self, tmp_path):
        streamed = tmp_path / "stream.jsonl"
        with tracing() as tracer:
            tracer.stream_jsonl(streamed)
            with span("flow", design="D3"):
                with span("flow.solve"):
                    pass
            with span("flow2"):
                pass
        tracer.close()
        buffered = tmp_path / "buffered.jsonl"
        tracer.export_jsonl(buffered)
        assert streamed.read_text() == buffered.read_text()

    def test_closed_roots_survive_a_crash(self, tmp_path):
        # The durability contract: once a root span closes, its records
        # are flushed — a run killed later still leaves a valid trace.
        path = tmp_path / "crash.jsonl"
        with pytest.raises(RuntimeError):
            with tracing() as tracer:
                tracer.stream_jsonl(path)
                with span("completed.work"):
                    pass
                # simulate dying before close()/export ever runs
                raise RuntimeError("killed")
        roots = load_trace(path)  # parseable without tracer.close()
        assert [r.name for r in roots] == ["completed.work"]

    def test_late_stream_install_replays_existing_roots(self, tmp_path):
        path = tmp_path / "late.jsonl"
        with tracing() as tracer:
            with span("early"):
                pass
            tracer.stream_jsonl(path)
            with span("late"):
                pass
        tracer.close()
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert [r["name"] for r in records] == ["early", "late"]
        assert [r["id"] for r in records] == [0, 1]

    def test_double_stream_is_an_error_and_close_is_idempotent(
            self, tmp_path):
        with tracing() as tracer:
            tracer.stream_jsonl(tmp_path / "a.jsonl")
            with pytest.raises(ValueError):
                tracer.stream_jsonl(tmp_path / "b.jsonl")
        tracer.close()
        tracer.close()  # no-op
