"""Golden-format tests for obs-report rendering.

Hand-built span trees with exact timestamps pin the breakdown table
character-for-character, so accidental format drift (column widths,
sort order, truncation notes) fails loudly instead of silently
reflowing CI logs and docs examples.
"""

import sys

import pytest

from repro.obs import sample_peak_rss_mb, span, tracing
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.report import format_breakdown, format_metrics, stage_breakdown
from repro.obs.trace import Span


def _kernel_forest():
    """closure.run -> 2x sta.update_timing -> nested kernel.* spans."""
    root = Span("closure.run",
                start=0.0, end=10.0, cpu_start=0.0, cpu_end=9.5)
    first = Span("sta.update_timing",
                 start=1.0, end=5.0, cpu_start=1.0, cpu_end=4.5)
    first.children = [
        Span("kernel.forward",
             start=1.5, end=3.5, cpu_start=1.5, cpu_end=3.25),
        Span("kernel.reduce",
             start=3.5, end=4.5, cpu_start=3.5, cpu_end=4.25),
    ]
    second = Span("sta.update_timing",
                  start=5.0, end=8.0, cpu_start=4.5, cpu_end=7.0)
    second.children = [
        Span("kernel.forward",
             start=5.5, end=6.5, cpu_start=5.0, cpu_end=5.75),
    ]
    root.children = [first, second]
    return [root]


GOLDEN_BREAKDOWN = """\
stage                 calls    wall(s)     cpu(s)    self(s)       %
--------------------------------------------------------------------
closure.run               1     10.000      9.500      3.000   100.0
  sta.update_timing       2      7.000      6.000      3.000    70.0
    kernel.forward        2      3.000      2.500      3.000    30.0
    kernel.reduce         1      1.000      0.750      1.000    10.0"""

GOLDEN_BREAKDOWN_TOP3 = """\
stage                 calls    wall(s)     cpu(s)    self(s)       %
--------------------------------------------------------------------
closure.run               1     10.000      9.500      3.000   100.0
  sta.update_timing       2      7.000      6.000      3.000    70.0
    kernel.forward        2      3.000      2.500      3.000    30.0
... (1 more row(s); raise --top)"""

GOLDEN_METRICS = """\
metric                   type       value
-----------------------------------------
explain.endpoints        counter    4
obs.rss_peak_mb          gauge      123.438
service.request.latency  histogram  count=4 mean=1.387 p50=0.55 \
p95=4.2 p99=4.84 max=5"""


class TestStageBreakdown:
    def test_repeated_stages_fold_by_name_chain(self):
        rows = stage_breakdown(_kernel_forest())
        by_path = {r.path: r for r in rows}
        nested = by_path[
            ("closure.run", "sta.update_timing", "kernel.forward")
        ]
        assert nested.calls == 2           # both invocations, one row
        assert nested.wall == pytest.approx(3.0)
        assert nested.cpu == pytest.approx(2.5)
        assert nested.self_wall == pytest.approx(3.0)  # leaf: self==wall
        parent = by_path[("closure.run", "sta.update_timing")]
        assert parent.calls == 2
        assert parent.self_wall == pytest.approx(
            parent.wall - nested.wall
            - by_path[("closure.run", "sta.update_timing",
                       "kernel.reduce")].wall
        )

    def test_unknown_sort_key_rejected(self):
        with pytest.raises(ValueError):
            stage_breakdown(_kernel_forest(), sort="nope")

    def test_golden_table(self):
        assert format_breakdown(_kernel_forest()) == GOLDEN_BREAKDOWN

    def test_golden_table_truncated(self):
        rendered = format_breakdown(_kernel_forest(), sort="self", top=3)
        assert rendered == GOLDEN_BREAKDOWN_TOP3

    def test_empty_trace(self):
        assert format_breakdown([]) == "(empty trace)"


class TestFormatMetrics:
    def test_golden_snapshot_table(self):
        registry = MetricsRegistry()
        registry.counter("explain.endpoints").inc(4)
        registry.gauge("obs.rss_peak_mb").set(123.4375)
        latency = registry.histogram(
            "service.request.latency", boundaries=[0.1, 1.0, 10.0]
        )
        for value in (0.05, 0.2, 0.3, 5.0):
            latency.observe(value)
        assert format_metrics(registry.snapshot()) == GOLDEN_METRICS

    def test_empty_histogram_renders_count_zero(self):
        registry = MetricsRegistry()
        registry.histogram("idle.latency")
        assert "count=0" in format_metrics(registry.snapshot())

    def test_empty_snapshot(self):
        assert format_metrics({}) == "(no metrics recorded)"


class TestPeakRss:
    def test_sample_is_positive_on_posix(self):
        peak = sample_peak_rss_mb()
        if sys.platform == "win32":  # pragma: no cover
            assert peak is None
            return
        assert peak is not None
        assert peak > 1.0  # a live CPython process is bigger than 1 MiB

    def test_root_span_close_records_the_gauge(self):
        registry = default_registry()
        registry.gauge("obs.rss_peak_mb").set(0.0)
        with tracing():
            with span("toplevel"):
                with span("toplevel.child"):
                    pass
        recorded = registry.gauge("obs.rss_peak_mb").value
        assert recorded and recorded > 1.0

    def test_nested_span_close_does_not_sample(self):
        registry = default_registry()
        with tracing():
            with span("root_marker"):
                registry.gauge("obs.rss_peak_mb").set(-1.0)
                with span("root_marker.inner"):
                    pass
                # Inner (non-root) close must leave the gauge alone.
                assert registry.gauge("obs.rss_peak_mb").value == -1.0
