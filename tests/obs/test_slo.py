"""SLO-layer tests: spec parsing, evaluation windows, verdicts."""

import sys

import pytest

from repro.obs.flight import FlightRecorder
from repro.obs.slo import (
    Objective,
    SLOError,
    SLOSpec,
    evaluate_slo,
    format_slo_report,
    load_slo_spec,
)


def _spec(**overrides):
    payload = {
        "schema_version": 1,
        "name": "test",
        "min_requests": 1,
        "latency": {"*": {"p95": 1.0}},
        "error_rate_max": 0.25,
        "cache_hit_ratio_min": 0.5,
    }
    payload.update(overrides)
    return SLOSpec.from_dict(payload)


def _requests(recorder=None, rows=()):
    recorder = recorder or FlightRecorder()
    for verb, seconds, ok, cached in rows:
        recorder.record_request(verb, seconds=seconds, ok=ok,
                                cached=cached)
    return recorder.requests()


class TestSpecParsing:
    def test_from_dict_builds_objectives(self):
        spec = _spec()
        kinds = sorted(o.kind for o in spec.objectives)
        assert kinds == ["cache_hit_ratio", "error_rate", "latency_p95"]
        assert spec.name == "test" and spec.min_requests == 1

    def test_per_verb_latency_scopes(self):
        spec = _spec(latency={"sta": {"p95": 2.0, "p99": 5.0}})
        scoped = [o for o in spec.objectives if o.verb == "sta"]
        assert {o.kind for o in scoped} == {"latency_p95", "latency_p99"}

    def test_rejects_unknown_percentile_and_kind(self):
        with pytest.raises(SLOError):
            _spec(latency={"*": {"p50": 1.0}})
        with pytest.raises(SLOError):
            Objective(kind="availability", threshold=0.99)

    def test_rejects_bad_threshold_and_empty_spec(self):
        with pytest.raises(SLOError):
            Objective(kind="error_rate", threshold=-0.1)
        with pytest.raises(SLOError):
            SLOSpec.from_dict({"schema_version": 1})

    def test_rejects_wrong_schema_version(self):
        with pytest.raises(SLOError):
            _spec(schema_version=99)

    def test_load_json_spec(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(
            '{"schema_version": 1, "name": "from-json",'
            ' "latency": {"*": {"p95": 3.0}}}'
        )
        spec = load_slo_spec(path)
        assert spec.name == "from-json"
        assert spec.objectives[0].threshold == 3.0

    @pytest.mark.skipif(sys.version_info < (3, 11),
                        reason="tomllib needs Python 3.11")
    def test_load_toml_spec(self, tmp_path):
        path = tmp_path / "slo.toml"
        path.write_text(
            'schema_version = 1\nname = "from-toml"\n'
            'error_rate_max = 0.1\n\n[latency."*"]\np95 = 2.5\n'
        )
        spec = load_slo_spec(path)
        assert spec.name == "from-toml"
        assert {o.kind for o in spec.objectives} == \
            {"latency_p95", "error_rate"}

    def test_load_rejects_missing_and_malformed(self, tmp_path):
        with pytest.raises(SLOError):
            load_slo_spec(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(SLOError):
            load_slo_spec(bad)


class TestEvaluation:
    def test_all_objectives_pass_on_healthy_window(self):
        requests = _requests(rows=[
            ("sta", 0.1, True, False),
            ("sta", 0.2, True, True),
            ("health", 0.001, True, None),
        ])
        report = evaluate_slo(_spec(), requests)
        assert report.ok and report.window == 3
        assert not report.violations

    def test_slow_request_fails_latency_ceiling(self):
        # The injected slow request dominates p95 over a small window.
        requests = _requests(rows=[
            ("sta", 0.1, True, True),
            ("sta", 9.0, True, True),   # the slow one
        ])
        report = evaluate_slo(_spec(), requests)
        assert not report.ok
        (violation,) = [
            v for v in report.violations if v.objective.kind == "latency_p95"
        ]
        assert violation.actual == 9.0

    def test_error_budget_exceeded(self):
        requests = _requests(rows=[
            ("sta", 0.1, False, True),
            ("sta", 0.1, True, True),
        ])
        report = evaluate_slo(_spec(), requests)
        kinds = {v.objective.kind for v in report.violations}
        assert "error_rate" in kinds

    def test_cache_floor_ignores_control_verbs(self):
        # Only cached-aware (query) rows count toward the ratio; the
        # control verb rows (cached=None) must not dilute it.
        requests = _requests(rows=[
            ("sta", 0.1, True, True),
            ("health", 0.0, True, None),
            ("health", 0.0, True, None),
        ])
        report = evaluate_slo(_spec(), requests)
        cache = next(
            r for r in report.results
            if r.objective.kind == "cache_hit_ratio"
        )
        assert cache.ok and cache.actual == 1.0

    def test_thin_window_skips_not_fails(self):
        requests = _requests(rows=[("sta", 99.0, False, False)])
        report = evaluate_slo(_spec(min_requests=5), requests)
        assert report.ok  # everything skipped, nothing violated
        assert all(r.skipped for r in report.results)

    def test_evaluates_dump_dict_rows(self):
        recorder = FlightRecorder()
        recorder.record_request("sta", seconds=9.0, ok=True, cached=True)
        recorder.record_request("sta", seconds=9.5, ok=True, cached=True)
        dump = recorder.dump()
        report = evaluate_slo(_spec(), dump["requests"])
        assert not report.ok

    def test_per_verb_scope_only_sees_its_verb(self):
        spec = _spec(latency={"mgba_fit": {"p95": 1.0}},
                     error_rate_max=1.0, cache_hit_ratio_min=0.0)
        requests = _requests(rows=[
            ("sta", 50.0, True, True),        # slow, but out of scope
            ("mgba_fit", 0.5, True, True),
        ])
        report = evaluate_slo(spec, requests)
        assert report.ok


class TestFormatting:
    def test_report_renders_verdicts(self):
        requests = _requests(rows=[
            ("sta", 9.0, False, False),
            ("sta", 9.0, True, False),
        ])
        text = format_slo_report(evaluate_slo(_spec(), requests))
        assert "FAIL" in text and "VIOLATION" in text
        assert "latency_p95" in text

    def test_report_renders_skips(self):
        report = evaluate_slo(_spec(min_requests=10), [])
        text = format_slo_report(report)
        assert "PASS" in text and "skipped" in text
