"""Solver-telemetry tests: subscribers, determinism, no-op path."""

import numpy as np
import pytest

from repro.mgba.problem import build_problem
from repro.mgba.solvers import solve_gd, solve_scg, solve_with_row_sampling
from repro.obs import (
    IterationStats,
    iteration_callbacks,
    record_iterations,
    subscribe,
    unsubscribe,
)
from repro.obs.telemetry import _subscribers
from repro.pba.engine import PBAEngine
from repro.pba.enumerate import enumerate_worst_paths
from tests.conftest import engine_for


@pytest.fixture(scope="module")
def problem(medium_design):
    engine = engine_for(medium_design)
    engine.update_timing()
    paths = enumerate_worst_paths(engine.graph, engine.state, 8)
    PBAEngine(engine).analyze(paths)
    return build_problem(paths)


class TestSubscription:
    def test_no_subscriber_fast_path(self):
        assert iteration_callbacks() == ()
        assert not _subscribers

    def test_subscribe_unsubscribe(self):
        def callback(stats):
            pass

        subscribe(callback)
        assert iteration_callbacks() == (callback,)
        unsubscribe(callback)
        assert iteration_callbacks() == ()
        unsubscribe(callback)  # double-remove is a no-op

    def test_extra_callback_appended(self):
        def extra(stats):
            pass

        assert iteration_callbacks(extra) == (extra,)

    def test_record_iterations_scopes_cleanly(self):
        with record_iterations() as collected:
            assert len(_subscribers) == 1
        assert not _subscribers
        assert collected == []


class TestSolverTelemetry:
    def test_scg_publishes_per_iteration(self, problem):
        with record_iterations() as stats:
            result = solve_scg(problem, seed=0, max_iter=200)
        assert len(stats) == result.iterations
        first = stats[0]
        assert isinstance(first, IterationStats)
        assert first.solver == "scg"
        assert first.iteration == 1
        assert first.grad_norm > 0
        assert first.step > 0
        assert first.rows == result.extras["rows_per_iteration"]
        # Objective only on sampled iterations (objective_every = 25).
        sampled = [s for s in stats if s.objective is not None]
        assert all(s.iteration % 25 == 0 for s in sampled)
        assert len(sampled) == len(result.history)

    def test_gd_publishes_with_zero_beta(self, problem):
        with record_iterations() as stats:
            result = solve_gd(problem, max_iter=50)
        assert len(stats) == result.iterations
        assert all(s.beta == 0.0 for s in stats)
        assert all(s.objective is not None for s in stats)
        assert all(s.rows == problem.num_paths for s in stats)

    def test_row_sampling_forwards_callback(self, problem):
        collected = []
        result = solve_with_row_sampling(
            problem, seed=0, on_iteration=collected.append
        )
        assert len(collected) == result.iterations
        # Round sizes show up through the stats' rows field.
        assert len({s.rows for s in collected}) >= 1

    def test_on_iteration_param_needs_no_global_subscriber(self, problem):
        collected = []
        solve_scg(
            problem, seed=0, max_iter=50,
            on_iteration=collected.append,
        )
        assert collected
        assert not _subscribers


class TestDeterminism:
    """Telemetry must observe, never perturb (acceptance criterion)."""

    def test_scg_bit_identical_with_telemetry(self, problem):
        silent = solve_scg(problem, seed=123)
        with record_iterations():
            observed = solve_scg(problem, seed=123)
        assert np.array_equal(silent.x, observed.x)
        assert silent.iterations == observed.iterations
        assert silent.history == observed.history
        assert silent.history_iters == observed.history_iters

    def test_row_sampling_bit_identical_with_telemetry(self, problem):
        silent = solve_with_row_sampling(problem, seed=7)
        observed = solve_with_row_sampling(
            problem, seed=7, on_iteration=lambda stats: None
        )
        assert np.array_equal(silent.x, observed.x)
        assert silent.iterations == observed.iterations


class TestHistoryIters:
    def test_scg_history_has_iteration_axis(self, problem):
        result = solve_scg(problem, seed=0)
        assert len(result.history_iters) == len(result.history)
        assert result.history_iters == sorted(result.history_iters)
        assert all(i % 25 == 0 for i in result.history_iters)
        assert result.convergence_curve() == list(
            zip(result.history_iters, result.history)
        )

    def test_gd_history_is_dense(self, problem):
        result = solve_gd(problem, max_iter=40)
        assert result.history_iters == list(
            range(1, result.iterations + 1)
        )

    def test_sampling_history_is_cumulative(self, problem):
        result = solve_with_row_sampling(problem, seed=0)
        assert len(result.history_iters) == len(result.history)
        assert result.history_iters == sorted(result.history_iters)
        assert result.history_iters[-1] <= result.iterations
