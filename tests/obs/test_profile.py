"""SpanProfiler tests: claiming, nesting, aggregation, rendering."""

import json

from repro.obs import span
from repro.obs.profile import (
    DEFAULT_PROFILED_SPANS,
    SpanProfiler,
    format_profile,
    load_profile,
    profiling,
)


def burn(n: int = 20_000) -> int:
    total = 0
    for i in range(n):
        total += i * i
    return total


class TestSpanProfiler:
    def test_default_names_cover_the_flow_stages(self):
        assert {"mgba.run", "sta.update_timing", "closure.run"} \
            <= DEFAULT_PROFILED_SPANS

    def test_profiles_claimed_span(self):
        with profiling({"hot"}) as profiler:
            with span("hot"):
                burn()
            with span("cold"):
                burn()
        assert profiler.spans_profiled == 1
        assert profiler.skipped == 0
        assert any("burn" in row.func for row in profiler.rows())

    def test_nested_claimed_span_is_skipped_not_fatal(self):
        with profiling({"outer", "inner"}) as profiler:
            with span("outer"):
                with span("inner"):
                    burn()
        assert profiler.spans_profiled == 1
        assert profiler.skipped == 1

    def test_aggregates_across_regions(self):
        with profiling({"hot"}) as profiler:
            for _ in range(3):
                with span("hot"):
                    burn()
        assert profiler.spans_profiled == 3
        rows = {row.func: row for row in profiler.rows()}
        burn_rows = [r for f, r in rows.items() if "burn" in f]
        assert burn_rows and burn_rows[0].calls == 3

    def test_rows_sorted_by_self_time_desc(self):
        with profiling({"hot"}) as profiler:
            with span("hot"):
                burn()
        rows = profiler.rows()
        self_times = [row.self_seconds for row in rows]
        assert self_times == sorted(self_times, reverse=True)

    def test_uninstalls_on_exit(self):
        from repro.obs.trace import set_span_profiler

        with profiling({"hot"}):
            pass
        assert set_span_profiler(None) is None


class TestSerialization:
    def test_save_and_load_round_trip(self, tmp_path):
        path = tmp_path / "profile.json"
        with profiling({"hot"}) as profiler:
            with span("hot"):
                burn()
        profiler.save_json(path)
        data = load_profile(path)
        assert data is not None
        assert data["spans_profiled"] == 1
        assert data["spans"] == ["hot"]
        assert data["rows"] and "self" in data["rows"][0]

    def test_load_tolerates_missing_and_garbage(self, tmp_path):
        assert load_profile(tmp_path / "absent.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert load_profile(bad) is None
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"hello": 1}))
        assert load_profile(wrong) is None


class TestFormatting:
    def test_table_contains_top_functions(self, tmp_path):
        with profiling({"hot"}) as profiler:
            with span("hot"):
                burn()
        text = format_profile(profiler.to_dict(), top=5)
        assert "1 span(s) profiled (hot)" in text
        assert "self(s)" in text

    def test_top_truncation_is_announced(self):
        data = {
            "spans_profiled": 1, "spans": ["x"], "skipped": 0,
            "rows": [
                {"func": f"f{i}", "calls": 1, "self": 1.0 - i * 0.01,
                 "cum": 1.0}
                for i in range(10)
            ],
        }
        text = format_profile(data, top=3)
        assert "(7 more)" in text

    def test_skipped_note(self):
        data = {"spans_profiled": 2, "spans": ["a"], "skipped": 3,
                "rows": [{"func": "f", "calls": 1, "self": 0.1, "cum": 0.1}]}
        assert "3 nested/concurrent skipped" in format_profile(data)

    def test_empty_profile(self):
        data = {"spans_profiled": 0, "spans": [], "skipped": 0, "rows": []}
        assert "(no profile samples)" in format_profile(data)
