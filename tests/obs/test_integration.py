"""Observability integration: instrumented flows and the CLI surface."""

import json

import pytest

from repro.cli import main
from repro.mgba.flow import MGBAConfig, MGBAFlow
from repro.obs import tracing, uninstall_tracer
from tests.conftest import engine_for


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    yield
    uninstall_tracer()


@pytest.fixture(scope="module")
def traced_flow(medium_design):
    engine = engine_for(medium_design)
    with tracing() as tracer:
        result = MGBAFlow(MGBAConfig(k_per_endpoint=6, seed=0)).run(engine)
    return tracer, result


class TestFlowSpans:
    def test_total_seconds_is_sum_of_stage_spans(self, traced_flow):
        """Acceptance: total_seconds == sum of the stage spans."""
        _, result = traced_flow
        assert result.total_seconds == pytest.approx(
            sum(stage.duration for stage in result.stages.values())
        )
        assert set(result.stages) == {"select", "pba", "solve", "apply"}

    def test_seconds_properties_derive_from_spans(self, traced_flow):
        _, result = traced_flow
        assert result.seconds_select \
            == result.stages["select"].duration
        assert result.seconds_pba == result.stages["pba"].duration
        assert result.seconds_solve == result.stages["solve"].duration
        assert result.seconds_apply == result.stages["apply"].duration

    def test_stage_spans_are_children_of_run_span(self, traced_flow):
        _, result = traced_flow
        assert result.run_span is not None
        assert result.run_span.name == "mgba.run"
        for stage in result.stages.values():
            assert stage in result.run_span.children

    def test_tracer_captured_nested_flow(self, traced_flow):
        tracer, _ = traced_flow
        names = [s.name for s in tracer.all_spans()]
        for expected in ("mgba.run", "mgba.select", "mgba.pba",
                         "mgba.solve", "mgba.apply", "pba.analyze",
                         "sta.update_timing"):
            assert expected in names, expected

    def test_solve_span_attrs(self, traced_flow):
        _, result = traced_flow
        solve = result.stages["solve"]
        assert solve.attrs["rows"] == result.problem.num_paths
        assert solve.attrs["gates"] == result.problem.num_gates
        assert solve.attrs["iterations"] == result.solution.iterations

    def test_apply_false_has_no_apply_stage(self, medium_design):
        engine = engine_for(medium_design)
        result = MGBAFlow(MGBAConfig(k_per_endpoint=6, seed=0)).run(
            engine, apply=False
        )
        assert "apply" not in result.stages
        assert result.seconds_apply == 0.0


class TestCLIObservability:
    def test_trace_and_metrics_flags(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        metrics_path = tmp_path / "m.json"
        code = main([
            "--trace", str(trace_path),
            "--metrics", str(metrics_path),
            "closure", "--design", "D1",
            "--mgba", "--max-transforms", "5",
        ])
        assert code == 0
        capsys.readouterr()

        # Trace covers the closure and mGBA stages (acceptance).
        from repro.obs import load_trace

        names = {
            s.name
            for root in load_trace(trace_path)
            for s in root.walk()
        }
        for expected in ("closure.run", "closure.fix",
                         "closure.recover", "closure.mgba_fit",
                         "mgba.select", "mgba.pba", "mgba.solve",
                         "mgba.apply"):
            assert expected in names, expected

        # Metrics carry solver counters and at least one histogram.
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["solver.iterations"]["value"] > 0
        assert any(
            entry.get("type") == "histogram" and entry["count"] > 0
            for entry in snapshot.values()
        )

    def test_obs_report_renders_breakdown(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        assert main([
            "--trace", str(trace_path),
            "mgba", "D1", "--k", "5", "--solver", "direct",
        ]) == 0
        capsys.readouterr()
        assert main(["obs-report", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "mgba.run" in out
        assert "mgba.solve" in out
        assert "wall(s)" in out
        assert "calls" in out

    def test_chrome_trace_flag(self, tmp_path, capsys):
        chrome_path = tmp_path / "chrome.json"
        assert main([
            "--chrome-trace", str(chrome_path),
            "mgba", "D1", "--k", "5", "--solver", "direct",
        ]) == 0
        capsys.readouterr()
        payload = json.loads(chrome_path.read_text())
        assert any(
            event["name"] == "mgba.run"
            for event in payload["traceEvents"]
        )

    def test_closure_design_flag_required(self, capsys):
        assert main(["closure"]) == 2
        assert "design" in capsys.readouterr().err

    def test_closure_positional_still_works(self, capsys):
        assert main(["closure", "D1", "--max-transforms", "2"]) == 0
        assert "before" in capsys.readouterr().out
