"""OpenMetrics exposition tests: rendering, labels, the scrape server."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.expo import (
    CONTENT_TYPE,
    parse_metric_name,
    render_openmetrics,
    sanitize_metric_name,
    start_metrics_server,
)
from repro.obs.metrics import MetricsRegistry, labeled


class TestNameHandling:
    def test_labeled_round_trips_through_parse(self):
        name = labeled("service.request.latency", verb="sta", corner="ss")
        family, labels = parse_metric_name(name)
        assert family == "service.request.latency"
        assert labels == {"verb": "sta", "corner": "ss"}

    def test_parse_bare_name(self):
        assert parse_metric_name("queries.total") == ("queries.total", {})

    def test_labeled_escapes_quotes_and_backslashes(self):
        name = labeled("m", path='a"b\\c')
        _family, labels = parse_metric_name(name)
        assert labels == {"path": 'a"b\\c'}

    def test_sanitize(self):
        assert sanitize_metric_name("service.request.latency") == \
            "service_request_latency"
        assert sanitize_metric_name("9lives") == "_9lives"


class TestRendering:
    def test_golden_document(self):
        registry = MetricsRegistry()
        registry.counter("service.queries").inc(3)
        registry.counter(labeled("service.requests", verb="sta")).inc(2)
        registry.counter(labeled("service.requests", verb="health")).inc()
        registry.gauge("cache.entries").set(7)
        hist = registry.histogram("fit.seconds", boundaries=[0.1, 1.0])
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        text = render_openmetrics(registry)
        assert text == (
            "# TYPE cache_entries gauge\n"
            "cache_entries 7\n"
            "# TYPE fit_seconds histogram\n"
            'fit_seconds_bucket{le="0.1"} 1\n'
            'fit_seconds_bucket{le="1"} 2\n'
            'fit_seconds_bucket{le="+Inf"} 3\n'
            "fit_seconds_sum 5.55\n"
            "fit_seconds_count 3\n"
            "# TYPE service_queries counter\n"
            "service_queries_total 3\n"
            "# TYPE service_requests counter\n"
            'service_requests_total{verb="health"} 1\n'
            'service_requests_total{verb="sta"} 2\n'
            "# EOF\n"
        )

    def test_unset_gauges_are_omitted(self):
        registry = MetricsRegistry()
        registry.gauge("never.set")
        text = render_openmetrics(registry)
        assert "never_set" not in text
        assert text.endswith("# EOF\n")

    def test_renders_a_saved_snapshot_dict(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc(4)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert "a_b_total 4" in render_openmetrics(snapshot)

    def test_content_type_names_openmetrics(self):
        assert "openmetrics-text" in CONTENT_TYPE


class TestScrapeServer:
    @pytest.fixture()
    def registry(self):
        registry = MetricsRegistry()
        registry.counter(labeled("service.requests", verb="sta")).inc(9)
        return registry

    def test_scrape_and_health_endpoints(self, registry):
        server = start_metrics_server(
            port=0, registry=registry,
            health_fn=lambda: {"status": "ok"},
        )
        try:
            assert server.port > 0
            response = urllib.request.urlopen(server.url, timeout=5)
            body = response.read().decode()
            assert response.headers["Content-Type"] == CONTENT_TYPE
            assert 'service_requests_total{verb="sta"} 9' in body
            assert body.endswith("# EOF\n")
            health_url = server.url.replace("/metrics", "/health")
            health = json.loads(
                urllib.request.urlopen(health_url, timeout=5).read()
            )
            assert health == {"status": "ok"}
        finally:
            server.close()

    def test_unknown_path_is_404(self, registry):
        server = start_metrics_server(port=0, registry=registry)
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    server.url.replace("/metrics", "/nope"), timeout=5
                )
            assert excinfo.value.code == 404
        finally:
            server.close()

    def test_health_without_fn_is_404(self, registry):
        server = start_metrics_server(port=0, registry=registry)
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    server.url.replace("/metrics", "/health"), timeout=5
                )
            assert excinfo.value.code == 404
        finally:
            server.close()
