"""Flight-recorder tests: rings, dumps, the span seam, concurrency."""

import json
import threading

from repro.obs import span
from repro.obs.flight import (
    FLIGHT_SCHEMA_VERSION,
    FlightRecorder,
    default_flight_recorder,
    format_flight,
    load_flight,
)


class TestRings:
    def test_records_round_trip(self):
        recorder = FlightRecorder()
        recorder.record_span("sta.update_timing", 0.25, request_id="r1-1")
        recorder.record_request(
            "sta", request_id="r1-1", design="D1", key_prefix="abc123",
            cached=False, ok=True, seconds=0.25,
        )
        recorder.record_error("ValueError", "boom", traceback="tb",
                              request_id="r1-1")
        (span_rec,) = recorder.spans()
        (request,) = recorder.requests()
        (error,) = recorder.errors()
        assert span_rec.name == "sta.update_timing"
        assert span_rec.when > 0
        assert request.verb == "sta" and request.cached is False
        assert error.kind == "ValueError" and error.traceback == "tb"

    def test_capacity_is_a_hard_bound(self):
        recorder = FlightRecorder(max_spans=4, max_requests=3, max_errors=2)
        for index in range(10):
            recorder.record_span(f"s{index}", 0.0)
            recorder.record_request(f"v{index}")
            recorder.record_error("E", f"m{index}")
        assert [r.name for r in recorder.spans()] == \
            ["s6", "s7", "s8", "s9"]
        assert [r.verb for r in recorder.requests()] == ["v7", "v8", "v9"]
        assert [r.message for r in recorder.errors()] == ["m8", "m9"]

    def test_clear_resets_rings_and_totals(self):
        recorder = FlightRecorder()
        recorder.record_request("sta")
        recorder.clear()
        assert recorder.requests() == []
        assert recorder.dump()["recorded"]["requests"] == 0


class TestSpanSeam:
    def test_closed_spans_reach_the_default_recorder(self):
        recorder = default_flight_recorder()
        recorder.clear()
        with span("flight.seam.demo"):
            pass
        names = [r.name for r in recorder.spans()]
        assert "flight.seam.demo" in names

    def test_span_error_and_request_id_captured(self):
        recorder = default_flight_recorder()
        recorder.clear()
        try:
            with span("flight.seam.fail", request_id="r9-9"):
                raise RuntimeError("nope")
        except RuntimeError:
            pass
        record = next(
            r for r in recorder.spans() if r.name == "flight.seam.fail"
        )
        assert record.error == "RuntimeError"
        assert record.request_id == "r9-9"


class TestDump:
    def test_dump_is_schema_versioned_and_json_able(self, tmp_path):
        recorder = FlightRecorder(max_requests=2)
        for index in range(5):
            recorder.record_request("sta", request_id=f"r-{index}")
        recorder.record_error("E", "m")
        path = tmp_path / "flight.json"
        recorder.save_json(path)
        dump = json.loads(path.read_text())
        assert dump["schema_version"] == FLIGHT_SCHEMA_VERSION
        assert dump["recorded"]["requests"] == 5   # lifetime
        assert dump["retained"]["requests"] == 2   # ring
        assert [r["request_id"] for r in dump["requests"]] == ["r-3", "r-4"]
        assert dump["pid"] > 0 and dump["dumped_at"] > 0

    def test_load_flight_tolerates_garbage(self, tmp_path):
        assert load_flight(tmp_path / "missing.json") is None
        empty = tmp_path / "empty.json"
        empty.write_text("")
        assert load_flight(empty) is None
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        assert load_flight(bad) is None

    def test_format_flight_renders_requests_and_errors(self):
        recorder = FlightRecorder()
        recorder.record_request("sta", design="D1", cached=True,
                                seconds=0.5, request_id="r1-1")
        recorder.record_request("health")
        recorder.record_error("ServiceError", "unknown op",
                              traceback="Trace\n  last frame line")
        text = format_flight(recorder.dump())
        assert "sta" in text and "hit" in text and "D1" in text
        assert "ServiceError" in text and "unknown op" in text
        assert "last frame line" in text

    def test_format_flight_top_hides_older_rows(self):
        recorder = FlightRecorder()
        for index in range(6):
            recorder.record_request(f"verb{index}")
        text = format_flight(recorder.dump(), top=2)
        assert "verb5" in text and "verb4" in text
        assert "verb0" not in text and "4 older request(s) hidden" in text


class TestConcurrency:
    def test_hammer_never_tears_records_or_overflows(self):
        recorder = FlightRecorder(max_spans=64, max_requests=64,
                                  max_errors=16)
        workers = 8
        per_worker = 200
        barrier = threading.Barrier(workers)

        def hammer(worker: int) -> None:
            barrier.wait()
            for index in range(per_worker):
                recorder.record_span(f"w{worker}.s{index}", 0.001)
                recorder.record_request(
                    "sta", request_id=f"w{worker}-{index}",
                    design=f"D{worker}", cached=bool(index % 2),
                    seconds=0.001,
                )
                if index % 10 == 0:
                    recorder.record_error("E", f"w{worker}-{index}")

        threads = [
            threading.Thread(target=hammer, args=(w,))
            for w in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        dump = recorder.dump()
        assert dump["recorded"]["spans"] == workers * per_worker
        assert dump["recorded"]["requests"] == workers * per_worker
        assert len(dump["spans"]) == 64
        assert len(dump["requests"]) == 64
        assert len(dump["errors"]) == 16
        # No torn records: every retained row is fully formed.
        for record in dump["requests"]:
            assert record["verb"] == "sta"
            assert record["request_id"].startswith("w")
            assert isinstance(record["cached"], bool)
        json.dumps(dump)  # and the whole document stays JSON-able
