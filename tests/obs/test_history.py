"""Bench-history tests: record round-trips, compare verdicts, check()."""

import json

import pytest

from repro.obs.history import (
    HISTORY_SCHEMA,
    BenchRecord,
    append_record,
    check,
    compare,
    format_compare,
    format_list,
    format_markdown,
    git_sha,
    load_history,
    metrics_summary,
    series,
    utc_now,
)


def record(seconds, bench="bench_a", fingerprint="fp1", sha="abc123"):
    return BenchRecord(sha=sha, bench=bench, fingerprint=fingerprint,
                       seconds=seconds)


class TestRecords:
    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "nested" / "history.jsonl"
        first = BenchRecord(
            sha="abc123", bench="test_table2", fingerprint="fp",
            seconds=1.25, when=utc_now(),
            metrics={"solver.iterations": 42.0},
        )
        append_record(path, first)
        append_record(path, record(1.5))
        loaded = load_history(path)
        assert len(loaded) == 2
        assert loaded[0] == first
        assert loaded[0].key == ("test_table2", "fp")

    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_malformed_and_foreign_schema_lines_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        good = record(1.0)
        with open(path, "w") as fh:
            fh.write("not json\n")
            fh.write(json.dumps({"schema": HISTORY_SCHEMA + 1,
                                 "bench": "x", "seconds": 1}) + "\n")
            fh.write(json.dumps(good.to_dict()) + "\n")
            fh.write('{"truncated": ')  # simulated torn append
        assert load_history(path) == [good]

    def test_git_sha_is_short_and_nonempty(self):
        sha = git_sha()
        assert sha and len(sha) <= 12

    def test_metrics_summary_scalars_only(self):
        snapshot = {
            "solver.iterations": {"type": "counter", "value": 42},
            "service.inflight": {"type": "gauge", "value": 0.0},
            "sta.update.seconds": {
                "type": "histogram", "count": 3, "mean": 0.5,
                "buckets": [1, 2], "counts": [2, 1],
            },
            "empty.hist": {"type": "histogram", "count": 0, "mean": 0.0},
        }
        summary = metrics_summary(snapshot)
        assert summary["solver.iterations"] == 42.0
        assert summary["sta.update.seconds.count"] == 3.0
        assert summary["sta.update.seconds.mean"] == 0.5
        assert "empty.hist.count" not in summary


class TestCompare:
    def test_single_run_is_new(self):
        [verdict] = compare([record(1.0)])
        assert verdict.status == "new"
        assert verdict.baseline_seconds is None
        assert verdict.delta_percent is None

    def test_injected_regression_is_flagged(self):
        # Acceptance fixture: stable history, then a >=20% slower run.
        history = [record(1.00), record(1.02), record(0.98),
                   record(1.35)]
        [verdict] = compare(history, tolerance=0.2)
        assert verdict.status == "regression"
        assert verdict.baseline_seconds == pytest.approx(1.0)
        assert verdict.delta_percent == pytest.approx(35.0)
        assert verdict.points == 4

    def test_within_band_is_ok(self):
        [verdict] = compare([record(1.0), record(1.1)], tolerance=0.2)
        assert verdict.status == "ok"

    def test_speedup_is_improvement(self):
        [verdict] = compare([record(1.0), record(1.0), record(0.5)])
        assert verdict.status == "improvement"

    def test_baseline_is_median_of_earlier_runs(self):
        # One noisy outlier (5.0) must not poison the baseline.
        history = [record(1.0), record(5.0), record(1.0), record(1.1)]
        [verdict] = compare(history, tolerance=0.2)
        assert verdict.baseline_seconds == pytest.approx(1.0)
        assert verdict.status == "ok"

    def test_series_split_by_fingerprint(self):
        history = [
            record(1.0, fingerprint="ci"), record(9.0, fingerprint="full"),
            record(1.0, fingerprint="ci"),
        ]
        assert set(series(history)) == {("bench_a", "ci"),
                                        ("bench_a", "full")}
        by_fp = {v.fingerprint: v for v in compare(history)}
        # The full-sweep run is "new", not a 9x regression of the CI run.
        assert by_fp["full"].status == "new"
        assert by_fp["ci"].status == "ok"

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare([record(1.0)], tolerance=-0.1)


class TestCheck:
    def test_young_series_warns_instead_of_failing(self):
        failures, warnings = check([record(1.0), record(2.0)],
                                   min_points=3)
        assert failures == []
        assert len(warnings) == 1

    def test_mature_series_fails(self):
        failures, warnings = check(
            [record(1.0), record(1.0), record(2.0)], min_points=3)
        assert len(failures) == 1 and warnings == []
        assert failures[0].status == "regression"

    def test_ok_history_is_clean(self):
        failures, warnings = check([record(1.0), record(1.0), record(1.0)])
        assert failures == [] and warnings == []


class TestRendering:
    def test_format_list(self):
        text = format_list([record(1.0), record(1.2)])
        assert "bench_a" in text and "runs" in text
        assert format_list([]) == "(empty history)"

    def test_format_compare_mentions_verdict(self):
        text = format_compare(compare([record(1.0), record(2.0)]))
        assert "regression" in text and "+100.0%" in text

    def test_format_markdown_has_table_per_series(self):
        text = format_markdown(
            [record(1.0), record(1.0), record(1.4)], tolerance=0.2)
        assert "# Benchmark history" in text
        assert "| sha |" in text
        assert "regression" in text
