"""Metrics-registry tests: counters, gauges, histogram percentiles."""

import json

import pytest

from repro.obs import Histogram, MetricsRegistry, default_registry


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        assert registry.counter("c").value == 5

    def test_rejects_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1.5)
        registry.gauge("g").set(-2.0)
        assert registry.gauge("g").value == -2.0


class TestHistogramPercentiles:
    def test_exact_endpoints(self):
        hist = Histogram("h", boundaries=[1, 2, 3, 4, 5])
        for value in (1, 2, 3, 4, 5):
            hist.observe(value)
        assert hist.percentile(0) == 1
        assert hist.percentile(100) == 5
        assert hist.count == 5
        assert hist.mean == 3

    def test_median_of_uniform_grid(self):
        hist = Histogram("h", boundaries=list(range(0, 101)))
        for value in range(1, 101):   # 1..100, one per bucket
            hist.observe(value)
        # Interpolated median of 1..100 lies between 49 and 51.
        assert 49 <= hist.percentile(50) <= 51
        assert 89 <= hist.percentile(90) <= 91

    def test_single_bucket_does_not_smear(self):
        hist = Histogram("h", boundaries=[10, 1000])
        for _ in range(100):
            hist.observe(500)
        # All mass in one bucket: percentiles clamp to observed range.
        assert hist.percentile(50) == 500
        assert hist.percentile(99) == 500

    def test_overflow_bucket(self):
        hist = Histogram("h", boundaries=[1.0])
        hist.observe(1e9)
        assert hist.counts[-1] == 1
        assert hist.percentile(100) == 1e9

    def test_empty(self):
        hist = Histogram("h")
        assert hist.percentile(50) == 0.0
        assert hist.mean == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            Histogram("h", boundaries=[2, 1])
        with pytest.raises(ValueError):
            Histogram("h").percentile(101)


class TestRegistry:
    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_and_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("solver.iterations").inc(100)
        registry.gauge("mgba.pass_ratio").set(0.97)
        registry.histogram("scg.grad_norm").observe(3.0)
        snap = registry.snapshot()
        assert snap["solver.iterations"] == {
            "type": "counter", "value": 100,
        }
        assert snap["mgba.pass_ratio"]["value"] == 0.97
        assert snap["scg.grad_norm"]["count"] == 1
        path = tmp_path / "m.json"
        registry.save_json(path)
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(snap)
        )

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert registry.names() == []

    def test_default_registry_is_shared(self):
        from repro.obs import counter

        before = default_registry().counter("test.shared").value
        counter("test.shared").inc()
        assert default_registry().counter("test.shared").value \
            == before + 1


class TestThreadSafety:
    """Metrics recorded from thread-backend fan-outs must not drop."""

    def test_concurrent_hammer(self):
        import threading

        registry = MetricsRegistry()
        threads_n, per_thread = 8, 2_000
        barrier = threading.Barrier(threads_n)

        def hammer():
            barrier.wait()
            for i in range(per_thread):
                registry.counter("hammer.count").inc()
                registry.gauge("hammer.inflight").add(1)
                registry.gauge("hammer.inflight").add(-1)
                registry.histogram("hammer.values").observe(i % 7)

        threads = [threading.Thread(target=hammer)
                   for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = threads_n * per_thread
        assert registry.counter("hammer.count").value == total
        assert registry.gauge("hammer.inflight").value == 0
        hist = registry.histogram("hammer.values")
        assert hist.count == total
        assert sum(hist.counts) == total

    def test_concurrent_creation_yields_one_instrument(self):
        import threading

        registry = MetricsRegistry()
        barrier = threading.Barrier(8)
        seen = []

        def create():
            barrier.wait()
            seen.append(id(registry.counter("race.counter")))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(seen)) == 1

    def test_gauge_add_from_unset(self):
        registry = MetricsRegistry()
        assert registry.gauge("g").add(2.5) == 2.5
        assert registry.gauge("g").add(-1.0) == 1.5

    def test_histogram_reports_p95(self):
        hist = Histogram("h", boundaries=[1, 2, 3, 4, 5])
        for value in (1, 2, 3, 4, 5):
            hist.observe(value)
        record = hist.to_dict()
        assert "p95" in record
        assert record["p50"] <= record["p95"] <= record["p99"] or (
            record["p95"] == pytest.approx(record["p99"], rel=1e-9)
        )
