"""Timing-exception (false path / multicycle) tests."""

import pytest

from repro.errors import SDCError
from repro.sdc.constraints import Constraints, PathException
from repro.sdc.parser import parse_sdc
from repro.sdc.writer import write_sdc


class TestModel:
    def test_false_path_matching(self):
        c = Constraints()
        c.set_false_path(from_pattern="sync_*", to_pattern="cfg")
        assert c.is_false_path("sync_0", "cfg")
        assert not c.is_false_path("data_0", "cfg")
        assert not c.is_false_path("sync_0", "other")

    def test_wildcards_default(self):
        c = Constraints()
        c.set_false_path(to_pattern="cfg")
        assert c.is_false_path("anything", "cfg")

    def test_multicycle_lookup(self):
        c = Constraints()
        c.set_multicycle_path(2, to_pattern="slow_*")
        assert c.multicycle_of("slow_7") == 2
        assert c.multicycle_of("fast_1") == 1

    def test_largest_multiplier_wins(self):
        c = Constraints()
        c.set_multicycle_path(2, to_pattern="a*")
        c.set_multicycle_path(4, to_pattern="ab*")
        assert c.multicycle_of("abc") == 4

    def test_bad_multiplier(self):
        with pytest.raises(SDCError):
            Constraints().set_multicycle_path(0)

    def test_exception_matches_api(self):
        e = PathException(kind="false", from_pattern="f?", to_pattern="*")
        assert e.matches("f1", "whatever")
        assert not e.matches("ff1", "whatever")


class TestSdcIO:
    SAMPLE = """
create_clock -name clk -period 1.0 [get_ports clk]
set_false_path -from [get_cells sync_*] -to [get_cells cfg]
set_multicycle_path 2 -to [get_cells slow_*]
"""

    def test_parse(self):
        c = parse_sdc(self.SAMPLE)
        assert c.is_false_path("sync_3", "cfg")
        assert c.multicycle_of("slow_1") == 2

    def test_round_trip(self):
        c = parse_sdc(self.SAMPLE)
        again = parse_sdc(write_sdc(c))
        assert again.is_false_path("sync_3", "cfg")
        assert not again.is_false_path("x", "y")
        assert again.multicycle_of("slow_1") == 2

    def test_fixed_point(self):
        text = write_sdc(parse_sdc(self.SAMPLE))
        assert write_sdc(parse_sdc(text)) == text


class TestTimingEffects:
    def test_multicycle_relaxes_endpoint(self, fig2):
        """Doubling FF4's capture window clears the 740 ps GBA miss."""
        from repro.timing.sta import STAEngine

        fig2.constraints.set_multicycle_path(2, to_pattern="FF4")
        engine = STAEngine(fig2.netlist, fig2.constraints, None,
                           fig2.sta_config)
        slacks = {s.name: s.slack for s in engine.setup_slacks()}
        # T = 700: single cycle gave -40; two cycles give 1400-740=660.
        assert slacks["FF4/D"] == pytest.approx(660.0)
        # Other endpoints keep single-cycle checks.
        assert slacks["FF5/D"] == pytest.approx(190.0)

    def test_false_path_flags_pba_paths(self, fig2):
        from repro.pba.engine import PBAEngine
        from repro.pba.enumerate import worst_paths_to_endpoint
        from repro.timing.sta import STAEngine

        fig2.constraints.set_false_path(from_pattern="FF2", to_pattern="FF4")
        engine = STAEngine(fig2.netlist, fig2.constraints, None,
                           fig2.sta_config)
        engine.update_timing()
        endpoint = engine.node_id("FF4", "D")
        paths = worst_paths_to_endpoint(
            engine.graph, engine.state, endpoint, 4
        )
        PBAEngine(engine).analyze(paths)
        flags = {p.launch_name: p.is_false for p in paths}
        assert flags["FF2/Q"] is True
        assert flags["FF1/Q"] is False

    def test_golden_slack_skips_false_paths(self, fig2):
        """Declaring the only real path false unconstrains the endpoint."""
        from repro.pba.engine import PBAEngine
        from repro.timing.sta import STAEngine

        fig2.constraints.set_false_path(to_pattern="FF4")
        engine = STAEngine(fig2.netlist, fig2.constraints, None,
                           fig2.sta_config)
        engine.update_timing()
        endpoint = engine.node_id("FF4", "D")
        assert PBAEngine(engine).golden_endpoint_slack(endpoint) == float(
            "inf"
        )

    def test_mgba_flow_ignores_false_paths(self, fig2):
        from repro.mgba.flow import MGBAConfig, MGBAFlow
        from repro.timing.sta import STAEngine

        fig2.constraints.set_false_path(from_pattern="FF2")
        engine = STAEngine(fig2.netlist, fig2.constraints, None,
                           fig2.sta_config)
        result = MGBAFlow(
            MGBAConfig(k_per_endpoint=4, solver="direct")
        ).run(engine, apply=False)
        launches = {p.launch_name for p in result.paths}
        assert "FF2/Q" not in launches
