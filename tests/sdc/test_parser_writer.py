"""SDC-lite parser/writer tests."""

import pytest

from repro.errors import ParseError
from repro.sdc.constraints import Clock, Constraints
from repro.sdc.parser import parse_sdc
from repro.sdc.writer import write_sdc

SAMPLE = """
# clocks
create_clock -name clk -period 1.2 [get_ports clkpin]
set_clock_uncertainty 0.05 [get_clocks clk]

set_input_delay 0.2 -clock clk [get_ports in0]
set_output_delay 0.3 -clock clk \\
    [get_ports out0]
set_timing_derate -late 1.2
"""


class TestParse:
    def test_sample(self):
        c = parse_sdc(SAMPLE)
        clk = c.clock("clk")
        assert clk.period == pytest.approx(1200.0)   # ns -> ps
        assert clk.uncertainty == pytest.approx(50.0)
        assert clk.source_port == "clkpin"
        assert c.input_delay_of("in0") == pytest.approx(200.0)
        assert c.output_delay_of("out0") == pytest.approx(300.0)
        assert c.flat_derate_late == pytest.approx(1.2)

    def test_continuation_lines(self):
        c = parse_sdc(SAMPLE)
        assert c.output_delay_of("out0") > 0  # came from a continued line

    def test_comments_ignored(self):
        c = parse_sdc("# only a comment\n")
        assert c.clocks == {}

    def test_unknown_command(self):
        with pytest.raises(ParseError):
            parse_sdc("set_load 3 [get_ports x]")

    def test_missing_getter(self):
        with pytest.raises(ParseError):
            parse_sdc("create_clock -name c -period 1.0")

    def test_bad_number(self):
        with pytest.raises(ParseError):
            parse_sdc("create_clock -name c -period fast [get_ports p]")

    def test_uncertainty_for_unknown_clock(self):
        with pytest.raises(ParseError):
            parse_sdc("set_clock_uncertainty 0.1 [get_clocks ghost]")

    def test_clock_name_defaults_to_port(self):
        c = parse_sdc("create_clock -period 2 [get_ports clkp]")
        assert "clkp" in c.clocks


class TestRoundTrip:
    def _sample(self):
        c = Constraints()
        c.add_clock(Clock("clk", period=833.0, source_port="clk",
                          uncertainty=25.0))
        c.set_input_delay("in0", "clk", 50.0)
        c.set_input_delay("in1", "clk", 75.0)
        c.set_output_delay("out0", "clk", 40.0)
        return c

    def test_round_trip(self):
        original = self._sample()
        parsed = parse_sdc(write_sdc(original))
        assert parsed.clock("clk").period == pytest.approx(833.0)
        assert parsed.clock("clk").uncertainty == pytest.approx(25.0)
        assert parsed.input_delay_of("in1") == pytest.approx(75.0)
        assert parsed.output_delay_of("out0") == pytest.approx(40.0)

    def test_round_trip_is_fixed_point(self):
        text = write_sdc(self._sample())
        assert write_sdc(parse_sdc(text)) == text

    def test_generated_design_constraints_round_trip(self, small_design):
        text = write_sdc(small_design.constraints)
        parsed = parse_sdc(text)
        original_clock = small_design.constraints.primary_clock()
        assert parsed.clock(original_clock.name).period == pytest.approx(
            original_clock.period
        )
