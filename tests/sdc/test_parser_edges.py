"""SDC parser edge cases: whitespace, locations, odd-but-legal input."""

import pytest

from repro.errors import ParseError
from repro.sdc.parser import parse_sdc


class TestEdges:
    def test_tabs_and_extra_spaces(self):
        c = parse_sdc(
            "create_clock\t-name clk   -period  2.0 [get_ports\tp]\n"
        )
        assert c.clock("clk").period == pytest.approx(2000.0)

    def test_error_location_reported(self):
        text = "create_clock -name a -period 1 [get_ports p]\nbogus_cmd 1\n"
        with pytest.raises(ParseError) as err:
            parse_sdc(text, filename="x.sdc")
        assert err.value.line == 2
        assert "x.sdc" in str(err.value)

    def test_continuation_counts_from_first_line(self):
        text = (
            "create_clock -name a -period 1 [get_ports p]\n"
            "set_input_delay 0.1 \\\n"
            "    -clock a \\\n"
            "    [get_ports in0]\n"
        )
        c = parse_sdc(text)
        assert c.input_delay_of("in0") == pytest.approx(100.0)

    def test_getter_with_internal_spaces(self):
        c = parse_sdc("create_clock -name a -period 1 [ get_ports   p ]\n")
        assert c.clock("a").source_port == "p"

    def test_trailing_continuation_tolerated(self):
        c = parse_sdc("create_clock -name a -period 1 [get_ports p] \\\n")
        assert "a" in c.clocks

    def test_multiple_commands_same_port(self):
        text = (
            "create_clock -name a -period 1 [get_ports p]\n"
            "set_input_delay 0.1 -clock a [get_ports x]\n"
            "set_input_delay 0.2 -clock a [get_ports x]\n"
        )
        c = parse_sdc(text)
        # First matching entry wins on lookup; both are retained.
        assert c.input_delay_of("x") == pytest.approx(100.0)
        assert len(c.io_delays) == 2


class TestVerilogEdges:
    def test_block_comment_spanning_lines(self):
        from repro.liberty.builder import make_default_library
        from repro.netlist.verilog import parse_verilog

        text = (
            "module m (a, y);\n/* multi\nline\ncomment */\n"
            "input a;\noutput y;\n"
            "INV_X1 u (.A(a), .Z(y));\nendmodule\n"
        )
        netlist = parse_verilog(text, make_default_library())
        assert "u" in netlist.gates

    def test_escaped_style_identifiers(self):
        from repro.liberty.builder import make_default_library
        from repro.netlist.verilog import parse_verilog

        text = (
            "module m (a, y);\ninput a;\noutput y;\n"
            "wire net$1;\n"
            "INV_X1 u1 (.A(a), .Z(net$1));\n"
            "INV_X1 u2 (.A(net$1), .Z(y));\nendmodule\n"
        )
        netlist = parse_verilog(text, make_default_library())
        assert "net$1" in netlist.nets

    def test_error_line_number(self):
        from repro.errors import ParseError as PE
        from repro.liberty.builder import make_default_library
        from repro.netlist.verilog import parse_verilog

        text = "module m (a);\ninput a;\nNOPE_X9 u (.A(a));\nendmodule\n"
        with pytest.raises(PE) as err:
            parse_verilog(text, make_default_library(), filename="m.v")
        assert err.value.line == 3
