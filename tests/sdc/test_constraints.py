"""Constraint-model tests."""

import pytest

from repro.errors import SDCError
from repro.sdc.constraints import Clock, Constraints


class TestClock:
    def test_period_must_be_positive(self):
        with pytest.raises(SDCError):
            Clock("clk", period=0.0, source_port="clk")

    def test_uncertainty_must_be_nonnegative(self):
        with pytest.raises(SDCError):
            Clock("clk", period=100.0, source_port="clk", uncertainty=-1.0)


class TestConstraints:
    def _sample(self):
        c = Constraints()
        c.add_clock(Clock("clk", period=1000.0, source_port="clk"))
        c.set_input_delay("in0", "clk", 50.0)
        c.set_output_delay("out0", "clk", 40.0)
        return c

    def test_duplicate_clock_rejected(self):
        c = self._sample()
        with pytest.raises(SDCError):
            c.add_clock(Clock("clk", period=500.0, source_port="clk2"))

    def test_unknown_clock(self):
        with pytest.raises(SDCError):
            self._sample().clock("sys")

    def test_primary_clock_single(self):
        assert self._sample().primary_clock().name == "clk"

    def test_primary_clock_requires_exactly_one(self):
        c = self._sample()
        c.add_clock(Clock("clk2", period=500.0, source_port="c2"))
        with pytest.raises(SDCError):
            c.primary_clock()
        with pytest.raises(SDCError):
            Constraints().primary_clock()

    def test_io_delay_lookup(self):
        c = self._sample()
        assert c.input_delay_of("in0") == 50.0
        assert c.input_delay_of("other") == 0.0
        assert c.output_delay_of("out0") == 40.0
        assert c.output_delay_of("in0") == 0.0

    def test_clock_of_port(self):
        c = self._sample()
        assert c.clock_of_port("in0") == "clk"
        assert c.clock_of_port("nope") is None
