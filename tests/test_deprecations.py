"""Deprecation shims: old import paths work for one release, warning.

Policy (``docs/api.md``): a moved or renamed public symbol keeps its
old import path for one release behind a ``DeprecationWarning``; the
shim resolves to the *same object* as the new path so behavior cannot
drift between the two.
"""

import sys
import warnings

import pytest


class TestParallelFanoutMove:
    def test_attribute_access_warns_and_aliases(self):
        import repro.parallel
        from repro.service import suite

        for name in ("evaluate_suite", "evaluate_design", "DesignReport"):
            with pytest.warns(DeprecationWarning, match="repro.service.suite"):
                moved = getattr(repro.parallel, name)
            assert moved is getattr(suite, name)

    def test_fanout_module_import_warns(self):
        sys.modules.pop("repro.parallel.fanout", None)
        with pytest.warns(DeprecationWarning, match="repro.service.suite"):
            import repro.parallel.fanout as fanout
        from repro.service import suite

        assert fanout.evaluate_suite is suite.evaluate_suite

    def test_package_import_is_silent(self):
        """Importing repro.parallel itself must not warn."""
        sys.modules.pop("repro.parallel", None)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            import repro.parallel  # noqa: F401

    def test_unknown_attribute_still_raises(self):
        import repro.parallel

        with pytest.raises(AttributeError):
            repro.parallel.no_such_name


class TestNetlistFingerprintRename:
    def test_warns_and_matches_internal(self):
        import repro.mgba.persistence as persistence
        from repro.designs.generator import generate_design
        from tests.conftest import SMALL_SPEC

        with pytest.warns(DeprecationWarning, match="netlist_hash"):
            deprecated = persistence.netlist_fingerprint
        design = generate_design(SMALL_SPEC)
        assert (deprecated(design.netlist)
                == persistence._structure_fingerprint(design.netlist))

    def test_weight_files_unaffected(self, tmp_path):
        """The shim must not change the on-disk weight-file format."""
        from repro.designs.generator import generate_design
        from repro.mgba.persistence import load_weights, save_weights
        from tests.conftest import SMALL_SPEC

        design = generate_design(SMALL_SPEC)
        gate = design.netlist.combinational_gates()[0]
        path = tmp_path / "w.json"
        save_weights({gate: 0.5}, design.netlist, path)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            loaded = load_weights(path, design.netlist, strict=True)
        assert loaded == {gate: 0.5}
