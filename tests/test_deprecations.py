"""Deprecation shims: old import paths work for one release, warning.

Policy (``docs/api.md``): a moved or renamed public symbol keeps its
old import path for one release behind a ``DeprecationWarning``; the
shim resolves to the *same object* as the new path so behavior cannot
drift between the two.
"""

import sys
import warnings

import pytest


class TestParallelFanoutMove:
    def test_attribute_access_warns_and_aliases(self):
        import repro.parallel
        from repro.service import suite

        for name in ("evaluate_suite", "evaluate_design", "DesignReport"):
            with pytest.warns(DeprecationWarning, match="repro.service.suite"):
                moved = getattr(repro.parallel, name)
            assert moved is getattr(suite, name)

    def test_fanout_module_import_warns(self):
        sys.modules.pop("repro.parallel.fanout", None)
        with pytest.warns(DeprecationWarning, match="repro.service.suite"):
            import repro.parallel.fanout as fanout
        from repro.service import suite

        assert fanout.evaluate_suite is suite.evaluate_suite

    def test_package_import_is_silent(self):
        """Importing repro.parallel itself must not warn."""
        sys.modules.pop("repro.parallel", None)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            import repro.parallel  # noqa: F401

    def test_unknown_attribute_still_raises(self):
        import repro.parallel

        with pytest.raises(AttributeError):
            repro.parallel.no_such_name


class TestNetlistFingerprintRename:
    def test_warns_and_matches_internal(self):
        import repro.mgba.persistence as persistence
        from repro.designs.generator import generate_design
        from tests.conftest import SMALL_SPEC

        with pytest.warns(DeprecationWarning, match="netlist_hash"):
            deprecated = persistence.netlist_fingerprint
        design = generate_design(SMALL_SPEC)
        assert (deprecated(design.netlist)
                == persistence._structure_fingerprint(design.netlist))

    def test_weight_files_unaffected(self, tmp_path):
        """The shim must not change the on-disk weight-file format."""
        from repro.designs.generator import generate_design
        from repro.mgba.persistence import load_weights, save_weights
        from tests.conftest import SMALL_SPEC

        design = generate_design(SMALL_SPEC)
        gate = design.netlist.combinational_gates()[0]
        path = tmp_path / "w.json"
        save_weights({gate: 0.5}, design.netlist, path)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            loaded = load_weights(path, design.netlist, strict=True)
        assert loaded == {gate: 0.5}


class TestApplyChangeUnification:
    """``TimingService.apply_change`` now matches ``STAEngine``'s shape."""

    def _service_and_change(self, tmp_path):
        from repro.context import RunContext
        from repro.designs.generator import generate_design
        from repro.netlist.edit import resize_gate
        from repro.service import TimingService
        from tests.conftest import SMALL_SPEC

        service = TimingService(context=RunContext.from_env(
            workers=1, backend="serial", cache_dir=str(tmp_path / "cache"),
        ))
        service.register_design("dut", design=generate_design(SMALL_SPEC))
        netlist = service.design("dut").netlist
        gate = netlist.combinational_gates()[0]
        change = resize_gate(netlist, gate, up=True)
        if change is None:
            change = resize_gate(netlist, gate, up=False)
        return service, change

    def test_old_form_warns_and_still_rotates_the_key(self, tmp_path):
        from repro.context import RunContext
        from repro.designs.generator import generate_design
        from repro.netlist.edit import resize_gate
        from repro.service import TimingService
        from tests.conftest import SMALL_SPEC

        service = TimingService(context=RunContext.from_env(
            workers=1, backend="serial", cache_dir=str(tmp_path / "cache"),
        ))
        service.register_design("dut", design=generate_design(SMALL_SPEC))
        before = service.design_key("dut").token  # pre-edit content
        netlist = service.design("dut").netlist
        gate = netlist.combinational_gates()[0]
        change = resize_gate(netlist, gate, up=True)
        if change is None:
            change = resize_gate(netlist, gate, up=False)
        with pytest.warns(DeprecationWarning, match="design=name"):
            service.apply_change("dut", change)
        assert service.design_key("dut").token != before

    def test_new_form_is_silent(self, tmp_path):
        service, change = self._service_and_change(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            service.apply_change(change, design="dut")

    def test_wrong_types_still_rejected(self, tmp_path):
        from repro.service import ServiceError

        service, change = self._service_and_change(tmp_path)
        with pytest.raises(ServiceError, match="ChangeRecord"):
            service.apply_change("dut", "also-a-string")
        with pytest.raises(ServiceError, match="design="):
            service.apply_change(change)
