"""Integration: the paper's §2.2 worked example, end to end.

Asserts the exact published numbers: Table 1 lookups, Eq. (2) = 690 ps,
Eq. (3) = 740 ps, the 50 ps pessimism gap, and the closure consequence
(a phantom violation under GBA that mGBA removes).
"""

import pytest

from repro.aocv.depth import compute_gba_depths
from repro.aocv.table import paper_table_1
from repro.designs.paper_example import (
    EXPECTED_GBA_DEPTHS,
    GBA_PATH_DELAY,
    PBA_PATH_DELAY,
    build_fig2_design,
)
from repro.mgba.flow import MGBAConfig, MGBAFlow
from repro.pba.engine import PBAEngine
from repro.pba.enumerate import worst_paths_to_endpoint
from repro.timing.sta import STAEngine


@pytest.fixture()
def engine():
    design = build_fig2_design()
    engine = STAEngine(design.netlist, design.constraints, None,
                       design.sta_config)
    engine.update_timing()
    return engine


class TestPaperNumbers:
    def test_table1_lookups(self):
        table = paper_table_1()
        assert table.derate(6, 500) == 1.15   # the PBA factor of Eq. (2)
        assert table.derate(5, 500) == 1.20   # GBA factors of Eq. (3)
        assert table.derate(4, 500) == 1.25
        assert table.derate(3, 500) == 1.30

    def test_gba_depths(self, engine):
        assert compute_gba_depths(engine.netlist) == EXPECTED_GBA_DEPTHS

    def test_equation_2_pba_690(self, engine):
        endpoint = engine.node_id("FF4", "D")
        path = worst_paths_to_endpoint(
            engine.graph, engine.state, endpoint, 1
        )[0]
        PBAEngine(engine).analyze_path(path)
        period = engine.constraints.primary_clock().period
        assert period - path.pba_slack == pytest.approx(PBA_PATH_DELAY)

    def test_equation_3_gba_740(self, engine):
        endpoint = engine.node_id("FF4", "D")
        assert engine.state.arrival_late[endpoint] == pytest.approx(
            GBA_PATH_DELAY
        )

    def test_gap_is_50ps(self, engine):
        endpoint = engine.node_id("FF4", "D")
        path = worst_paths_to_endpoint(
            engine.graph, engine.state, endpoint, 1
        )[0]
        PBAEngine(engine).analyze_path(path)
        assert path.pessimism == pytest.approx(
            GBA_PATH_DELAY - PBA_PATH_DELAY
        )

    def test_derate_multiset_matches_equation_3(self, engine):
        endpoint = engine.node_id("FF4", "D")
        path = worst_paths_to_endpoint(
            engine.graph, engine.state, endpoint, 1
        )[0]
        PBAEngine(engine).analyze_path(path)
        derates = sorted(d for _, _, d in path.contributions)
        assert derates == [1.20, 1.20, 1.20, 1.25, 1.25, 1.30]


class TestClosureConsequence:
    def test_mgba_clears_phantom_violation(self, engine):
        """GBA flags FF4 at T=700; golden timing passes; mGBA agrees
        with golden after one fit."""
        assert engine.summary().violations == 1
        result = MGBAFlow(
            MGBAConfig(k_per_endpoint=4, solver="direct")
        ).run(engine)
        assert engine.summary().violations == 0
        assert result.pass_ratio_mgba > result.pass_ratio_gba
        assert result.pass_ratio_mgba >= 0.8

    def test_never_optimistic_beyond_epsilon(self, engine):
        result = MGBAFlow(
            MGBAConfig(k_per_endpoint=4, solver="direct", epsilon=0.05)
        ).run(engine)
        corrected = result.problem.corrected_slacks(result.solution.x)
        bound = result.problem.s_pba + 0.05 * abs(result.problem.s_pba)
        assert (corrected <= bound + 1.0).all()
