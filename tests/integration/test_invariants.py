"""Cross-module invariants, property-tested over randomized designs.

Each hypothesis example builds a complete design from a random spec and
checks the inequalities the whole framework rests on.  Examples are few
but deep — every one exercises generation, STA, depth computation,
enumeration, PBA, and the mGBA fit.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.aocv.depth import compute_gba_depths
from repro.designs.generator import DesignSpec, generate_design
from repro.mgba.flow import MGBAConfig, MGBAFlow
from repro.pba.engine import PBAEngine
from repro.pba.enumerate import enumerate_worst_paths
from repro.timing.propagation import check_propagation_sanity
from repro.timing.sta import STAEngine

spec_strategy = st.builds(
    DesignSpec,
    name=st.just("prop"),
    seed=st.integers(0, 10_000),
    n_flops=st.integers(6, 16),
    n_inputs=st.integers(2, 5),
    n_outputs=st.integers(1, 3),
    depth_range=st.tuples(st.integers(2, 4), st.integers(5, 10)),
    cross_source_prob=st.floats(0.0, 0.7),
    violation_quantile=st.floats(0.6, 0.95),
)

deep_settings = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _engine(spec):
    design = generate_design(spec)
    engine = STAEngine(
        design.netlist, design.constraints,
        design.placement, design.sta_config,
    )
    engine.update_timing()
    return engine


@deep_settings
@given(spec=spec_strategy)
def test_propagation_identity_on_random_designs(spec):
    engine = _engine(spec)
    assert check_propagation_sanity(engine.graph, engine.state) == []


@deep_settings
@given(spec=spec_strategy)
def test_gba_never_optimistic_vs_pba(spec):
    """s_gba <= s_pba on every enumerated path of every random design."""
    engine = _engine(spec)
    paths = enumerate_worst_paths(engine.graph, engine.state, 4)
    PBAEngine(engine).analyze(paths)
    assert paths
    for path in paths:
        assert path.gba_slack <= path.pba_slack + 1e-9


@deep_settings
@given(spec=spec_strategy)
def test_gba_depth_bounds_path_depth(spec):
    engine = _engine(spec)
    depths = compute_gba_depths(engine.netlist)
    paths = enumerate_worst_paths(engine.graph, engine.state, 4)
    PBAEngine(engine).analyze(paths)
    for path in paths:
        for gate in path.gates():
            assert depths[gate] <= path.depth


@deep_settings
@given(spec=spec_strategy)
def test_mgba_fit_never_hurts(spec):
    """After the fit: mse improves and constraint holds (to penalty slop)."""
    engine = _engine(spec)
    result = MGBAFlow(
        MGBAConfig(k_per_endpoint=6, solver="direct")
    ).run(engine, apply=False)
    assert result.mse_mgba <= result.mse_gba + 1e-12
    corrected = result.problem.corrected_slacks(result.solution.x)
    bound = (
        result.problem.s_pba
        + result.problem.epsilon * np.abs(result.problem.s_pba)
    )
    assert float(np.max(corrected - bound)) < 5.0
