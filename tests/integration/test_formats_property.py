"""Property tests: every format round-trips random data exactly."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.aocv.table import DeratingTable, parse_aocv, write_aocv
from repro.liberty.builder import make_default_library
from repro.netlist.core import Netlist, PortDirection
from repro.netlist.parasitics import Parasitics, parse_spef, write_spef
from repro.netlist.placement import Placement
from repro.netlist.plfile import parse_placement, write_placement
from repro.netlist.verilog import parse_verilog, write_verilog
from repro.sdc.constraints import Clock, Constraints
from repro.sdc.parser import parse_sdc
from repro.sdc.writer import write_sdc

LIB = make_default_library()

name_strategy = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True)

# Axis values on a milli-grid: distinct entries stay distinct through
# the writer's %.6g formatting (free-range floats can collide there).
derate_axis = st.lists(
    st.integers(1000, 64000), min_size=1, max_size=5, unique=True,
).map(lambda values: [v / 1000.0 for v in sorted(values)])


@settings(max_examples=40, deadline=None)
@given(
    depths=derate_axis,
    distances=derate_axis,
    base=st.floats(1.01, 2.0),
)
def test_aocv_round_trip(depths, distances, base):
    rng = np.random.default_rng(int(base * 1000))
    values = base + rng.uniform(0, 0.5, size=(len(distances), len(depths)))
    table = DeratingTable(
        np.array(depths), np.array(distances), values
    )
    parsed = parse_aocv(write_aocv(table))
    assert np.allclose(parsed.depths, table.depths)
    assert np.allclose(parsed.distances, table.distances)
    assert np.allclose(parsed.values, table.values, rtol=1e-5)


@settings(max_examples=40, deadline=None)
@given(
    entries=st.dictionaries(
        name_strategy,
        st.tuples(st.floats(0.001, 1e4), st.floats(0.0001, 10.0)),
        min_size=0, max_size=12,
    )
)
def test_spef_round_trip(entries):
    parasitics = Parasitics("prop")
    for net, (cap, res) in entries.items():
        parasitics.set_net(net, cap, res)
    parsed = parse_spef(write_spef(parasitics))
    assert set(parsed.nets) == set(parasitics.nets)
    for net in entries:
        assert np.isclose(
            parsed.get(net).capacitance, parasitics.get(net).capacitance,
            rtol=1e-6,
        )


@settings(max_examples=40, deadline=None)
@given(
    points=st.dictionaries(
        name_strategy,
        st.tuples(st.floats(0, 1e6), st.floats(0, 1e6)),
        min_size=0, max_size=12,
    )
)
def test_placement_round_trip(points):
    placement = Placement()
    for name, (x, y) in points.items():
        placement.place(name, x, y)
    parsed = parse_placement(write_placement(placement))
    assert set(parsed.locations) == set(placement.locations)
    for name in points:
        assert abs(parsed.location(name).x - placement.location(name).x) < 1e-3
        assert abs(parsed.location(name).y - placement.location(name).y) < 1e-3


@settings(max_examples=30, deadline=None)
@given(
    period_ns=st.floats(0.1, 50.0),
    uncertainty_ns=st.floats(0.0, 1.0),
    io=st.lists(
        st.tuples(name_strategy, st.booleans(), st.floats(0.01, 5.0)),
        max_size=6,
        unique_by=lambda t: t[0],
    ),
)
def test_sdc_round_trip(period_ns, uncertainty_ns, io):
    constraints = Constraints()
    constraints.add_clock(Clock(
        "clk", period=period_ns * 1000.0, source_port="clkport",
        uncertainty=uncertainty_ns * 1000.0,
    ))
    for port, is_input, delay_ns in io:
        if is_input:
            constraints.set_input_delay(port, "clk", delay_ns * 1000.0)
        else:
            constraints.set_output_delay(port, "clk", delay_ns * 1000.0)
    parsed = parse_sdc(write_sdc(constraints))
    assert np.isclose(
        parsed.clock("clk").period, constraints.clock("clk").period,
        rtol=1e-5,
    )
    for port, is_input, delay_ns in io:
        got = (
            parsed.input_delay_of(port) if is_input
            else parsed.output_delay_of(port)
        )
        assert np.isclose(got, delay_ns * 1000.0, rtol=1e-5)


@settings(max_examples=20, deadline=None)
@given(
    chain=st.lists(
        st.sampled_from(["INV_X1", "BUF_X2", "INV_X4", "INV_X1_LVT"]),
        min_size=1, max_size=10,
    )
)
def test_verilog_round_trip_random_chains(chain):
    netlist = Netlist("prop", LIB)
    netlist.add_port("a", PortDirection.INPUT)
    netlist.add_port("y", PortDirection.OUTPUT)
    previous = "a"
    for i, cell_name in enumerate(chain):
        out = "y" if i == len(chain) - 1 else f"w{i}"
        netlist.add_gate(f"u{i}", cell_name, {"A": previous, "Z": out})
        previous = out
    text = write_verilog(netlist)
    parsed = parse_verilog(text, LIB)
    assert write_verilog(parsed) == text
    for name, gate in netlist.gates.items():
        assert parsed.gate(name).cell_name == gate.cell_name
