"""Full-pipeline integration: files on disk -> analysis -> optimization.

Exercises the workflow a downstream user would run: export a design to
Verilog/SDC/AOCV, read everything back, and drive both closure flows on
the re-imported design.
"""

import pytest

from repro.aocv.table import load_aocv, write_aocv
from repro.designs.generator import DesignSpec, generate_design
from repro.liberty.parser import parse_liberty
from repro.liberty.writer import write_liberty
from repro.mgba.flow import MGBAConfig
from repro.netlist.verilog import parse_verilog, write_verilog
from repro.opt.closure import ClosureConfig, TimingClosureOptimizer
from repro.sdc.parser import parse_sdc
from repro.sdc.writer import write_sdc
from repro.timing.sta import STAConfig, STAEngine

SPEC = DesignSpec(
    "e2e", seed=77, n_flops=10, n_inputs=4, n_outputs=2,
    depth_range=(3, 8),
)


@pytest.fixture(scope="module")
def on_disk(tmp_path_factory):
    root = tmp_path_factory.mktemp("design")
    design = generate_design(SPEC)
    (root / "design.v").write_text(write_verilog(design.netlist))
    (root / "design.sdc").write_text(write_sdc(design.constraints))
    (root / "design.aocv").write_text(write_aocv(design.derating_table))
    (root / "design.lib").write_text(write_liberty(design.netlist.library))
    return root, design


class TestFileRoundTripAnalysis:
    def test_reimported_design_times_identically(self, on_disk):
        root, original = on_disk
        library = parse_liberty((root / "design.lib").read_text())
        netlist = parse_verilog((root / "design.v").read_text(), library)
        constraints = parse_sdc((root / "design.sdc").read_text())
        table = load_aocv(root / "design.aocv")
        config = STAConfig(
            derating_table=table,
            gba_distance=0.0,  # placement is not serialized; pin both
        )
        reimported = STAEngine(netlist, constraints, None, config)
        reference = STAEngine(
            original.netlist, original.constraints, None, config
        )
        got = {s.name: s.slack for s in reimported.setup_slacks()}
        want = {s.name: s.slack for s in reference.setup_slacks()}
        assert got.keys() == want.keys()
        for name in want:
            assert got[name] == pytest.approx(want[name], abs=1e-6), name


class TestPipelines:
    def test_mgba_then_closure(self):
        design = generate_design(SPEC)
        optimizer = TimingClosureOptimizer(
            design.netlist, design.constraints, design.placement,
            design.sta_config,
            ClosureConfig(max_transforms=60, use_mgba=True,
                          mgba=MGBAConfig(k_per_endpoint=8, seed=0)),
        )
        report = optimizer.run()
        assert report.final.violations <= report.initial.violations
        assert report.mgba_result.pass_ratio_mgba > 0.85
        assert (
            report.mgba_result.pass_ratio_mgba
            > report.mgba_result.pass_ratio_gba + 0.3
        )

    def test_incremental_consistency_through_whole_closure(self):
        """After a full closure run (hundreds of incremental updates),
        the engine's state still matches a from-scratch engine."""
        design = generate_design(SPEC)
        optimizer = TimingClosureOptimizer(
            design.netlist, design.constraints, design.placement,
            design.sta_config, ClosureConfig(max_transforms=40),
        )
        optimizer.run()
        reference = STAEngine(
            design.netlist, design.constraints,
            design.placement, design.sta_config,
        )
        got = {s.name: s.slack for s in optimizer.engine.setup_slacks()}
        want = {s.name: s.slack for s in reference.setup_slacks()}
        for name in want:
            assert got[name] == pytest.approx(want[name], abs=1e-6), name
