"""Golden-file snapshot tests: report formats are a stable contract.

A report-format regression silently breaks downstream parsers; these
snapshots pin the exact text for the deterministic Fig. 2 example.
Update the golden file deliberately when the format changes.
"""

from pathlib import Path


from repro.timing.report import report_timing

GOLDEN_DIR = Path(__file__).parent.parent / "golden"


class TestGoldenReports:
    def test_fig2_timing_report_snapshot(self, fig2_engine):
        text = report_timing(fig2_engine, max_endpoints=1)
        golden = (GOLDEN_DIR / "fig2_report.txt").read_text()
        assert text.strip() == golden.strip()

    def test_fig2_eco_of_nothing(self):
        from repro.opt.eco import write_eco

        assert write_eco([], "paper_fig2").splitlines()[0] == (
            "# repro ECO for paper_fig2"
        )
