"""The kitchen-sink flow: every optimizer feature enabled at once.

mGBA fit + periodic re-fit + setup fixing + hold fixing + recovery +
ECO export, on a design with hold violations — the configuration a real
adopter would run, verified end to end including ECO replay.
"""

import pytest

from repro.mgba.flow import MGBAConfig
from repro.opt.closure import ClosureConfig, TimingClosureOptimizer
from repro.opt.eco import apply_eco, write_eco
from repro.timing.slack import CheckKind
from repro.designs.generator import DesignSpec, generate_design
from tests.conftest import engine_for

SPEC = DesignSpec(
    "kitchen", seed=77, n_flops=24, n_inputs=4, n_outputs=3,
    depth_range=(1, 7), violation_quantile=0.7,
)

CONFIG = ClosureConfig(
    max_transforms=120,
    use_mgba=True,
    mgba_refresh_every=20,
    fix_hold=True,
    recovery=True,
    mgba=MGBAConfig(k_per_endpoint=10, solver="direct", seed=0),
)


@pytest.fixture(scope="module")
def outcome():
    design = generate_design(SPEC)
    optimizer = TimingClosureOptimizer(
        design.netlist, design.constraints, design.placement,
        design.sta_config, CONFIG,
    )
    report = optimizer.run()
    return design, optimizer, report


class TestKitchenSink:
    def test_setup_improves(self, outcome):
        _, _, report = outcome
        assert report.final.violations <= report.initial.violations
        assert report.final.wns >= report.initial.wns

    def test_hold_not_worse(self, outcome):
        _, optimizer, _ = outcome
        hold = optimizer.engine.summary(CheckKind.HOLD)
        fresh_design = generate_design(SPEC)
        baseline = engine_for(fresh_design).summary(CheckKind.HOLD)
        assert hold.violations <= baseline.violations

    def test_mgba_fit_recorded(self, outcome):
        _, _, report = outcome
        assert report.mgba_result is not None
        assert report.seconds_mgba > 0

    def test_consistent_with_full_recompute(self, outcome):
        design, optimizer, _ = outcome
        reference = engine_for(design)
        reference.set_gate_weights(optimizer.engine.weights)
        got = {s.name: s.slack for s in optimizer.engine.setup_slacks()}
        want = {s.name: s.slack for s in reference.setup_slacks()}
        for name in want:
            assert got[name] == pytest.approx(want[name], abs=1e-6), name

    def test_eco_replays_onto_pristine_copy(self, outcome):
        design, _, report = outcome
        pristine = generate_design(SPEC)
        applied = apply_eco(
            pristine.netlist,
            write_eco(report.eco_commands),
            placement=pristine.placement,
        )
        assert applied == len(report.eco_commands)
        assert set(pristine.netlist.gates) == set(design.netlist.gates)
        for name, gate in design.netlist.gates.items():
            assert pristine.netlist.gate(name).cell_name == gate.cell_name

    def test_signoff_clean_or_better(self, outcome):
        from repro.opt.compare import signoff_qor

        design, optimizer, _ = outcome
        golden = signoff_qor(optimizer.engine)
        fresh = generate_design(SPEC)
        baseline = signoff_qor(engine_for(fresh))
        assert golden.violations <= baseline.violations
