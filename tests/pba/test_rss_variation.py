"""SSTA-lite (RSS) golden-variation tests."""

import copy
import math

import pytest

from repro.errors import TimingError
from repro.pba.engine import PBAEngine
from repro.pba.enumerate import enumerate_worst_paths, worst_paths_to_endpoint


class TestRssModel:
    def test_bad_mode_rejected(self, small_engine):
        with pytest.raises(TimingError):
            PBAEngine(small_engine, variation="montecarlo")

    def test_rss_on_balanced_path_matches_table(self, fig2_engine):
        """Equal 100 ps stages: RSS and the 1/sqrt(N) table law agree
        on the cancellation trend (same sigma characterization)."""
        endpoint = fig2_engine.node_id("FF4", "D")
        table_path = worst_paths_to_endpoint(
            fig2_engine.graph, fig2_engine.state, endpoint, 1
        )[0]
        rss_path = copy.copy(table_path)
        PBAEngine(fig2_engine).analyze_path(table_path)
        PBAEngine(fig2_engine, variation="rss").analyze_path(rss_path)
        period = fig2_engine.constraints.primary_clock().period
        table_delay = period - table_path.pba_slack
        rss_delay = period - rss_path.pba_slack
        # Mean path = 600; table gives 690.  sigma_frac from Table 1's
        # depth-3 corner (clamped): (1.30-1)/3 = 0.1; RSS over 6 equal
        # stages: 600 + 3*0.1*100*sqrt(6) = 673.5.
        assert rss_delay == pytest.approx(600 + 30 * math.sqrt(6), abs=0.5)
        assert abs(rss_delay - table_delay) < 0.05 * table_delay

    def test_rss_differs_from_table_but_stays_physical(self, small_engine):
        """The two variation models genuinely disagree on real paths
        (they only coincide on balanced ones), and RSS never credits
        below the variation-free mean (its variance term is >= 0)."""
        paths = enumerate_worst_paths(
            small_engine.graph, small_engine.state, 4
        )
        table_view = [copy.copy(p) for p in paths]
        rss_view = [copy.copy(p) for p in paths]
        PBAEngine(small_engine).analyze(table_view)
        PBAEngine(small_engine, variation="rss").analyze(rss_view)
        diffs = [
            abs(r.pba_slack - t.pba_slack)
            for t, r in zip(table_view, rss_view) if t.gates()
        ]
        assert sum(1 for d in diffs if d > 1e-6) > 0.5 * len(diffs)
        # Both goldens credit pessimism on the same side of GBA for
        # these table-shaped designs (RSS can cross GBA only on paths
        # with one dominating stage, which the generator's NLDM loads
        # keep rare); every diff stays well inside the GBA pessimism
        # scale.
        scale = max(
            t.pba_slack - t.gba_slack
            for t in table_view if t.gates()
        )
        assert max(diffs) < 2 * scale + 10.0

    def test_mgba_absorbs_rss_golden(self, small_engine):
        """The 'general' claim once more: fit against the SSTA-lite
        golden, including any negative-pessimism paths."""
        from repro.mgba.metrics import pass_ratio
        from repro.mgba.problem import build_problem
        from repro.mgba.solvers import solve_direct

        paths = enumerate_worst_paths(
            small_engine.graph, small_engine.state, 8
        )
        PBAEngine(small_engine, variation="rss").analyze(paths)
        problem = build_problem(paths)
        x = solve_direct(problem).x
        corrected = problem.corrected_slacks(x)
        assert pass_ratio(corrected, problem.s_pba) > \
            pass_ratio(problem.s_gba, problem.s_pba)
        assert pass_ratio(corrected, problem.s_pba) > 0.9

    def test_depth_distance_unchanged_by_mode(self, small_engine):
        paths = enumerate_worst_paths(
            small_engine.graph, small_engine.state, 3
        )
        a = [copy.copy(p) for p in paths]
        b = [copy.copy(p) for p in paths]
        PBAEngine(small_engine).analyze(a)
        PBAEngine(small_engine, variation="rss").analyze(b)
        for x, y in zip(a, b):
            assert x.depth == y.depth
            assert x.distance == y.distance
            assert x.gba_slack == pytest.approx(y.gba_slack)
