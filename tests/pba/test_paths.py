"""TimingPath record tests."""

from repro.pba.paths import TimingPath


def _path(**overrides):
    base = dict(
        endpoint=7,
        launch=2,
        edges=(1, 2, 3),
        gba_slack=-40.0,
        pba_slack=10.0,
        contributions=[("G1", 100.0, 1.2), ("G2", 100.0, 1.3)],
    )
    base.update(overrides)
    return TimingPath(**base)


class TestTimingPath:
    def test_pessimism(self):
        assert _path().pessimism == 50.0

    def test_gates_in_order(self):
        assert _path().gates() == ["G1", "G2"]

    def test_key_identity(self):
        assert _path().key() == _path().key()
        assert _path(edges=(1, 2)).key() != _path().key()

    def test_len_counts_edges(self):
        assert len(_path()) == 3

    def test_defaults(self):
        p = TimingPath(endpoint=1, launch=0, edges=())
        assert p.depth == 0 and p.contributions == []
