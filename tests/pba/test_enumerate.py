"""Path-enumeration tests: exactness against brute force, ordering."""


import pytest

from repro.pba.enumerate import (
    count_paths_to_endpoint,
    enumerate_worst_paths,
    worst_paths_to_endpoint,
)
from repro.timing.propagation import effective_late


def _brute_force_paths(graph, state, endpoint):
    """All data paths into an endpoint with their total arrivals."""
    results = []

    def walk(node_id, suffix_edges, suffix_delay):
        in_list = [
            e for e in graph.in_edges[node_id]
            if not graph.node(graph.edge(e).src).is_clock_tree
        ]
        is_boundary = (
            not in_list
            or graph.node(node_id).kind.value == "port_in"
            or (
                graph.node(node_id).ref.gate is not None
                and graph.netlist.cell_of(
                    graph.node(node_id).ref.gate
                ).is_sequential
                and graph.node(node_id).kind.value == "pin_out"
            )
        )
        if is_boundary:
            results.append(
                (state.arrival_late[node_id] + suffix_delay,
                 tuple(reversed(suffix_edges)))
            )
            return
        for edge_id in in_list:
            edge = graph.edge(edge_id)
            walk(edge.src, suffix_edges + [edge_id],
                 suffix_delay + effective_late(state, edge))

    walk(endpoint, [], 0.0)
    return sorted(results, key=lambda t: -t[0])


class TestExactness:
    def test_matches_brute_force_on_every_endpoint(self, small_engine):
        graph, state = small_engine.graph, small_engine.state
        for endpoint in graph.endpoint_nodes()[:8]:
            brute = _brute_force_paths(graph, state, endpoint)
            k = min(len(brute), 10)
            fast = worst_paths_to_endpoint(graph, state, endpoint, k)
            assert len(fast) == k
            for path, (arrival, edges) in zip(fast, brute[:k]):
                assert path.gba_arrival == pytest.approx(arrival)
            # The single worst path must match edge-for-edge.
            assert fast[0].edges == brute[0][1]

    def test_worst_path_first(self, small_engine):
        graph, state = small_engine.graph, small_engine.state
        endpoint = graph.endpoint_nodes()[0]
        paths = worst_paths_to_endpoint(graph, state, endpoint, 16)
        arrivals = [p.gba_arrival for p in paths]
        assert arrivals == sorted(arrivals, reverse=True)

    def test_top1_equals_propagated_arrival(self, small_engine):
        """The worst enumerated path must realize the GBA arrival."""
        graph, state = small_engine.graph, small_engine.state
        for endpoint in graph.endpoint_nodes():
            paths = worst_paths_to_endpoint(graph, state, endpoint, 1)
            if not paths:
                continue
            assert paths[0].gba_arrival == pytest.approx(
                float(state.arrival_late[endpoint])
            )

    def test_paths_are_unique(self, small_engine):
        graph, state = small_engine.graph, small_engine.state
        endpoint = graph.endpoint_nodes()[0]
        paths = worst_paths_to_endpoint(graph, state, endpoint, 32)
        keys = [p.key() for p in paths]
        assert len(keys) == len(set(keys))


class TestPruning:
    def _rich_endpoint(self, graph, state):
        """An endpoint with enough distinct paths to prune."""
        for endpoint in graph.endpoint_nodes():
            paths = worst_paths_to_endpoint(graph, state, endpoint, 64)
            if len(paths) >= 4:
                return endpoint, paths
        raise AssertionError("design has no multi-path endpoint")

    def test_min_arrival_prunes(self, small_engine):
        graph, state = small_engine.graph, small_engine.state
        endpoint, all_paths = self._rich_endpoint(graph, state)
        cut = all_paths[2].gba_arrival
        pruned = worst_paths_to_endpoint(
            graph, state, endpoint, 64, min_arrival=cut + 1e-6
        )
        assert all(p.gba_arrival > cut for p in pruned)
        assert len(pruned) < len(all_paths)


class TestEnumerateAll:
    def test_respects_k_per_endpoint(self, small_engine):
        paths = enumerate_worst_paths(
            small_engine.graph, small_engine.state, k_per_endpoint=3
        )
        counts = {}
        for path in paths:
            counts[path.endpoint] = counts.get(path.endpoint, 0) + 1
        assert max(counts.values()) <= 3

    def test_max_total_cap(self, small_engine):
        paths = enumerate_worst_paths(
            small_engine.graph, small_engine.state,
            k_per_endpoint=8, max_total=5,
        )
        assert len(paths) == 5

    def test_endpoint_subset(self, small_engine):
        chosen = small_engine.graph.endpoint_nodes()[:2]
        paths = enumerate_worst_paths(
            small_engine.graph, small_engine.state, 4, endpoints=chosen
        )
        assert {p.endpoint for p in paths} <= set(chosen)


class TestCounting:
    def test_count_matches_brute_force(self, small_engine):
        graph, state = small_engine.graph, small_engine.state
        for endpoint in graph.endpoint_nodes()[:5]:
            brute = _brute_force_paths(graph, state, endpoint)
            assert count_paths_to_endpoint(graph, endpoint) == len(brute)

    def test_chain_has_one_path(self, fig2_engine):
        endpoint = fig2_engine.node_id("FF4", "D")
        # FF1 path plus the FF2->K1 branch join at G3: 2 paths total.
        assert count_paths_to_endpoint(fig2_engine.graph, endpoint) == 2
