"""Path-specific slew recalculation (the worst-slew pessimism source)."""

import copy

import pytest

from repro.pba.engine import PBAEngine
from repro.pba.enumerate import enumerate_worst_paths


@pytest.fixture()
def both_views(small_engine):
    paths = enumerate_worst_paths(small_engine.graph, small_engine.state, 6)
    default_view = [copy.copy(p) for p in paths]
    slew_view = [copy.copy(p) for p in paths]
    PBAEngine(small_engine).analyze(default_view)
    PBAEngine(small_engine, recalc_slew=True).analyze(slew_view)
    return default_view, slew_view


class TestSlewRecalc:
    def test_only_removes_pessimism(self, both_views):
        default_view, slew_view = both_views
        for base, recalced in zip(default_view, slew_view):
            assert recalced.pba_slack >= base.pba_slack - 1e-9

    def test_still_bounded_by_gba(self, both_views):
        _, slew_view = both_views
        for path in slew_view:
            assert path.gba_slack <= path.pba_slack + 1e-9

    def test_actually_credits_something(self, both_views):
        """Worst-slew pessimism must exist on generated designs."""
        default_view, slew_view = both_views
        total_credit = sum(
            recalced.pba_slack - base.pba_slack
            for base, recalced in zip(default_view, slew_view)
        )
        assert total_credit > 0

    def test_structure_unchanged(self, both_views):
        default_view, slew_view = both_views
        for base, recalced in zip(default_view, slew_view):
            assert recalced.depth == base.depth
            assert recalced.distance == base.distance
            assert recalced.gba_slack == pytest.approx(base.gba_slack)

    def test_mgba_absorbs_slew_pessimism(self, small_engine):
        """The 'general' claim: fit against the slew-recalc golden and
        correlation still lands high."""
        from repro.mgba.metrics import pass_ratio
        from repro.mgba.problem import build_problem
        from repro.mgba.solvers import solve_direct

        paths = enumerate_worst_paths(
            small_engine.graph, small_engine.state, 8
        )
        PBAEngine(small_engine, recalc_slew=True).analyze(paths)
        problem = build_problem(paths)
        x = solve_direct(problem).x
        corrected = problem.corrected_slacks(x)
        assert pass_ratio(corrected, problem.s_pba) > \
            pass_ratio(problem.s_gba, problem.s_pba)

    def test_fig2_unit_library_has_no_slew_effect(self, fig2_engine):
        """Constant-delay tables: slew recalc changes nothing."""
        endpoint = fig2_engine.node_id("FF4", "D")
        from repro.pba.enumerate import worst_paths_to_endpoint

        base = worst_paths_to_endpoint(
            fig2_engine.graph, fig2_engine.state, endpoint, 1
        )[0]
        recalced = copy.copy(base)
        PBAEngine(fig2_engine).analyze_path(base)
        PBAEngine(fig2_engine, recalc_slew=True).analyze_path(recalced)
        assert recalced.pba_slack == pytest.approx(base.pba_slack)
