"""PBA golden-engine tests: the one-sided pessimism invariant and the
paper's Eq. 2 numbers."""

import pytest

from repro.errors import TimingError
from repro.pba.engine import PBAEngine
from repro.pba.enumerate import enumerate_worst_paths, worst_paths_to_endpoint
from repro.designs.paper_example import GBA_PATH_DELAY, PBA_PATH_DELAY


@pytest.fixture()
def analyzed_small(small_engine):
    paths = enumerate_worst_paths(small_engine.graph, small_engine.state, 6)
    PBAEngine(small_engine).analyze(paths)
    return small_engine, paths


class TestFig2Numbers:
    """Eq. (2) and (3): PBA 690 ps vs GBA 740 ps, gap 50 ps."""

    def test_gba_vs_pba_path_delay(self, fig2_engine):
        endpoint = fig2_engine.node_id("FF4", "D")
        paths = worst_paths_to_endpoint(
            fig2_engine.graph, fig2_engine.state, endpoint, 1
        )
        path = PBAEngine(fig2_engine).analyze_path(paths[0])
        assert path.gba_arrival == pytest.approx(GBA_PATH_DELAY)
        period = fig2_engine.constraints.primary_clock().period
        assert period - path.pba_slack == pytest.approx(PBA_PATH_DELAY)
        assert path.pessimism == pytest.approx(50.0)

    def test_depth_is_path_cell_count(self, fig2_engine):
        endpoint = fig2_engine.node_id("FF4", "D")
        paths = worst_paths_to_endpoint(
            fig2_engine.graph, fig2_engine.state, endpoint, 2
        )
        engine = PBAEngine(fig2_engine)
        engine.analyze(paths)
        assert paths[0].depth == 6   # FF1 route
        assert paths[1].depth == 5   # FF2->K1 route

    def test_contributions_match_path_gates(self, fig2_engine):
        endpoint = fig2_engine.node_id("FF4", "D")
        path = worst_paths_to_endpoint(
            fig2_engine.graph, fig2_engine.state, endpoint, 1
        )[0]
        PBAEngine(fig2_engine).analyze_path(path)
        assert path.gates() == ["G1", "G2", "G3", "G4", "G5", "G6"]
        for _, base_delay, derate in path.contributions:
            assert base_delay == pytest.approx(100.0)
            assert derate in (1.20, 1.25, 1.30)


class TestInvariants:
    def test_pba_never_below_gba(self, analyzed_small):
        """THE paper invariant: PBA only removes pessimism."""
        _, paths = analyzed_small
        assert paths
        for path in paths:
            assert path.pba_slack >= path.gba_slack - 1e-9

    def test_crpr_credit_nonnegative(self, analyzed_small):
        _, paths = analyzed_small
        assert all(p.crpr_credit >= 0 for p in paths)
        assert any(p.crpr_credit > 0 for p in paths)

    def test_path_distance_bounded_by_design(self, analyzed_small):
        engine, paths = analyzed_small
        design_bbox = engine.gba_distance()
        for path in paths:
            assert 0 <= path.distance <= design_bbox + 1e-9

    def test_gba_slack_consistent_with_endpoint(self, analyzed_small):
        """Worst per-endpoint path slack == the endpoint's GBA slack."""
        engine, paths = analyzed_small
        endpoint_slacks = {s.node: s.slack for s in engine.setup_slacks()}
        worst = {}
        for path in paths:
            worst[path.endpoint] = min(
                worst.get(path.endpoint, float("inf")), path.gba_slack
            )
        for endpoint, slack in worst.items():
            assert slack == pytest.approx(
                endpoint_slacks[endpoint], abs=1e-6
            )


class TestGuards:
    def test_rejects_weighted_engine(self, fig2_engine):
        fig2_engine.set_gate_weights({"G1": 0.8})
        fig2_engine.update_timing()
        with pytest.raises(TimingError):
            PBAEngine(fig2_engine)

    def test_non_endpoint_path_rejected(self, fig2_engine):
        from repro.pba.paths import TimingPath

        engine = PBAEngine(fig2_engine)
        bogus = TimingPath(endpoint=0, launch=0, edges=())
        with pytest.raises(TimingError):
            engine.analyze_path(bogus)


class TestGoldenEndpointSlack:
    def test_golden_at_most_gba(self, small_engine):
        pba = PBAEngine(small_engine)
        gba = {s.node: s.slack for s in small_engine.setup_slacks()}
        for endpoint in small_engine.graph.endpoint_nodes()[:6]:
            golden = pba.golden_endpoint_slack(endpoint)
            assert golden >= gba[endpoint] - 1e-9

    def test_fig2_phantom_violation(self, fig2_engine):
        """GBA says FF4 fails; golden PBA says it passes."""
        endpoint = fig2_engine.node_id("FF4", "D")
        pba = PBAEngine(fig2_engine)
        gba_slack = {
            s.node: s.slack for s in fig2_engine.setup_slacks()
        }[endpoint]
        golden = pba.golden_endpoint_slack(endpoint)
        assert gba_slack < 0 < golden
