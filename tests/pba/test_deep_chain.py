"""Deep-chain regressions: iterative path counting and 1k+-level STA.

``count_paths_to_endpoint`` used to recurse once per topological
predecessor and hit Python's recursion limit on chains deeper than
~1000 levels; the iterative rewrite must walk arbitrarily deep.  The
same netlist doubles as a worst-case levelization check for the vector
kernel (one node per level).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.liberty.builder import make_default_library
from repro.netlist.core import Netlist, PortDirection
from repro.pba.enumerate import count_paths_to_endpoint
from repro.sdc.constraints import Clock, Constraints
from repro.timing.graph import TimingGraph
from repro.timing.sta import STAConfig, STAEngine

CHAIN_LENGTH = 1500  # > default recursion limit / 2 arcs per stage


def _chain_netlist(length: int = CHAIN_LENGTH) -> Netlist:
    netlist = Netlist("deep-chain", make_default_library())
    netlist.add_port("clk", PortDirection.INPUT)
    netlist.add_port("a", PortDirection.INPUT)
    wire = "a"
    for i in range(length):
        nxt = f"w{i}"
        netlist.add_gate(f"inv{i}", "INV_X1", {"A": wire, "Z": nxt})
        wire = nxt
    netlist.add_gate("ff", "DFF_X1", {"D": wire, "CK": "clk", "Q": "q"})
    return netlist


def _constraints() -> Constraints:
    constraints = Constraints()
    constraints.add_clock(Clock("clk", 100000.0, "clk"))
    return constraints


def _endpoint(graph: TimingGraph) -> int:
    endpoints = graph.endpoint_nodes()
    assert len(endpoints) == 1
    return endpoints[0]


class TestDeepChainPathCount:
    def test_no_recursion_error_beyond_1k_levels(self):
        graph = TimingGraph(_chain_netlist())
        assert count_paths_to_endpoint(graph, _endpoint(graph)) == 1

    def test_reconvergent_count_still_exact(self):
        """A ladder of diamonds counts 2^k paths (and respects the cap)."""
        netlist = Netlist("ladder", make_default_library())
        netlist.add_port("clk", PortDirection.INPUT)
        netlist.add_port("a", PortDirection.INPUT)
        wire = "a"
        k = 10
        for i in range(k):
            top, bot, out = f"t{i}", f"b{i}", f"m{i}"
            netlist.add_gate(f"up{i}", "INV_X1", {"A": wire, "Z": top})
            netlist.add_gate(f"dn{i}", "INV_X1", {"A": wire, "Z": bot})
            netlist.add_gate(
                f"join{i}", "NAND2_X1", {"A": top, "B": bot, "Z": out}
            )
            wire = out
        netlist.add_gate("ff", "DFF_X1", {"D": wire, "CK": "clk", "Q": "q"})
        graph = TimingGraph(netlist)
        endpoint = _endpoint(graph)
        assert count_paths_to_endpoint(graph, endpoint) == 2**k
        assert count_paths_to_endpoint(graph, endpoint, limit=100) == 100


class TestDeepChainKernel:
    def test_kernels_agree_on_1500_level_chain(self):
        scalar = STAEngine(
            _chain_netlist(), _constraints(), config=STAConfig(kernel="scalar")
        )
        vector = STAEngine(
            _chain_netlist(), _constraints(), config=STAConfig(kernel="vector")
        )
        scalar.update_timing()
        vector.update_timing()
        assert vector._layout is not None
        assert vector._layout.levels > 1000
        ids = sorted(n.id for n in scalar.graph.live_nodes())
        assert np.array_equal(
            scalar.state.arrival_late[ids], vector.state.arrival_late[ids]
        )
        assert np.array_equal(
            scalar.state.slew[ids], vector.state.slew[ids]
        )
        a = {s.name: s.slack for s in scalar.setup_slacks()}
        b = {s.name: s.slack for s in vector.setup_slacks()}
        assert a == b
