"""Utility-module tests (rng, logging)."""

import logging

import numpy as np

from repro.utils.log import enable_console_logging, get_logger
from repro.utils.rng import make_rng


class TestRng:
    def test_seed_reproducible(self):
        assert make_rng(5).integers(1000) == make_rng(5).integers(1000)

    def test_generator_passthrough_shares_state(self):
        rng = make_rng(1)
        same = make_rng(rng)
        assert same is rng

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestLog:
    def test_namespace(self):
        assert get_logger().name == "repro"
        assert get_logger("mgba.flow").name == "repro.mgba.flow"

    def test_console_logging_idempotent(self):
        enable_console_logging(logging.DEBUG)
        handlers_before = len(logging.getLogger("repro").handlers)
        enable_console_logging(logging.INFO)
        assert len(logging.getLogger("repro").handlers) == handlers_before

    def test_repeated_call_honours_new_level(self):
        handler = enable_console_logging(logging.INFO)
        assert handler.level == logging.INFO
        same = enable_console_logging(logging.DEBUG)
        assert same is handler
        assert handler.level == logging.DEBUG
        assert logging.getLogger("repro").level == logging.DEBUG

    def test_fmt_argument_applied_and_updated(self):
        handler = enable_console_logging(fmt="%(levelname)s %(message)s")
        assert handler.formatter._fmt == "%(levelname)s %(message)s"
        enable_console_logging(fmt="%(message)s")
        assert handler.formatter._fmt == "%(message)s"

    def test_foreign_handlers_left_alone(self):
        logger = logging.getLogger("repro")
        foreign = logging.NullHandler()
        logger.addHandler(foreign)
        try:
            handler = enable_console_logging(logging.WARNING)
            assert handler is not foreign
            assert foreign in logger.handlers
        finally:
            logger.removeHandler(foreign)

    def test_child_loggers_propagate(self):
        child = get_logger("timing")
        assert child.parent.name in ("repro", "root")
