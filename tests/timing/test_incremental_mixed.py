"""Property test: mixed structural + sizing edit sequences stay exact."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.netlist.edit import insert_buffer, remove_buffer, resize_gate, swap_vt
from repro.designs.generator import generate_design
from tests.conftest import SMALL_SPEC, engine_for

edit_step = st.tuples(
    st.sampled_from(["up", "down", "lvt", "hvt", "buffer", "unbuffer"]),
    st.integers(0, 40),
)


def _loaded_nets(design):
    nets = []
    for gate in design.netlist.combinational_gates():
        if gate.startswith("ckbuf"):
            continue
        net = design.netlist.gate(gate).connections.get("Z")
        if net is None:
            continue
        loads = [
            r for r in design.netlist.net_loads(net) if not r.is_port
        ]
        if loads:
            nets.append(net)
    return nets


@settings(
    max_examples=6, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(plan=st.lists(edit_step, min_size=2, max_size=8))
def test_mixed_edit_sequences_match_full_recompute(plan):
    design = generate_design(SMALL_SPEC)
    engine = engine_for(design)
    engine.update_timing()
    gates = [
        g for g in design.netlist.combinational_gates()
        if not g.startswith("ckbuf")
    ]
    inserted: list[str] = []
    for action, idx in plan:
        if action in ("up", "down"):
            gate = gates[idx % len(gates)]
            change = resize_gate(design.netlist, gate, up=action == "up")
            if change is not None:
                engine.apply_change(change)
        elif action in ("lvt", "hvt"):
            gate = gates[idx % len(gates)]
            if design.netlist.cell_of(gate).is_buffer:
                continue
            change = swap_vt(design.netlist, gate, action)
            if change is not None:
                engine.apply_change(change)
        elif action == "buffer":
            nets = _loaded_nets(design)
            if not nets:
                continue
            change = insert_buffer(
                design.netlist, nets[idx % len(nets)], "BUF_X2",
                placement=design.placement,
            )
            engine.apply_change(change)
            inserted.append(change.gates[0])
        elif action == "unbuffer" and inserted:
            victim = inserted.pop()
            inverse = remove_buffer(design.netlist, victim)
            inverse.gates.append(victim)
            design.placement.locations.pop(victim, None)
            engine.apply_change(inverse)
    reference = engine_for(design)
    got = {s.name: s.slack for s in engine.setup_slacks()}
    want = {s.name: s.slack for s in reference.setup_slacks()}
    assert got.keys() == want.keys()
    for name in want:
        assert got[name] == pytest.approx(want[name], abs=1e-6), name
    got_h = {s.name: s.slack for s in engine.hold_slacks()}
    want_h = {s.name: s.slack for s in reference.hold_slacks()}
    for name in want_h:
        assert got_h[name] == pytest.approx(want_h[name], abs=1e-6), name
