"""Design-rule-check tests (max transition / max capacitance)."""


from repro.liberty.builder import MAX_TRANSITION, make_default_library
from repro.netlist.core import Netlist, PortDirection
from repro.sdc.constraints import Clock, Constraints
from repro.timing.sta import STAConfig, STAEngine

LIB = make_default_library()


def _engine_with_overload(n_loads: int) -> STAEngine:
    """A weak X1 inverter driving n strong loads: slews/caps blow up."""
    netlist = Netlist("drc", LIB)
    netlist.add_port("clk", PortDirection.INPUT)
    netlist.add_port("a", PortDirection.INPUT)
    netlist.add_gate("drv", "INV_X1", {"A": "a", "Z": "w"})
    for i in range(n_loads):
        netlist.add_gate(f"s{i}", "INV_X8", {"A": "w", "Z": f"z{i}"})
    constraints = Constraints()
    constraints.add_clock(Clock("clk", 1000.0, "clk"))
    return STAEngine(netlist, constraints, None, STAConfig())


class TestDrc:
    def test_clean_design_has_no_violations(self):
        engine = _engine_with_overload(1)
        assert engine.design_rule_violations() == []

    def test_overloaded_driver_flags_both_rules(self):
        engine = _engine_with_overload(40)
        violations = engine.design_rule_violations()
        kinds = {v["kind"] for v in violations}
        assert "max_capacitance" in kinds
        assert "max_transition" in kinds

    def test_values_exceed_limits(self):
        engine = _engine_with_overload(40)
        for violation in engine.design_rule_violations():
            assert violation["value"] > violation["limit"]

    def test_sorted_worst_first(self):
        engine = _engine_with_overload(40)
        violations = engine.design_rule_violations()
        overshoots = [v["limit"] - v["value"] for v in violations]
        assert overshoots == sorted(overshoots)

    def test_library_characterizes_max_transition(self):
        pin = LIB.cell("NAND2_X1").pin("A")
        assert pin.max_transition == MAX_TRANSITION

    def test_max_transition_round_trips_liberty(self):
        from repro.liberty.parser import parse_liberty
        from repro.liberty.writer import write_liberty

        parsed = parse_liberty(write_liberty(LIB))
        assert parsed.cell("NAND2_X1").pin("A").max_transition == \
            MAX_TRANSITION

    def test_suite_designs_mostly_clean(self, small_engine):
        """Generated designs carry some hot-net DRVs (realistic) but the
        bulk of the design must be clean."""
        violations = small_engine.design_rule_violations()
        assert len(violations) < 0.2 * len(small_engine.netlist.gates)
