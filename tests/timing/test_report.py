"""Timing-report tests."""

import pytest

from repro.timing.report import (
    path_steps,
    report_summary,
    report_timing,
    trace_worst_path,
)


class TestTraceWorstPath:
    def test_path_ends_at_endpoint(self, fig2_engine):
        endpoint = fig2_engine.node_id("FF4", "D")
        edges = trace_worst_path(
            fig2_engine.graph, fig2_engine.state, endpoint
        )
        assert edges
        assert fig2_engine.graph.edge(edges[-1]).dst == endpoint

    def test_path_is_connected(self, fig2_engine):
        endpoint = fig2_engine.node_id("FF4", "D")
        edges = trace_worst_path(
            fig2_engine.graph, fig2_engine.state, endpoint
        )
        graph = fig2_engine.graph
        for previous, current in zip(edges, edges[1:]):
            assert graph.edge(previous).dst == graph.edge(current).src

    def test_incrs_sum_to_arrival(self, fig2_engine):
        endpoint = fig2_engine.node_id("FF4", "D")
        edges = trace_worst_path(
            fig2_engine.graph, fig2_engine.state, endpoint
        )
        steps = path_steps(fig2_engine, edges)
        total = steps[0].arrival + sum(s.incr for s in steps[1:])
        assert total == pytest.approx(
            fig2_engine.state.arrival_late[endpoint]
        )

    def test_fig2_path_goes_through_main_chain(self, fig2_engine):
        endpoint = fig2_engine.node_id("FF4", "D")
        edges = trace_worst_path(
            fig2_engine.graph, fig2_engine.state, endpoint
        )
        gates = {
            fig2_engine.graph.edge(e).gate
            for e in edges if fig2_engine.graph.edge(e).gate
        }
        assert {"G1", "G2", "G3", "G4", "G5", "G6"} <= gates


class TestReports:
    def test_summary_mentions_wns(self, fig2_engine):
        text = report_summary(fig2_engine)
        assert "WNS" in text and "-40.00" in text

    def test_timing_report_shows_endpoint_block(self, fig2_engine):
        text = report_timing(fig2_engine, max_endpoints=1)
        assert "Endpoint: FF4/D" in text
        assert "derate" in text
        assert "G3" in text  # a path pin appears

    def test_report_on_generated_design(self, small_engine):
        text = report_timing(small_engine, max_endpoints=2)
        assert "violations" in text
        assert text.count("Endpoint:") == 2
