"""Engine facade tests."""

import pytest

from repro.timing.sta import STAConfig, STAEngine
from repro.timing.slack import CheckKind
from tests.conftest import engine_for


class TestLifecycle:
    def test_ensure_timing_runs_once(self, small_design):
        engine = engine_for(small_design)
        assert not engine._timing_fresh
        engine.ensure_timing()
        assert engine._timing_fresh

    def test_setup_slacks_trigger_update(self, small_design):
        engine = engine_for(small_design)
        slacks = engine.setup_slacks()
        assert slacks and engine._timing_fresh

    def test_summary_kinds(self, small_engine):
        setup = small_engine.summary(CheckKind.SETUP)
        hold = small_engine.summary(CheckKind.HOLD)
        assert setup.kind is CheckKind.SETUP
        assert hold.kind is CheckKind.HOLD
        # Every generated design violates some setup endpoints by design.
        assert setup.violations > 0


class TestGbaDistance:
    def test_defaults_to_design_bbox(self, small_design):
        engine = engine_for(small_design)
        names = list(small_design.placement.locations)
        expected = small_design.placement.bbox_half_perimeter(names)
        assert engine.gba_distance() == pytest.approx(expected)

    def test_override_wins(self, small_design):
        config = STAConfig(
            derating_table=small_design.sta_config.derating_table,
            gba_distance=1234.0,
        )
        engine = STAEngine(
            small_design.netlist, small_design.constraints,
            small_design.placement, config,
        )
        assert engine.gba_distance() == 1234.0

    def test_no_placement_is_zero(self, fig2):
        engine = STAEngine(fig2.netlist, fig2.constraints, None,
                           fig2.sta_config)
        assert engine.gba_distance() == 0.0


class TestPessimismKnobs:
    def test_disabling_aocv_speeds_up_gba(self, small_design):
        """Without the derating table, GBA arrivals shrink everywhere."""
        with_table = engine_for(small_design)
        flat = STAEngine(
            small_design.netlist, small_design.constraints,
            small_design.placement,
            STAConfig(derating_table=None, flat_derate_late=1.0),
        )
        wns_aocv = with_table.summary().wns
        wns_flat = flat.summary().wns
        assert wns_flat > wns_aocv

    def test_flat_derate_matches_table_free_scaling(self, fig2):
        flat_cfg = STAConfig(
            derating_table=None, flat_derate_late=1.2,
            clock_derate_late=1.0, clock_derate_early=1.0,
            data_early_derate=1.0, wire_r_per_nm=0.0, wire_c_per_nm=0.0,
        )
        engine = STAEngine(fig2.netlist, fig2.constraints, None, flat_cfg)
        engine.update_timing()
        d_node = engine.node_id("FF4", "D")
        # 6 gates x 100 ps x 1.2 flat derate.
        assert engine.state.arrival_late[d_node] == pytest.approx(720.0)


class TestIntrospection:
    def test_node_id_roundtrip(self, small_engine):
        gate = small_engine.netlist.combinational_gates()[0]
        cell = small_engine.netlist.cell_of(gate)
        node_id = small_engine.node_id(gate, cell.output_pins[0].name)
        node = small_engine.graph.node(node_id)
        assert node.ref.gate == gate

    def test_node_id_unknown(self, small_engine):
        from repro.errors import TimingError

        with pytest.raises(TimingError):
            small_engine.node_id("ghost", "Z")

    def test_edge_delay_accessors(self, small_engine):
        edge = small_engine.graph.live_edges()[0]
        base = small_engine.base_edge_delay(edge.id)
        late = small_engine.late_edge_delay(edge.id)
        assert late == pytest.approx(
            base * small_engine.state.derate_late[edge.id]
        )

    def test_gate_slacks_cover_gates_reaching_endpoints(self, small_engine):
        slacks = small_engine.gate_slacks()
        data_gates = [
            g for g in small_engine.netlist.combinational_gates()
            if not g.startswith("ckbuf")
        ]
        # Dead-end gates (unloaded cone outputs the generator leaves
        # behind, like pruned logic in real designs) have no required
        # time; everything that reaches an endpoint must be covered.
        covered = sum(1 for g in data_gates if g in slacks)
        assert covered >= 0.6 * len(data_gates)
        # Every gate on the worst path is certainly covered.
        from repro.timing.report import trace_worst_path

        worst = small_engine.violating_endpoints()[0]
        edges = trace_worst_path(
            small_engine.graph, small_engine.state, worst.node
        )
        for edge_id in edges:
            edge = small_engine.graph.edge(edge_id)
            gate = edge.gate
            if gate is None or gate.startswith("ckbuf"):
                continue  # the trace includes the launch clock path
            if not small_engine.netlist.cell_of(gate).is_sequential:
                assert gate in slacks
