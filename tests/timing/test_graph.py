"""Timing-graph construction and surgical-update tests."""

import pytest

from repro.errors import TimingError
from repro.liberty.builder import make_default_library
from repro.netlist.core import Netlist, PinRef, PortDirection
from repro.timing.graph import EdgeKind, NodeKind, TimingGraph

LIB = make_default_library()


def _sample():
    n = Netlist("t", LIB)
    n.add_port("clk", PortDirection.INPUT)
    n.add_port("a", PortDirection.INPUT)
    n.add_port("y", PortDirection.OUTPUT)
    n.add_gate("u1", "NAND2_X1", {"A": "a", "B": "q", "Z": "w"})
    n.add_gate("ff", "DFF_X1", {"D": "w", "CK": "clk", "Q": "q"})
    n.add_gate("u2", "INV_X1", {"A": "w", "Z": "y"})
    return n


class TestConstruction:
    def test_node_per_pin_and_port(self):
        g = TimingGraph(_sample())
        # 3 ports + u1(3 pins) + ff(3) + u2(2) = 11
        assert g.node_count() == 11

    def test_edge_kinds(self):
        g = TimingGraph(_sample())
        cell = [e for e in g.live_edges() if e.kind is EdgeKind.CELL]
        net = [e for e in g.live_edges() if e.kind is EdgeKind.NET]
        # u1: 2 arcs, ff: CK->Q, u2: 1 arc
        assert len(cell) == 4
        # a->u1.A, q->u1.B, w->ff.D, w->u2.A, clk->ff.CK, y port load
        assert len(net) == 6

    def test_endpoints(self):
        netlist = _sample()
        g = TimingGraph(netlist)
        endpoint_refs = {
            str(g.node(n).ref) for n in g.endpoint_nodes()
        }
        assert endpoint_refs == {"ff/D", "y"}

    def test_endpoint_info_for_flop(self):
        g = TimingGraph(_sample())
        d_node = g.node_of[PinRef("ff", "D")]
        info = g.endpoints[d_node]
        assert info.gate == "ff"
        assert info.setup_arc is not None and info.hold_arc is not None
        assert g.node(info.ck_node).ref == PinRef("ff", "CK")

    def test_port_kinds(self):
        g = TimingGraph(_sample())
        assert g.node(g.node_of[PinRef(None, "a")]).kind is NodeKind.PORT_IN
        assert g.node(g.node_of[PinRef(None, "y")]).kind is NodeKind.PORT_OUT

    def test_clock_sink_flag(self):
        g = TimingGraph(_sample())
        ck = g.node(g.node_of[PinRef("ff", "CK")])
        assert ck.is_clock_sink


class TestTopologicalOrder:
    def test_sources_before_sinks(self):
        g = TimingGraph(_sample())
        order = g.topological_order()
        position = {node_id: i for i, node_id in enumerate(order)}
        for edge in g.live_edges():
            assert position[edge.src] < position[edge.dst]

    def test_covers_all_nodes(self):
        g = TimingGraph(_sample())
        assert len(g.topological_order()) == g.node_count()

    def test_cycle_detected(self):
        n = Netlist("loop", LIB)
        n.add_gate("u1", "INV_X1", {"A": "w2", "Z": "w1"})
        n.add_gate("u2", "INV_X1", {"A": "w1", "Z": "w2"})
        with pytest.raises(TimingError):
            TimingGraph(n).topological_order()


class TestClockMarking:
    def test_flood_stops_at_ck(self):
        netlist = _sample()
        g = TimingGraph(netlist)
        g.mark_clock_tree(["clk"])
        assert g.node(g.node_of[PinRef(None, "clk")]).is_clock_tree
        assert g.node(g.node_of[PinRef("ff", "CK")]).is_clock_tree
        # The data domain stays unmarked, including Q.
        assert not g.node(g.node_of[PinRef("ff", "Q")]).is_clock_tree
        assert not g.node(g.node_of[PinRef("u1", "A")]).is_clock_tree

    def test_unknown_clock_port(self):
        g = TimingGraph(_sample())
        with pytest.raises(TimingError):
            g.mark_clock_tree(["ghost"])


class TestSurgicalUpdates:
    def test_remove_gate_nodes(self):
        netlist = _sample()
        g = TimingGraph(netlist)
        before = g.node_count()
        netlist.remove_gate("u2")
        g.remove_gate_nodes("u2")
        assert g.node_count() == before - 2
        assert PinRef("u2", "A") not in g.node_of
        # Net edges into the removed nodes are gone too.
        for edge in g.live_edges():
            assert g.nodes[edge.src] is not None
            assert g.nodes[edge.dst] is not None

    def test_rebuild_net_after_load_change(self):
        netlist = _sample()
        g = TimingGraph(netlist)
        netlist.connect("u2", "A", "a")   # move u2 off net w
        g.rebuild_net("w")
        g.rebuild_net("a")
        w_edges = [e for e in g.live_edges() if e.net == "w"]
        dsts = {str(g.node(e.dst).ref) for e in w_edges}
        assert dsts == {"ff/D"}

    def test_node_id_reuse(self):
        netlist = _sample()
        g = TimingGraph(netlist)
        netlist.remove_gate("u2")
        g.remove_gate_nodes("u2")
        netlist.add_gate("u3", "INV_X1", {"A": "w", "Z": "y"})
        g.add_gate_nodes("u3")
        g.rebuild_net("w")
        g.rebuild_net("y")
        assert g.topological_order()  # still a clean DAG

    def test_stale_node_access_raises(self):
        netlist = _sample()
        g = TimingGraph(netlist)
        victim = g.node_of[PinRef("u2", "A")]
        netlist.remove_gate("u2")
        g.remove_gate_nodes("u2")
        with pytest.raises(TimingError):
            g.node(victim)
