"""Forward-propagation tests: arrivals, worst slew, derate domains."""

import pytest

from repro.netlist.core import PinRef
from repro.timing.propagation import (
    EdgeDomain,
    check_propagation_sanity,
    classify_edge,
    effective_early,
    effective_late,
)
from repro.timing.graph import EdgeKind
from repro.timing.sta import STAEngine


class TestFig2Arrivals:
    """Spot values from the paper's worked example."""

    def test_path_arrival_is_740(self, fig2_engine):
        d_node = fig2_engine.node_id("FF4", "D")
        assert fig2_engine.state.arrival_late[d_node] == pytest.approx(740.0)

    def test_side_path_arrival(self, fig2_engine):
        # FF1 -> G1..G3 -> L1 -> FF5: depths (4,4,3,3) with 100 ps gates:
        # 100*(1.25+1.25+1.30+1.30) = 510.
        d_node = fig2_engine.node_id("FF5", "D")
        assert fig2_engine.state.arrival_late[d_node] == pytest.approx(510.0)

    def test_launch_arrival_includes_clock(self, fig2_engine):
        # Zero-delay flop + underated clock port: Q launches at 0.
        q_node = fig2_engine.node_id("FF1", "Q")
        assert fig2_engine.state.arrival_late[q_node] == pytest.approx(0.0)


class TestPropagationIdentity:
    def test_arrival_equals_max_fanin_everywhere(self, small_engine):
        assert check_propagation_sanity(
            small_engine.graph, small_engine.state
        ) == []

    def test_early_never_exceeds_late(self, small_engine):
        state = small_engine.state
        for node in small_engine.graph.live_nodes():
            assert (
                state.arrival_early[node.id]
                <= state.arrival_late[node.id] + 1e-9
            )

    def test_worst_slew_is_max_over_fanin(self, small_engine):
        graph, state = small_engine.graph, small_engine.state
        for node in graph.live_nodes():
            in_list = graph.in_edges[node.id]
            if not in_list:
                continue
            expected = max(graph.edge(e).out_slew for e in in_list)
            assert state.slew[node.id] == pytest.approx(expected)


class TestDerateDomains:
    def test_clock_tree_edges_are_clock_domain(self, small_engine):
        graph = small_engine.graph
        clock_edges = [
            e for e in graph.live_edges()
            if graph.node(e.src).is_clock_tree
            and graph.node(e.dst).is_clock_tree
        ]
        assert clock_edges
        for edge in clock_edges:
            assert classify_edge(graph, edge) is EdgeDomain.CLOCK

    def test_data_cells_get_aocv_derate(self, small_engine):
        graph, state = small_engine.graph, small_engine.state
        table = small_engine.config.derating_table
        distance = small_engine.gba_distance()
        found = 0
        for edge in graph.live_edges():
            if classify_edge(graph, edge) is EdgeDomain.DATA_CELL:
                depth = small_engine.gba_depths[edge.gate]
                assert state.derate_late[edge.id] == pytest.approx(
                    table.derate(depth, distance)
                )
                found += 1
        assert found > 10

    def test_clk_to_q_is_plain(self, small_engine):
        graph = small_engine.graph
        for edge in graph.live_edges():
            if edge.kind is EdgeKind.CELL and edge.gate is not None:
                if graph.netlist.cell_of(edge.gate).is_sequential:
                    assert classify_edge(graph, edge) is EdgeDomain.PLAIN

    def test_clock_derate_split(self, small_engine):
        graph, state = small_engine.graph, small_engine.state
        config = small_engine.config
        for edge in graph.live_edges():
            if classify_edge(graph, edge) is EdgeDomain.CLOCK:
                assert state.derate_late[edge.id] == config.clock_derate_late
                assert state.derate_early[edge.id] == config.clock_derate_early
                assert (
                    effective_late(state, edge)
                    >= effective_early(state, edge)
                )


class TestBoundaries:
    def test_input_delay_applied(self, small_design):
        engine = STAEngine(
            small_design.netlist, small_design.constraints,
            small_design.placement, small_design.sta_config,
        )
        engine.update_timing()
        port = small_design.spec and "in0"
        node = engine.graph.node_of[PinRef(None, port)]
        expected = small_design.constraints.input_delay_of(port)
        assert engine.state.arrival_late[node] == pytest.approx(expected)

    def test_clock_port_at_time_zero(self, small_engine):
        clock_port = small_engine.constraints.primary_clock().source_port
        node = small_engine.graph.node_of[PinRef(None, clock_port)]
        assert small_engine.state.arrival_late[node] == 0.0
        assert small_engine.state.slew[node] == pytest.approx(
            small_engine.config.clock_slew
        )


class TestWeights:
    def test_gate_weight_scales_derate(self, fig2):
        engine = STAEngine(fig2.netlist, fig2.constraints, None,
                           fig2.sta_config)
        engine.update_timing()
        baseline = engine.state.arrival_late[engine.node_id("FF4", "D")]
        engine.set_gate_weights({"G6": 0.5})
        engine.update_timing()
        corrected = engine.state.arrival_late[engine.node_id("FF4", "D")]
        # G6 contributes 100 * 1.20; halving its weight removes 60 ps.
        assert baseline - corrected == pytest.approx(60.0)

    def test_weight_floor_enforced(self, fig2):
        engine = STAEngine(fig2.netlist, fig2.constraints, None,
                           fig2.sta_config)
        engine.set_gate_weights({"G6": -5.0})
        assert engine.weights["G6"] == pytest.approx(0.05)

    def test_clear_weights_restores(self, fig2):
        engine = STAEngine(fig2.netlist, fig2.constraints, None,
                           fig2.sta_config)
        engine.update_timing()
        baseline = engine.state.arrival_late[engine.node_id("FF4", "D")]
        engine.set_gate_weights({"G1": 0.7, "G2": 0.7})
        engine.update_timing()
        engine.clear_gate_weights()
        engine.update_timing()
        restored = engine.state.arrival_late[engine.node_id("FF4", "D")]
        assert restored == pytest.approx(baseline)


class TestSanityCheckVectorized:
    """The segment-max rewrite must keep the scalar check's semantics."""

    def test_detects_corruption_and_names_the_node(self, fresh_small_design):
        engine = STAEngine(
            fresh_small_design.netlist, fresh_small_design.constraints,
            fresh_small_design.placement, fresh_small_design.sta_config,
        )
        engine.update_timing()
        assert check_propagation_sanity(engine.graph, engine.state) == []
        victim = next(
            n for n in engine.graph.live_nodes()
            if engine.graph.in_edges[n.id]
        )
        engine.state.arrival_late[victim.id] += 5.0
        problems = check_propagation_sanity(engine.graph, engine.state)
        assert len(problems) == 1
        assert str(victim.ref) in problems[0]
        assert "arrival_late" in problems[0]

    def test_tolerates_isclose_noise(self, small_engine):
        # Values within the 1e-9 relative tolerance are not violations.
        problems = check_propagation_sanity(
            small_engine.graph, small_engine.state
        )
        assert problems == []
