"""Attribution exactness gate for the explain layer.

The contract under test is *exact*, not approximate:

* per-arc rows sum bit-identically to the engine's reported arrival
  and slack (``==`` on floats, no tolerance);
* the whole explanation is ``==``-identical under the scalar oracle
  and the vector kernel, on the fixture design, a suite design, and
  hypothesis-random reconvergent netlists;
* on a clean engine the ``removed`` column is exactly zero, and per-arc
  ``pessimism == removed + residual`` holds bitwise.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings

from repro import api
from repro.context import RunContext
from repro.designs.generator import generate_design
from repro.designs.suite import build_design
from repro.errors import TimingError
from repro.timing.explain import (
    explain_design,
    explain_endpoint,
    format_design_explanation,
    format_path_explanation,
)
from repro.timing.sta import STAEngine
from tests.conftest import SMALL_SPEC
from tests.timing.strategies import design_specs


def _engine(design, kernel: str = "vector") -> STAEngine:
    return STAEngine(
        design.netlist, design.constraints,
        getattr(design, "placement", None),
        replace(design.sta_config, kernel=kernel),
    )


def _assert_rows_exact(engine: STAEngine) -> None:
    """Every endpoint: explain rows reproduce arrival/slack bitwise."""
    for endpoint_slack in engine.setup_slacks():
        explanation = explain_endpoint(engine, endpoint_slack.node)
        assert explanation.rows, endpoint_slack.name
        # Sequential per-arc accumulation IS the reported arrival.
        arrival = explanation.rows[0].arrival - explanation.rows[0].delay
        for row in explanation.rows:
            arrival = arrival + row.delay
            assert arrival == row.arrival
        assert explanation.arrival == endpoint_slack.arrival
        assert explanation.slack == endpoint_slack.slack
        assert explanation.required == endpoint_slack.required


class TestExactness:
    def test_fig2_rows_sum_to_reported_slack(self, fig2):
        engine = _engine(fig2)
        _assert_rows_exact(engine)

    def test_suite_design_rows_sum_to_reported_slack(self):
        engine = _engine(build_design("D1"))
        _assert_rows_exact(engine)

    def test_small_design_rows_sum_to_reported_slack(self, small_design):
        engine = _engine(small_design)
        _assert_rows_exact(engine)

    def test_exact_with_weights_installed(self, fig2):
        engine = _engine(fig2)
        engine.set_gate_weights(
            {g: 0.9 + 0.01 * i for i, g in
             enumerate(sorted(engine.netlist.gates))}
        )
        _assert_rows_exact(engine)

    @settings(
        max_examples=12, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(spec=design_specs(max_flops=10))
    def test_random_designs_rows_sum_to_reported_slack(self, spec):
        engine = _engine(generate_design(spec))
        _assert_rows_exact(engine)


class TestKernelIdentity:
    def _identical(self, factory) -> None:
        scalar = explain_design(_engine(factory(), "scalar"), top_k=5)
        vector = explain_design(_engine(factory(), "vector"), top_k=5)
        assert scalar == vector  # frozen dataclasses: bitwise equality

    def test_fig2(self):
        self._identical(lambda: api.load_design("fig2"))

    def test_suite_design(self):
        self._identical(lambda: build_design("D1"))

    def test_small_design(self):
        self._identical(lambda: generate_design(SMALL_SPEC))

    @settings(
        max_examples=8, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(spec=design_specs(max_flops=10))
    def test_random_designs(self, spec):
        self._identical(lambda: generate_design(spec))

    def test_identity_with_weights(self, fig2):
        weights = {g: 0.95 for g in sorted(fig2.netlist.gates)}
        scalar = _engine(fig2, "scalar")
        vector = _engine(fig2, "vector")
        scalar.set_gate_weights(weights)
        vector.set_gate_weights(weights)
        assert (
            explain_design(scalar, top_k=5)
            == explain_design(vector, top_k=5)
        )


class TestAccounting:
    def test_clean_engine_removes_nothing(self, fig2):
        explanation = explain_design(_engine(fig2))
        assert explanation.summary.removed == 0.0
        for path in explanation.paths:
            assert path.removed == 0.0
            for row in path.rows:
                assert row.removed == 0.0
                # With nothing removed the split is exact bitwise.
                assert row.pessimism == row.residual

    def test_fig2_matches_paper_pessimism(self, fig2):
        # Fig. 2's worked example: the FF4/D path carries 50 ps of
        # depth-based AOCV pessimism (10+10+15+5+10).
        explanation = explain_design(_engine(fig2), top_k=1)
        worst = explanation.paths[0]
        assert worst.endpoint == "FF4/D"
        assert worst.pessimism == pytest.approx(50.0)

    def test_fitted_weights_show_as_removed(self, fig2):
        engine = _engine(fig2)
        context = RunContext.from_env(
            workers=1, backend="serial", cache=False, solver="direct",
        )
        api.fit(engine, context)
        assert engine.weights
        explanation = explain_design(engine)
        assert explanation.summary.removed > 0.0
        assert explanation.summary.residual < (
            explanation.summary.pessimism
        )
        for path in explanation.paths:
            for row in path.rows:
                assert row.pessimism == pytest.approx(
                    row.removed + row.residual
                )

    def test_summary_totals_are_path_sums(self, small_design):
        explanation = explain_design(_engine(small_design))
        summary = explanation.summary
        slacks = explanation.paths  # top_k=10 may truncate; recompute
        engine = _engine(small_design)
        everything = [
            explain_endpoint(engine, s.node)
            for s in engine.setup_slacks()
        ]
        assert summary.endpoints == len(everything)
        assert summary.arcs == sum(len(e.rows) for e in everything)
        assert summary.pessimism == pytest.approx(
            sum(e.pessimism for e in everything)
        )
        assert summary.residual == pytest.approx(
            sum(e.residual for e in everything)
        )
        assert len(slacks) <= 10

    def test_top_lists_rank_residual(self, small_design):
        explanation = explain_design(_engine(small_design), top_k=4)
        values = [v for _, v in explanation.summary.top_endpoints]
        assert values == sorted(values, reverse=True)
        assert len(explanation.summary.top_endpoints) <= 4
        arc_values = [v for _, v in explanation.summary.top_arcs]
        assert arc_values == sorted(arc_values, reverse=True)


class TestProvenance:
    def test_aocv_rows_carry_table_tag_and_depth(self, fig2):
        explanation = explain_design(_engine(fig2), top_k=1)
        data_rows = [
            r for r in explanation.paths[0].rows
            if r.domain == "data_cell"
        ]
        assert data_rows
        for row in data_rows:
            assert row.provenance.startswith("aocv:")
            assert "/depth=" in row.provenance

    def test_clock_and_plain_rows_are_default(self, fig2):
        explanation = explain_design(_engine(fig2), top_k=1)
        for row in explanation.paths[0].rows:
            if row.domain in ("clock", "plain"):
                assert row.provenance == "default"

    def test_weighted_rows_carry_fitted_weight(self, fig2):
        engine = _engine(fig2)
        engine.set_gate_weights({"G3": 0.875})
        explanation = explain_endpoint(engine, "FF4/D")
        tagged = [
            r for r in explanation.rows
            if r.provenance.startswith("mgba:fitted")
        ]
        assert len(tagged) == 1
        assert "w=0.875" in tagged[0].provenance
        # Unweighted data cells keep their AOCV provenance.
        assert any(
            r.provenance.startswith("aocv:") for r in explanation.rows
        )


class TestLookupAndRendering:
    def test_endpoint_by_name_and_node_agree(self, fig2):
        engine = _engine(fig2)
        target = engine.setup_slacks()[0]
        assert (
            explain_endpoint(engine, target.name)
            == explain_endpoint(engine, target.node)
        )

    def test_unknown_endpoint_raises(self, fig2):
        engine = _engine(fig2)
        with pytest.raises(TimingError):
            explain_endpoint(engine, "NO/SUCH")
        with pytest.raises(TimingError):
            explain_endpoint(engine, 10 ** 9)

    def test_markdown_renderers(self, fig2):
        explanation = explain_design(_engine(fig2), top_k=2)
        text = format_design_explanation(explanation)
        assert "Pessimism accounting" in text
        assert "| pin | domain |" in text
        single = format_path_explanation(explanation.paths[0])
        assert explanation.paths[0].endpoint in single

    def test_to_dict_is_json_ready(self, fig2):
        import json

        payload = explain_design(_engine(fig2)).to_dict()
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["design"] == "paper_fig2"
        assert round_tripped["summary"]["endpoints"] == 4
