"""JSON timing-report tests."""

import json

import pytest

from repro.timing.report import path_to_dict, report_timing_json


class TestJsonReport:
    def test_schema(self, fig2_engine):
        payload = report_timing_json(fig2_engine, max_endpoints=2)
        assert payload["design"] == "paper_fig2"
        assert payload["wns"] == pytest.approx(-40.0)
        assert len(payload["paths"]) == 2
        worst = payload["paths"][0]
        assert worst["endpoint"] == "FF4/D"
        assert worst["slack"] == pytest.approx(-40.0)

    def test_pins_reconstruct_arrival(self, fig2_engine):
        payload = report_timing_json(fig2_engine, max_endpoints=1)
        pins = payload["paths"][0]["pins"]
        total = pins[0]["arrival"] + sum(p["incr"] for p in pins[1:])
        assert total == pytest.approx(payload["paths"][0]["arrival"])

    def test_json_serializable(self, small_engine):
        payload = report_timing_json(small_engine)
        json.dumps(payload)

    def test_path_to_dict_matches_slack(self, small_engine):
        worst = min(small_engine.setup_slacks(), key=lambda s: s.slack)
        record = path_to_dict(small_engine, worst)
        assert record["slack"] == worst.slack
        assert record["pins"][-1]["name"] == worst.name


class TestValidateCli:
    def test_validate_command(self, capsys):
        from repro.cli import main

        code = main(["validate", "D1", "--rows", "5"])
        out = capsys.readouterr().out
        assert "error(s)" in out
        assert code == 0  # suite designs are structurally clean
